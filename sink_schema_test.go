package dtmsvs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCSVSinkBareSetSchema: a CSVSink used outside a session learns
// its schema from SetSchema, so flushing with zero records emits the
// same header row a session-managed sink writes — for both the
// monolithic and the cluster column sets.
func TestCSVSinkBareSetSchema(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sample TraceRecord
	}{
		{"sim", TraceRecord{BS: -1}},
		{"cluster", TraceRecord{BS: 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var bare bytes.Buffer
			sink := NewCSVSink(&bare)
			sink.SetSchema(tc.sample)
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			wantHeader := strings.Join(tc.sample.CSVHeader(), ",") + "\n"
			if bare.String() != wantHeader {
				t.Fatalf("bare sink header %q want %q", bare.String(), wantHeader)
			}
			// Idempotent: more flushes add nothing, and a later SetSchema
			// cannot rewrite an emitted header.
			sink.SetSchema(tc.sample)
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			if bare.String() != wantHeader {
				t.Fatal("second flush duplicated the header")
			}
		})
	}
}

// TestCSVSinkBareUnarmedStillEmpty pins the pre-SetSchema behavior: a
// bare sink with no schema and no records has nothing to write.
func TestCSVSinkBareUnarmedStillEmpty(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("unarmed sink wrote %q", buf.String())
	}
}

// TestCSVSinkSessionHeaderOnEmptyDistributedRun: OpenDistributed arms
// a CSV sink like the other Open variants, so a distributed session
// closed before its first interval leaves a header-only file.
func TestCSVSinkSessionHeaderOnEmptyDistributedRun(t *testing.T) {
	var buf bytes.Buffer
	s, err := OpenDistributed(distTestConfig(3, 1), 2, WithSink(NewCSVSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wantHeader := strings.Join(TraceRecord{BS: 0}.CSVHeader(), ",") + "\n"
	if buf.String() != wantHeader {
		t.Fatalf("empty distributed run left %q want header only", buf.String())
	}
	// And a completed run puts records under that same header.
	var full bytes.Buffer
	s2, err := OpenDistributed(distTestConfig(3, 1), 2, WithSink(NewCSVSink(&full)))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for !s2.Done() {
		if _, serr := s2.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	if !strings.HasPrefix(full.String(), wantHeader) {
		t.Fatal("completed run missing schema header")
	}
	if strings.Count(full.String(), "\n") < 2 {
		t.Fatal("completed run wrote no records")
	}
}
