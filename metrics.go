// Session-level observability. WithMetrics mounts an obs.Registry on
// a session at Open time: the engine registers its stage timers and
// component counters (per-cell in a cluster run), and the session
// itself tracks the step span, sink write/flush spans and retries,
// and checkpoint encode cost. The registry is read-side safe for
// live HTTP export (obs.Serve / obs.Handler) while the session steps.
//
// Metrics never perturb the run: all instrumentation is out-of-band
// wall-clock and counter state, so traces are bit-identical with a
// registry mounted or not, and the steady-state Step path stays
// allocation-free.
package dtmsvs

import (
	"io"

	"dtmsvs/internal/obs"
)

// MetricsRegistry is the registry type accepted by WithMetrics,
// re-exported so callers outside the module tree can hold one
// without importing internal packages.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry to mount with
// WithMetrics. Export it live with obs.Serve (see cmd/dtsim
// -metrics-addr) or snapshot it with its WriteJSON/WritePrometheus
// methods.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// WithMetrics mounts reg on the session: engine stage timers
// (prologue and per-interval phases, per-cell in cluster runs), edge
// cache and GEMM/crew utilization counters, session step spans, sink
// write/flush spans and retry counters, and checkpoint size and
// encode duration. Cluster runs with failure injection additionally
// expose the failure-model catalog: dtmsvs_cells_down,
// dtmsvs_evacuated_twins_total, dtmsvs_degraded_intervals_total,
// dtmsvs_cell_failures_total and dtmsvs_cell_revivals_total, plus the
// interval/evacuation stage timer. A nil reg leaves the session
// un-instrumented; the hot path then pays only nil checks.
func WithMetrics(reg *MetricsRegistry) SessionOption {
	return func(o *sessionOptions) { o.metrics = reg }
}

// sessionMetrics holds the session layer's own handles. The zero
// value (no registry) is fully inert.
type sessionMetrics struct {
	step       *obs.Stage
	sinkWrite  *obs.Stage
	sinkFlush  *obs.Stage
	ckptEncode *obs.Stage

	steps            *obs.Counter
	sinkWriteRetries *obs.Counter
	sinkFlushRetries *obs.Counter
	sinkErrors       *obs.Counter
	ckpts            *obs.Counter
	ckptBytes        *obs.Gauge
}

func newSessionMetrics(reg *obs.Registry) sessionMetrics {
	if reg == nil {
		return sessionMetrics{}
	}
	return sessionMetrics{
		step:       reg.Stage("step"),
		sinkWrite:  reg.Stage("interval/sink_write"),
		sinkFlush:  reg.Stage("interval/sink_flush"),
		ckptEncode: reg.Stage("checkpoint/encode"),
		steps: reg.Counter("dtmsvs_steps_total",
			"Scheduling intervals completed by the session."),
		sinkWriteRetries: reg.Counter("dtmsvs_sink_write_retries_total",
			"Transient sink WriteRecord failures that were retried."),
		sinkFlushRetries: reg.Counter("dtmsvs_sink_flush_retries_total",
			"Transient sink Flush failures that were retried."),
		sinkErrors: reg.Counter("dtmsvs_sink_errors_total",
			"Sink failures that survived the retry budget and failed the step."),
		ckpts: reg.Counter("dtmsvs_checkpoints_total",
			"Checkpoints encoded by the session."),
		ckptBytes: reg.Gauge("dtmsvs_checkpoint_bytes",
			"Size of the most recent checkpoint in bytes."),
	}
}

// countingWriter counts the bytes that pass through to w, so the
// checkpoint path can report encoded size without buffering.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
