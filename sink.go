// This file holds the TraceSink implementations: trace records flow
// out of a Session per interval instead of accumulating in the run's
// heap. BufferedSink restores the whole-trace-in-memory behavior when
// that is what the caller wants; NDJSONSink and CSVSink stream to any
// io.Writer with a flush at every interval boundary, so a cancelled
// run leaves a well-formed trace prefix behind; DiscardSink keeps
// nothing (statistics-only runs).
package dtmsvs

import (
	"io"

	"dtmsvs/internal/traceio"
)

// TraceSink receives trace records as a session produces them. A
// session writes every record of a completed interval, then calls
// Flush — so after any Flush the sink holds a consistent
// whole-interval prefix of the run.
type TraceSink interface {
	// WriteRecord receives one trace row.
	WriteRecord(TraceRecord) error
	// Flush pushes buffered rows to the sink's backing store. Called
	// at every interval boundary and by Session.Close.
	Flush() error
}

// BufferedSink accumulates records in memory — the pre-session
// whole-run trace behavior, as a sink.
type BufferedSink struct {
	Records []TraceRecord
}

// WriteRecord implements TraceSink.
func (b *BufferedSink) WriteRecord(r TraceRecord) error {
	b.Records = append(b.Records, r)
	return nil
}

// Flush implements TraceSink.
func (b *BufferedSink) Flush() error { return nil }

// NDJSONSink streams records as newline-delimited JSON: one record
// per line, in the engine's record schema (monolithic records carry
// no "bs" field). Decode with ReadTraceRecordsNDJSON.
type NDJSONSink struct {
	s *traceio.NDJSONStream
}

// NewNDJSONSink returns an NDJSON sink over w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{s: traceio.NewNDJSONStream(w)}
}

// WriteRecord implements TraceSink.
func (s *NDJSONSink) WriteRecord(r TraceRecord) error { return s.s.Write(r) }

// Flush implements TraceSink.
func (s *NDJSONSink) Flush() error { return s.s.Flush() }

// CSVSink streams records as CSV, writing the header before the first
// record (the monolithic schema for BS < 0 records, the bs-prefixed
// cluster schema otherwise — a session never mixes the two). Sessions
// tell the sink which schema to expect via SetSchema, so a run that
// ends before its first interval completes (e.g. cancelled during the
// prologue) leaves a header-only file, matching the batch
// WriteTraceCSV helpers. A bare CSVSink used outside a session gets
// the same behavior by calling SetSchema itself.
type CSVSink struct {
	s *traceio.CSVStream
}

// NewCSVSink returns a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{s: traceio.NewCSVStream(w)}
}

// WriteRecord implements TraceSink.
func (s *CSVSink) WriteRecord(r TraceRecord) error { return s.s.Write(r) }

// Flush implements TraceSink.
func (s *CSVSink) Flush() error { return s.s.Flush() }

// SetSchema arms the stream with the record schema so a run that
// flushes with zero records still emits the header row. The sample's
// values are ignored — only its shape matters: BS < 0 selects the
// monolithic column set, BS >= 0 the bs-prefixed cluster set.
// Open/OpenCluster/OpenDistributed call this on any CSVSink passed
// via WithSink; a bare CSVSink used outside a session should call it
// before the first Flush or Close. Once a record has been written (or
// the header emitted) further calls have no effect.
func (s *CSVSink) SetSchema(r TraceRecord) { s.s.SetEmptyHeader(r) }

// DiscardSink drops every record: attach it when only the run-level
// statistics and interval reports matter, so neither the session nor
// a sink retains the trace.
type DiscardSink struct{}

// WriteRecord implements TraceSink.
func (DiscardSink) WriteRecord(TraceRecord) error { return nil }

// Flush implements TraceSink.
func (DiscardSink) Flush() error { return nil }

func readNDJSONRecords(r io.Reader) ([]TraceRecord, error) {
	return traceio.ReadNDJSON[TraceRecord](r, "trace stream")
}
