package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// fuzzCheckpointConfig is the scenario every FuzzReadCheckpoint input
// is resumed against. Tiny on purpose: the fuzzer calls Resume
// thousands of times per second and only the reader is under test.
func fuzzCheckpointConfig() Config {
	return Config{
		Seed:             41,
		NumUsers:         8,
		NumBS:            2,
		NumIntervals:     2,
		TicksPerInterval: 4,
		WarmupIntervals:  1,
		CompressorEpochs: 1,
		AgentEpisodes:    4,
		PrefetchDepth:    -1,
	}
}

// fuzzSeedCheckpoint produces a real checkpoint of the fuzz scenario
// at boundary 1, so the corpus starts from a valid stream and the
// fuzzer mutates real section framing, payloads and CRCs instead of
// rediscovering the container format from zero.
func fuzzSeedCheckpoint(tb testing.TB) []byte {
	tb.Helper()
	s, err := Open(fuzzCheckpointConfig())
	if err != nil {
		tb.Fatal(err)
	}
	defer s.Close()
	if _, serr := s.Step(context.Background()); serr != nil {
		tb.Fatal(serr)
	}
	var ckpt bytes.Buffer
	if cerr := s.Checkpoint(&ckpt); cerr != nil {
		tb.Fatal(cerr)
	}
	return ckpt.Bytes()
}

// FuzzReadCheckpoint hammers the checkpoint container reader with
// mutated streams: Resume must never panic, and every rejection must
// be one of the three typed checkpoint errors — the contract the
// damage-matrix test asserts at sampled offsets, here over arbitrary
// corruption.
func FuzzReadCheckpoint(f *testing.F) {
	seed := fuzzSeedCheckpoint(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	cfg := fuzzCheckpointConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Resume(cfg, bytes.NewReader(data))
		if err == nil {
			// Only the pristine seed (or an equivalent reconstruction)
			// should get here; the session must at least close cleanly.
			if cerr := s.Close(); cerr != nil {
				t.Fatalf("resumed session failed to close: %v", cerr)
			}
			return
		}
		if !errors.Is(err, ErrCheckpointCorrupt) &&
			!errors.Is(err, ErrCheckpointVersion) &&
			!errors.Is(err, ErrCheckpointConfig) {
			t.Fatalf("untyped checkpoint rejection: %v", err)
		}
	})
}
