package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// fuzzCheckpointConfig is the scenario every FuzzReadCheckpoint input
// is resumed against. Tiny on purpose: the fuzzer calls Resume
// thousands of times per second and only the reader is under test.
func fuzzCheckpointConfig() Config {
	return Config{
		Seed:             41,
		NumUsers:         8,
		NumBS:            2,
		NumIntervals:     2,
		TicksPerInterval: 4,
		WarmupIntervals:  1,
		CompressorEpochs: 1,
		AgentEpisodes:    4,
		PrefetchDepth:    -1,
	}
}

// fuzzSeedCheckpoint produces a real checkpoint of the fuzz scenario
// at boundary 1, so the corpus starts from a valid stream and the
// fuzzer mutates real section framing, payloads and CRCs instead of
// rediscovering the container format from zero.
func fuzzSeedCheckpoint(tb testing.TB) []byte {
	tb.Helper()
	s, err := Open(fuzzCheckpointConfig())
	if err != nil {
		tb.Fatal(err)
	}
	defer s.Close()
	if _, serr := s.Step(context.Background()); serr != nil {
		tb.Fatal(serr)
	}
	var ckpt bytes.Buffer
	if cerr := s.Checkpoint(&ckpt); cerr != nil {
		tb.Fatal(cerr)
	}
	return ckpt.Bytes()
}

// fuzzSeedTrace produces a real binary trace of the fuzz scenario —
// one plain, one compressed — so the corpus starts from valid block
// framing and the fuzzer mutates real frames, bodies and CRCs.
func fuzzSeedTrace(tb testing.TB, opts ...BinarySinkOption) []byte {
	tb.Helper()
	var buf bytes.Buffer
	sink, err := NewBinarySink(&buf, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := Open(fuzzCheckpointConfig(), WithSink(sink))
	if err != nil {
		tb.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			tb.Fatal(serr)
		}
	}
	if err := s.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTraceBin hammers the binary trace reader with mutated
// streams: decoding must never panic, every rejection must be one of
// the two typed trace errors, and any records returned alongside an
// error must have decoded before the damage (the readable-prefix
// contract).
func FuzzReadTraceBin(f *testing.F) {
	plain := fuzzSeedTrace(f)
	comp := fuzzSeedTrace(f, WithBinaryCompression())
	f.Add(plain)
	f.Add(comp)
	f.Add(plain[:len(plain)/2])
	f.Add(plain[:11]) // header magic+version+flags only
	f.Add([]byte{})
	f.Add([]byte("not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadTraceRecordsBin(bytes.NewReader(data)); err != nil {
			if !errors.Is(err, ErrTraceCorrupt) && !errors.Is(err, ErrTraceVersion) {
				t.Fatalf("untyped trace rejection: %v", err)
			}
		}
	})
}

// FuzzReadCheckpoint hammers the checkpoint container reader with
// mutated streams: Resume must never panic, and every rejection must
// be one of the three typed checkpoint errors — the contract the
// damage-matrix test asserts at sampled offsets, here over arbitrary
// corruption.
func FuzzReadCheckpoint(f *testing.F) {
	seed := fuzzSeedCheckpoint(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	cfg := fuzzCheckpointConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Resume(cfg, bytes.NewReader(data))
		if err == nil {
			// Only the pristine seed (or an equivalent reconstruction)
			// should get here; the session must at least close cleanly.
			if cerr := s.Close(); cerr != nil {
				t.Fatalf("resumed session failed to close: %v", cerr)
			}
			return
		}
		if !errors.Is(err, ErrCheckpointCorrupt) &&
			!errors.Is(err, ErrCheckpointVersion) &&
			!errors.Is(err, ErrCheckpointConfig) {
			t.Fatalf("untyped checkpoint rejection: %v", err)
		}
	})
}
