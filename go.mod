module dtmsvs

go 1.24
