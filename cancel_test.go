package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// ndjsonRun executes a full scenario through a session with an NDJSON
// sink and returns the byte stream plus the per-interval line counts,
// so cancellation tests can cut exact whole-interval prefixes.
func ndjsonRun(t *testing.T, open func(opts ...SessionOption) (Session, error)) (string, []int) {
	t.Helper()
	var buf bytes.Buffer
	var perInterval []int
	s, err := open(
		WithSink(NewNDJSONSink(&buf)),
		WithObserver(func(rep IntervalReport) { perInterval = append(perInterval, len(rep.Records)) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	return buf.String(), perInterval
}

// linePrefix returns the first n lines of an NDJSON stream, trailing
// newline included.
func linePrefix(stream string, n int) string {
	if n == 0 {
		return ""
	}
	lines := strings.SplitAfterN(stream, "\n", n+1)
	return strings.Join(lines[:n], "")
}

// TestCancelAtEveryBoundary is the cancellation contract for both
// engines at Parallelism 1 and 4: a run cancelled after k intervals
// leaves a flushed NDJSON stream that is bit-identical to the first k
// intervals of an uncancelled run, Step returns ctx.Err(), and the
// boundary-cancelled session resumes under a fresh context to finish
// with a bit-identical full stream.
func TestCancelAtEveryBoundary(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func(workers int) func(opts ...SessionOption) (Session, error)
	}{
		{"sim", func(workers int) func(opts ...SessionOption) (Session, error) {
			return func(opts ...SessionOption) (Session, error) {
				return Open(sessionTestConfig(9, workers), opts...)
			}
		}},
		{"cluster", func(workers int) func(opts ...SessionOption) (Session, error) {
			return func(opts ...SessionOption) (Session, error) {
				return OpenCluster(ClusterConfig{Sim: sessionTestConfig(9, workers)}, opts...)
			}
		}},
	} {
		for _, workers := range []int{1, 4} {
			open := tc.open(workers)
			full, perInterval := ndjsonRun(t, open)
			intervals := len(perInterval)
			if intervals == 0 {
				t.Fatalf("%s workers %d: no intervals ran", tc.name, workers)
			}
			for k := 0; k <= intervals; k++ {
				var buf bytes.Buffer
				s, err := open(WithSink(NewNDJSONSink(&buf)))
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				for step := 0; step < k; step++ {
					if _, serr := s.Step(ctx); serr != nil {
						t.Fatalf("%s workers %d cancel@%d step %d: %v", tc.name, workers, k, step, serr)
					}
				}
				cancel()
				var lines int
				for _, n := range perInterval[:k] {
					lines += n
				}
				if k < intervals {
					// The boundary cancellation must surface ctx.Err() with
					// the whole-interval prefix flushed...
					if _, serr := s.Step(ctx); !errors.Is(serr, context.Canceled) {
						t.Fatalf("%s workers %d cancel@%d: want context.Canceled, got %v", tc.name, workers, k, serr)
					}
					if got, want := buf.String(), linePrefix(full, lines); got != want {
						t.Fatalf("%s workers %d cancel@%d: flushed prefix diverged (%d vs %d bytes)",
							tc.name, workers, k, len(got), len(want))
					}
					// ...and leave the session resumable: finishing under a
					// fresh context reproduces the uncancelled stream exactly.
					for !s.Done() {
						if _, serr := s.Step(context.Background()); serr != nil {
							t.Fatalf("%s workers %d resume@%d: %v", tc.name, workers, k, serr)
						}
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				if buf.String() != full {
					t.Fatalf("%s workers %d cancel@%d: resumed stream diverged from uncancelled run",
						tc.name, workers, k)
				}
			}
		}
	}
}

// TestCancelledRunReturnsCtxErr: the high-level Run-shape loop (as
// the CLIs use it) surfaces ctx.Err() from a pre-cancelled context
// without touching engine state.
func TestCancelledRunReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := Open(sessionTestConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, serr := s.Step(ctx); !errors.Is(serr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", serr)
	}
	if s.Interval() != 0 {
		t.Fatalf("cancelled before start but Interval() = %d", s.Interval())
	}
	// Experiment wrappers propagate the cancellation too.
	if _, serr := RunComputeDemand(ctx, sessionTestConfig(2, 1)); !errors.Is(serr, context.Canceled) {
		t.Fatalf("experiment wrapper: want context.Canceled, got %v", serr)
	}
}
