package dtmsvs

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dtmsvs/internal/predict"
	"dtmsvs/internal/qoe"
	"dtmsvs/internal/reserve"
	"dtmsvs/internal/stats"
	"dtmsvs/internal/video"
)

// ErrExperiment indicates an experiment could not be evaluated.
var ErrExperiment = errors.New("dtmsvs: experiment failed")

// runTrace executes one scenario through a Session, honoring ctx at
// every interval boundary — every experiment wrapper routes its runs
// through here, so a cancelled ctx aborts a sweep between intervals
// instead of after a whole run.
func runTrace(ctx context.Context, cfg Config, opts ...SessionOption) (*Trace, error) {
	// A caller-supplied sink owns the record stream and turns off the
	// session's internal retention — but the experiment aggregates
	// still need the records, so collect them from the interval
	// reports alongside the sink.
	var collected []GroupIntervalRecord
	if buildOptions(opts).sink != nil {
		opts = append(opts, WithObserver(func(rep IntervalReport) {
			for _, r := range rep.Records {
				collected = append(collected, r.GroupIntervalRecord)
			}
		}))
	}
	s, err := Open(cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(ctx); err != nil {
			return nil, err
		}
	}
	tr := s.Trace()
	if len(tr.Records) == 0 {
		tr.Records = collected
	}
	return tr, nil
}

// Fig3aResult is the reproduction of Fig. 3(a): the cumulative
// swiping probability per category of the News-dominant multicast
// group ("multicast group 1" in the paper).
type Fig3aResult struct {
	// GroupID of the News-dominant group.
	GroupID int
	// CDF[c][i] is the cumulative swiping probability of category c
	// at watch fraction (i+1)/len(CDF[c]).
	CDF [NumCategories][]float64
	// ExpectedWatchFraction per category (News highest, Game lowest).
	ExpectedWatchFraction [NumCategories]float64
}

// newsDominantGroup picks the group whose News expected watch
// fraction exceeds its Game expected watch fraction by the largest
// margin — the paper's "group 1" archetype.
func newsDominantGroup(tr *Trace) (int, *SwipeDistribution, error) {
	bestID, bestMargin := -1, math.Inf(-1)
	var bestDist *SwipeDistribution
	for id, d := range tr.SwipeByGroup {
		eNews, err := d.ExpectedWatchFraction(News)
		if err != nil {
			return 0, nil, err
		}
		eGame, err := d.ExpectedWatchFraction(Game)
		if err != nil {
			return 0, nil, err
		}
		if margin := eNews - eGame; margin > bestMargin {
			bestID, bestMargin, bestDist = id, margin, d
		}
	}
	if bestID < 0 {
		return 0, nil, fmt.Errorf("no groups in trace: %w", ErrExperiment)
	}
	return bestID, bestDist, nil
}

// RunFig3a reproduces Fig. 3(a) on the given scenario.
func RunFig3a(ctx context.Context, cfg Config, opts ...SessionOption) (*Fig3aResult, error) {
	tr, err := runTrace(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	return Fig3aFromTrace(tr)
}

// Fig3aFromTrace extracts the Fig. 3(a) artifact from an existing
// trace (avoids re-running the simulation when both panels are
// needed).
func Fig3aFromTrace(tr *Trace) (*Fig3aResult, error) {
	id, dist, err := newsDominantGroup(tr)
	if err != nil {
		return nil, err
	}
	out := &Fig3aResult{GroupID: id}
	for i, c := range video.AllCategories() {
		cdf := make([]float64, len(dist.CDF[i]))
		copy(cdf, dist.CDF[i])
		out.CDF[i] = cdf
		e, eerr := dist.ExpectedWatchFraction(c)
		if eerr != nil {
			return nil, eerr
		}
		out.ExpectedWatchFraction[i] = e
	}
	return out, nil
}

// Fig3bResult is the reproduction of Fig. 3(b): predicted vs actual
// radio resource demand of the News-dominant group, plus the
// headline prediction accuracy (paper: 95.04 %).
type Fig3bResult struct {
	GroupID int
	// Predicted and Actual RB demand per reservation interval.
	Predicted, Actual []float64
	// Accuracy is 1 − MAPE over the group's series.
	Accuracy float64
	// OverallAccuracy is 1 − MAPE over all groups.
	OverallAccuracy float64
}

// RunFig3b reproduces Fig. 3(b) on the given scenario.
func RunFig3b(ctx context.Context, cfg Config, opts ...SessionOption) (*Fig3bResult, error) {
	tr, err := runTrace(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	return Fig3bFromTrace(tr)
}

// Fig3bFromTrace extracts the Fig. 3(b) artifact from a trace.
func Fig3bFromTrace(tr *Trace) (*Fig3bResult, error) {
	id, _, err := newsDominantGroup(tr)
	if err != nil {
		return nil, err
	}
	pred, actual := tr.GroupSeries(id)
	if len(pred) == 0 {
		return nil, fmt.Errorf("group %d has no records: %w", id, ErrExperiment)
	}
	acc, err := stats.PredictionAccuracy(pred, actual)
	if err != nil {
		return nil, err
	}
	overall, err := tr.RadioAccuracy()
	if err != nil {
		return nil, err
	}
	return &Fig3bResult{GroupID: id, Predicted: pred, Actual: actual, Accuracy: acc, OverallAccuracy: overall}, nil
}

// ComputeDemandResult is experiment E1: predicted vs actual
// transcoding demand across all groups.
type ComputeDemandResult struct {
	Predicted, Actual []float64
	// VolumeAccuracy is 1 − Σ|err|/Σactual.
	VolumeAccuracy float64
}

// RunComputeDemand runs experiment E1 on the scenario.
func RunComputeDemand(ctx context.Context, cfg Config, opts ...SessionOption) (*ComputeDemandResult, error) {
	tr, err := runTrace(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	out := &ComputeDemandResult{}
	for _, r := range tr.Records {
		out.Predicted = append(out.Predicted, r.PredictedCycles)
		out.Actual = append(out.Actual, r.ActualCycles)
	}
	acc, err := tr.ComputeAccuracy()
	if err != nil {
		return nil, err
	}
	out.VolumeAccuracy = acc
	return out, nil
}

// GroupingVariant labels one arm of the grouping ablation (E2).
type GroupingVariant struct {
	Name string
	// FixedK > 0 bypasses the DDQN.
	FixedK int
	// UseCNN toggles the 1D-CNN compressor.
	UseCNN bool
	// PerBS constructs groups under each base station (Fig. 1
	// architecture) instead of campus-wide.
	PerBS bool
	// OracleK replaces the DDQN with an exhaustive K scan (the
	// classical silhouette-max baseline).
	OracleK bool
}

// GroupingAblationRow is one arm's outcome.
type GroupingAblationRow struct {
	Variant       GroupingVariant
	K             int
	Silhouette    float64
	RadioAccuracy float64
}

// RunGroupingAblation runs experiment E2: the DDQN-selected grouping
// against fixed-K and raw-feature baselines on the same scenario.
func RunGroupingAblation(ctx context.Context, cfg Config, variants []GroupingVariant) ([]GroupingAblationRow, error) {
	if len(variants) == 0 {
		variants = []GroupingVariant{
			{Name: "ddqn+cnn", UseCNN: true},
			{Name: "ddqn+raw", UseCNN: false},
			{Name: "ddqn+perbs", UseCNN: true, PerBS: true},
			{Name: "oracle-k", UseCNN: true, OracleK: true},
			{Name: "fixed-k2", FixedK: 2, UseCNN: true},
			{Name: "fixed-k4", FixedK: 4, UseCNN: true},
			{Name: "fixed-k8", FixedK: 8, UseCNN: true},
		}
	}
	rows := make([]GroupingAblationRow, 0, len(variants))
	for _, v := range variants {
		c := cfg
		c.FixedK = v.FixedK
		c.Grouping.UseCNN = v.UseCNN
		c.PerBSGrouping = v.PerBS
		c.OracleK = v.OracleK
		tr, err := runTrace(ctx, c)
		if err != nil {
			return rows, fmt.Errorf("variant %q: %w", v.Name, err)
		}
		acc, err := tr.RadioAccuracy()
		if err != nil {
			return rows, fmt.Errorf("variant %q accuracy: %w", v.Name, err)
		}
		rows = append(rows, GroupingAblationRow{
			Variant: v, K: tr.K, Silhouette: tr.Silhouette, RadioAccuracy: acc,
		})
	}
	return rows, nil
}

// UsersSweepRow is one point of experiment E3 (accuracy vs user
// count).
type UsersSweepRow struct {
	Users           int
	RadioAccuracy   float64
	ComputeAccuracy float64
	K               int
}

// RunAccuracyVsUsers runs experiment E3.
func RunAccuracyVsUsers(ctx context.Context, cfg Config, userCounts []int) ([]UsersSweepRow, error) {
	if len(userCounts) == 0 {
		userCounts = []int{50, 100, 200, 400}
	}
	rows := make([]UsersSweepRow, 0, len(userCounts))
	for _, n := range userCounts {
		c := cfg
		c.NumUsers = n
		tr, err := runTrace(ctx, c)
		if err != nil {
			return rows, fmt.Errorf("users=%d: %w", n, err)
		}
		acc, err := tr.RadioAccuracy()
		if err != nil {
			return rows, err
		}
		cacc, err := tr.ComputeAccuracy()
		if err != nil {
			cacc = math.NaN()
		}
		rows = append(rows, UsersSweepRow{Users: n, RadioAccuracy: acc, ComputeAccuracy: cacc, K: tr.K})
	}
	return rows, nil
}

// ChurnRow is one point of experiment E10: accuracy and grouping
// stability under user churn.
type ChurnRow struct {
	// ChurnPerInterval is the per-interval replacement probability.
	ChurnPerInterval float64
	RadioAccuracy    float64
	// MeanStability is the mean Rand index between consecutive group
	// constructions (1 = identical partitions).
	MeanStability float64
	ChurnedUsers  int
}

// RunAccuracyVsChurn runs experiment E10: sweep the user churn rate
// and measure prediction accuracy and multicast-group stability —
// the "frequent and accurate multicast group updates" regime the
// paper motivates.
func RunAccuracyVsChurn(ctx context.Context, cfg Config, churnRates []float64) ([]ChurnRow, error) {
	if len(churnRates) == 0 {
		churnRates = []float64{0, 0.02, 0.05, 0.1}
	}
	rows := make([]ChurnRow, 0, len(churnRates))
	for _, rate := range churnRates {
		c := cfg
		c.ChurnPerInterval = rate
		tr, err := runTrace(ctx, c)
		if err != nil {
			return rows, fmt.Errorf("churn=%v: %w", rate, err)
		}
		acc, err := tr.RadioAccuracy()
		if err != nil {
			return rows, err
		}
		row := ChurnRow{ChurnPerInterval: rate, RadioAccuracy: acc, ChurnedUsers: tr.ChurnedUsers}
		if len(tr.StabilityByRegroup) > 0 {
			var sum float64
			for _, s := range tr.StabilityByRegroup {
				sum += s
			}
			row.MeanStability = sum / float64(len(tr.StabilityByRegroup))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SeedStats summarizes a metric across independent seeds.
type SeedStats struct {
	Mean, Std, Min, Max float64
	Seeds               int
}

// RunRadioAccuracyMultiSeed runs the scenario across seeds and
// aggregates the radio prediction accuracy — the statistically honest
// version of the paper's single 95.04 % figure.
func RunRadioAccuracyMultiSeed(ctx context.Context, cfg Config, seeds []int64) (*SeedStats, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	var o stats.Online
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		tr, err := runTrace(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		acc, err := tr.RadioAccuracy()
		if err != nil {
			return nil, fmt.Errorf("seed %d accuracy: %w", seed, err)
		}
		o.Add(acc)
		if acc < mn {
			mn = acc
		}
		if acc > mx {
			mx = acc
		}
	}
	return &SeedStats{Mean: o.Mean(), Std: o.Std(), Min: mn, Max: mx, Seeds: o.N()}, nil
}

// ReservationRow is one arm of experiment E7: how a reservation
// policy fares on the measured radio-demand series.
type ReservationRow struct {
	Policy        string
	Waste         float64
	Deficit       float64
	ViolationRate float64
	Utilization   float64
}

// RunReservation runs experiment E7 — the paper's motivating use
// case: reserve radio resources per interval from the scheme's
// prediction and compare against static peak provisioning and a
// history-only adaptive policy.
func RunReservation(ctx context.Context, cfg Config, margin float64, opts ...SessionOption) ([]ReservationRow, error) {
	tr, err := runTrace(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	// Per-group series replayed per policy, aggregated over groups.
	groups := map[int][][2]float64{}
	for _, r := range tr.Records {
		groups[r.GroupID] = append(groups[r.GroupID], [2]float64{r.PredictedRBs, r.ActualRBs})
	}
	mkPolicies := func() ([]reserve.Policy, error) {
		ph, perr := reserve.NewPredictiveHeadroom(margin)
		if perr != nil {
			return nil, perr
		}
		eh, eerr := reserve.NewEWMAHeadroom(0.4, margin)
		if eerr != nil {
			return nil, eerr
		}
		return []reserve.Policy{ph, &reserve.PeakProvisioning{Safety: 1 + margin}, eh}, nil
	}
	probe, err := mkPolicies()
	if err != nil {
		return nil, err
	}
	rows := make([]ReservationRow, len(probe))
	for pi := range probe {
		agg := ReservationRow{Policy: probe[pi].Name()}
		var intervals int
		var violSum float64
		var reservedActualRatio float64
		var groupsScored int
		for _, series := range groups {
			ps, perr := mkPolicies()
			if perr != nil {
				return nil, perr
			}
			pred := make([]float64, len(series))
			actual := make([]float64, len(series))
			for i, pa := range series {
				pred[i], actual[i] = pa[0], pa[1]
			}
			rep, rerr := reserve.Evaluate(ps[pi], pred, actual)
			if rerr != nil {
				return nil, rerr
			}
			agg.Waste += rep.Waste
			agg.Deficit += rep.Deficit
			violSum += rep.ViolationRate * float64(rep.Intervals)
			intervals += rep.Intervals
			reservedActualRatio += rep.Utilization
			groupsScored++
		}
		if intervals == 0 || groupsScored == 0 {
			return nil, fmt.Errorf("no reservation intervals scored: %w", ErrExperiment)
		}
		agg.ViolationRate = violSum / float64(intervals)
		agg.Utilization = reservedActualRatio / float64(groupsScored)
		rows[pi] = agg
	}
	return rows, nil
}

// WasteRow is one point of experiment E8: the over-provisioning
// caused by swiping under segment prefetching, at one prefetch depth.
type WasteRow struct {
	PrefetchDepth int
	// WasteShare is wasted bits / delivered bits over the run.
	WasteShare float64
	// AggregateRatio is Σpredicted waste / Σactual waste (1 = perfect
	// volume forecast).
	AggregateRatio float64
	// RadioAccuracy of the run (waste feeds the traffic forecast).
	RadioAccuracy float64
}

// RunWasteVsPrefetch runs experiment E8: sweep the prefetch depth and
// measure how much multicast traffic the group's swiping behavior
// wastes — the paper's motivating over-provisioning effect — and how
// well the swipe-CDF-based forecast captures it.
func RunWasteVsPrefetch(ctx context.Context, cfg Config, depths []int) ([]WasteRow, error) {
	if len(depths) == 0 {
		depths = []int{0, 1, 2, 4, 8}
	}
	rows := make([]WasteRow, 0, len(depths))
	for _, depth := range depths {
		c := cfg
		c.PrefetchDepth = depth
		if depth == 0 {
			c.PrefetchDepth = -1 // the config treats 0 as "use default"
		}
		tr, err := runTrace(ctx, c)
		if err != nil {
			return rows, fmt.Errorf("depth=%d: %w", depth, err)
		}
		var wasteSum, bitsSum, predWasteSum float64
		for _, r := range tr.Records {
			wasteSum += r.ActualWasteBits
			bitsSum += r.ActualBits
			predWasteSum += r.PredictedWasteBits
		}
		acc, err := tr.RadioAccuracy()
		if err != nil {
			return rows, err
		}
		row := WasteRow{PrefetchDepth: depth, RadioAccuracy: acc}
		if bitsSum > 0 {
			row.WasteShare = wasteSum / bitsSum
		}
		if wasteSum > 0 {
			row.AggregateRatio = predWasteSum / wasteSum
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// QoEBudgetRow is one point of experiment E9: experienced quality at
// one shared radio budget.
type QoEBudgetRow struct {
	// RBBudget is the shared per-interval budget (0 = unlimited).
	RBBudget int
	// MeanQoE is the mean per-(group, interval) QoE score.
	MeanQoE float64
	// MeanBitrateBps actually streamed.
	MeanBitrateBps float64
	// UnderGrantRate is the fraction of records whose admission grant
	// fell below the measured demand.
	UnderGrantRate float64
}

// RunQoEVsBudget runs experiment E9: sweep the shared RB budget and
// measure how admission cuts propagate into experienced quality —
// the end-to-end payoff of accurate demand prediction.
func RunQoEVsBudget(ctx context.Context, cfg Config, budgets []int) ([]QoEBudgetRow, error) {
	if len(budgets) == 0 {
		budgets = []int{0, 12, 8, 5, 3}
	}
	model := qoe.DefaultModel()
	rows := make([]QoEBudgetRow, 0, len(budgets))
	for _, budget := range budgets {
		c := cfg
		c.RBBudget = budget
		tr, err := runTrace(ctx, c)
		if err != nil {
			return rows, fmt.Errorf("budget=%d: %w", budget, err)
		}
		if len(tr.Records) == 0 {
			return rows, fmt.Errorf("budget=%d produced no records: %w", budget, ErrExperiment)
		}
		row := QoEBudgetRow{RBBudget: budget}
		prevRate := map[int]float64{}
		var qoeSum, rateSum float64
		var underGrants int
		for _, r := range tr.Records {
			q, qerr := model.ScoreInterval(qoe.GroupInterval{
				BitrateBps:     r.BitrateBps,
				PrevBitrateBps: prevRate[r.GroupID],
				EngagementS:    r.ActualEngagementS,
			})
			if qerr != nil {
				return rows, qerr
			}
			qoeSum += q
			rateSum += r.BitrateBps
			prevRate[r.GroupID] = r.BitrateBps
			if budget > 0 && float64(r.AllocatedRBs) < r.ActualRBs {
				underGrants++
			}
		}
		n := float64(len(tr.Records))
		row.MeanQoE = qoeSum / n
		row.MeanBitrateBps = rateSum / n
		row.UnderGrantRate = float64(underGrants) / n
		rows = append(rows, row)
	}
	return rows, nil
}

// PredictorRow is one arm of experiment E4: the DT scheme against
// history-only series predictors on the same measured demand series.
type PredictorRow struct {
	Name     string
	Accuracy float64
}

// RunPredictorBaselines runs experiment E4. The DT scheme's accuracy
// comes from the trace itself; each baseline forecasts interval t's
// actual demand from the measured series up to t−1.
func RunPredictorBaselines(ctx context.Context, cfg Config, opts ...SessionOption) ([]PredictorRow, error) {
	tr, err := runTrace(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	dtAcc, err := tr.RadioAccuracy()
	if err != nil {
		return nil, err
	}
	rows := []PredictorRow{{Name: "dt-scheme", Accuracy: dtAcc}}

	// Collect per-group actual series.
	groups := map[int][]float64{}
	for _, r := range tr.Records {
		groups[r.GroupID] = append(groups[r.GroupID], r.ActualRBs)
	}

	mkBaselines := func() ([]predict.SeriesPredictor, error) {
		ma, merr := predict.NewMovingAverage(3)
		if merr != nil {
			return nil, merr
		}
		ew, eerr := predict.NewEWMA(0.4)
		if eerr != nil {
			return nil, eerr
		}
		return []predict.SeriesPredictor{&predict.LastValue{}, ma, ew}, nil
	}
	probe, err := mkBaselines()
	if err != nil {
		return nil, err
	}
	for bi := range probe {
		var preds, actuals []float64
		for _, series := range groups {
			bs, berr := mkBaselines()
			if berr != nil {
				return nil, berr
			}
			b := bs[bi]
			for _, x := range series {
				if p, ok := b.Predict(); ok {
					preds = append(preds, p)
					actuals = append(actuals, x)
				}
				b.Observe(x)
			}
		}
		if len(preds) == 0 {
			return nil, fmt.Errorf("baseline %q produced no forecasts: %w", probe[bi].Name(), ErrExperiment)
		}
		acc, aerr := stats.PredictionAccuracy(preds, actuals)
		if aerr != nil {
			return nil, aerr
		}
		rows = append(rows, PredictorRow{Name: probe[bi].Name(), Accuracy: acc})
	}
	return rows, nil
}
