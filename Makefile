GO ?= go

.PHONY: build test vet bench bench-baseline bench-check bench-check-allocs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Quick benchmark pass (single count, with allocation stats).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full measured run: count 5, results recorded to BENCH_baseline.json
# (override via BENCH_COUNT / BENCH_TIME / BENCH_OUT).
bench-baseline:
	./scripts/bench.sh

# Pairs gated against each other within the same run
# (hardware-independent): metrics may cost at most 2% wall and no
# extra allocations over the bare Step, and the binary trace sink must
# stay at least 5x faster (and leaner in allocations) than the ndjson
# sink on the same record stream.
OVERHEAD_GATE = --overhead-gate 'BenchmarkStepInstrumented/on:BenchmarkStepInstrumented/off:1.02' \
	--overhead-gate 'BenchmarkTraceSink/bin:BenchmarkTraceSink/ndjson:0.2'

# Regression gate: benchmark the working tree and diff against the
# committed baseline; fails on >1.3x wall or >1.5x allocs. Tune the
# sampling with BENCH_CHECK_COUNT (default 3).
bench-check:
	BENCH_OUT=/tmp/bench_current.json BENCH_COUNT=$${BENCH_CHECK_COUNT:-3} ./scripts/bench.sh
	python3 scripts/bench_compare.py $(OVERHEAD_GATE) BENCH_baseline.json /tmp/bench_current.json

# Hardware-safe regression gate for CI: allocation counts are
# deterministic per binary, so this gates allocs only (wall time is
# printed but never fails) and samples each benchmark once with a
# single iteration — fast enough for every push.
bench-check-allocs:
	BENCH_OUT=/tmp/bench_current.json BENCH_COUNT=1 BENCH_TIME=1x ./scripts/bench.sh
	python3 scripts/bench_compare.py --allocs-only $(OVERHEAD_GATE) BENCH_baseline.json /tmp/bench_current.json
