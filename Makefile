GO ?= go

.PHONY: build test vet bench bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Quick benchmark pass (single count, with allocation stats).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full measured run: count 5, results recorded to BENCH_baseline.json
# (override via BENCH_COUNT / BENCH_TIME / BENCH_OUT).
bench-baseline:
	./scripts/bench.sh
