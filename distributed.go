// This file is the distributed Session: the sharded cluster scenario
// executed by a supervisor driving worker processes (or in-process
// worker goroutines) through internal/coord. The session surface is
// identical to ClusterSession — Step, sinks, observers, Checkpoint /
// ResumeDistributed — and the merged trace is bit-identical to
// OpenCluster at the same seed for any worker count, because workers
// exchange handover twins at every boundary in global user-id order.
//
// The distributed layer adds a failure model on top: workers
// heartbeat between frames, every boundary acks a checkpoint, and a
// worker that dies (crash, SIGKILL, torn frame, missed heartbeat) is
// restarted with exponential backoff from its last acked checkpoint
// and replays the lost boundary. The restart budget and the adoption
// fallback are session options below.
package dtmsvs

import (
	"context"
	"fmt"
	"io"
	"time"

	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/cluster"
	"dtmsvs/internal/coord"
	"dtmsvs/internal/faultinject"
)

// ErrWorkerFailed marks a distributed run that lost a worker more
// times than the restart budget allows, with adoption disabled.
// Match with errors.Is.
var ErrWorkerFailed = coord.ErrWorkerFailed

// ProcFault schedules one deterministic process fault on a worker:
// an abrupt kill, a hang (heartbeats and frames stall), or a
// garbage frame (torn bytes on the wire). Used with WithProcFaults
// for chaos testing the supervisor's recovery path.
type ProcFault = faultinject.ProcFault

// ProcFaultKind selects what a ProcFault does to its worker.
type ProcFaultKind = faultinject.ProcFaultKind

const (
	// ProcKill terminates the worker abruptly (SIGKILL for process
	// workers, torn pipes for in-process ones).
	ProcKill = faultinject.ProcKill
	// ProcHang stalls the worker — no heartbeats, no frames — until
	// the supervisor's liveness deadline declares it dead.
	ProcHang = faultinject.ProcHang
	// ProcGarbage makes the worker emit a corrupt frame.
	ProcGarbage = faultinject.ProcGarbage
)

// ProcFaultPlan derives one deterministic process fault from the run
// seed: same seed, same fault. The worker, interval and kind are
// drawn from a stream disjoint from every simulation stream, so a
// faulted run replays exactly.
func ProcFaultPlan(seed int64, workers, intervals int) ProcFault {
	return faultinject.ProcPlan(seed, workers, intervals)
}

// WorkerSelfExec marks a process as a re-exec'ed distributed worker.
// A binary whose main calls MaybeWorker first thing becomes the
// worker when spawned with this environment variable set; see
// WithWorkerProcesses.
const WorkerSelfExec = coord.WorkerEnv

// MaybeWorker turns the current process into a distributed worker
// over stdin/stdout if WorkerSelfExec is set in the environment,
// never returning in that case. Call it at the top of main in any
// binary that opens distributed sessions with WithWorkerProcesses().
func MaybeWorker() { coord.MaybeWorker() }

// RunWorker speaks the worker side of the supervisor protocol over
// the given byte channels until shutdown or a fatal error. It is the
// whole body of a dedicated worker binary (cmd/dtworker); binaries
// that are sometimes workers use MaybeWorker instead.
func RunWorker(r io.Reader, w io.Writer) error { return coord.RunWorker(r, w) }

// WithWorkerProcesses runs each worker as a child process speaking
// binary frames over stdin/stdout, so worker death is real process
// death (SIGKILL recoverable by the supervisor). With no arguments
// the session re-execs the current binary, whose main must call
// MaybeWorker; with arguments, argv names a dedicated worker binary
// such as cmd/dtworker. Without this option workers run as
// goroutines inside the session's own process — same protocol, no
// processes.
func WithWorkerProcesses(argv ...string) SessionOption {
	return func(o *sessionOptions) {
		if len(argv) == 0 {
			o.workerTransport = coord.SelfTransport()
			return
		}
		o.workerTransport = coord.Process(argv, WorkerSelfExec+"=1")
	}
}

// WithWorkerRestartPolicy bounds crash recovery: each worker may be
// restarted up to maxRestarts times (negative forbids restarts
// entirely), backing off from backoff and doubling per consecutive
// restart. The default is 3 restarts from 25ms.
func WithWorkerRestartPolicy(maxRestarts int, backoff time.Duration) SessionOption {
	return func(o *sessionOptions) {
		if maxRestarts == 0 {
			maxRestarts = -1
		}
		o.workerRestarts = maxRestarts
		o.workerBackoff = backoff
	}
}

// WithWorkerAdoption degrades gracefully instead of failing: a
// worker that exhausts its restart budget has its cells adopted by
// the supervisor and simulated in-process from the last acked
// checkpoint. The trace stays bit-identical; only the process
// topology degrades.
func WithWorkerAdoption() SessionOption {
	return func(o *sessionOptions) { o.workerAdopt = true }
}

// WithWorkerHeartbeat tunes liveness detection: workers beat every
// period, and missing missBudget consecutive beats declares a worker
// dead. The default is 100ms × 10.
func WithWorkerHeartbeat(period time.Duration, missBudget int) SessionOption {
	return func(o *sessionOptions) {
		o.workerHeartbeat = period
		o.workerHeartbeatMiss = missBudget
	}
}

// WithWorkerStepTimeout bounds one distributed boundary (all
// workers, recoveries included). The default is 10 minutes.
func WithWorkerStepTimeout(d time.Duration) SessionOption {
	return func(o *sessionOptions) { o.workerStepTimeout = d }
}

// WithProcFaults schedules deterministic process faults on the
// distributed run — the chaos-test hook. hang bounds how long a
// ProcHang fault stalls its worker (0 = 30s).
func WithProcFaults(hang time.Duration, faults ...ProcFault) SessionOption {
	return func(o *sessionOptions) {
		o.procFaults = append(o.procFaults, faults...)
		o.workerHang = hang
	}
}

// distStepper adapts the coord supervisor to the session state
// machine.
type distStepper struct {
	sup     *coord.Supervisor
	cfg     ClusterConfig // defaulted
	workers int
	retain  bool
	records []cluster.Record
	trace   *ClusterTrace // stamped at finish
}

func (a *distStepper) warmupIntervals() int { return a.cfg.Sim.WarmupIntervals }
func (a *distStepper) intervals() int       { return a.cfg.Sim.NumIntervals }
func (a *distStepper) handovers() int       { return a.sup.Handovers() }
func (a *distStepper) churned() int         { return a.sup.Churned() }
func (a *distStepper) cellsDown() int       { return 0 }
func (a *distStepper) evacuated() int       { return 0 }

func (a *distStepper) warmupStep(ctx context.Context) error { return a.sup.WarmupStep(ctx) }

func (a *distStepper) trainAndBuild(ctx context.Context) error { return a.sup.TrainAndBuild(ctx) }

func (a *distStepper) stepInterval(ctx context.Context, interval int) ([]TraceRecord, error) {
	recs, err := a.sup.StepInterval(ctx, interval)
	if err != nil {
		return nil, err
	}
	if a.retain {
		a.records = append(a.records, recs...)
	}
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		out[i] = TraceRecord{BS: r.BS, GroupIntervalRecord: r.GroupIntervalRecord}
	}
	return out, nil
}

// finish assembles the merged ClusterTrace from the workers' final
// stats, shaped exactly like the single-process engine's Finish.
func (a *distStepper) finish() {
	tr := &ClusterTrace{Records: a.records, Handovers: a.sup.Handovers()}
	cells, hits, misses, err := a.sup.FinalStats(context.Background())
	if err == nil {
		tr.Cells = cells
		for _, c := range cells {
			tr.ChurnedUsers += c.ChurnedUsers
		}
		if total := hits + misses; total > 0 {
			tr.CacheHitRate = float64(hits) / float64(total)
		}
	}
	a.trace = tr
}

func (a *distStepper) close() { _ = a.sup.Close() }

// mount is a no-op: the supervisor takes its registry at
// construction (OpenDistributed wires it before the first step).
func (a *distStepper) mount(reg *MetricsRegistry) {}

func (a *distStepper) kind() string { return "coord" }

func (a *distStepper) fingerprint() (uint64, error) {
	return checkpoint.Fingerprint(struct {
		Cluster ClusterConfig `json:"cluster"`
		Workers int           `json:"workers"`
	}{a.cfg, a.workers})
}

// writeState captures the distributed boundary: one checkpoint blob
// per worker, fetched fresh over the wire at this boundary.
func (a *distStepper) writeState(cw *checkpoint.Writer) error {
	blobs, err := a.sup.CheckpointBlobs(context.Background())
	if err != nil {
		return err
	}
	if err := cw.Section("coord", func(e *checkpoint.Enc) {
		e.Int(a.workers)
	}); err != nil {
		return err
	}
	for i, b := range blobs {
		if err := cw.Section(fmt.Sprintf("worker%d", i), func(e *checkpoint.Enc) {
			e.Blob(b)
		}); err != nil {
			return err
		}
	}
	return nil
}

// readState seeds every worker with its blob; the workers themselves
// validate kind and fingerprint when they restore.
func (a *distStepper) readState(cr *checkpoint.Reader) error {
	d, err := cr.Section("coord")
	if err != nil {
		return err
	}
	workers := d.Int()
	if err := d.Close(); err != nil {
		return err
	}
	if workers != a.workers {
		return fmt.Errorf("checkpoint partitions %d workers, session runs %d: %w",
			workers, a.workers, ErrCheckpointConfig)
	}
	blobs := make([][]byte, a.workers)
	for i := range blobs {
		d, err := cr.Section(fmt.Sprintf("worker%d", i))
		if err != nil {
			return err
		}
		blobs[i] = append([]byte(nil), d.Blob()...)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return a.sup.SetResume(blobs)
}

// DistSession is the distributed cluster Session. It satisfies the
// Session interface and exposes the merged ClusterTrace plus the
// supervisor's recovery counters.
type DistSession struct {
	session
	st *distStepper
}

// Trace returns the merged cluster trace: the full record set once
// Done (or run-level and per-cell statistics only, when a sink owned
// the records). Before completion it returns a snapshot of the
// completed intervals without per-cell statistics.
func (s *DistSession) Trace() *ClusterTrace {
	if s.st.trace != nil {
		return s.st.trace
	}
	return &ClusterTrace{
		Records:   append([]cluster.Record(nil), s.st.records...),
		Handovers: s.st.sup.Handovers(),
	}
}

// WorkerRestarts reports how many worker restarts recovery has
// performed so far.
func (s *DistSession) WorkerRestarts() int { return s.st.sup.Restarts() }

// WorkerAdoptions reports how many workers the supervisor has
// adopted in-process after exhausted restart budgets.
func (s *DistSession) WorkerAdoptions() int { return s.st.sup.Adoptions() }

// HeartbeatMisses reports how many worker losses were declared by
// the heartbeat deadline.
func (s *DistSession) HeartbeatMisses() int { return s.st.sup.HeartbeatMisses() }

// OpenDistributed validates cfg and returns a supervised distributed
// session over the given number of workers. No worker is spawned and
// no simulation work happens until the first Step. Workers default
// to in-process goroutines; see WithWorkerProcesses for real
// processes.
func OpenDistributed(cfg ClusterConfig, workers int, opts ...SessionOption) (*DistSession, error) {
	o := buildOptions(opts)
	sup, err := coord.New(coord.Config{
		Cluster:       cfg,
		Workers:       workers,
		Transport:     o.workerTransport,
		Heartbeat:     o.workerHeartbeat,
		HeartbeatMiss: o.workerHeartbeatMiss,
		StepTimeout:   o.workerStepTimeout,
		MaxRestarts:   o.workerRestarts,
		Backoff:       o.workerBackoff,
		Adopt:         o.workerAdopt,
		Faults:        o.procFaults,
		HangDuration:  o.workerHang,
		Metrics:       o.metrics,
	})
	if err != nil {
		return nil, err
	}
	if cs, ok := o.sink.(*CSVSink); ok {
		cs.SetSchema(TraceRecord{BS: 0})
	}
	st := &distStepper{
		sup:     sup,
		cfg:     cfg.Defaulted(),
		workers: workers,
		retain:  o.sink == nil,
	}
	return &DistSession{session: session{eng: st, opts: o, met: newSessionMetrics(o.metrics)}, st: st}, nil
}

// ResumeDistributed opens a distributed session from cfg and
// restores a checkpoint previously written by
// (*DistSession).Checkpoint under the identical configuration and
// worker count. The resumed run's trace suffix is bit-identical to
// the uninterrupted run — the same guarantee crash recovery relies
// on at every boundary.
func ResumeDistributed(cfg ClusterConfig, workers int, r io.Reader, opts ...SessionOption) (*DistSession, error) {
	s, err := OpenDistributed(cfg, workers, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.resume(r); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
