package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/obs"
	"dtmsvs/internal/vecmath"
)

// metricsOpeners enumerates both engines for the metrics suites.
func metricsOpeners(seed int64, workers int) []struct {
	name string
	open func(opts ...SessionOption) (Session, error)
} {
	cfg := sessionTestConfig(seed, workers)
	return []struct {
		name string
		open func(opts ...SessionOption) (Session, error)
	}{
		{"sim", func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) }},
		{"cluster-s1", func(opts ...SessionOption) (Session, error) {
			return OpenCluster(ClusterConfig{Sim: cfg, Shards: 1}, opts...)
		}},
		{"cluster", func(opts ...SessionOption) (Session, error) {
			return OpenCluster(ClusterConfig{Sim: cfg, Shards: cfg.NumBS}, opts...)
		}},
	}
}

// TestTraceIdenticalWithMetrics is the observability no-perturbation
// contract: mounting a metrics registry changes nothing about the
// trace. Both engines, serial and parallel, dispatched and generic
// kernels produce byte-identical NDJSON streams with metrics on and
// off.
func TestTraceIdenticalWithMetrics(t *testing.T) {
	defer vecmath.ForceGeneric(false)
	for _, generic := range []bool{false, true} {
		vecmath.ForceGeneric(generic)
		kernels := "dispatched"
		if generic {
			kernels = "generic"
		}
		for _, workers := range []int{1, 4, 8} {
			for _, eng := range metricsOpeners(31, workers) {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", eng.name, kernels, workers), func(t *testing.T) {
					plain, _ := ndjsonRun(t, eng.open)
					reg := NewMetricsRegistry()
					instrumented, _ := ndjsonRun(t, func(opts ...SessionOption) (Session, error) {
						return eng.open(append(opts, WithMetrics(reg))...)
					})
					if instrumented != plain {
						t.Fatal("trace diverged with metrics mounted")
					}
					// And the registry actually saw the run.
					if got := counterValue(t, reg, "dtmsvs_steps_total"); got == 0 {
						t.Fatal("instrumented run recorded no steps")
					}
				})
			}
		}
	}
}

// counterValue sums a counter family across all label sets.
func counterValue(t *testing.T, reg *MetricsRegistry, name string) float64 {
	t.Helper()
	fam := reg.Snapshot().Family(name)
	if fam == nil {
		return 0
	}
	var total float64
	for _, s := range fam.Series {
		total += s.Value
	}
	return total
}

// TestSessionMetricsSnapshot drives one instrumented run per engine
// end to end — including a checkpoint — and checks the snapshot's
// structural claims: step and stage counts match the run shape, the
// cluster engine labels per-cell series, and checkpoint metrics
// report the encoded size.
func TestSessionMetricsSnapshot(t *testing.T) {
	for _, eng := range metricsOpeners(33, 2) {
		t.Run(eng.name, func(t *testing.T) {
			reg := NewMetricsRegistry()
			s, err := eng.open(WithMetrics(reg), WithSink(DiscardSink{}))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			steps := 0
			for !s.Done() {
				if _, serr := s.Step(context.Background()); serr != nil {
					t.Fatal(serr)
				}
				steps++
			}
			var ckpt bytes.Buffer
			if err := s.Checkpoint(&ckpt); err != nil {
				t.Fatal(err)
			}

			snap := reg.Snapshot()
			if got := counterValue(t, reg, "dtmsvs_steps_total"); got != float64(steps) {
				t.Fatalf("steps_total = %v, want %d", got, steps)
			}
			stages := snap.Family(obs.StageFamily)
			if stages == nil {
				t.Fatal("no stage family in snapshot")
			}
			byStage := map[string]uint64{}
			cells := map[string]bool{}
			for _, sr := range stages.Series {
				byStage[sr.Label("stage")] += sr.Count
				if c := sr.Label("cell"); c != "" {
					cells[c] = true
				}
			}
			if byStage["step"] != uint64(steps) {
				t.Fatalf("step stage count = %d, want %d", byStage["step"], steps)
			}
			for _, stage := range []string{"prologue/warmup", "prologue/train", "prologue/group_build",
				"interval/tick_collect", "interval/schedule", "interval/stream", "interval/sink_write",
				"interval/sink_flush"} {
				if byStage[stage] == 0 {
					t.Fatalf("stage %q never observed (have %v)", stage, byStage)
				}
			}
			if byStage["checkpoint/encode"] != 1 {
				t.Fatalf("checkpoint/encode count = %d, want 1", byStage["checkpoint/encode"])
			}
			if eng.name != "sim" {
				if len(cells) != 2 {
					t.Fatalf("cluster run labelled %d cells, want 2", len(cells))
				}
				if snap.Family("dtmsvs_handovers_total") == nil {
					t.Fatal("cluster run missing handover counter")
				}
			} else if len(cells) != 0 {
				t.Fatalf("monolithic run has cell labels %v", cells)
			}
			if got := counterValue(t, reg, "dtmsvs_checkpoints_total"); got != 1 {
				t.Fatalf("checkpoints_total = %v, want 1", got)
			}
			sizeFam := snap.Family("dtmsvs_checkpoint_bytes")
			if sizeFam == nil || len(sizeFam.Series) != 1 || sizeFam.Series[0].Value != float64(ckpt.Len()) {
				t.Fatalf("checkpoint_bytes disagrees with encoded size %d: %+v", ckpt.Len(), sizeFam)
			}
			// Engine component families exist and carry signal.
			for _, name := range []string{"dtmsvs_engine_intervals_total",
				"dtmsvs_edge_cache_hits_total", "dtmsvs_edge_cache_misses_total"} {
				if counterValue(t, reg, name) == 0 {
					t.Fatalf("family %s absent or zero after a full run", name)
				}
			}
		})
	}
}

// TestSessionMetricsSinkRetries pins the PR 6 fault path's counters:
// absorbed transient faults show up as retry counts with no sink
// error, and an exhausted retry budget increments the error counter.
func TestSessionMetricsSinkRetries(t *testing.T) {
	cfg := sessionTestConfig(25, 2)

	reg := NewMetricsRegistry()
	sink := faultinject.Wrap[TraceRecord](NewNDJSONSink(&bytes.Buffer{}),
		faultinject.Fault{Mode: faultinject.FailWrite, N: 2, Transient: true},
		faultinject.Fault{Mode: faultinject.FailFlush, N: 1, Transient: true})
	s, serr := runWithSink(t, cfg, sink, WithSinkRetry(3, 0), WithMetrics(reg))
	if serr != nil {
		t.Fatalf("transient faults should be retried: %v", serr)
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if got := counterValue(t, reg, "dtmsvs_sink_write_retries_total"); got != 1 {
		t.Fatalf("write retries = %v, want 1", got)
	}
	if got := counterValue(t, reg, "dtmsvs_sink_flush_retries_total"); got != 1 {
		t.Fatalf("flush retries = %v, want 1", got)
	}
	if got := counterValue(t, reg, "dtmsvs_sink_errors_total"); got != 0 {
		t.Fatalf("sink errors = %v, want 0", got)
	}

	reg2 := NewMetricsRegistry()
	sink2 := faultinject.Wrap[TraceRecord](NewNDJSONSink(&bytes.Buffer{}),
		faultinject.Fault{Mode: faultinject.FailWrite, N: 2, Transient: true})
	s2, serr2 := runWithSink(t, cfg, sink2, WithSinkRetry(1, 0), WithMetrics(reg2))
	if !errors.Is(serr2, ErrSink) {
		t.Fatalf("retries disabled: want ErrSink, got %v", serr2)
	}
	if cerr := s2.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if got := counterValue(t, reg2, "dtmsvs_sink_errors_total"); got != 1 {
		t.Fatalf("sink errors = %v, want 1", got)
	}
}

// TestObserverPanicSurfaced: a panicking observer or progress callback
// surfaces as an ErrObserver-wrapped error from that Step without
// corrupting the stepper — the interval's records are already flushed,
// the report is returned intact, and the session continues to a trace
// bit-identical to a clean run.
func TestObserverPanicSurfaced(t *testing.T) {
	cfg := sessionTestConfig(27, 2)
	clean, _ := ndjsonRun(t, func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) })

	for _, tc := range []struct {
		name string
		opt  func(panicAt int) SessionOption
	}{
		{"observer", func(panicAt int) SessionOption {
			return WithObserver(func(rep IntervalReport) {
				if rep.Interval == panicAt {
					panic("observer boom")
				}
			})
		}},
		{"progress", func(panicAt int) SessionOption {
			return WithProgress(func(done, total int) {
				if done == panicAt+1 {
					panic("progress boom")
				}
			})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const panicAt = 1
			var buf bytes.Buffer
			s, err := Open(cfg, WithSink(NewNDJSONSink(&buf)), tc.opt(panicAt))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sawPanic := false
			for !s.Done() {
				rep, serr := s.Step(context.Background())
				if serr != nil {
					if !errors.Is(serr, ErrObserver) {
						t.Fatalf("want ErrObserver, got %v", serr)
					}
					if rep.Interval != panicAt {
						t.Fatalf("panic surfaced at interval %d, want %d", rep.Interval, panicAt)
					}
					sawPanic = true
				}
			}
			if !sawPanic {
				t.Fatal("panicking callback never surfaced an error")
			}
			if s.Interval() != cfg.NumIntervals {
				t.Fatalf("session stopped at interval %d", s.Interval())
			}
			if buf.String() != clean {
				t.Fatal("trace diverged after observer panic")
			}
		})
	}
}

// TestStepDurationsReported: every report carries a positive
// StepDuration; PrologueDuration is positive exactly on the first
// report (where warm-up/training ran) and zero afterwards — including
// the single-interval degenerate run, where the only report carries
// both.
func TestStepDurationsReported(t *testing.T) {
	for _, intervals := range []int{1, 4} {
		t.Run(fmt.Sprintf("intervals=%d", intervals), func(t *testing.T) {
			cfg := sessionTestConfig(29, 2)
			cfg.NumIntervals = intervals
			var progress [][2]int
			s, err := Open(cfg, WithSink(DiscardSink{}),
				WithProgress(func(done, total int) { progress = append(progress, [2]int{done, total}) }))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; !s.Done(); i++ {
				rep, serr := s.Step(context.Background())
				if serr != nil {
					t.Fatal(serr)
				}
				if rep.StepDuration <= 0 {
					t.Fatalf("interval %d: StepDuration = %v", i, rep.StepDuration)
				}
				if i == 0 {
					if rep.PrologueDuration <= 0 {
						t.Fatalf("first report PrologueDuration = %v", rep.PrologueDuration)
					}
					if rep.PrologueDuration > rep.StepDuration {
						t.Fatalf("prologue %v exceeds its own step %v", rep.PrologueDuration, rep.StepDuration)
					}
				} else if rep.PrologueDuration != 0 {
					t.Fatalf("interval %d: PrologueDuration = %v, want 0", i, rep.PrologueDuration)
				}
			}
			if len(progress) != intervals || progress[len(progress)-1] != [2]int{intervals, intervals} {
				t.Fatalf("progress %v for %d intervals", progress, intervals)
			}
		})
	}
}

// TestStepMetricsAllocOverhead is the 0-alloc gate for the
// instrumentation itself: two sessions stepped in lockstep over the
// same seed — one bare, one with a mounted registry — allocate
// identically in steady state. All metric updates are atomic
// increments and lock-free time observations, so the registry must
// not add a single allocation to the Step path.
func TestStepMetricsAllocOverhead(t *testing.T) {
	cfg := sessionTestConfig(35, 1)
	cfg.NumIntervals = 90
	sOff, err := Open(cfg, WithSink(DiscardSink{}))
	if err != nil {
		t.Fatal(err)
	}
	defer sOff.Close()
	sOn, err := Open(cfg, WithSink(DiscardSink{}), WithMetrics(NewMetricsRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer sOn.Close()
	ctx := context.Background()
	step := func(s Session) func() {
		return func() {
			if _, serr := s.Step(ctx); serr != nil {
				t.Fatal(serr)
			}
		}
	}
	// Prologue plus settling intervals outside the measurement; both
	// sessions consume the same interval numbers below, so their
	// per-interval work (regroup cadence, churn, cache churn) matches
	// exactly.
	for i := 0; i < 3; i++ {
		step(sOff)()
		step(sOn)()
	}
	// A GC landing inside one measurement window and not the other
	// shifts the count by an alloc or two (pool refills), so the gate
	// takes the best of several lockstep rounds: a real per-step cost
	// of the instrumentation would survive every round.
	const runs, rounds = 12, 3
	best := math.Inf(1)
	for r := 0; r < rounds; r++ {
		allocsOff := testing.AllocsPerRun(runs, step(sOff))
		allocsOn := testing.AllocsPerRun(runs, step(sOn))
		if d := allocsOn - allocsOff; d < best {
			best = d
		}
	}
	if best > 0 {
		t.Fatalf("mounted registry added %v allocation(s) per steady-state Step in every round", best)
	}
}

// TestAccuracyTrackerEmpty: a tracker that observed nothing fails
// loudly from every accuracy accessor instead of returning 0 — the
// same contract as the batch helpers on an empty trace.
func TestAccuracyTrackerEmpty(t *testing.T) {
	var acc AccuracyTracker
	if _, err := acc.RadioAccuracy(); err == nil {
		t.Fatal("RadioAccuracy on empty tracker: want error")
	}
	if _, err := acc.ComputeAccuracy(); err == nil {
		t.Fatal("ComputeAccuracy on empty tracker: want error")
	}
	if _, err := acc.WasteAccuracy(); err == nil {
		t.Fatal("WasteAccuracy on empty tracker: want error")
	}
	// Observing a report with no records must not unlock the accessors.
	acc.Observe(IntervalReport{Interval: 0})
	if _, err := acc.RadioAccuracy(); err == nil {
		t.Fatal("RadioAccuracy after empty report: want error")
	}
}
