package dtmsvs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// clusterTestConfig is a small sharded scenario exercising churn,
// regrouping, warm-up handover and every parallel stage.
func clusterTestConfig(seed int64, workers, shards int) ClusterConfig {
	return ClusterConfig{
		Sim: Config{
			Seed:             seed,
			NumUsers:         32,
			NumBS:            4,
			NumIntervals:     4,
			TicksPerInterval: 6,
			WarmupIntervals:  1,
			RegroupEvery:     2,
			CompressorEpochs: 2,
			AgentEpisodes:    10,
			ChurnPerInterval: 0.1,
			PrefetchDepth:    -1,
			Parallelism:      workers,
		},
		Shards: shards,
	}
}

// TestClusterDeterministic is the cluster engine's acceptance
// guarantee: RunCluster produces a bit-identical trace for
// Parallelism ∈ {1,4,8} and shard counts {1, NumBS}, and the
// handover pass conserves users — the engine verifies after every
// interval boundary that no twin is lost or duplicated and fails the
// run otherwise, so a successful run certifies conservation.
func TestClusterDeterministic(t *testing.T) {
	for _, seed := range []int64{7, 1234} {
		var base *ClusterTrace
		for _, workers := range []int{1, 4, 8} {
			for _, shards := range []int{1, 4} { // 4 == NumBS
				trace, err := RunCluster(clusterTestConfig(seed, workers, shards))
				if err != nil {
					t.Fatalf("seed %d workers %d shards %d: %v", seed, workers, shards, err)
				}
				if base == nil {
					base = trace
					if len(base.Records) == 0 {
						t.Fatalf("seed %d: empty cluster trace", seed)
					}
					continue
				}
				if !reflect.DeepEqual(trace.Records, base.Records) {
					t.Fatalf("seed %d workers %d shards %d: records diverged", seed, workers, shards)
				}
				if !reflect.DeepEqual(trace.Cells, base.Cells) {
					t.Fatalf("seed %d workers %d shards %d: cell stats diverged", seed, workers, shards)
				}
				if trace.Handovers != base.Handovers || trace.ChurnedUsers != base.ChurnedUsers {
					t.Fatalf("seed %d workers %d shards %d: handovers %d/%d churned %d/%d",
						seed, workers, shards, trace.Handovers, base.Handovers,
						trace.ChurnedUsers, base.ChurnedUsers)
				}
			}
		}
		// Conservation: every twin accounted for in exactly one cell.
		var users int
		for _, c := range base.Cells {
			users += c.Users
		}
		if users != 32 {
			t.Fatalf("seed %d: %d twins across cells, want 32", seed, users)
		}
		if base.Handovers == 0 {
			t.Fatalf("seed %d: no handovers; migration untested", seed)
		}
	}
}

// TestClusterTraceIO round-trips a real cluster trace through the
// root package's JSON helpers.
func TestClusterTraceIO(t *testing.T) {
	trace, err := RunCluster(clusterTestConfig(3, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteClusterTraceJSON(&buf, trace.Records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadClusterTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, trace.Records) {
		t.Fatal("cluster trace JSON round trip diverged")
	}
	buf.Reset()
	if err := WriteClusterTraceCSV(&buf, trace.Records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(trace.Records)+1 {
		t.Fatalf("%d csv lines for %d records", len(lines), len(trace.Records))
	}
	if _, err := ReadClusterTraceJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("malformed cluster trace must error")
	}
}
