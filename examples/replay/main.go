// Replay: run the grouping + abstraction pipeline offline on a
// viewing trace — no live simulation. Generates a synthetic
// challenge-style dataset (stand-in for a real trace in the same
// schema), replays it into user digital twins, constructs multicast
// groups and prints each group's abstracted swiping behavior.
//
// With -trace FILE the example instead replays a stored session
// trace (written by dtsim/dteval in any format — json, ndjson, csv
// or the binary columnar bin; detection is automatic) and prints each
// group's demand history, showing how downstream tools consume traces
// format-transparently.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dtmsvs"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/predict"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/video"
)

func main() {
	tracePath := flag.String("trace", "", "replay a stored session trace file (any format) instead of the synthetic dataset")
	flag.Parse()
	if err := run(*tracePath); err != nil {
		log.Fatal(err)
	}
}

// replayTrace reads a stored session trace — format auto-detected —
// and prints each multicast group's per-interval radio demand.
func replayTrace(path string) error {
	recs, err := dtmsvs.ReadTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d group-interval records from %s\n", len(recs), path)
	type agg struct {
		intervals       int
		size            int
		predRBs, actRBs float64
	}
	groups := map[int]*agg{}
	for _, r := range recs {
		g := groups[r.GroupID]
		if g == nil {
			g = &agg{}
			groups[r.GroupID] = g
		}
		g.intervals++
		if r.Size > g.size {
			g.size = r.Size
		}
		g.predRBs += r.PredictedRBs
		g.actRBs += r.ActualRBs
	}
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		g := groups[id]
		fmt.Printf("group %d (peak %2d members, %d intervals): predicted %.1f RBs, actual %.1f RBs\n",
			id, g.size, g.intervals, g.predRBs, g.actRBs)
	}
	return nil
}

func run(tracePath string) error {
	if tracePath != "" {
		return replayTrace(tracePath)
	}
	rng := rand.New(rand.NewSource(42))

	// 1. A viewing trace (swap in a real one via video.ReadJSON).
	catalog, err := video.NewCatalog(video.CatalogConfig{
		NumVideos:       300,
		CategoryWeights: []float64{5, 3, 2.5, 2, 1},
	}, rng)
	if err != nil {
		return err
	}
	records, err := video.GenerateDataset(catalog, video.DatasetConfig{
		Users: 60, EventsPerUser: 40,
	}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d viewing events from %d users\n", len(records), 60)

	// 2. Replay into digital twins.
	twins, err := udt.ReplayDataset(records, udt.Config{WatchEvery: 1, PreferenceEvery: 1}, 0.1)
	if err != nil {
		return err
	}

	// 3. Two-step group construction on the replayed twins.
	builder, err := grouping.New(grouping.Config{
		WindowSteps: 16, PosScale: 2000,
		KMin: 2, KMax: 6, UseCNN: true,
	}, rng)
	if err != nil {
		return err
	}
	if _, err := builder.TrainCompressor(twins, 15); err != nil {
		return err
	}
	if _, err := builder.TrainAgent(twins, 80); err != nil {
		return err
	}
	result, err := builder.Build(twins)
	if err != nil {
		return err
	}
	fmt.Printf("constructed %d multicast groups (silhouette %.3f)\n\n", result.K, result.Silhouette)

	// 4. Abstract each group's swiping behavior.
	for _, g := range result.Groups {
		members := make([]*udt.Twin, len(g.Members))
		for i, m := range g.Members {
			members[i] = twins[m]
		}
		profile, perr := predict.BuildGroupProfile(members, catalog, 20)
		if perr != nil {
			return perr
		}
		fmt.Printf("group %d (%2d members): mean engagement %.1f s/view, E[watch] by category:",
			g.ID, len(g.Members), profile.MeanEngagementS)
		for _, c := range video.AllCategories() {
			e, eerr := profile.Swipe.ExpectedWatchFraction(c)
			if eerr != nil {
				return eerr
			}
			fmt.Printf("  %s %.2f", c, e)
		}
		fmt.Println()
	}
	return nil
}
