// Replay: run the grouping + abstraction pipeline offline on a
// viewing trace — no live simulation. Generates a synthetic
// challenge-style dataset (stand-in for a real trace in the same
// schema), replays it into user digital twins, constructs multicast
// groups and prints each group's abstracted swiping behavior.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dtmsvs/internal/grouping"
	"dtmsvs/internal/predict"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/video"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))

	// 1. A viewing trace (swap in a real one via video.ReadJSON).
	catalog, err := video.NewCatalog(video.CatalogConfig{
		NumVideos:       300,
		CategoryWeights: []float64{5, 3, 2.5, 2, 1},
	}, rng)
	if err != nil {
		return err
	}
	records, err := video.GenerateDataset(catalog, video.DatasetConfig{
		Users: 60, EventsPerUser: 40,
	}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d viewing events from %d users\n", len(records), 60)

	// 2. Replay into digital twins.
	twins, err := udt.ReplayDataset(records, udt.Config{WatchEvery: 1, PreferenceEvery: 1}, 0.1)
	if err != nil {
		return err
	}

	// 3. Two-step group construction on the replayed twins.
	builder, err := grouping.New(grouping.Config{
		WindowSteps: 16, PosScale: 2000,
		KMin: 2, KMax: 6, UseCNN: true,
	}, rng)
	if err != nil {
		return err
	}
	if _, err := builder.TrainCompressor(twins, 15); err != nil {
		return err
	}
	if _, err := builder.TrainAgent(twins, 80); err != nil {
		return err
	}
	result, err := builder.Build(twins)
	if err != nil {
		return err
	}
	fmt.Printf("constructed %d multicast groups (silhouette %.3f)\n\n", result.K, result.Silhouette)

	// 4. Abstract each group's swiping behavior.
	for _, g := range result.Groups {
		members := make([]*udt.Twin, len(g.Members))
		for i, m := range g.Members {
			members[i] = twins[m]
		}
		profile, perr := predict.BuildGroupProfile(members, catalog, 20)
		if perr != nil {
			return perr
		}
		fmt.Printf("group %d (%2d members): mean engagement %.1f s/view, E[watch] by category:",
			g.ID, len(g.Members), profile.MeanEngagementS)
		for _, c := range video.AllCategories() {
			e, eerr := profile.Swipe.ExpectedWatchFraction(c)
			if eerr != nil {
				return eerr
			}
			fmt.Printf("  %s %.2f", c, e)
		}
		fmt.Println()
	}
	return nil
}
