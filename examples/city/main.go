// City: the cluster engine's flagship scenario — a city-scale
// population (50k users by default, ≥16 base stations) that the
// monolithic engine cannot reasonably serve: campus-wide group
// construction needs the O(N²) pairwise-distance matrix (a 50k-user
// run would allocate ~20 GB for DDQN training and silhouette scans),
// while the sharded engine pays only Σ(N/C)² — super-linear memory
// headroom in the cell count — and runs whole cells concurrently,
// including the streaming phase.
//
// The run goes through the Session API with a streaming sink, so the
// trace never accumulates in heap: records flow to -out (NDJSON, or
// the binary columnar format with -format bin, flushed per interval)
// or are dropped after the per-interval stats are folded into the
// running accuracy. Ctrl-C stops at the next interval boundary with
// the partial trace flushed. At city scale the trace itself is the
// bottleneck — 50k users emit millions of records — which is exactly
// what -format bin is for.
//
// Run with:
//
//	go run ./examples/city [-users 50000] [-bs 16] [-shards 0] [-intervals 12] [-out city.bin -format bin]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dtmsvs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		users     = flag.Int("users", 50000, "city population")
		bs        = flag.Int("bs", 16, "number of base stations / coverage cells")
		shards    = flag.Int("shards", 0, "shard count (0 = one per BS)")
		intervals = flag.Int("intervals", 12, "reservation intervals")
		par       = flag.Int("parallel", 0, "worker goroutines (0 = all cores)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "stream the trace to this file (default: records are not kept)")
		format    = flag.String("format", "ndjson", `-out stream format: "ndjson" or "bin" (binary columnar — ~10× smaller, parallel-encoded)`)
	)
	flag.Parse()

	cfg := dtmsvs.DefaultConfig(*seed)
	cfg.NumUsers = *users
	cfg.NumBS = *bs
	cfg.NumIntervals = *intervals
	cfg.Parallelism = *par
	// City-scale knobs: lighter collection and training cadence keeps
	// the example interactive; the pipeline itself is unchanged.
	cfg.TicksPerInterval = 10
	cfg.WarmupIntervals = 1
	cfg.CompressorEpochs = 3
	cfg.AgentEpisodes = 10
	cfg.ChurnPerInterval = 0.01
	cfg.PrefetchDepth = -1

	fmt.Printf("city: %d users, %d BS coverage cells, %d intervals (seed %d)\n\n",
		*users, *bs, *intervals, *seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A sink always owns the records, so neither the session nor the
	// engine retains the trace: the run's heap stays flat in the
	// interval count.
	var sink dtmsvs.TraceSink = dtmsvs.DiscardSink{}
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		switch *format {
		case "ndjson":
			sink = dtmsvs.NewNDJSONSink(f)
		case "bin":
			bsink, serr := dtmsvs.NewBinarySink(f)
			if serr != nil {
				return serr
			}
			defer bsink.Close()
			sink = bsink
		default:
			return fmt.Errorf("unknown -format %q", *format)
		}
	}

	// The paper's accuracy metric (1 − MAPE) folds online from the
	// interval reports — no record retention needed.
	var acc dtmsvs.AccuracyTracker
	var records int
	onInterval := func(rep dtmsvs.IntervalReport) {
		records += len(rep.Records)
		acc.Observe(rep)
		fmt.Printf("interval %2d/%d: %3d groups, %5.1f predicted RBs, %5.1f actual, %d handovers so far\n",
			rep.Interval+1, *intervals, rep.Groups, rep.PredictedRBs, rep.ActualRBs, rep.Handovers)
	}

	start := time.Now()
	s, err := dtmsvs.OpenCluster(
		dtmsvs.ClusterConfig{Sim: cfg, Shards: *shards},
		dtmsvs.WithSink(sink),
		dtmsvs.WithObserver(onInterval),
	)
	if err != nil {
		return err
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(ctx); serr != nil {
			if errors.Is(serr, context.Canceled) {
				fmt.Printf("\ninterrupted after %d intervals; partial trace flushed\n", s.Interval())
				return nil
			}
			return serr
		}
	}
	elapsed := time.Since(start)

	// Trace() carries the run-level and per-cell statistics; the
	// records themselves went to the sink.
	trace := s.Trace()
	fmt.Printf("\n%-6s%9s%5s%13s%12s%10s%10s\n", "cell", "users", "K", "silhouette", "cache-hit", "churned", "migrated")
	for _, c := range trace.Cells {
		fmt.Printf("%-6d%9d%5d%13.3f%11.2f%%%10d%10d\n",
			c.BS, c.Users, c.K, c.Silhouette, c.CacheHitRate*100, c.ChurnedUsers, c.AttachedTwins)
	}

	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	// The grouping pipeline's dominant allocation is the pairwise
	// distance matrix: O(N²) campus-wide vs Σ(cellᵢ²) sharded.
	monolithicGB := float64(*users) * float64(*users) * 8 / 1e9
	var shardedGB float64
	for _, c := range trace.Cells {
		shardedGB += float64(c.Users) * float64(c.Users) * 8 / 1e9
	}

	radioAcc, err := acc.RadioAccuracy()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d records streamed, %d twin handovers, %d churned users in %v\n",
		records, trace.Handovers, trace.ChurnedUsers, elapsed.Round(time.Millisecond))
	fmt.Printf("radio-accuracy %.2f%%, aggregate cache-hit %.2f%%\n", radioAcc*100, trace.CacheHitRate*100)
	fmt.Printf("peak heap %.2f GB; pairwise-distance footprint: monolithic %.1f GB → sharded %.2f GB (%.0f× headroom)\n",
		float64(m.HeapSys)/1e9, monolithicGB, shardedGB, monolithicGB/shardedGB)
	return nil
}
