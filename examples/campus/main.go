// Campus: build the paper's scenario by hand from the substrate
// packages — campus map, base stations, mobile users with digital
// twins — then run the two-step multicast group construction and
// inspect the groups. This example shows the lower-level API beneath
// dtmsvs.Run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/channel"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/mobility"
	"dtmsvs/internal/parallel"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/video"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	campus := mobility.CampusMap()

	stations, err := channel.GridDeploy(campus, 4, 30)
	if err != nil {
		return err
	}
	params := channel.DefaultParams()

	// 40 users: half sit in lecture halls near the first landmark
	// with good coverage and News preferences; half wander the campus
	// edge with Game preferences.
	const numUsers = 40
	twins := make([]*udt.Twin, numUsers)
	for i := 0; i < numUsers; i++ {
		var mob mobility.Model
		var fav video.Category
		if i < numUsers/2 {
			mob = &mobility.Static{P: mobility.Point{X: 420 + float64(i)*4, Y: 480}}
			fav = video.News
		} else {
			w, werr := mobility.NewRandomWaypoint(campus, 0.5, 1.2, 60, rng)
			if werr != nil {
				return werr
			}
			mob = w
			fav = video.Game
		}
		pref, perr := behavior.NewRandomPreference(rng, fav, 6)
		if perr != nil {
			return perr
		}

		twin, terr := udt.NewTwin(i, udt.Config{})
		if terr != nil {
			return terr
		}
		bs, berr := channel.NearestBS(stations, mob.Position())
		if berr != nil {
			return berr
		}
		link, lerr := channel.NewLink(params, bs, rng)
		if lerr != nil {
			return lerr
		}

		// Collect 10 minutes of status into the twin at 10 s ticks.
		for tick := 0; tick < 60; tick++ {
			pos, aerr := mob.Advance(10)
			if aerr != nil {
				return aerr
			}
			twin.Tick()
			snr := link.Sample(pos)
			if _, cerr := twin.CollectChannel(channel.CQI(snr)); cerr != nil {
				return cerr
			}
			twin.CollectLocation(pos.X, pos.Y)
			if _, perr := twin.CollectPreference(pref); perr != nil {
				return perr
			}
			// One synthetic view per tick keeps the watch series hot.
			watch := 30 * pref[fav.Index()] * 2
			engagement := watch / 35
			if engagement > 1 {
				engagement = 1
			}
			if _, verr := twin.CollectView(fav, watch, engagement, watch < 35); verr != nil {
				return verr
			}
		}
		twins[i] = twin
	}

	// Two-step construction: CNN compression → DDQN K → K-means++.
	builder, err := grouping.New(grouping.Config{
		WindowSteps: 16,
		PosScale:    campus.Width,
		KMin:        2,
		KMax:        6,
		UseCNN:      true,
	}, rng)
	if err != nil {
		return err
	}
	// Fan the K-means assignment and silhouette scans across all
	// cores; results are bit-identical to the sequential path.
	builder.SetPool(parallel.New(0))
	if _, err := builder.TrainCompressor(twins, 15); err != nil {
		return err
	}
	if _, err := builder.TrainAgent(twins, 100); err != nil {
		return err
	}
	result, err := builder.Build(twins)
	if err != nil {
		return err
	}

	fmt.Printf("constructed %d multicast groups (silhouette %.3f)\n\n", result.K, result.Silhouette)
	for _, g := range result.Groups {
		static, mobile := 0, 0
		for _, m := range g.Members {
			if m < numUsers/2 {
				static++
			} else {
				mobile++
			}
		}
		fmt.Printf("group %d: %2d members (%2d lecture-hall News watchers, %2d mobile Game watchers)\n",
			g.ID, len(g.Members), static, mobile)
	}
	return nil
}
