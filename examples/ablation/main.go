// Ablation: compare the full DT-assisted scheme against its ablated
// variants — fixed grouping numbers, raw (uncompressed) features —
// and against history-only demand predictors. This regenerates the
// extended experiments E2 and E4 from DESIGN.md on a compact
// scenario.
package main

import (
	"context"
	"fmt"
	"log"

	"dtmsvs"
)

func main() {
	cfg := dtmsvs.Config{
		Seed:         42,
		NumUsers:     80,
		NumBS:        4,
		NumIntervals: 16,
	}

	fmt.Println("grouping ablation (E2):")
	rows, err := dtmsvs.RunGroupingAblation(context.Background(), cfg, []dtmsvs.GroupingVariant{
		{Name: "ddqn+cnn", UseCNN: true},
		{Name: "ddqn+raw", UseCNN: false},
		{Name: "fixed-k2", FixedK: 2, UseCNN: true},
		{Name: "fixed-k8", FixedK: 8, UseCNN: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s%4s%12s%16s\n", "variant", "K", "silhouette", "radio-accuracy")
	for _, r := range rows {
		fmt.Printf("  %-12s%4d%12.3f%15.2f%%\n", r.Variant.Name, r.K, r.Silhouette, r.RadioAccuracy*100)
	}

	fmt.Println("\npredictor baselines (E4):")
	preds, err := dtmsvs.RunPredictorBaselines(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range preds {
		fmt.Printf("  %-20s%8.2f%%\n", p.Name, p.Accuracy*100)
	}
}
