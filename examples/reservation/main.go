// Reservation: the paper's motivating use case — reserve radio
// resources per 5-minute interval from the DT scheme's prediction and
// compare the over/under-provisioning against static peak
// provisioning and a history-only EWMA policy (experiment E7), then
// run the engine's admission mode with a hard RB budget.
package main

import (
	"context"
	"fmt"
	"log"

	"dtmsvs"
)

func main() {
	cfg := dtmsvs.Config{
		Seed:         42,
		NumUsers:     80,
		NumBS:        4,
		NumIntervals: 16,
	}

	fmt.Println("offline reservation replay (10% headroom):")
	rows, err := dtmsvs.RunReservation(context.Background(), cfg, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s%10s%10s%12s%13s\n", "policy", "waste", "deficit", "violations", "utilization")
	for _, r := range rows {
		fmt.Printf("  %-22s%10.1f%10.1f%11.2f%%%12.2f%%\n",
			r.Policy, r.Waste, r.Deficit, r.ViolationRate*100, r.Utilization*100)
	}

	// In-engine admission: a hard shared budget forces rung cuts when
	// predictions exceed capacity.
	fmt.Println("\nin-engine admission with a hard 8-RB budget:")
	cfg.RBBudget = 8
	trace, err := dtmsvs.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := trace.Summarize()
	if err != nil {
		log.Fatal(err)
	}
	var granted, starvedIntervals int
	for _, r := range trace.Records {
		granted += r.AllocatedRBs
		if float64(r.AllocatedRBs) < r.ActualRBs {
			starvedIntervals++
		}
	}
	fmt.Printf("  groups=%d  mean actual demand=%.2f RBs  peak=%.2f RBs\n",
		summary.Groups, summary.MeanActualRBs, summary.PeakActualRBs)
	fmt.Printf("  total granted=%d RB-intervals, under-granted records=%d/%d\n",
		granted, starvedIntervals, len(trace.Records))
	acc, err := trace.RadioAccuracy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  radio accuracy under admission: %.2f%%\n", acc*100)
}
