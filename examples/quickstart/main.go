// Quickstart: run a small end-to-end scenario — UDT collection,
// DDQN-empowered K-means++ group construction, and one day of
// 5-minute reservation intervals with demand prediction — and print
// the headline numbers.
package main

import (
	"fmt"
	"log"

	"dtmsvs"
)

func main() {
	cfg := dtmsvs.Config{
		Seed:         1,
		NumUsers:     60,
		NumBS:        4,
		NumIntervals: 12, // one hour of 5-minute reservation intervals
		Parallelism:  0,  // fan across all cores; the trace is identical at any setting
	}

	trace, err := dtmsvs.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	radioAcc, err := trace.RadioAccuracy()
	if err != nil {
		log.Fatal(err)
	}
	computeAcc, err := trace.ComputeAccuracy()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("multicast groups:            %d (silhouette %.3f)\n", trace.K, trace.Silhouette)
	fmt.Printf("radio demand accuracy:       %.2f%%\n", radioAcc*100)
	fmt.Printf("computing demand accuracy:   %.2f%%\n", computeAcc*100)
	fmt.Printf("edge cache hit rate:         %.2f%%\n", trace.CacheHitRate*100)

	pred, actual := trace.GroupSeries(0)
	fmt.Println("\ngroup 0 radio demand (resource blocks):")
	for i := range pred {
		fmt.Printf("  interval %2d: predicted %6.2f, actual %6.2f\n", i, pred[i], actual[i])
	}
}
