// Quickstart: run a small end-to-end scenario — UDT collection,
// DDQN-empowered K-means++ group construction, and one hour of
// 5-minute reservation intervals with demand prediction — through the
// interval-stepped Session API, and print the headline numbers.
package main

import (
	"context"
	"fmt"
	"log"

	"dtmsvs"
)

func main() {
	cfg := dtmsvs.Config{
		Seed:         1,
		NumUsers:     60,
		NumBS:        4,
		NumIntervals: 12, // one hour of 5-minute reservation intervals
		Parallelism:  0,  // fan across all cores; the trace is identical at any setting
	}

	// Open returns immediately; the first Step pays for warm-up and
	// pipeline training before running interval 0.
	s, err := dtmsvs.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	fmt.Println("interval-by-interval radio demand (resource blocks):")
	for !s.Done() {
		rep, err := s.Step(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  interval %2d: %d groups, predicted %6.2f, actual %6.2f\n",
			rep.Interval, rep.Groups, rep.PredictedRBs, rep.ActualRBs)
	}

	trace := s.Trace()
	radioAcc, err := trace.RadioAccuracy()
	if err != nil {
		log.Fatal(err)
	}
	computeAcc, err := trace.ComputeAccuracy()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmulticast groups:            %d (silhouette %.3f)\n", trace.K, trace.Silhouette)
	fmt.Printf("radio demand accuracy:       %.2f%%\n", radioAcc*100)
	fmt.Printf("computing demand accuracy:   %.2f%%\n", computeAcc*100)
	fmt.Printf("edge cache hit rate:         %.2f%%\n", trace.CacheHitRate*100)
}
