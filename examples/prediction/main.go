// Prediction: reproduce the paper's Fig. 3 in one program — the
// swiping probability distribution of the News-dominant group (panel
// a) and the radio resource demand prediction with its accuracy
// (panel b).
package main

import (
	"context"
	"fmt"
	"log"

	"dtmsvs"
)

func main() {
	cfg := dtmsvs.DefaultConfig(42)
	cfg.NumIntervals = 24 // two hours of 5-minute reservation intervals

	// One session feeds both panels; the observer streams a progress
	// line per reservation interval while the run is in flight.
	s, err := dtmsvs.Open(cfg, dtmsvs.WithProgress(func(done, total int) {
		fmt.Printf("\rsimulating interval %d/%d", done, total)
		if done == total {
			fmt.Println()
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(context.Background()); err != nil {
			log.Fatal(err)
		}
	}
	trace := s.Trace()

	a, err := dtmsvs.Fig3aFromTrace(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 3(a): swiping behaviour of multicast group %d\n", a.GroupID)
	names := []string{"News", "Sports", "Music", "Comedy", "Game"}
	for c, name := range names {
		fmt.Printf("  %-8s expected watch fraction %.3f, P(swipe before 50%%) = %.3f\n",
			name, a.ExpectedWatchFraction[c], a.CDF[c][len(a.CDF[c])/2-1])
	}

	b, err := dtmsvs.Fig3bFromTrace(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 3(b): radio resource demand of group %d\n", b.GroupID)
	for i := range b.Predicted {
		bar := int(b.Actual[i] * 4)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  interval %2d  pred %6.2f  actual %6.2f  ", i, b.Predicted[i], b.Actual[i])
		for j := 0; j < bar; j++ {
			fmt.Print("█")
		}
		fmt.Println()
	}
	fmt.Printf("\nprediction accuracy: %.2f%% (paper: 95.04%%)\n", b.OverallAccuracy*100)
}
