// This file is the unified Session API: both engines — the monolithic
// simulation and the sharded cluster — run behind the same
// interval-stepped handle, with per-interval records flowing to a
// TraceSink instead of accumulating in heap, and cooperative
// context.Context cancellation checked at every interval boundary.
//
// The lifecycle is
//
//	s, err := dtmsvs.Open(cfg, dtmsvs.WithSink(sink))
//	for !s.Done() {
//	    rep, err := s.Step(ctx)
//	    ...
//	}
//	s.Close()
//
// The first Step runs the prologue (warm-up intervals, pipeline
// training, initial group construction) before its scheduling
// interval, so it is by far the most expensive one. Cancellation that
// lands on a boundary — Step called with an already-cancelled ctx —
// leaves the session resumable with a fresh context; cancellation
// that fires mid-interval aborts the in-flight fan-out, flushes the
// records of every completed interval to the sink, and permanently
// fails the session (the engine's mid-interval state is
// indeterminate).
package dtmsvs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/cluster"
	"dtmsvs/internal/coord"
	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/sim"
	"dtmsvs/internal/stats"
)

// ErrSessionClosed is returned by Step, Checkpoint and a second Close
// after the session has been closed.
var ErrSessionClosed = errors.New("dtmsvs: session closed")

// ErrSink wraps every sink failure a Step reports: a WriteRecord or
// Flush error that survived the transient-retry budget. Match with
// errors.Is(err, ErrSink); the sink's own error is wrapped alongside
// and stays reachable through errors.As.
var ErrSink = errors.New("dtmsvs: sink failure")

// ErrSessionDone is returned by Step once every scheduling interval
// has run.
var ErrSessionDone = errors.New("dtmsvs: session done")

// ErrObserver wraps a panic raised by a WithObserver or WithProgress
// callback. The interval it interrupted had already completed and
// flushed, so the session is NOT failed: the panic is surfaced as an
// error (with the interval's report) and the next Step continues the
// run. Match with errors.Is(err, ErrObserver).
var ErrObserver = errors.New("dtmsvs: observer panicked")

// ErrEmptyScenario is returned by Open, OpenCluster and the Run shims
// for degenerate scenarios (zero users or zero intervals) that would
// otherwise produce an empty trace with undefined summary fields. It
// wraps the engines' config error class.
var ErrEmptyScenario = sim.ErrEmptyScenario

// ErrCellFailure classifies injected cell-failure outcomes in a
// cluster session: the abort under the fail-fast policy, and a
// degraded run losing its last surviving cell. Match with errors.Is.
var ErrCellFailure = cluster.ErrCellFailure

// CellFailurePolicy selects how a cluster session responds when a
// scheduled cell fault (ClusterConfig.Faults) fires; see the
// constants below and WithCellFailurePolicy. It has no effect on
// monolithic sessions.
type CellFailurePolicy = cluster.FailurePolicy

const (
	// CellFailFast aborts the run with an error wrapping
	// ErrCellFailure when a scheduled fault fires — the default.
	CellFailFast = cluster.FailFast
	// CellDegrade quarantines the failed cell, drops its edge cache
	// and evacuates its twins to the surviving cells; the run
	// continues in degraded mode. Scheduled revivals are ignored.
	CellDegrade = cluster.Degrade
	// CellDegradeWithRevival is CellDegrade plus honoring a fault's
	// ReviveAt boundary: the cell returns empty and cold, and
	// reabsorbs users through the ordinary handover pass.
	CellDegradeWithRevival = cluster.DegradeWithRevival
)

// TraceRecord is one streamed trace row: a group-interval record plus
// the serving cell. BS is -1 for the monolithic engine, whose groups
// are campus-wide; its JSON and CSV forms then match the monolithic
// trace schema exactly (no bs column).
type TraceRecord struct {
	BS int
	GroupIntervalRecord
}

// MarshalJSON emits the cluster schema (leading "bs") for cell
// records and the monolithic schema for BS < 0.
func (r TraceRecord) MarshalJSON() ([]byte, error) {
	if r.BS < 0 {
		return json.Marshal(r.GroupIntervalRecord)
	}
	return json.Marshal(struct {
		BS int `json:"bs"`
		GroupIntervalRecord
	}{r.BS, r.GroupIntervalRecord})
}

// UnmarshalJSON accepts both schemas: a missing "bs" field decodes to
// BS = -1 (a monolithic record).
func (r *TraceRecord) UnmarshalJSON(data []byte) error {
	aux := struct {
		BS *int `json:"bs"`
		*GroupIntervalRecord
	}{GroupIntervalRecord: &r.GroupIntervalRecord}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	r.BS = -1
	if aux.BS != nil {
		r.BS = *aux.BS
	}
	return nil
}

// CSVHeader returns the record's flat CSV schema (the cluster schema
// when BS >= 0).
func (r TraceRecord) CSVHeader() []string {
	if r.BS < 0 {
		return r.GroupIntervalRecord.CSVHeader()
	}
	return append([]string{"bs"}, r.GroupIntervalRecord.CSVHeader()...)
}

// AppendCSVRow appends the record's CSV fields to dst.
func (r TraceRecord) AppendCSVRow(dst []string) []string {
	if r.BS >= 0 {
		dst = append(dst, strconv.Itoa(r.BS))
	}
	return r.GroupIntervalRecord.AppendCSVRow(dst)
}

// IntervalReport is what one Step produced: the interval's records
// plus interval- and run-level counters.
type IntervalReport struct {
	// Interval is the scheduling interval index that just ran.
	Interval int
	// Records are the interval's trace rows in (cell, group) order.
	Records []TraceRecord
	// Groups is the number of multicast groups served this interval.
	Groups int
	// PredictedRBs and ActualRBs are the interval's summed radio
	// demand across groups.
	PredictedRBs, ActualRBs float64
	// Handovers is the cumulative cross-cell twin migration count
	// (always 0 for the monolithic engine).
	Handovers int
	// ChurnedUsers is the cumulative count of users replaced by churn.
	ChurnedUsers int
	// CellsDown is the number of quarantined coverage cells while
	// this interval ran (always 0 for the monolithic engine and under
	// the fail-fast policy).
	CellsDown int
	// EvacuatedTwins is the cumulative count of twins evacuated from
	// failed cells so far.
	EvacuatedTwins int
	// StepDuration is the wall-clock time of the Step call that
	// produced this report, including sink writes and flushes (and the
	// prologue, on the first report). Always measured, so WithObserver
	// users get timing without mounting a metrics registry.
	StepDuration time.Duration
	// PrologueDuration is the wall-clock time of the warm-up /
	// training / group-construction prologue. Non-zero only on the
	// report of the Step that ran prologue work (normally the first).
	PrologueDuration time.Duration
}

// Session is the interval-stepped handle on a running scenario. Both
// Open (monolithic) and OpenCluster (sharded multi-BS) return one.
type Session interface {
	// Step advances exactly one scheduling interval and reports that
	// interval's records and stats. The first call also runs the
	// warm-up / train / group prologue. Calling Step with an
	// already-cancelled ctx returns ctx.Err() with the sink flushed
	// and the session still resumable; a cancellation or error that
	// fires mid-step permanently fails the session.
	Step(ctx context.Context) (IntervalReport, error)
	// Interval reports the number of completed scheduling intervals —
	// the index the next Step will run.
	Interval() int
	// Done reports whether every scheduling interval has run.
	Done() bool
	// Checkpoint serializes the session's full deterministic state —
	// engine, RNG positions, trained weights, twins, caches — at the
	// current interval boundary, so Resume/ResumeCluster can continue
	// the run bit-identically. It refuses failed or closed sessions
	// (after a mid-interval failure the engine has advanced past the
	// session's counters; resume from the last good checkpoint
	// instead).
	Checkpoint(w io.Writer) error
	// Close flushes the sink and releases the session. A second Close
	// returns an error wrapping ErrSessionClosed (the first Close
	// already released everything); Step returns ErrSessionClosed
	// afterwards too.
	Close() error
}

// SessionOption configures a session at Open time, replacing ad-hoc
// config fields for run observation and output.
type SessionOption func(*sessionOptions)

type sessionOptions struct {
	sink      TraceSink
	observers []func(IntervalReport)
	progress  func(done, total int)
	// sinkAttempts bounds how often one WriteRecord/Flush is tried
	// when the sink reports transient errors; sinkBackoff is the
	// delay before the first retry, doubling per attempt.
	sinkAttempts int
	sinkBackoff  time.Duration
	// metrics, when non-nil, is mounted on the engine and session at
	// Open time (see WithMetrics in metrics.go).
	metrics *MetricsRegistry
	// cellPolicy is the cluster engine's response to scheduled cell
	// faults (zero value: CellFailFast).
	cellPolicy CellFailurePolicy
	// Distributed-session knobs (see distributed.go); all zero values
	// defer to coord's defaults.
	workerTransport     coord.TransportFactory
	workerHeartbeat     time.Duration
	workerHeartbeatMiss int
	workerStepTimeout   time.Duration
	workerRestarts      int
	workerBackoff       time.Duration
	workerAdopt         bool
	workerHang          time.Duration
	procFaults          []faultinject.ProcFault
}

// WithSink streams every interval's records into sink (flushed at
// each interval boundary). With a sink attached the session stops
// retaining records internally — Trace() then carries only run-level
// statistics — so a streamed run never holds the full trace in heap.
func WithSink(sink TraceSink) SessionOption {
	return func(o *sessionOptions) { o.sink = sink }
}

// WithObserver registers fn to be called after every completed
// interval with that interval's report. Observers run on the stepping
// goroutine, in registration order.
func WithObserver(fn func(IntervalReport)) SessionOption {
	return func(o *sessionOptions) { o.observers = append(o.observers, fn) }
}

// WithProgress registers fn to be called after every completed
// interval with (completed, total) scheduling-interval counts.
func WithProgress(fn func(done, total int)) SessionOption {
	return func(o *sessionOptions) { o.progress = fn }
}

// WithSinkRetry bounds the session's handling of transient sink
// errors (those whose error chain advertises `Transient() bool` true,
// e.g. injected faults from internal/faultinject): each WriteRecord
// or Flush is attempted up to attempts times, sleeping backoff before
// the first retry and doubling it per attempt. Permanent errors are
// never retried. The default is 3 attempts with a 2 ms initial
// backoff; WithSinkRetry(1, 0) disables retries entirely.
func WithSinkRetry(attempts int, backoff time.Duration) SessionOption {
	return func(o *sessionOptions) {
		if attempts < 1 {
			attempts = 1
		}
		o.sinkAttempts = attempts
		o.sinkBackoff = backoff
	}
}

// WithCellFailurePolicy selects how a cluster session responds when
// a scheduled cell fault (ClusterConfig.Faults) fires: CellFailFast
// (the default) aborts the run with an error wrapping ErrCellFailure;
// CellDegrade and CellDegradeWithRevival quarantine the cell,
// evacuate its twins to the surviving cells and continue in degraded
// mode. The policy is part of the run's deterministic behavior:
// resuming a checkpoint under a different policy is rejected with
// ErrCheckpointConfig. Monolithic sessions ignore the option.
func WithCellFailurePolicy(p CellFailurePolicy) SessionOption {
	return func(o *sessionOptions) { o.cellPolicy = p }
}

// stepper is the engine-side contract a session drives: the prologue
// split at every resumable boundary, one scheduling interval at a
// time, and the final stamp.
type stepper interface {
	warmupIntervals() int
	intervals() int
	warmupStep(ctx context.Context) error
	trainAndBuild(ctx context.Context) error
	stepInterval(ctx context.Context, interval int) ([]TraceRecord, error)
	finish()
	handovers() int
	churned() int
	// cellsDown and evacuated report the degradation state of the
	// cluster engine's failure model (both always 0 for the
	// monolithic engine).
	cellsDown() int
	evacuated() int
	// close releases engine-held workers (the training GEMM crews);
	// the engine stays readable and any later training GEMMs run
	// sequentially with identical results. Idempotent.
	close()
	// mount attaches a metrics registry to the engine (stage timers,
	// cache/GEMM counters; per-cell labels in the cluster engine).
	mount(reg *MetricsRegistry)
	// kind names the engine in checkpoint headers ("sim"/"cluster").
	kind() string
	// fingerprint hashes the defaulted configuration for the
	// checkpoint header's compatibility check.
	fingerprint() (uint64, error)
	// writeState/readState serialize the engine's boundary state.
	writeState(cw *checkpoint.Writer) error
	readState(cr *checkpoint.Reader) error
}

// session is the engine-independent state machine shared by
// SimSession and ClusterSession.
type session struct {
	eng        stepper
	opts       sessionOptions
	met        sessionMetrics
	next       int
	warmupDone int
	trained    bool
	finished   bool
	closed     bool
	failed     error
	// sinkBroken is set when a WriteRecord fails partway through an
	// interval: the sink's buffer then holds a torn interval, so no
	// further flush may push it out — the sink's backing store keeps
	// the whole-interval prefix of the last successful flush.
	sinkBroken bool
}

// Interval implements Session.
func (s *session) Interval() int { return s.next }

// Done implements Session.
func (s *session) Done() bool { return s.finished }

// Step implements Session.
func (s *session) Step(ctx context.Context) (IntervalReport, error) {
	var zero IntervalReport
	switch {
	case s.closed:
		return zero, ErrSessionClosed
	case s.failed != nil:
		return zero, s.failed
	case s.finished:
		return zero, ErrSessionDone
	}
	// Boundary cancellation: no engine state has been touched, so the
	// session stays resumable with a fresh context.
	if err := ctx.Err(); err != nil {
		if ferr := s.flush(ctx); ferr != nil {
			return zero, s.fail(ferr)
		}
		return zero, err
	}
	// Wall-clock timing is always on (IntervalReport carries it even
	// without a registry); it is out-of-band, so the trace bytes are
	// unaffected.
	start := time.Now()
	var prologue time.Duration
	ranPrologue := s.warmupDone < s.eng.warmupIntervals() || !s.trained
	// Prologue, resumable at every internal boundary.
	for s.warmupDone < s.eng.warmupIntervals() {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		if err := s.eng.warmupStep(ctx); err != nil {
			return zero, s.fail(err)
		}
		s.warmupDone++
	}
	if !s.trained {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		if err := s.eng.trainAndBuild(ctx); err != nil {
			return zero, s.fail(err)
		}
		s.trained = true
	}
	if ranPrologue {
		prologue = time.Since(start)
	}
	recs, err := s.eng.stepInterval(ctx, s.next)
	if err != nil {
		// Mid-interval failure: the completed intervals are already on
		// the sink; flush so the partial trace survives, then fail.
		_ = s.flush(ctx)
		return zero, s.fail(err)
	}
	rep := IntervalReport{
		Interval:       s.next,
		Records:        recs,
		Groups:         len(recs),
		Handovers:      s.eng.handovers(),
		ChurnedUsers:   s.eng.churned(),
		CellsDown:      s.eng.cellsDown(),
		EvacuatedTwins: s.eng.evacuated(),
	}
	for _, r := range recs {
		rep.PredictedRBs += r.PredictedRBs
		rep.ActualRBs += r.ActualRBs
	}
	if s.opts.sink != nil {
		tWrite := s.met.sinkWrite.Start()
		for _, r := range recs {
			if werr := s.writeRecord(ctx, r); werr != nil {
				s.sinkBroken = true
				s.met.sinkErrors.Inc()
				return zero, s.fail(fmt.Errorf("%w: interval %d: %w", ErrSink, s.next, werr))
			}
		}
		s.met.sinkWrite.ObserveSince(tWrite)
	}
	if ferr := s.flush(ctx); ferr != nil {
		return zero, s.fail(ferr)
	}
	s.next++
	if s.next >= s.eng.intervals() {
		s.finished = true
		s.eng.finish()
	}
	rep.StepDuration = time.Since(start)
	rep.PrologueDuration = prologue
	s.met.step.Observe(rep.StepDuration)
	s.met.steps.Inc()
	if nerr := s.notify(rep); nerr != nil {
		return rep, nerr
	}
	return rep, nil
}

// notify runs the observers and the progress callback, converting a
// callback panic into an ErrObserver-wrapped error. The interval had
// already completed and flushed when the panic fired, so the caller
// surfaces the error without failing the session.
func (s *session) notify(rep IntervalReport) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: interval %d: %v", ErrObserver, rep.Interval, r)
		}
	}()
	for _, ob := range s.opts.observers {
		ob(rep)
	}
	if s.opts.progress != nil {
		s.opts.progress(s.next, s.eng.intervals())
	}
	return nil
}

// Close implements Session. The first Close flushes and releases;
// calling it again is an error (wrapping ErrSessionClosed) so a
// double-Close in caller cleanup paths is loud instead of silently
// re-flushing a sink whose ownership has moved on. Close after a
// failed Step is safe: a broken sink is never flushed again.
func (s *session) Close() error {
	if s.closed {
		return fmt.Errorf("close of closed session: %w", ErrSessionClosed)
	}
	s.closed = true
	s.eng.close()
	// Close has no caller context; the final flush retries on the
	// ordinary schedule.
	return s.flush(context.Background())
}

func (s *session) fail(err error) error {
	s.failed = err
	return err
}

// isTransientSink reports whether err's chain advertises itself as a
// transient (retry-safe) sink failure.
func isTransientSink(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// backoff waits before retry attempt n (1-based), doubling the
// configured initial backoff per attempt. The wait is context-aware:
// a cancellation mid-wait (or already pending) returns the context
// error immediately instead of riding out the exponential schedule,
// and the caller abandons its remaining retries.
func (s *session) backoff(ctx context.Context, attempt int) error {
	if s.opts.sinkBackoff <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(s.opts.sinkBackoff << (attempt - 1))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writeRecord pushes one record to the sink, retrying transient
// failures within the configured attempt budget. Errors are returned
// unwrapped; Step adds the ErrSink envelope. A retry abandoned by
// cancellation keeps the sink failure in the chain alongside the
// context error.
func (s *session) writeRecord(ctx context.Context, r TraceRecord) error {
	err := s.opts.sink.WriteRecord(r)
	for attempt := 1; err != nil && attempt < s.opts.sinkAttempts && isTransientSink(err); attempt++ {
		s.met.sinkWriteRetries.Inc()
		if werr := s.backoff(ctx, attempt); werr != nil {
			return fmt.Errorf("retry abandoned: %w (after %w)", werr, err)
		}
		err = s.opts.sink.WriteRecord(r)
	}
	return err
}

func (s *session) flush(ctx context.Context) error {
	if s.opts.sink == nil || s.sinkBroken {
		return nil
	}
	tFlush := s.met.sinkFlush.Start()
	err := s.opts.sink.Flush()
	for attempt := 1; err != nil && attempt < s.opts.sinkAttempts && isTransientSink(err); attempt++ {
		s.met.sinkFlushRetries.Inc()
		if werr := s.backoff(ctx, attempt); werr != nil {
			err = fmt.Errorf("retry abandoned: %w (after %w)", werr, err)
			break
		}
		err = s.opts.sink.Flush()
	}
	if err != nil {
		// A failed flush leaves an unknown prefix of the buffer on the
		// backing store; pushing more bytes could tear a record, so
		// the sink is dead to this session from here on.
		s.sinkBroken = true
		s.met.sinkErrors.Inc()
		return fmt.Errorf("%w: flush: %w", ErrSink, err)
	}
	s.met.sinkFlush.ObserveSince(tFlush)
	return nil
}

func buildOptions(opts []SessionOption) sessionOptions {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.sinkAttempts == 0 {
		// Defaults only when WithSinkRetry was never given (the option
		// clamps attempts to >= 1, so 0 means unset).
		o.sinkAttempts = 3
		o.sinkBackoff = 2 * time.Millisecond
	}
	return o
}

// simStepper adapts the monolithic engine to the session state
// machine.
type simStepper struct {
	eng     *sim.Simulation
	cfg     Config // defaulted
	trace   *Trace
	scratch sim.Trace
	retain  bool
}

func (a *simStepper) warmupIntervals() int { return a.cfg.WarmupIntervals }
func (a *simStepper) intervals() int       { return a.cfg.NumIntervals }
func (a *simStepper) handovers() int       { return 0 }
func (a *simStepper) churned() int         { return a.eng.Churned() }
func (a *simStepper) cellsDown() int       { return 0 }
func (a *simStepper) evacuated() int       { return 0 }

func (a *simStepper) warmupStep(ctx context.Context) error {
	return a.eng.WarmupIntervalContext(ctx)
}

func (a *simStepper) trainAndBuild(ctx context.Context) error {
	if err := a.eng.Train(); err != nil {
		return err
	}
	return a.eng.BuildGroupsContext(ctx)
}

func (a *simStepper) stepInterval(ctx context.Context, interval int) ([]TraceRecord, error) {
	a.scratch.Records = a.scratch.Records[:0]
	if err := a.eng.RunIntervalContext(ctx, interval, &a.scratch); err != nil {
		return nil, err
	}
	out := make([]TraceRecord, len(a.scratch.Records))
	for i, r := range a.scratch.Records {
		out[i] = TraceRecord{BS: -1, GroupIntervalRecord: r}
	}
	if a.retain {
		a.trace.Records = append(a.trace.Records, a.scratch.Records...)
	}
	return out, nil
}

func (a *simStepper) finish() { a.eng.FinishTrace(a.trace) }
func (a *simStepper) close()  { a.eng.Close() }

func (a *simStepper) mount(reg *MetricsRegistry) { a.eng.SetMetrics(reg) }

func (a *simStepper) kind() string { return "sim" }

func (a *simStepper) fingerprint() (uint64, error) { return checkpoint.Fingerprint(a.cfg) }

func (a *simStepper) writeState(cw *checkpoint.Writer) error { return a.eng.WriteState(cw) }

func (a *simStepper) readState(cr *checkpoint.Reader) error { return a.eng.ReadState(cr) }

// SimSession is the monolithic engine's Session. It satisfies the
// Session interface and additionally exposes the accumulated Trace.
type SimSession struct {
	session
	st *simStepper
}

// Trace returns the run's trace: the full record set once Done (or
// run-level statistics only, when a sink owned the records). Before
// completion it carries the records of the completed intervals with
// unstamped run-level fields.
func (s *SimSession) Trace() *Trace { return s.st.trace }

// Open validates cfg and returns a monolithic-engine session. No
// simulation work happens until the first Step. Degenerate scenarios
// (zero users or intervals) fail with ErrEmptyScenario.
func Open(cfg Config, opts ...SessionOption) (*SimSession, error) {
	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if cs, ok := o.sink.(*CSVSink); ok {
		// The session knows the schema before any record exists, so an
		// empty run still gets its CSV header.
		cs.SetSchema(TraceRecord{BS: -1})
	}
	st := &simStepper{
		eng:    eng,
		cfg:    cfg.Defaulted(),
		trace:  sim.NewTrace(),
		retain: o.sink == nil,
	}
	if o.metrics != nil {
		st.mount(o.metrics)
	}
	return &SimSession{session: session{eng: st, opts: o, met: newSessionMetrics(o.metrics)}, st: st}, nil
}

// clusterStepper adapts the sharded cluster engine to the session
// state machine.
type clusterStepper struct {
	eng   *cluster.Engine
	cfg   ClusterConfig // defaulted
	trace *ClusterTrace // stamped at finish
}

func (a *clusterStepper) warmupIntervals() int { return a.cfg.Sim.WarmupIntervals }
func (a *clusterStepper) intervals() int       { return a.cfg.Sim.NumIntervals }
func (a *clusterStepper) handovers() int       { return a.eng.Handovers() }
func (a *clusterStepper) churned() int         { return a.eng.Churned() }
func (a *clusterStepper) cellsDown() int       { return a.eng.CellsDown() }
func (a *clusterStepper) evacuated() int       { return a.eng.EvacuatedTwins() }

func (a *clusterStepper) warmupStep(ctx context.Context) error { return a.eng.WarmupStep(ctx) }

func (a *clusterStepper) trainAndBuild(ctx context.Context) error { return a.eng.TrainAndBuild(ctx) }

func (a *clusterStepper) stepInterval(ctx context.Context, interval int) ([]TraceRecord, error) {
	recs, err := a.eng.StepInterval(ctx, interval)
	if err != nil {
		return nil, err
	}
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		out[i] = TraceRecord{BS: r.BS, GroupIntervalRecord: r.GroupIntervalRecord}
	}
	return out, nil
}

func (a *clusterStepper) finish() { a.trace = a.eng.Finish() }
func (a *clusterStepper) close()  { a.eng.Close() }

func (a *clusterStepper) mount(reg *MetricsRegistry) { a.eng.SetMetrics(reg) }

func (a *clusterStepper) kind() string { return "cluster" }

func (a *clusterStepper) fingerprint() (uint64, error) { return checkpoint.Fingerprint(a.cfg) }

func (a *clusterStepper) writeState(cw *checkpoint.Writer) error { return a.eng.WriteState(cw) }

func (a *clusterStepper) readState(cr *checkpoint.Reader) error { return a.eng.ReadState(cr) }

// ClusterSession is the sharded cluster engine's Session. It
// satisfies the Session interface and additionally exposes the merged
// ClusterTrace.
type ClusterSession struct {
	session
	st *clusterStepper
}

// Trace returns the merged cluster trace: the full record set once
// Done (or run-level and per-cell statistics only, when a sink owned
// the records). Before completion it returns a snapshot of the
// completed intervals.
func (s *ClusterSession) Trace() *ClusterTrace {
	if s.st.trace != nil {
		return s.st.trace
	}
	return s.st.eng.Finish()
}

// OpenCluster validates cfg and returns a sharded-cluster session. No
// simulation work happens until the first Step. Degenerate scenarios
// (zero users or intervals) fail with ErrEmptyScenario.
func OpenCluster(cfg ClusterConfig, opts ...SessionOption) (*ClusterSession, error) {
	eng, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if cs, ok := o.sink.(*CSVSink); ok {
		cs.SetSchema(TraceRecord{BS: 0})
	}
	eng.SetRetainRecords(o.sink == nil)
	eng.SetFailurePolicy(o.cellPolicy)
	st := &clusterStepper{eng: eng, cfg: eng.Config()}
	if o.metrics != nil {
		st.mount(o.metrics)
	}
	return &ClusterSession{session: session{eng: st, opts: o, met: newSessionMetrics(o.metrics)}, st: st}, nil
}

// ReadTraceRecordsNDJSON decodes the newline-delimited JSON stream an
// NDJSONSink writes (either engine's schema; rows without a "bs"
// field decode with BS = -1).
func ReadTraceRecordsNDJSON(r io.Reader) ([]TraceRecord, error) {
	return readNDJSONRecords(r)
}

// AccuracyTracker folds a run's accuracy metrics from interval
// reports, so a session streaming to a sink can score itself without
// ever retaining trace records. Attach it with
// WithObserver(tracker.Observe); the results match the Trace methods
// of the same name over the full record set.
type AccuracyTracker struct {
	radio   stats.OnlineMAPE
	compute stats.OnlineVolume
	waste   stats.OnlineVolume
}

// Observe folds one interval report. Pass it to WithObserver.
func (t *AccuracyTracker) Observe(rep IntervalReport) {
	for _, r := range rep.Records {
		t.radio.Add(r.PredictedRBs, r.ActualRBs)
		t.compute.Add(r.PredictedCycles, r.ActualCycles)
		t.waste.Add(r.PredictedWasteBits, r.ActualWasteBits)
	}
}

// RadioAccuracy returns the running 1 − MAPE over radio demand.
func (t *AccuracyTracker) RadioAccuracy() (float64, error) { return t.radio.Accuracy() }

// ComputeAccuracy returns the running volume accuracy over
// transcoding demand.
func (t *AccuracyTracker) ComputeAccuracy() (float64, error) { return t.compute.Accuracy() }

// WasteAccuracy returns the running volume accuracy over wasted
// traffic.
func (t *AccuracyTracker) WasteAccuracy() (float64, error) { return t.waste.Accuracy() }
