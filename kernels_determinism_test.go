package dtmsvs

import (
	"reflect"
	"testing"

	"dtmsvs/internal/vecmath"
)

// kernelVariants enumerates the dispatch settings the determinism
// sweep compares. On hardware without AVX2 both variants run the
// generic kernel, which degenerates to the plain parallelism sweep —
// still a valid (if weaker) pass, so the test never skips.
var kernelVariants = []struct {
	name    string
	generic bool
}{
	{"dispatched", false},
	{"generic", true},
}

// TestRunDeterministicAcrossKernelsAndParallelism is the acceptance
// gate for the SIMD + pool-parallel GEMM layer at the monolithic
// engine's trace level: for a fixed seed, the full trace — grouping
// decisions, predictions, cache and QoE metrics, all downstream of
// the trained CNN and DDQN weights — must be bit-identical across
// {AVX2 dispatch, forced-generic} × Parallelism {1, 4, 8}.
func TestRunDeterministicAcrossKernelsAndParallelism(t *testing.T) {
	if vecmath.CPU().AVX2 {
		t.Logf("sweeping with AVX2 kernels available: %+v", vecmath.CPU())
	}
	defer vecmath.ForceGeneric(false)
	var base *Trace
	for _, kv := range kernelVariants {
		vecmath.ForceGeneric(kv.generic)
		for _, workers := range []int{1, 4, 8} {
			cfg := smallConfig(7)
			cfg.Parallelism = workers
			tr, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kv.name, workers, err)
			}
			if base == nil {
				base = tr
				continue
			}
			if !reflect.DeepEqual(tr.Records, base.Records) {
				t.Fatalf("%s workers=%d: trace records diverged from dispatched w=1", kv.name, workers)
			}
			if tr.K != base.K || tr.Silhouette != base.Silhouette || tr.CacheHitRate != base.CacheHitRate {
				t.Fatalf("%s workers=%d: run stats diverged: K %d/%d sil %v/%v cache %v/%v",
					kv.name, workers, tr.K, base.K, tr.Silhouette, base.Silhouette,
					tr.CacheHitRate, base.CacheHitRate)
			}
		}
	}
}

// TestClusterDeterministicAcrossKernels extends the kernel sweep to
// the sharded engine: per-cell training pipelines (each with its own
// GEMM crew) must produce a bit-identical merged trace with the
// generic and dispatched kernels at several worker counts.
func TestClusterDeterministicAcrossKernels(t *testing.T) {
	defer vecmath.ForceGeneric(false)
	cfg := ClusterConfig{Sim: smallConfig(11)}
	cfg.Sim.NumUsers = 48
	var base *ClusterTrace
	for _, kv := range kernelVariants {
		vecmath.ForceGeneric(kv.generic)
		for _, workers := range []int{1, 4} {
			c := cfg
			c.Sim.Parallelism = workers
			tr, err := RunCluster(c)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kv.name, workers, err)
			}
			if base == nil {
				base = tr
				continue
			}
			if !reflect.DeepEqual(tr.Records, base.Records) {
				t.Fatalf("%s workers=%d: cluster records diverged", kv.name, workers)
			}
			if tr.Handovers != base.Handovers || tr.CacheHitRate != base.CacheHitRate {
				t.Fatalf("%s workers=%d: cluster stats diverged", kv.name, workers)
			}
		}
	}
}
