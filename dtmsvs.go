// Package dtmsvs is a Go reproduction of "Digital Twin-Assisted
// Resource Demand Prediction for Multicast Short Video Streaming"
// (Huang, Wu, Shen — ICDCS 2023, arXiv:2306.05946).
//
// The library builds user digital twins (UDTs) that collect channel
// condition, location, watching duration and preference; constructs
// multicast groups with a 1D-CNN + DDQN-empowered K-means++ pipeline;
// abstracts per-group swiping probability distributions and
// recommended videos; and predicts each group's radio (resource
// block) and computing (transcode cycle) demand per 5-minute
// reservation interval.
//
// The top-level entry point is Run, which executes a full simulation
// scenario and returns a Trace of predicted-vs-actual demand. The
// experiment runners in experiments.go regenerate the paper's Fig. 3
// panels and the extended evaluation described in DESIGN.md.
//
// Everything is deterministic given Config.Seed and uses only the
// standard library.
package dtmsvs

import (
	"context"
	"io"

	"dtmsvs/internal/cluster"
	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/predict"
	"dtmsvs/internal/sim"
	"dtmsvs/internal/video"
)

// Config parameterizes a simulation scenario. See the field docs in
// internal/sim for defaults; the zero value plus NumUsers, NumBS and
// NumIntervals is a runnable scenario.
type Config = sim.Config

// GroupingConfig configures the two-step multicast group construction
// (1D-CNN compression → DDQN K-selection → K-means++).
type GroupingConfig = grouping.Config

// Trace is a full simulation output: per-(interval, group) records of
// predicted and measured demand, the final swiping distributions, and
// run-level statistics.
type Trace = sim.Trace

// GroupIntervalRecord is one row of a Trace.
type GroupIntervalRecord = sim.GroupIntervalRecord

// SwipeDistribution is a group's per-category swiping probability
// distribution (the Fig. 3(a) artifact).
type SwipeDistribution = predict.SwipeDistribution

// Category is a short-video content category (News … Game).
type Category = video.Category

// The five categories used by the paper's evaluation.
const (
	News   = video.News
	Sports = video.Sports
	Music  = video.Music
	Comedy = video.Comedy
	Game   = video.Game
)

// NumCategories is the size of the category set.
const NumCategories = video.NumCategories

// Run executes a scenario end to end: warm-up browsing, CNN + DDQN
// training, group construction, and NumIntervals of
// predict-then-measure multicast streaming. The whole trace is
// buffered in memory.
//
// Deprecated: Run is a thin shim over the Session API and cannot
// stream, observe or cancel a run in flight. Use Open with the
// Step loop (and a TraceSink for large scenarios) instead.
func Run(cfg Config) (*Trace, error) {
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(context.Background()); err != nil {
			return nil, err
		}
	}
	return s.Trace(), nil
}

// TraceSummary aggregates a trace into run-level statistics.
type TraceSummary = sim.Summary

// WriteTraceCSV writes trace records as CSV with a header row.
func WriteTraceCSV(w io.Writer, records []GroupIntervalRecord) error {
	return sim.WriteRecordsCSV(w, records)
}

// WriteTraceJSON writes trace records as a JSON array.
func WriteTraceJSON(w io.Writer, records []GroupIntervalRecord) error {
	return sim.WriteRecordsJSON(w, records)
}

// ReadTraceJSON decodes a JSON array of trace records.
func ReadTraceJSON(r io.Reader) ([]GroupIntervalRecord, error) {
	return sim.ReadRecordsJSON(r)
}

// ClusterConfig parameterizes a sharded multi-BS cluster run: the
// base scenario plus the shard count (0 = one shard per BS).
type ClusterConfig = cluster.Config

// ClusterTrace is the merged output of a cluster run: per-(interval,
// cell, group) records plus per-cell statistics, handover and churn
// counts, and the aggregate cache hit rate.
type ClusterTrace = cluster.Trace

// ClusterRecord is one row of a ClusterTrace.
type ClusterRecord = cluster.Record

// ClusterCellStats summarizes one coverage cell of a cluster run.
type ClusterCellStats = cluster.CellStats

// CellFault schedules the failure of one cluster coverage cell at a
// scheduling-interval boundary, with an optional later revival. Put
// faults in ClusterConfig.Faults and pick the session's response
// with WithCellFailurePolicy.
type CellFault = faultinject.CellFault

// CellFaultPlan derives a deterministic chaos plan from its own seed:
// which cell dies, at which of the scenario's intervals, and
// whether/when it revives. The same arguments always produce the
// same plan, so a chaotic run replays bit-identically.
func CellFaultPlan(seed int64, cells, intervals int) CellFault {
	return faultinject.CellPlan(seed, cells, intervals)
}

// RunCluster executes a sharded multi-BS scenario: the map is
// partitioned into per-BS coverage cells, each with its own UDT
// pool, edge cache and grouping pipeline; shards of cells run
// concurrently and user twins hand over between cells at interval
// boundaries. The trace is bit-identical for any Parallelism and any
// shard count, and is buffered whole in memory.
//
// Deprecated: RunCluster is a thin shim over the Session API and
// cannot stream, observe or cancel a run in flight. Use OpenCluster
// with the Step loop (and a TraceSink for large scenarios) instead.
func RunCluster(cfg ClusterConfig) (*ClusterTrace, error) {
	s, err := OpenCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(context.Background()); err != nil {
			return nil, err
		}
	}
	return s.Trace(), nil
}

// WriteClusterTraceJSON writes cluster trace records as a JSON array.
func WriteClusterTraceJSON(w io.Writer, records []ClusterRecord) error {
	return cluster.WriteRecordsJSON(w, records)
}

// ReadClusterTraceJSON decodes a JSON array of cluster trace records.
func ReadClusterTraceJSON(r io.Reader) ([]ClusterRecord, error) {
	return cluster.ReadRecordsJSON(r)
}

// WriteClusterTraceCSV writes cluster trace records as CSV with a
// header row.
func WriteClusterTraceCSV(w io.Writer, records []ClusterRecord) error {
	return cluster.WriteRecordsCSV(w, records)
}

// DefaultConfig returns the paper-scale scenario used by the Fig. 3
// reproduction: 100 users on the campus map, 4 base stations, 24
// five-minute reservation intervals, News-heavy catalog. Prefetching
// is disabled (the paper's delivery model has none); the waste
// experiments (E8/E9) enable it explicitly.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		NumUsers:      100,
		NumBS:         4,
		NumIntervals:  24,
		PrefetchDepth: -1,
	}
}
