// This file holds the format-transparent trace reader: one entry
// point that accepts any trace a dtmsvs writer produces — JSON array,
// NDJSON, CSV (either engine's schema) or the binary columnar format
// — detecting the format from the stream's first bytes.
package dtmsvs

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"dtmsvs/internal/tracebin"
	"dtmsvs/internal/traceio"
)

// TraceFormat names one of the trace encodings this package writes.
type TraceFormat string

// The trace encodings DetectTraceFormat can report.
const (
	FormatJSON   TraceFormat = "json"   // indented JSON array (batch helpers)
	FormatNDJSON TraceFormat = "ndjson" // one JSON object per line (NDJSONSink)
	FormatCSV    TraceFormat = "csv"    // header + rows (CSVSink, batch helpers)
	FormatBin    TraceFormat = "bin"    // binary columnar (BinarySink)
)

// DetectTraceFormat sniffs the trace encoding from the stream's head
// without consuming it: the binary magic bytes, else the first
// non-whitespace byte ('[' a JSON array, '{' NDJSON, anything else
// CSV — every CSV header starts with a letter). An empty stream
// reports CSV, whose reader treats it as an empty trace.
func DetectTraceFormat(br *bufio.Reader) TraceFormat {
	if head, err := br.Peek(len(tracebin.Magic())); err == nil && bytes.Equal(head, tracebin.Magic()) {
		return FormatBin
	}
	// Peek far enough to skip leading whitespace in text formats.
	head, _ := br.Peek(512)
	for _, b := range head {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			return FormatJSON
		case '{':
			return FormatNDJSON
		}
		break
	}
	return FormatCSV
}

// ReadTraceRecords decodes a trace in any format this package writes
// — JSON array, NDJSON, CSV (monolithic or cluster schema) or binary
// columnar — auto-detected from the stream's first bytes. Rows
// without a serving cell decode with BS = -1. An empty stream is an
// empty trace.
func ReadTraceRecords(r io.Reader) ([]TraceRecord, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	if _, err := br.Peek(1); err == io.EOF {
		return nil, nil
	}
	switch f := DetectTraceFormat(br); f {
	case FormatBin:
		recs, err := ReadTraceRecordsBin(br)
		if err != nil {
			return recs, err
		}
		return recs, nil
	case FormatJSON:
		return readJSONArrayRecords(br)
	case FormatNDJSON:
		return readNDJSONRecords(br)
	default:
		return readCSVRecords(br)
	}
}

// ReadTraceFile opens and decodes a trace file in any supported
// format.
func ReadTraceFile(path string) ([]TraceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadTraceRecords(f)
	if err != nil {
		return nil, fmt.Errorf("read trace %s: %w", path, err)
	}
	return recs, nil
}

// readJSONArrayRecords decodes a JSON array of records; TraceRecord's
// UnmarshalJSON accepts both engine schemas per element.
func readJSONArrayRecords(r io.Reader) ([]TraceRecord, error) {
	return traceio.ReadJSONArray[TraceRecord](r, "trace")
}

// readCSVRecords decodes a CSV trace in either engine's schema,
// validating the header against the schema the writers emit.
func readCSVRecords(r io.Reader) ([]TraceRecord, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read trace CSV header: %w", err)
	}
	hasBS := len(header) > 0 && header[0] == "bs"
	want := TraceRecord{BS: -1}.CSVHeader()
	if hasBS {
		want = TraceRecord{BS: 0}.CSVHeader()
	}
	if len(header) != len(want) {
		return nil, fmt.Errorf("trace CSV header has %d columns, want %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("trace CSV column %d is %q, want %q", i, header[i], want[i])
		}
	}
	var out []TraceRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("read trace CSV: %w", err)
		}
		rec, err := parseCSVRecord(row, hasBS)
		if err != nil {
			return out, fmt.Errorf("trace CSV line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

// parseCSVRecord decodes one row in field order — the bs prefix when
// present, then the monolithic schema.
func parseCSVRecord(row []string, hasBS bool) (TraceRecord, error) {
	rec := TraceRecord{BS: -1}
	i := 0
	nextInt := func(dst *int) error {
		v, err := strconv.Atoi(row[i])
		if err != nil {
			return fmt.Errorf("column %d: %w", i, err)
		}
		*dst = v
		i++
		return nil
	}
	nextFloat := func(dst *float64) error {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			return fmt.Errorf("column %d: %w", i, err)
		}
		*dst = v
		i++
		return nil
	}
	if hasBS {
		if err := nextInt(&rec.BS); err != nil {
			return rec, err
		}
	}
	g := &rec.GroupIntervalRecord
	for _, step := range []func() error{
		func() error { return nextInt(&g.Interval) },
		func() error { return nextInt(&g.GroupID) },
		func() error { return nextInt(&g.Size) },
		func() error { return nextFloat(&g.PredictedRBs) },
		func() error { return nextFloat(&g.ActualRBs) },
		func() error { return nextInt(&g.AllocatedRBs) },
		func() error { return nextFloat(&g.PredictedCycles) },
		func() error { return nextFloat(&g.ActualCycles) },
		func() error { return nextFloat(&g.PredictedBits) },
		func() error { return nextFloat(&g.ActualBits) },
		func() error { return nextFloat(&g.PredictedWasteBits) },
		func() error { return nextFloat(&g.ActualWasteBits) },
		func() error { return nextFloat(&g.ActualEngagementS) },
		func() error { return nextFloat(&g.WorstSNRdB) },
		func() error { return nextFloat(&g.BitrateBps) },
	} {
		if err := step(); err != nil {
			return rec, err
		}
	}
	return rec, nil
}
