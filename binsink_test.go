package dtmsvs

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtmsvs/internal/traceio"
)

func bufioReader(data []byte) *bufio.Reader {
	return bufio.NewReader(bytes.NewReader(data))
}

// bufferedRun steps a fresh session against a BufferedSink, returning
// the canonical record stream the binary round trip must reproduce,
// plus the per-interval record counts.
func bufferedRun(t *testing.T, open func(opts ...SessionOption) (Session, error)) ([]TraceRecord, []int) {
	t.Helper()
	var sink BufferedSink
	var perInterval []int
	s, err := open(
		WithSink(&sink),
		WithObserver(func(rep IntervalReport) { perInterval = append(perInterval, len(rep.Records)) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	return sink.Records, perInterval
}

// binRun steps the same scenario against a BinarySink and returns the
// encoded stream.
func binRun(t *testing.T, open func(opts ...SessionOption) (Session, error), opts ...BinarySinkOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink, err := NewBinarySink(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := open(WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordBitsEqual compares two trace records field by field, floats
// by their IEEE-754 bits.
func recordBitsEqual(a, b TraceRecord) bool {
	ints := [][2]int{
		{a.BS, b.BS}, {a.Interval, b.Interval}, {a.GroupID, b.GroupID},
		{a.Size, b.Size}, {a.AllocatedRBs, b.AllocatedRBs},
	}
	for _, p := range ints {
		if p[0] != p[1] {
			return false
		}
	}
	floats := [][2]float64{
		{a.PredictedRBs, b.PredictedRBs}, {a.ActualRBs, b.ActualRBs},
		{a.PredictedCycles, b.PredictedCycles}, {a.ActualCycles, b.ActualCycles},
		{a.PredictedBits, b.PredictedBits}, {a.ActualBits, b.ActualBits},
		{a.PredictedWasteBits, b.PredictedWasteBits}, {a.ActualWasteBits, b.ActualWasteBits},
		{a.ActualEngagementS, b.ActualEngagementS}, {a.WorstSNRdB, b.WorstSNRdB},
		{a.BitrateBps, b.BitrateBps},
	}
	for _, p := range floats {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			return false
		}
	}
	return true
}

func assertRecordsBitIdentical(t *testing.T, got, want []TraceRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordBitsEqual(got[i], want[i]) {
			t.Fatalf("record %d not bit-identical:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestBinarySinkRoundTrip is the tentpole's equivalence guarantee:
// the binary stream a session writes decodes bit-identical to the
// BufferedSink record sequence, for both engines, Parallelism
// {1,4,8}, shard counts {1,NumBS}, with and without compression.
func TestBinarySinkRoundTrip(t *testing.T) {
	type opener struct {
		name string
		open func(opts ...SessionOption) (Session, error)
	}
	var cases []opener
	for _, workers := range []int{1, 4, 8} {
		cfg := sessionTestConfig(31, workers)
		cases = append(cases, opener{
			name: "sim/p" + string(rune('0'+workers)),
			open: func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) },
		})
		for _, shards := range []int{1, cfg.NumBS} {
			ccfg := ClusterConfig{Sim: cfg, Shards: shards}
			cases = append(cases, opener{
				name: "cluster/p" + string(rune('0'+workers)) + "/s" + string(rune('0'+shards)),
				open: func(opts ...SessionOption) (Session, error) { return OpenCluster(ccfg, opts...) },
			})
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, _ := bufferedRun(t, tc.open)
			for _, sub := range []struct {
				name string
				opts []BinarySinkOption
			}{
				{"plain", nil},
				{"compressed", []BinarySinkOption{WithBinaryCompression()}},
			} {
				t.Run(sub.name, func(t *testing.T) {
					data := binRun(t, tc.open, sub.opts...)
					got, err := ReadTraceRecordsBin(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					assertRecordsBitIdentical(t, got, want)
					// And through the format-agnostic entry point.
					auto, err := ReadTraceRecords(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					assertRecordsBitIdentical(t, auto, want)
				})
			}
		})
	}
}

// TestReadTraceRecordsAutoDetect runs one scenario out through every
// writer this package has and back through the single format-agnostic
// reader. JSON, NDJSON and bin must round-trip bit-identical; CSV's
// 10-significant-digit floats round-trip through re-encoding.
func TestReadTraceRecordsAutoDetect(t *testing.T) {
	cfg := sessionTestConfig(33, 2)
	open := func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) }
	want, _ := bufferedRun(t, open)

	t.Run("bin", func(t *testing.T) {
		data := binRun(t, open)
		if got := detect(t, data); got != FormatBin {
			t.Fatalf("detected %q", got)
		}
		got, err := ReadTraceRecords(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		assertRecordsBitIdentical(t, got, want)
	})

	t.Run("ndjson", func(t *testing.T) {
		var buf bytes.Buffer
		runSinkSession(t, open, NewNDJSONSink(&buf))
		if got := detect(t, buf.Bytes()); got != FormatNDJSON {
			t.Fatalf("detected %q", got)
		}
		got, err := ReadTraceRecords(&buf)
		if err != nil {
			t.Fatal(err)
		}
		assertRecordsBitIdentical(t, got, want)
	})

	t.Run("json", func(t *testing.T) {
		// The batch JSON helpers are per-engine; marshal the session
		// records through the shared Row schema instead.
		var buf bytes.Buffer
		if err := traceio.WriteJSONArray(&buf, want); err != nil {
			t.Fatal(err)
		}
		if got := detect(t, buf.Bytes()); got != FormatJSON {
			t.Fatalf("detected %q", got)
		}
		got, err := ReadTraceRecords(&buf)
		if err != nil {
			t.Fatal(err)
		}
		assertRecordsBitIdentical(t, got, want)
	})

	t.Run("csv", func(t *testing.T) {
		var buf bytes.Buffer
		runSinkSession(t, open, NewCSVSink(&buf))
		if got := detect(t, buf.Bytes()); got != FormatCSV {
			t.Fatalf("detected %q", got)
		}
		got, err := ReadTraceRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d records, want %d", len(got), len(want))
		}
		// CSV floats carry 10 significant digits; re-encoding the parsed
		// records must reproduce the stream byte for byte.
		var again bytes.Buffer
		cs := NewCSVSink(&again)
		for _, r := range got {
			if err := cs.WriteRecord(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := cs.Flush(); err != nil {
			t.Fatal(err)
		}
		if again.String() != buf.String() {
			t.Fatal("CSV parse/re-encode not a fixed point")
		}
	})
}

func detect(t *testing.T, data []byte) TraceFormat {
	t.Helper()
	return DetectTraceFormat(bufioReader(data))
}

func runSinkSession(t *testing.T, open func(opts ...SessionOption) (Session, error), sink TraceSink) {
	t.Helper()
	s, err := open(WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadTraceFileFormats: the file entry point decodes every format
// from disk, including cluster CSV with its bs column.
func TestReadTraceFileFormats(t *testing.T) {
	ccfg := clusterTestConfig(35, 2, 2)
	open := func(opts ...SessionOption) (Session, error) { return OpenCluster(ccfg, opts...) }
	want, _ := bufferedRun(t, open)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "trace.bin")
	if err := os.WriteFile(binPath, binRun(t, open), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	assertRecordsBitIdentical(t, got, want)

	var csvBuf bytes.Buffer
	runSinkSession(t, open, NewCSVSink(&csvBuf))
	csvPath := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(csvPath, csvBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	gotCSV, err := ReadTraceFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCSV) != len(want) {
		t.Fatalf("CSV file decoded %d records, want %d", len(gotCSV), len(want))
	}
	for i := range gotCSV {
		if gotCSV[i].BS != want[i].BS || gotCSV[i].GroupID != want[i].GroupID {
			t.Fatalf("CSV record %d keys differ", i)
		}
	}

	if _, err := ReadTraceFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

// TestReadTraceRecordsEmpty: an empty stream is an empty trace in
// every detected format.
func TestReadTraceRecordsEmpty(t *testing.T) {
	got, err := ReadTraceRecords(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %d records", err, len(got))
	}
}

// TestBinReaderTypedErrors pins the root sentinels: damage is
// ErrTraceCorrupt, a future version is ErrTraceVersion, and a torn
// tail still yields its whole-block prefix.
func TestBinReaderTypedErrors(t *testing.T) {
	cfg := sessionTestConfig(37, 1)
	open := func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) }
	data := binRun(t, open)

	mut := append([]byte(nil), data...)
	mut[len(mut)-3] ^= 0xFF
	got, err := ReadTraceRecordsBin(bytes.NewReader(mut))
	if !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("corrupt CRC: want ErrTraceCorrupt, got %v", err)
	}
	want, _ := bufferedRun(t, open)
	if len(got) >= len(want) || len(got) == 0 {
		t.Fatalf("torn tail returned %d of %d records", len(got), len(want))
	}
	assertRecordsBitIdentical(t, got, want[:len(got)])

	mut = append([]byte(nil), data...)
	mut[8] = 0x7F
	if _, err := ReadTraceRecordsBin(bytes.NewReader(mut)); !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("future version: want ErrTraceVersion, got %v", err)
	}

	if _, err := ReadTraceRecordsBin(strings.NewReader("DTTRACEBjunk")); !errors.Is(err, ErrTraceCorrupt) && !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("garbage after magic: untyped error %v", err)
	}
}

// TestCSVSinkEmptyRunHeader is the satellite-1 fix: a session that
// ends before its first interval leaves a header-only CSV — the same
// bytes the batch helpers write for an empty trace — for both
// engines' schemas. A BinarySink likewise leaves a valid header-only
// binary file.
func TestCSVSinkEmptyRunHeader(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the run never completes an interval

	t.Run("sim", func(t *testing.T) {
		var buf bytes.Buffer
		s, err := Open(sessionTestConfig(39, 1), WithSink(NewCSVSink(&buf)))
		if err != nil {
			t.Fatal(err)
		}
		if _, serr := s.Step(ctx); serr == nil {
			t.Fatal("cancelled step succeeded")
		}
		if cerr := s.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		var want bytes.Buffer
		if err := WriteTraceCSV(&want, nil); err != nil {
			t.Fatal(err)
		}
		if buf.String() != want.String() {
			t.Fatalf("cancelled run CSV = %q, want the batch empty-trace header %q", buf.String(), want.String())
		}
	})

	t.Run("cluster", func(t *testing.T) {
		var buf bytes.Buffer
		s, err := OpenCluster(clusterTestConfig(39, 1, 1), WithSink(NewCSVSink(&buf)))
		if err != nil {
			t.Fatal(err)
		}
		if _, serr := s.Step(ctx); serr == nil {
			t.Fatal("cancelled step succeeded")
		}
		if cerr := s.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		var want bytes.Buffer
		if err := WriteClusterTraceCSV(&want, nil); err != nil {
			t.Fatal(err)
		}
		if buf.String() != want.String() {
			t.Fatalf("cancelled cluster run CSV = %q, want %q", buf.String(), want.String())
		}
	})

	t.Run("bin", func(t *testing.T) {
		var buf bytes.Buffer
		sink, err := NewBinarySink(&buf)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(sessionTestConfig(39, 1), WithSink(sink))
		if err != nil {
			t.Fatal(err)
		}
		if _, serr := s.Step(ctx); serr == nil {
			t.Fatal("cancelled step succeeded")
		}
		if cerr := s.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if cerr := sink.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		got, err := ReadTraceRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("header-only binary trace unreadable: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("empty run decoded %d records", len(got))
		}
	})
}

// TestBinaryBatchHelpers round-trips the per-engine batch writers.
func TestBinaryBatchHelpers(t *testing.T) {
	ccfg := clusterTestConfig(41, 2, 2)
	trace, err := RunCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteClusterTraceBin(&buf, trace.Records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadClusterTraceBin(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace.Records) {
		t.Fatalf("cluster bin round trip: %d of %d records", len(back), len(trace.Records))
	}
	for i := range back {
		if back[i] != trace.Records[i] {
			t.Fatalf("cluster record %d differs", i)
		}
	}

	mono := make([]GroupIntervalRecord, 0, len(trace.Records))
	for _, r := range trace.Records {
		mono = append(mono, r.GroupIntervalRecord)
	}
	buf.Reset()
	if err := WriteTraceBin(&buf, mono); err != nil {
		t.Fatal(err)
	}
	backMono, err := ReadTraceBin(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(backMono) != len(mono) {
		t.Fatalf("mono bin round trip: %d of %d records", len(backMono), len(mono))
	}
	for i := range backMono {
		if backMono[i] != mono[i] {
			t.Fatalf("mono record %d differs", i)
		}
	}
}
