// This file is the public checkpoint/restore surface of the Session
// API. Checkpoint serializes a session's complete deterministic state
// at an interval boundary — session counters, engine state, trained
// weights, twins, caches and every random-stream position — into the
// versioned binary format of internal/checkpoint. Resume and
// ResumeCluster rebuild a session from the same configuration and a
// checkpoint stream; the resumed session produces a trace suffix
// bit-identical to the uninterrupted run at the same seed, for either
// engine and any Parallelism / shard layout.
package dtmsvs

import (
	"fmt"
	"io"

	"dtmsvs/internal/checkpoint"
)

// Sentinel errors for checkpoint streams, re-exported so callers can
// classify failures without importing internal packages. All three
// are errors.Is-compatible targets.
var (
	// ErrCheckpointCorrupt marks a stream that is structurally broken:
	// truncated, bit-flipped (CRC mismatch), or semantically
	// inconsistent with the configuration it claims to match.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointVersion marks a checkpoint written by an
	// incompatible format version.
	ErrCheckpointVersion = checkpoint.ErrVersion
	// ErrCheckpointConfig marks a checkpoint whose engine kind or
	// configuration fingerprint does not match the session it is being
	// restored into.
	ErrCheckpointConfig = checkpoint.ErrConfigMismatch
)

// Checkpoint implements Session. The stream is self-describing
// (versioned header, per-section CRCs) and safe to write through
// checkpoint.WriteFile for atomic on-disk persistence.
func (s *session) Checkpoint(w io.Writer) error {
	switch {
	case s.closed:
		return fmt.Errorf("checkpoint of closed session: %w", ErrSessionClosed)
	case s.failed != nil:
		return fmt.Errorf("checkpoint of failed session: %w", s.failed)
	}
	fp, err := s.eng.fingerprint()
	if err != nil {
		return err
	}
	t0 := s.met.ckptEncode.Start()
	counted := &countingWriter{w: w}
	cw := checkpoint.NewWriter(counted, s.eng.kind(), fp)
	if err := cw.Section("session", func(e *checkpoint.Enc) {
		e.Int(s.next)
		e.Int(s.warmupDone)
		e.Bool(s.trained)
		e.Bool(s.finished)
	}); err != nil {
		return err
	}
	if err := s.eng.writeState(cw); err != nil {
		return err
	}
	if err := cw.Finish(); err != nil {
		return err
	}
	s.met.ckptEncode.ObserveSince(t0)
	s.met.ckptBytes.Set(float64(counted.n))
	s.met.ckpts.Inc()
	return nil
}

// resume restores the session from a checkpoint stream. The session
// must be freshly opened with the identical configuration (the header
// fingerprint enforces this).
func (s *session) resume(r io.Reader) error {
	fp, err := s.eng.fingerprint()
	if err != nil {
		return err
	}
	cr, err := checkpoint.NewReader(r, s.eng.kind(), fp)
	if err != nil {
		return err
	}
	d, err := cr.Section("session")
	if err != nil {
		return err
	}
	next := d.Int()
	warmupDone := d.Int()
	trained := d.Bool()
	finished := d.Bool()
	if err := d.Close(); err != nil {
		return err
	}
	switch {
	case next < 0 || next > s.eng.intervals(),
		warmupDone < 0 || warmupDone > s.eng.warmupIntervals(),
		finished && next < s.eng.intervals(),
		next > 0 && (!trained || warmupDone < s.eng.warmupIntervals()):
		return fmt.Errorf("checkpoint counters inconsistent (next=%d warmup=%d trained=%v finished=%v): %w",
			next, warmupDone, trained, finished, ErrCheckpointCorrupt)
	}
	if err := s.eng.readState(cr); err != nil {
		return err
	}
	if err := cr.Finish(); err != nil {
		return err
	}
	s.next = next
	s.warmupDone = warmupDone
	s.trained = trained
	s.finished = finished
	if s.finished {
		// The run had already completed; stamp the (suffix-only) trace
		// so Done/Trace behave as after a normal final Step.
		s.eng.finish()
	}
	return nil
}

// Resume opens a monolithic-engine session from cfg and restores the
// checkpoint previously written by (*SimSession).Checkpoint under the
// identical configuration. Stepping the resumed session yields the
// same records, in the same order, as the uninterrupted run would
// have produced from that boundary on. The session's Trace holds only
// the resumed suffix; the prefix lives wherever the original run's
// sink put it.
func Resume(cfg Config, r io.Reader, opts ...SessionOption) (*SimSession, error) {
	s, err := Open(cfg, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.resume(r); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// ResumeCluster is Resume for the sharded cluster engine, restoring a
// checkpoint written by (*ClusterSession).Checkpoint.
func ResumeCluster(cfg ClusterConfig, r io.Reader, opts ...SessionOption) (*ClusterSession, error) {
	s, err := OpenCluster(cfg, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.resume(r); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
