// This file holds the binary columnar trace sink and its reader: the
// compact streaming alternative to NDJSON/CSV when a run is
// trace-IO-bound. The format itself lives in internal/tracebin.
package dtmsvs

import (
	"io"

	"dtmsvs/internal/cluster"
	"dtmsvs/internal/sim"
	"dtmsvs/internal/tracebin"
)

// Typed binary-trace reader errors, re-exported so callers can
// distinguish damage from a future format without importing the
// internal package.
var (
	// ErrTraceCorrupt marks a binary trace whose framing, checksums or
	// schema do not hold together.
	ErrTraceCorrupt = tracebin.ErrCorrupt
	// ErrTraceVersion marks a binary trace written by a format version
	// this build does not understand.
	ErrTraceVersion = tracebin.ErrVersion
)

// BinarySink streams records in the binary columnar trace format
// (internal/tracebin): records buffer in memory until the session's
// interval-boundary Flush, which encodes them as column blocks —
// split per serving cell in cluster runs — in parallel on a worker
// crew and hands the underlying writer a single Write. After any
// Flush the backing store holds a well-formed whole-interval prefix,
// the same crash contract as NDJSON and CSV; a run that ends before
// its first interval leaves a valid header-only file.
//
// Call Close when the run is over to release the encode workers (and
// write the header, if nothing ever flushed). Decode with
// ReadTraceRecordsBin or the format-agnostic ReadTraceRecords.
type BinarySink struct {
	w    *tracebin.Writer
	recs []tracebin.Record
	err  error
}

// BinarySinkOption tunes a BinarySink.
type BinarySinkOption func(*tracebin.WriterOptions)

// WithBinaryWorkers sets the number of goroutines encoding column
// blocks within one flush (default: GOMAXPROCS; 1 = sequential).
func WithBinaryWorkers(n int) BinarySinkOption {
	return func(o *tracebin.WriterOptions) { o.Workers = n }
}

// WithBinaryCompression enables per-block DEFLATE; each block keeps
// whichever of raw/compressed is smaller.
func WithBinaryCompression() BinarySinkOption {
	return func(o *tracebin.WriterOptions) { o.Compress = true }
}

// NewBinarySink returns a binary columnar sink over w.
func NewBinarySink(w io.Writer, opts ...BinarySinkOption) (*BinarySink, error) {
	var o tracebin.WriterOptions
	for _, opt := range opts {
		opt(&o)
	}
	bw, err := tracebin.NewWriter(w, o)
	if err != nil {
		return nil, err
	}
	return &BinarySink{w: bw}, nil
}

// WriteRecord implements TraceSink, buffering the record until the
// next Flush.
func (s *BinarySink) WriteRecord(r TraceRecord) error {
	if s.err != nil {
		return s.err
	}
	s.recs = append(s.recs, r.GroupIntervalRecord.BinRecord(r.BS))
	return nil
}

// Flush implements TraceSink: the buffered interval is encoded and
// written in one underlying Write. On failure the buffered records
// are kept, so a retried Flush (after a transient error that consumed
// nothing, per the WithSinkRetry contract) re-encodes the identical
// bytes.
func (s *BinarySink) Flush() error {
	if s.err != nil {
		return s.err
	}
	if err := s.w.Flush(s.recs); err != nil {
		return err
	}
	s.recs = s.recs[:0]
	return nil
}

// Close releases the encode workers and, if nothing ever flushed,
// writes the stream header so even an empty run leaves a valid file.
// The underlying writer is not closed.
func (s *BinarySink) Close() error { return s.w.Close() }

// ReadTraceRecordsBin decodes the binary columnar stream a BinarySink
// writes (either engine's schema; monolithic rows carry BS = -1).
// Records decoded before an error are returned alongside it, so a
// torn tail still yields its readable whole-interval prefix.
func ReadTraceRecordsBin(r io.Reader) ([]TraceRecord, error) {
	rows, err := tracebin.ReadAll(r)
	out := make([]TraceRecord, len(rows))
	for i, b := range rows {
		out[i] = TraceRecord{BS: b.BS, GroupIntervalRecord: sim.RecordFromBin(b)}
	}
	return out, err
}

// WriteTraceBin writes monolithic trace records in the binary
// columnar format (the batch analog of BinarySink).
func WriteTraceBin(w io.Writer, records []GroupIntervalRecord) error {
	return sim.WriteRecordsBin(w, records)
}

// ReadTraceBin decodes a binary columnar trace into monolithic
// records, dropping cell tags.
func ReadTraceBin(r io.Reader) ([]GroupIntervalRecord, error) {
	return sim.ReadRecordsBin(r)
}

// WriteClusterTraceBin writes cluster trace records in the binary
// columnar format.
func WriteClusterTraceBin(w io.Writer, records []ClusterRecord) error {
	return cluster.WriteRecordsBin(w, records)
}

// ReadClusterTraceBin decodes a binary columnar trace into cluster
// records.
func ReadClusterTraceBin(r io.Reader) ([]ClusterRecord, error) {
	return cluster.ReadRecordsBin(r)
}
