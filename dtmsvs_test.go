package dtmsvs

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func smallConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		NumUsers:         24,
		NumBS:            4,
		CatalogSize:      120,
		NumIntervals:     4,
		TicksPerInterval: 10,
		WarmupIntervals:  1,
		CompressorEpochs: 3,
		AgentEpisodes:    30,
	}
}

func TestRunFacade(t *testing.T) {
	tr, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) == 0 {
		t.Fatal("empty trace")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(9)
	if cfg.Seed != 9 || cfg.NumUsers != 100 || cfg.NumBS != 4 || cfg.NumIntervals != 24 {
		t.Fatalf("default config %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig3aShape(t *testing.T) {
	res, err := RunFig3a(context.Background(), smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupID < 0 {
		t.Fatalf("group id %d", res.GroupID)
	}
	for c := range res.CDF {
		if len(res.CDF[c]) == 0 {
			t.Fatalf("category %d has empty CDF", c)
		}
		for i := 1; i < len(res.CDF[c]); i++ {
			if res.CDF[c][i] < res.CDF[c][i-1] {
				t.Fatalf("category %d CDF not monotone", c)
			}
		}
	}
	// The News-dominant group watches News longer than Game.
	if res.ExpectedWatchFraction[News.Index()] <= res.ExpectedWatchFraction[Game.Index()] {
		t.Fatalf("news %v not above game %v",
			res.ExpectedWatchFraction[News.Index()], res.ExpectedWatchFraction[Game.Index()])
	}
}

func TestFig3bSeriesAligned(t *testing.T) {
	res, err := RunFig3b(context.Background(), smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != len(res.Actual) || len(res.Predicted) == 0 {
		t.Fatalf("series %d/%d", len(res.Predicted), len(res.Actual))
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("accuracy %v", res.Accuracy)
	}
	if res.OverallAccuracy < 0 || res.OverallAccuracy > 1 {
		t.Fatalf("overall accuracy %v", res.OverallAccuracy)
	}
}

func TestSharedTraceExtractors(t *testing.T) {
	tr, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fig3aFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3bFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.GroupID != b.GroupID {
		t.Fatalf("panels disagree on group: %d vs %d", a.GroupID, b.GroupID)
	}
	empty := &Trace{}
	if _, err := Fig3aFromTrace(empty); !errors.Is(err, ErrExperiment) {
		t.Fatalf("want ErrExperiment, got %v", err)
	}
	if _, err := Fig3bFromTrace(empty); !errors.Is(err, ErrExperiment) {
		t.Fatalf("want ErrExperiment, got %v", err)
	}
}

func TestRunComputeDemand(t *testing.T) {
	// Seed chosen so the tiny scenario actually incurs transcode
	// cycles (some seeds stream entirely cache-warm at one rung,
	// which makes the volume metric undefined).
	res, err := RunComputeDemand(context.Background(), smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != len(res.Actual) || len(res.Predicted) == 0 {
		t.Fatal("misaligned compute series")
	}
}

func TestRunGroupingAblationDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	cfg := smallConfig(5)
	rows, err := RunGroupingAblation(context.Background(), cfg, []GroupingVariant{
		{Name: "ddqn+cnn", UseCNN: true},
		{Name: "fixed-k2", FixedK: 2, UseCNN: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].K != 2 {
		t.Fatalf("fixed-k2 ended with K=%d", rows[1].K)
	}
	for _, r := range rows {
		if r.RadioAccuracy < 0 || r.RadioAccuracy > 1 {
			t.Fatalf("accuracy %v for %s", r.RadioAccuracy, r.Variant.Name)
		}
	}
}

func TestRunAccuracyVsUsers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	cfg := smallConfig(6)
	rows, err := RunAccuracyVsUsers(context.Background(), cfg, []int{16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Users != 16 || rows[1].Users != 32 {
		t.Fatalf("rows %+v", rows)
	}
}

func TestRunReservation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows, err := RunReservation(context.Background(), smallConfig(9), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ViolationRate < 0 || r.ViolationRate > 1 {
			t.Fatalf("violation rate %v for %s", r.ViolationRate, r.Policy)
		}
		if r.Waste < 0 || r.Deficit < 0 {
			t.Fatalf("negative accounting for %s: %+v", r.Policy, r)
		}
	}
	if _, err := RunReservation(context.Background(), smallConfig(9), -1); err == nil {
		t.Fatal("negative margin must fail")
	}
}

func TestRunWasteVsPrefetch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows, err := RunWasteVsPrefetch(context.Background(), smallConfig(10), []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Deeper prefetch must waste at least as much traffic.
	if rows[1].WasteShare < rows[0].WasteShare {
		t.Fatalf("waste not monotone in depth: %v then %v", rows[0].WasteShare, rows[1].WasteShare)
	}
	for _, r := range rows {
		if r.WasteShare < 0 || r.WasteShare > 1 {
			t.Fatalf("waste share %v", r.WasteShare)
		}
	}
}

func TestRunQoEVsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows, err := RunQoEVsBudget(context.Background(), smallConfig(11), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// A tight budget cannot raise QoE above unlimited.
	if rows[1].MeanQoE > rows[0].MeanQoE+1e-9 {
		t.Fatalf("budget QoE %v above unlimited %v", rows[1].MeanQoE, rows[0].MeanQoE)
	}
	if rows[0].UnderGrantRate != 0 {
		t.Fatalf("unlimited run reports under-grants: %v", rows[0].UnderGrantRate)
	}
}

func TestRunRadioAccuracyMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	st, err := RunRadioAccuracyMultiSeed(context.Background(), smallConfig(0), []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 2 {
		t.Fatalf("seeds %d", st.Seeds)
	}
	if st.Min > st.Mean || st.Mean > st.Max {
		t.Fatalf("ordering violated: %+v", st)
	}
	if st.Mean < 0 || st.Mean > 1 {
		t.Fatalf("mean %v", st.Mean)
	}
}

func TestRunPredictorBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows, err := RunPredictorBaselines(context.Background(), smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want dt + 3 baselines", len(rows))
	}
	if rows[0].Name != "dt-scheme" {
		t.Fatalf("first row %q", rows[0].Name)
	}
}

// ExampleRun demonstrates the minimal end-to-end usage shown in the
// README.
func ExampleRun() {
	trace, err := Run(Config{
		Seed:             7,
		NumUsers:         24,
		NumBS:            4,
		CatalogSize:      120,
		NumIntervals:     2,
		TicksPerInterval: 10,
		WarmupIntervals:  1,
		CompressorEpochs: 2,
		AgentEpisodes:    20,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(trace.Records) > 0)
	// Output: true
}
