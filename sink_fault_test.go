package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"dtmsvs/internal/faultinject"
)

// runWithSink steps a fresh monolithic session against sink until
// done or the first error, returning that error.
func runWithSink(t *testing.T, cfg Config, sink TraceSink, opts ...SessionOption) (Session, error) {
	t.Helper()
	s, err := Open(cfg, append([]SessionOption{WithSink(sink)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			return s, serr
		}
	}
	return s, nil
}

// completeLines reports whether every byte of an NDJSON stream
// belongs to a newline-terminated record.
func completeLines(s string) bool {
	return s == "" || strings.HasSuffix(s, "\n")
}

// TestSessionSinkRecordFaults: a sink failing on WriteRecord — both
// abruptly and via a short write — surfaces as ErrSink from Step,
// never from Close, and the backing store never gains bytes after the
// reported error.
func TestSessionSinkRecordFaults(t *testing.T) {
	cfg := sessionTestConfig(21, 2)
	clean, perInterval := ndjsonRun(t, func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) })

	for _, mode := range []faultinject.Mode{faultinject.FailWrite, faultinject.ShortWrite} {
		t.Run(mode.String(), func(t *testing.T) {
			// Fail midway through interval 1's records.
			fault := faultinject.Fault{Mode: mode, N: perInterval[0] + 1 + perInterval[1]/2}
			var buf bytes.Buffer
			sink := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf), fault)
			s, serr := runWithSink(t, cfg, sink)
			if !errors.Is(serr, ErrSink) || !errors.Is(serr, faultinject.ErrInjected) {
				t.Fatalf("want ErrSink wrapping injected fault, got %v", serr)
			}
			var ie *faultinject.Error
			if !errors.As(serr, &ie) || ie.Op != "write" {
				t.Fatalf("injected error unreachable through the chain: %v", serr)
			}
			frozen := buf.String()
			if frozen != linePrefix(clean, perInterval[0]) {
				t.Fatal("backing store holds more than the last whole-interval flush")
			}
			// The session is permanently failed; Close must not push the
			// torn interval out.
			if _, serr := s.Step(context.Background()); !errors.Is(serr, ErrSink) {
				t.Fatalf("step after sink failure: want the latched ErrSink, got %v", serr)
			}
			if cerr := s.Close(); cerr != nil {
				t.Fatalf("close after sink failure: %v", cerr)
			}
			if buf.String() != frozen {
				t.Fatal("Close grew the backing store after a reported sink error")
			}
		})
	}
}

// TestSessionSinkFlushFault: a sink whose Flush fails surfaces
// ErrSink from the Step that hit the boundary, freezes the backing
// store, and keeps Close quiet.
func TestSessionSinkFlushFault(t *testing.T) {
	cfg := sessionTestConfig(21, 2)
	clean, perInterval := ndjsonRun(t, func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) })

	// The session flushes once per completed interval; fail the second.
	var buf bytes.Buffer
	sink := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf), faultinject.Fault{Mode: faultinject.FailFlush, N: 2})
	s, serr := runWithSink(t, cfg, sink)
	if !errors.Is(serr, ErrSink) || !errors.Is(serr, faultinject.ErrInjected) {
		t.Fatalf("want ErrSink wrapping injected flush fault, got %v", serr)
	}
	frozen := buf.String()
	if frozen != linePrefix(clean, perInterval[0]) {
		t.Fatal("backing store diverged from the last successful flush")
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatalf("close after flush failure: %v", cerr)
	}
	if buf.String() != frozen {
		t.Fatal("Close re-flushed a sink that already reported failure")
	}
}

// TestSessionSinkByteLevelFaults: NDJSON and CSV sinks over an
// io.Writer that fails or short-writes keep the session contract —
// the error comes out of Step as ErrSink, and whatever reached the
// backing store before the failure is a whole-record (line) prefix
// with nothing appended afterwards.
func TestSessionSinkByteLevelFaults(t *testing.T) {
	cfg := sessionTestConfig(23, 2)
	for _, tc := range []struct {
		name string
		mk   func(w *faultinject.Writer) TraceSink
	}{
		{"ndjson", func(w *faultinject.Writer) TraceSink { return NewNDJSONSink(w) }},
		{"csv", func(w *faultinject.Writer) TraceSink { return NewCSVSink(w) }},
	} {
		for _, mode := range []faultinject.Mode{faultinject.FailWrite, faultinject.ShortWrite} {
			t.Run(tc.name+"/"+mode.String(), func(t *testing.T) {
				// Both stream sinks buffer and hit the io.Writer on Flush;
				// fail the second flush's write.
				var buf bytes.Buffer
				fw := faultinject.NewWriter(&buf, faultinject.Fault{Mode: mode, N: 2})
				s, serr := runWithSink(t, cfg, tc.mk(fw))
				if !errors.Is(serr, ErrSink) {
					t.Fatalf("want ErrSink, got %v", serr)
				}
				frozen := buf.String()
				if mode == faultinject.FailWrite && !completeLines(frozen) {
					t.Fatalf("fail-write leaked a partial record: %q", frozen[max(0, len(frozen)-60):])
				}
				if cerr := s.Close(); cerr != nil {
					t.Fatalf("close after byte-level fault: %v", cerr)
				}
				if buf.String() != frozen {
					t.Fatal("Close pushed bytes after the reported error")
				}
			})
		}
	}
}

// TestSessionSinkTransientRetry: transient sink faults are retried
// within the configured budget and the run completes with a stream
// bit-identical to a fault-free run; with retries disabled the same
// fault is fatal.
func TestSessionSinkTransientRetry(t *testing.T) {
	cfg := sessionTestConfig(25, 2)
	clean, perInterval := ndjsonRun(t, func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) })

	transientWrite := faultinject.Fault{Mode: faultinject.FailWrite, N: 2, Transient: true}
	transientFlush := faultinject.Fault{Mode: faultinject.FailFlush, N: 1, Transient: true}

	var buf bytes.Buffer
	sink := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf), transientWrite, transientFlush)
	s, serr := runWithSink(t, cfg, sink, WithSinkRetry(3, 0))
	if serr != nil {
		t.Fatalf("transient faults should be absorbed by retry: %v", serr)
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if buf.String() != clean {
		t.Fatal("retried run diverged from fault-free run")
	}
	var total int
	for _, n := range perInterval {
		total += n
	}
	// One extra WriteRecord (the retry) and one extra Flush.
	if got := sink.Writes(); got != total+1 {
		t.Fatalf("sink saw %d writes, want %d", got, total+1)
	}

	// WithSinkRetry(1, 0) turns the same transient fault fatal.
	var buf2 bytes.Buffer
	sink2 := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf2), transientWrite)
	s2, serr2 := runWithSink(t, cfg, sink2, WithSinkRetry(1, 0))
	if !errors.Is(serr2, ErrSink) {
		t.Fatalf("retries disabled: want ErrSink, got %v", serr2)
	}
	if cerr := s2.Close(); cerr != nil {
		t.Fatal(cerr)
	}
}

// transientSinkErr is a retryable sink failure minted by the tests.
type transientSinkErr struct{}

func (transientSinkErr) Error() string   { return "transient sink outage" }
func (transientSinkErr) Transient() bool { return true }

// cancelingSink fails one scheduled call with a transient error after
// cancelling the step's context — an operator Ctrl-C landing in the
// middle of a sink outage, right before the retry backoff starts.
type cancelingSink struct {
	TraceSink
	cancel  context.CancelFunc
	onFlush bool
	calls   int
	at      int
}

func (s *cancelingSink) WriteRecord(r TraceRecord) error {
	if s.onFlush {
		return s.TraceSink.WriteRecord(r)
	}
	if s.calls++; s.calls == s.at {
		s.cancel()
		return transientSinkErr{}
	}
	return s.TraceSink.WriteRecord(r)
}

func (s *cancelingSink) Flush() error {
	if !s.onFlush {
		return s.TraceSink.Flush()
	}
	if s.calls++; s.calls == s.at {
		s.cancel()
		return transientSinkErr{}
	}
	return s.TraceSink.Flush()
}

// TestSessionSinkRetryBackoffCancellation: the retry backoff is
// context-aware on both sink paths. With an hour-long backoff
// schedule, a cancellation pending when the wait starts abandons the
// remaining retries immediately, and the error chain carries both the
// context error and the sink failure under the ErrSink envelope.
func TestSessionSinkRetryBackoffCancellation(t *testing.T) {
	cfg := sessionTestConfig(27, 2)
	for _, tc := range []struct {
		name    string
		onFlush bool
	}{
		{"write", false},
		{"flush", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var buf bytes.Buffer
			sink := &cancelingSink{TraceSink: NewNDJSONSink(&buf), cancel: cancel, onFlush: tc.onFlush, at: 1}
			s, err := Open(cfg, WithSink(sink), WithSinkRetry(5, time.Hour))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			start := time.Now()
			_, serr := s.Step(ctx)
			elapsed := time.Since(start)
			if !errors.Is(serr, ErrSink) {
				t.Fatalf("want ErrSink, got %v", serr)
			}
			if !errors.Is(serr, context.Canceled) {
				t.Fatalf("context error missing from the chain: %v", serr)
			}
			if !errors.Is(serr, transientSinkErr{}) {
				t.Fatalf("sink failure missing from the chain: %v", serr)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("backoff rode out the schedule despite cancellation: %v", elapsed)
			}
		})
	}
}

// TestSessionSinkFailureSequencing: after a permanent mid-interval
// WriteRecord failure, the session's error surface stays typed and
// stable — Step returns the latched ErrSink, Checkpoint refuses with
// the same chain, the broken sink never sees another Flush (a second
// scheduled flush fault never gets the chance to fire), and the
// backing store stays a whole-interval prefix through Close.
func TestSessionSinkFailureSequencing(t *testing.T) {
	cfg := sessionTestConfig(21, 2)
	clean, perInterval := ndjsonRun(t, func(opts ...SessionOption) (Session, error) { return Open(cfg, opts...) })

	var buf bytes.Buffer
	sink := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf),
		faultinject.Fault{Mode: faultinject.FailWrite, N: perInterval[0] + 1 + perInterval[1]/2},
		faultinject.Fault{Mode: faultinject.FailFlush, N: 2},
	)
	s, serr := runWithSink(t, cfg, sink)
	if !errors.Is(serr, ErrSink) || !errors.Is(serr, faultinject.ErrInjected) {
		t.Fatalf("want ErrSink wrapping the injected write fault, got %v", serr)
	}
	frozen := buf.String()
	if frozen != linePrefix(clean, perInterval[0]) || !completeLines(frozen) {
		t.Fatal("backing store is not the last whole-interval prefix")
	}
	flushes := sink.Flushes()

	if _, again := s.Step(context.Background()); !errors.Is(again, ErrSink) {
		t.Fatalf("step after failure: want the latched ErrSink, got %v", again)
	}
	cerr := s.Checkpoint(io.Discard)
	if !errors.Is(cerr, ErrSink) || !errors.Is(cerr, faultinject.ErrInjected) {
		t.Fatalf("checkpoint of sink-broken session: want the typed step failure, got %v", cerr)
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatalf("close after sink failure: %v", cerr)
	}
	if sink.Flushes() != flushes {
		t.Fatalf("broken sink flushed again: %d -> %d", flushes, sink.Flushes())
	}
	if buf.String() != frozen {
		t.Fatal("bytes appended to the backing store after the reported failure")
	}
}
