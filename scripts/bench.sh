#!/usr/bin/env bash
# Runs the repo benchmark suite with allocation stats and records the
# aggregated results to BENCH_baseline.json so every PR has a perf
# trajectory to compare against.
#
#   BENCH_COUNT  repetitions per benchmark (default 5)
#   BENCH_TIME   -benchtime value (default: go's 1s)
#   BENCH_OUT    output path (default BENCH_baseline.json)
#   BENCH_TAGS   build tags for the bench binary (e.g. purego)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-5}"
BENCHTIME="${BENCH_TIME:-}"
OUT="${BENCH_OUT:-BENCH_baseline.json}"
TAGS="${BENCH_TAGS:-}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

ARGS=(test -run '^$' -bench . -benchmem -count "$COUNT")
if [ -n "$BENCHTIME" ]; then
	ARGS+=(-benchtime "$BENCHTIME")
fi
if [ -n "$TAGS" ]; then
	ARGS+=(-tags "$TAGS")
fi

# Emit the machine facts the SIMD/parallel kernels depend on ahead of
# the go test stream, in the "key: value" shape benchjson.py already
# parses, so BENCH_*.json baselines say which kernel and worker pool
# they were measured with and stay comparable across machines.
{
	if [ -r /proc/cpuinfo ]; then
		FEATS=""
		grep -q ' avx2' /proc/cpuinfo && FEATS="avx2"
		grep -qw 'fma' /proc/cpuinfo && FEATS="${FEATS:+$FEATS,}fma"
		echo "cpufeatures: ${FEATS:-none}"
	else
		echo "cpufeatures: unknown"
	fi
	echo "goamd64: $(go env GOAMD64)"
	echo "workers: $(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)"
	echo "tags: ${TAGS:-none}"
	go "${ARGS[@]}" .
} | tee "$RAW"
python3 scripts/benchjson.py "$COUNT" <"$RAW" >"$OUT"
echo "wrote $OUT"
