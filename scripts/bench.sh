#!/usr/bin/env bash
# Runs the repo benchmark suite with allocation stats and records the
# aggregated results to BENCH_baseline.json so every PR has a perf
# trajectory to compare against.
#
#   BENCH_COUNT  repetitions per benchmark (default 5)
#   BENCH_TIME   -benchtime value (default: go's 1s)
#   BENCH_OUT    output path (default BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-5}"
BENCHTIME="${BENCH_TIME:-}"
OUT="${BENCH_OUT:-BENCH_baseline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

ARGS=(test -run '^$' -bench . -benchmem -count "$COUNT")
if [ -n "$BENCHTIME" ]; then
	ARGS+=(-benchtime "$BENCHTIME")
fi

go "${ARGS[@]}" . | tee "$RAW"
python3 scripts/benchjson.py "$COUNT" <"$RAW" >"$OUT"
echo "wrote $OUT"
