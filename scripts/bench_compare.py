#!/usr/bin/env python3
"""Bench regression gate: diff a fresh benchmark run against the
committed baseline and fail on significant regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--wall 1.3] [--allocs 1.5]
                     [--allocs-only] [--overhead-gate ON:OFF:RATIO ...]

Both inputs are the JSON documents produced by scripts/benchjson.py.
A benchmark regresses when its wall time (ns_per_op) exceeds
WALL x baseline or its allocations (allocs_per_op) exceed
ALLOCS x baseline. Benchmarks present on only one side are skipped by
the gate and reported as "added" / "removed" (new benches appear, old
ones get renamed — neither must fail the gate).

--allocs-only disables the wall-time gate entirely: allocation counts
are deterministic per binary, so this mode is safe on shared or
heterogeneous CI hardware where wall-clock ratios are noise.

--overhead-gate ON:OFF:RATIO compares two benchmarks *within the
current run* — no baseline involved, so it is immune to hardware
drift. The ON bench's wall time must stay within RATIO x the OFF
bench's (skipped under --allocs-only) and its allocations within
RATIO x in every mode. This pins instrumented-vs-bare pairs like
BenchmarkStepInstrumented/{on,off}. Repeatable.

Exit status: 0 clean, 1 regression found, 2 usage/IO error.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--wall", type=float, default=1.3,
                    help="max allowed ns/op ratio (default 1.3)")
    ap.add_argument("--allocs", type=float, default=1.5,
                    help="max allowed allocs/op ratio (default 1.5)")
    ap.add_argument("--allocs-only", action="store_true",
                    help="gate on allocations only (hardware-safe; "
                         "wall time is reported but never fails)")
    ap.add_argument("--overhead-gate", action="append", default=[],
                    metavar="ON:OFF:RATIO",
                    help="pair-gate within the current run: bench ON must "
                         "stay within RATIO x bench OFF (wall unless "
                         "--allocs-only; allocations always)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    gates = [("allocs_per_op", args.allocs, "allocs")]
    if not args.allocs_only:
        gates.insert(0, ("ns_per_op", args.wall, "wall"))

    regressions = []
    added = sorted(set(cur) - set(base))
    removed = sorted(set(base) - set(cur))
    print(f"{'benchmark':<42}{'wall':>10}{'allocs':>10}")
    for name in sorted(base):
        if name not in cur:
            continue  # reported below as removed; never gated
        b, c = base[name], cur[name]
        cells = {}
        for key, limit, label in (("ns_per_op", args.wall, "wall"),
                                  ("allocs_per_op", args.allocs, "allocs")):
            bv, cv = b.get(key), c.get(key)
            gated = any(label == g[2] for g in gates)
            if bv is None or cv is None:
                cells[label] = "n/a"
                continue
            if bv == 0:
                # A zero-alloc baseline has no ratio: any nonzero
                # current value is a regression outright (this is the
                # exact class the allocs-only gate protects).
                cells[label] = "0x" if cv == 0 else f"0->{cv:.0f}"
                if gated and cv > 0:
                    regressions.append(
                        f"{name}: {label} {cv:.0f} vs zero baseline")
                continue
            ratio = cv / bv
            cells[label] = f"{ratio:.2f}x"
            if gated and ratio > limit:
                regressions.append(
                    f"{name}: {label} {cv:.0f} vs baseline {bv:.0f} "
                    f"({ratio:.2f}x > {limit:.2f}x)")
        print(f"{name:<42}{cells['wall']:>10}{cells['allocs']:>10}")
    for name in added:
        print(f"{name:<42}{'(added)':>10}{'':>10}")
    for name in removed:
        print(f"{name:<42}{'(removed)':>10}{'':>10}")
    if added or removed:
        print(f"\n{len(added)} added / {len(removed)} removed "
              "benchmark(s) skipped by the gate "
              "(regenerate the baseline to adopt them)")

    for spec in args.overhead_gate:
        parts = spec.rsplit(":", 1)
        names = parts[0].split(":") if len(parts) == 2 else []
        if len(parts) != 2 or len(names) != 2:
            print(f"bench_compare: bad --overhead-gate spec {spec!r} "
                  "(want ON:OFF:RATIO)", file=sys.stderr)
            sys.exit(2)
        on_name, off_name = names
        try:
            limit = float(parts[1])
        except ValueError:
            print(f"bench_compare: bad --overhead-gate ratio in {spec!r}",
                  file=sys.stderr)
            sys.exit(2)
        on, off = cur.get(on_name), cur.get(off_name)
        if on is None or off is None:
            # The pair lives in the current run by construction; a
            # missing side means the bench was renamed or dropped, and
            # silently passing would disable the gate forever.
            print(f"bench_compare: --overhead-gate needs both {on_name} "
                  f"and {off_name} in {args.current}", file=sys.stderr)
            sys.exit(2)
        keys = [("allocs_per_op", "allocs")]
        if not args.allocs_only:
            keys.insert(0, ("ns_per_op", "wall"))
        for key, label in keys:
            ov, fv = on.get(key), off.get(key)
            if ov is None or fv is None:
                continue
            if fv == 0:
                if ov > 0:
                    regressions.append(
                        f"{on_name}: {label} {ov:.0f} vs zero in "
                        f"{off_name} (overhead gate)")
                continue
            ratio = ov / fv
            print(f"overhead {label:<6} {on_name} / {off_name} = "
                  f"{ratio:.3f}x (limit {limit:.2f}x)")
            if ratio > limit:
                regressions.append(
                    f"{on_name}: {label} overhead {ratio:.3f}x over "
                    f"{off_name} exceeds {limit:.2f}x")

    if regressions:
        print("\nREGRESSIONS:", file=sys.stderr)
        for r in regressions:
            print("  " + r, file=sys.stderr)
        sys.exit(1)
    mode = (f"allocs <= {args.allocs}x (allocs-only)" if args.allocs_only
            else f"wall <= {args.wall}x, allocs <= {args.allocs}x")
    print(f"\nbench-check: no regressions ({mode})")


if __name__ == "__main__":
    main()
