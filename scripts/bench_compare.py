#!/usr/bin/env python3
"""Bench regression gate: diff a fresh benchmark run against the
committed baseline and fail on significant regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--wall 1.3] [--allocs 1.5]

Both inputs are the JSON documents produced by scripts/benchjson.py.
A benchmark regresses when its wall time (ns_per_op) exceeds
WALL x baseline or its allocations (allocs_per_op) exceed
ALLOCS x baseline. Benchmarks present on only one side are reported
but never fail the gate (new benches appear, old ones get renamed).
Exit status: 0 clean, 1 regression found, 2 usage/IO error.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--wall", type=float, default=1.3,
                    help="max allowed ns/op ratio (default 1.3)")
    ap.add_argument("--allocs", type=float, default=1.5,
                    help="max allowed allocs/op ratio (default 1.5)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    print(f"{'benchmark':<42}{'wall':>10}{'allocs':>10}")
    for name in sorted(base):
        if name not in cur:
            print(f"{name:<42}{'(gone)':>10}{'':>10}")
            continue
        b, c = base[name], cur[name]
        rows = []
        for key, limit, label in (("ns_per_op", args.wall, "wall"),
                                  ("allocs_per_op", args.allocs, "allocs")):
            bv, cv = b.get(key), c.get(key)
            if not bv or cv is None:
                rows.append("n/a")
                continue
            ratio = cv / bv
            rows.append(f"{ratio:.2f}x")
            if ratio > limit:
                regressions.append(
                    f"{name}: {label} {cv:.0f} vs baseline {bv:.0f} "
                    f"({ratio:.2f}x > {limit:.2f}x)")
        print(f"{name:<42}{rows[0]:>10}{rows[1]:>10}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<42}{'(new)':>10}{'':>10}")

    if regressions:
        print("\nREGRESSIONS:", file=sys.stderr)
        for r in regressions:
            print("  " + r, file=sys.stderr)
        sys.exit(1)
    print("\nbench-check: no regressions "
          f"(wall <= {args.wall}x, allocs <= {args.allocs}x)")


if __name__ == "__main__":
    main()
