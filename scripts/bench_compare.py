#!/usr/bin/env python3
"""Bench regression gate: diff a fresh benchmark run against the
committed baseline and fail on significant regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--wall 1.3] [--allocs 1.5]
                     [--allocs-only]

Both inputs are the JSON documents produced by scripts/benchjson.py.
A benchmark regresses when its wall time (ns_per_op) exceeds
WALL x baseline or its allocations (allocs_per_op) exceed
ALLOCS x baseline. Benchmarks present on only one side are skipped by
the gate and reported as "added" / "removed" (new benches appear, old
ones get renamed — neither must fail the gate).

--allocs-only disables the wall-time gate entirely: allocation counts
are deterministic per binary, so this mode is safe on shared or
heterogeneous CI hardware where wall-clock ratios are noise.

Exit status: 0 clean, 1 regression found, 2 usage/IO error.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--wall", type=float, default=1.3,
                    help="max allowed ns/op ratio (default 1.3)")
    ap.add_argument("--allocs", type=float, default=1.5,
                    help="max allowed allocs/op ratio (default 1.5)")
    ap.add_argument("--allocs-only", action="store_true",
                    help="gate on allocations only (hardware-safe; "
                         "wall time is reported but never fails)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    gates = [("allocs_per_op", args.allocs, "allocs")]
    if not args.allocs_only:
        gates.insert(0, ("ns_per_op", args.wall, "wall"))

    regressions = []
    added = sorted(set(cur) - set(base))
    removed = sorted(set(base) - set(cur))
    print(f"{'benchmark':<42}{'wall':>10}{'allocs':>10}")
    for name in sorted(base):
        if name not in cur:
            continue  # reported below as removed; never gated
        b, c = base[name], cur[name]
        cells = {}
        for key, limit, label in (("ns_per_op", args.wall, "wall"),
                                  ("allocs_per_op", args.allocs, "allocs")):
            bv, cv = b.get(key), c.get(key)
            gated = any(label == g[2] for g in gates)
            if bv is None or cv is None:
                cells[label] = "n/a"
                continue
            if bv == 0:
                # A zero-alloc baseline has no ratio: any nonzero
                # current value is a regression outright (this is the
                # exact class the allocs-only gate protects).
                cells[label] = "0x" if cv == 0 else f"0->{cv:.0f}"
                if gated and cv > 0:
                    regressions.append(
                        f"{name}: {label} {cv:.0f} vs zero baseline")
                continue
            ratio = cv / bv
            cells[label] = f"{ratio:.2f}x"
            if gated and ratio > limit:
                regressions.append(
                    f"{name}: {label} {cv:.0f} vs baseline {bv:.0f} "
                    f"({ratio:.2f}x > {limit:.2f}x)")
        print(f"{name:<42}{cells['wall']:>10}{cells['allocs']:>10}")
    for name in added:
        print(f"{name:<42}{'(added)':>10}{'':>10}")
    for name in removed:
        print(f"{name:<42}{'(removed)':>10}{'':>10}")
    if added or removed:
        print(f"\n{len(added)} added / {len(removed)} removed "
              "benchmark(s) skipped by the gate "
              "(regenerate the baseline to adopt them)")

    if regressions:
        print("\nREGRESSIONS:", file=sys.stderr)
        for r in regressions:
            print("  " + r, file=sys.stderr)
        sys.exit(1)
    mode = (f"allocs <= {args.allocs}x (allocs-only)" if args.allocs_only
            else f"wall <= {args.wall}x, allocs <= {args.allocs}x")
    print(f"\nbench-check: no regressions ({mode})")


if __name__ == "__main__":
    main()
