#!/usr/bin/env python3
"""Aggregate `go test -bench` output into a JSON benchmark record.

Reads the raw benchmark text on stdin, averages repeated counts per
benchmark, and emits a stable JSON document (sorted keys) suitable for
committing as BENCH_baseline.json.
"""
import json
import sys


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    env = {}
    samples = {}
    for line in sys.stdin:
        line = line.strip()
        # cpufeatures/goamd64/workers/tags come from bench.sh's
        # prologue: they pin which kernel dispatch (AVX2 vs generic),
        # codegen level and worker pool produced the numbers.
        for key in ("goos", "goarch", "cpu", "pkg", "cpufeatures", "goamd64", "workers", "tags"):
            if line.startswith(key + ":"):
                env[key] = line.split(":", 1)[1].strip()
        if not line.startswith("Benchmark"):
            continue
        tok = line.split()
        if len(tok) < 3:
            continue
        name = tok[0].split("-")[0]  # strip -GOMAXPROCS suffix
        rec = samples.setdefault(name, {"iterations": [], "metrics": {}})
        try:
            rec["iterations"].append(int(tok[1]))
        except ValueError:
            continue
        # Remaining tokens come in (value, unit) pairs.
        vals = tok[2:]
        for v, unit in zip(vals[::2], vals[1::2]):
            try:
                fv = float(v)
            except ValueError:
                continue
            rec["metrics"].setdefault(unit, []).append(fv)

    benches = []
    for name in sorted(samples):
        rec = samples[name]
        out = {"name": name, "runs": len(rec["iterations"])}
        for unit, vs in sorted(rec["metrics"].items()):
            key = {
                "ns/op": "ns_per_op",
                "B/op": "bytes_per_op",
                "allocs/op": "allocs_per_op",
            }.get(unit, unit)
            out[key] = sum(vs) / len(vs)
        benches.append(out)

    doc = {
        "count": count,
        "env": env,
        "benchmarks": benches,
    }
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
