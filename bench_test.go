package dtmsvs

import (
	"context"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"dtmsvs/internal/cnn"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/vecmath"
)

// benchConfig is the scenario all figure/table benches share: small
// enough for a bench iteration, large enough to exhibit the paper's
// shapes.
func benchConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		NumUsers:         60,
		NumBS:            4,
		NumIntervals:     12,
		CompressorEpochs: 8,
		AgentEpisodes:    80,
		PrefetchDepth:    -1, // paper's delivery model has no prefetch
		Parallelism:      0,  // all cores; the trace is identical at any setting
	}
}

// BenchmarkFig3a regenerates Fig. 3(a): the cumulative swiping
// probability distribution of the News-dominant multicast group. The
// reported metrics are the expected watch fractions of News and Game
// (News must be highest, Game lowest).
func BenchmarkFig3a(b *testing.B) {
	var last *Fig3aResult
	for i := 0; i < b.N; i++ {
		res, err := RunFig3a(context.Background(), benchConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.ExpectedWatchFraction[News.Index()], "news-watch-frac")
		b.ReportMetric(last.ExpectedWatchFraction[Game.Index()], "game-watch-frac")
	}
}

// BenchmarkFig3b regenerates Fig. 3(b): predicted vs actual radio
// resource demand. The reported metric is the prediction accuracy;
// the paper reports 95.04 % on its scenario.
func BenchmarkFig3b(b *testing.B) {
	var last *Fig3bResult
	for i := 0; i < b.N; i++ {
		res, err := RunFig3b(context.Background(), benchConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Accuracy*100, "group-accuracy-%")
		b.ReportMetric(last.OverallAccuracy*100, "overall-accuracy-%")
	}
}

// BenchmarkComputeDemand regenerates experiment E1: computing
// resource demand prediction (volume accuracy).
func BenchmarkComputeDemand(b *testing.B) {
	var last *ComputeDemandResult
	for i := 0; i < b.N; i++ {
		res, err := RunComputeDemand(context.Background(), benchConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.VolumeAccuracy*100, "compute-accuracy-%")
	}
}

// BenchmarkGroupingAblation regenerates experiment E2: DDQN-selected
// K vs fixed-K vs raw features. Reported metric: accuracy advantage
// of the full scheme over the worst arm (percentage points).
func BenchmarkGroupingAblation(b *testing.B) {
	variants := []GroupingVariant{
		{Name: "ddqn+cnn", UseCNN: true},
		{Name: "fixed-k8", FixedK: 8, UseCNN: true},
	}
	var rows []GroupingAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunGroupingAblation(context.Background(), benchConfig(42), variants)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].RadioAccuracy*100, "ddqn-accuracy-%")
		b.ReportMetric(rows[1].RadioAccuracy*100, "fixed8-accuracy-%")
	}
}

// BenchmarkAccuracyVsUsers regenerates experiment E3 at two
// population sizes.
func BenchmarkAccuracyVsUsers(b *testing.B) {
	var rows []UsersSweepRow
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(42)
		cfg.NumIntervals = 8
		var err error
		rows, err = RunAccuracyVsUsers(context.Background(), cfg, []int{40, 120})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].RadioAccuracy*100, "n40-accuracy-%")
		b.ReportMetric(rows[1].RadioAccuracy*100, "n120-accuracy-%")
	}
}

// BenchmarkPredictorBaselines regenerates experiment E4: the DT
// scheme against last-value / moving-average / EWMA forecasters.
func BenchmarkPredictorBaselines(b *testing.B) {
	var rows []PredictorRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunPredictorBaselines(context.Background(), benchConfig(42))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Accuracy*100, r.Name+"-%")
	}
}

// BenchmarkReservation regenerates experiment E7: radio resource
// reservation with 10 % headroom. Reported metrics: waste of the
// prediction-driven policy vs static peak provisioning.
func BenchmarkReservation(b *testing.B) {
	var rows []ReservationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunReservation(context.Background(), benchConfig(42), 0.1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[0].Waste, "prediction-waste")
		b.ReportMetric(rows[1].Waste, "peak-waste")
		b.ReportMetric(rows[0].ViolationRate*100, "prediction-violations-%")
	}
}

// BenchmarkWasteVsPrefetch regenerates experiment E8: wasted traffic
// share at shallow vs deep prefetch. Reported metrics: waste share at
// depth 1 and depth 8 (deeper prefetch → more waste).
func BenchmarkWasteVsPrefetch(b *testing.B) {
	var rows []WasteRow
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(42)
		cfg.NumIntervals = 8
		var err error
		rows, err = RunWasteVsPrefetch(context.Background(), cfg, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].WasteShare*100, "depth1-waste-%")
		b.ReportMetric(rows[1].WasteShare*100, "depth8-waste-%")
	}
}

// BenchmarkQoEVsBudget regenerates experiment E9: experienced quality
// under an unlimited vs a tight shared radio budget.
func BenchmarkQoEVsBudget(b *testing.B) {
	var rows []QoEBudgetRow
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(42)
		cfg.NumIntervals = 8
		var err error
		rows, err = RunQoEVsBudget(context.Background(), cfg, []int{0, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].MeanQoE, "unlimited-qoe")
		b.ReportMetric(rows[1].MeanQoE, "budget3-qoe")
	}
}

// BenchmarkAccuracyVsChurn regenerates experiment E10: prediction
// accuracy with and without user churn.
func BenchmarkAccuracyVsChurn(b *testing.B) {
	var rows []ChurnRow
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(42)
		cfg.NumIntervals = 8
		var err error
		rows, err = RunAccuracyVsChurn(context.Background(), cfg, []float64{0, 0.1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].RadioAccuracy*100, "nochurn-accuracy-%")
		b.ReportMetric(rows[1].RadioAccuracy*100, "churn10-accuracy-%")
	}
}

// BenchmarkCNNCompression regenerates experiment E5: reconstruction
// error of the 1D-CNN compressor at code dim 8 on synthetic UDT
// windows.
func BenchmarkCNNCompression(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mkWindows := func(n int) []vecmath.Vec {
		ws := make([]vecmath.Vec, n)
		for i := range ws {
			w := make(vecmath.Vec, 5*16)
			phase := float64(i%4) * math.Pi / 2
			for j := range w {
				w[j] = 0.6*math.Sin(float64(j)/3+phase) + 0.05*rng.NormFloat64()
			}
			ws[i] = w
		}
		return ws
	}
	windows := mkWindows(32)
	var lastLoss float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := cnn.New(cnn.Config{
			Channels: 5, Window: 16, Filters: 8, Kernel: 3, Pool: 2, CodeDim: 8,
		}, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		loss, err := comp.Fit(windows, 10, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		lastLoss = loss
	}
	b.ReportMetric(lastLoss, "recon-loss")
}

// BenchmarkDDQNTraining regenerates experiment E6: DDQN convergence
// on the K-selection MDP. Reported metric: mean reward of the last 20
// episodes (higher is better; compare against the exhaustive oracle
// reward reported alongside).
func BenchmarkDDQNTraining(b *testing.B) {
	mkTwins := benchTwins(b)
	var tail float64
	var oracle float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(4))
		builder, err := grouping.New(grouping.Config{
			WindowSteps: 16, PosScale: 2000, KMin: 2, KMax: 6, UseCNN: true,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := builder.TrainCompressor(mkTwins, 10); err != nil {
			b.Fatal(err)
		}
		rewards, err := builder.TrainAgent(mkTwins, 120)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rewards[len(rewards)-20:] {
			sum += r
		}
		tail = sum / 20
		_, oracle, err = builder.BestKExhaustive(mkTwins)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tail, "tail-reward")
	b.ReportMetric(oracle, "oracle-reward")
}

// BenchmarkMatMul compares the vecmath blocked kernel against the
// textbook triple loop on the minibatch-training GEMM shape
// (batch 32 × hidden 64 through a 64-wide dense layer). Both sweep
// the inner dimension in ascending order — the kernel's determinism
// contract — so their outputs are bit-identical; only the memory
// access pattern differs.
func BenchmarkMatMul(b *testing.B) {
	const m, k, n = 32, 64, 64
	rng := rand.New(rand.NewSource(9))
	a := vecmath.MustMatrix(m, k)
	w := vecmath.MustMatrix(k, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	dst := vecmath.MustMatrix(m, n)
	b.Run("tiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := vecmath.MatMulInto(dst, a, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Interleaved in-binary A/B of the kernel dispatch: "generic"
	// forces the scalar AXPY micro-kernel, so tiled/generic is the
	// SIMD speedup on this machine (they are equal without AVX2).
	b.Run("generic", func(b *testing.B) {
		vecmath.ForceGeneric(true)
		defer vecmath.ForceGeneric(false)
		for i := 0; i < b.N; i++ {
			if err := vecmath.MatMulInto(dst, a, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < m; r++ {
				ar := a.Row(r)
				dr := dst.Row(r)
				for c := 0; c < n; c++ {
					var s float64
					for kk := 0; kk < k; kk++ {
						s += ar[kk] * w.At(kk, c)
					}
					dr[c] = s
				}
			}
		}
	})
}

// BenchmarkMatMulParallel measures the pool-parallel GEMM fan-out on
// a city-scale shape (the monolithic large-N training GEMMs the
// ROADMAP targets): one sub-benchmark per worker count, bit-identical
// outputs, wall-clock gap = the row-block speedup on this machine
// (~1× on a single-core host).
func BenchmarkMatMulParallel(b *testing.B) {
	const m, k, n = 256, 256, 256
	rng := rand.New(rand.NewSource(10))
	a := vecmath.MustMatrix(m, k)
	w := vecmath.MustMatrix(k, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	dst := vecmath.MustMatrix(m, n)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"w1", 1}, {"wall", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			pool := vecmath.NewGEMMPool(bc.workers)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.MatMulInto(dst, a, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchClusterConfig is the sharded scenario the cluster benches
// share: large enough that the per-cell pipelines dominate, small
// enough for a bench iteration.
func benchClusterConfig(seed int64, workers int) ClusterConfig {
	return ClusterConfig{
		Sim: Config{
			Seed:             seed,
			NumUsers:         1200,
			NumBS:            8,
			NumIntervals:     4,
			TicksPerInterval: 10,
			WarmupIntervals:  1,
			CompressorEpochs: 2,
			AgentEpisodes:    8,
			ChurnPerInterval: 0.02,
			PrefetchDepth:    -1,
			Parallelism:      workers,
		},
	}
}

// BenchmarkCluster measures the sharded multi-BS engine end to end —
// including the per-cell streaming phase, which the monolithic engine
// runs sequentially — at 1 worker and at all cores. The trace is
// bit-identical across the sub-benchmarks; on multicore hardware the
// wall-clock gap is the shard-level speedup. Reported metrics: twin
// handovers and radio prediction accuracy.
func BenchmarkCluster(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"w1", 1}, {"wall", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			var last *ClusterTrace
			for i := 0; i < b.N; i++ {
				tr, err := RunCluster(benchClusterConfig(42, bc.workers))
				if err != nil {
					b.Fatal(err)
				}
				last = tr
			}
			if last != nil {
				acc, err := last.RadioAccuracy()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(last.Handovers), "handovers")
				b.ReportMetric(acc*100, "radio-accuracy-%")
			}
		})
	}
}

// BenchmarkTraceSink measures what the streaming redesign buys at
// examples/city scale: the retained heap after delivering a
// city-sized record stream (12 intervals × ~4k group-cells ≈ 50k
// records, the shape a 50k-user cluster run emits) through the old
// whole-trace buffering versus the streaming sinks (NDJSON, CSV, and
// the binary columnar format). The "retained-MB" metric is live heap
// attributable to the sink after a forced GC — the buffered sink
// holds every record, the streaming sinks hold only their encoder
// buffers. The streaming sub-benchmarks also report encode throughput
// (records/s) and output density (bytes/record); the Makefile's
// overhead gate holds bin at ≤0.2× ndjson's wall time (i.e. ≥5×
// faster) and the baseline pins bin's bytes/record at well under 0.4×
// of ndjson's.
func BenchmarkTraceSink(b *testing.B) {
	const records = 50_000
	mkRecord := func(i int) TraceRecord {
		return TraceRecord{
			BS: i % 16,
			GroupIntervalRecord: GroupIntervalRecord{
				Interval:     i / 4096,
				GroupID:      i % 7,
				Size:         40,
				PredictedRBs: float64(i%13) + 0.5,
				ActualRBs:    float64(i%13) + 0.25,
				ActualBits:   7e8,
			},
		}
	}
	heapAlloc := func() float64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	}
	// mkSink builds a fresh sink over the counting writer each
	// iteration; closeSink (nil for sinks without Close) releases any
	// resources before the retained-heap sample.
	run := func(b *testing.B, mkSink func(*countingWriter) TraceSink, closeSink func(TraceSink) error) {
		var retained float64
		cw := countingWriter{w: io.Discard}
		for i := 0; i < b.N; i++ {
			cw.n = 0
			before := heapAlloc()
			sink := mkSink(&cw)
			for r := 0; r < records; r++ {
				if err := sink.WriteRecord(mkRecord(r)); err != nil {
					b.Fatal(err)
				}
				if r%4096 == 4095 { // interval boundary
					if err := sink.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := sink.Flush(); err != nil {
				b.Fatal(err)
			}
			if closeSink != nil {
				if err := closeSink(sink); err != nil {
					b.Fatal(err)
				}
			}
			retained = heapAlloc() - before
			runtime.KeepAlive(sink)
		}
		b.ReportMetric(retained/1e6, "retained-MB")
		if cw.n > 0 {
			b.ReportMetric(float64(cw.n)/records, "bytes/record")
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("buffered", func(b *testing.B) {
		run(b, func(*countingWriter) TraceSink { return &BufferedSink{} }, nil)
	})
	b.Run("ndjson", func(b *testing.B) {
		run(b, func(cw *countingWriter) TraceSink { return NewNDJSONSink(cw) }, nil)
	})
	b.Run("csv", func(b *testing.B) {
		run(b, func(cw *countingWriter) TraceSink { return NewCSVSink(cw) }, nil)
	})
	b.Run("bin", func(b *testing.B) {
		run(b, func(cw *countingWriter) TraceSink {
			s, err := NewBinarySink(cw)
			if err != nil {
				b.Fatal(err)
			}
			return s
		}, func(s TraceSink) error { return s.(*BinarySink).Close() })
	})
}

// BenchmarkStepInstrumented measures the marginal cost of a mounted
// metrics registry on the steady-state Step path: "off" runs a bare
// session, "on" the same session with WithMetrics. The prologue
// (warm-up, training, group build) happens outside the timer; each
// iteration is one post-prologue interval. make bench-check holds the
// on/off pair within 2% wall and equal allocations via the
// bench_compare.py overhead gate.
func BenchmarkStepInstrumented(b *testing.B) {
	for _, bc := range []struct {
		name    string
		metrics bool
	}{{"off", false}, {"on", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchConfig(42)
			cfg.NumIntervals = b.N + 3
			opts := []SessionOption{WithSink(DiscardSink{})}
			if bc.metrics {
				opts = append(opts, WithMetrics(NewMetricsRegistry()))
			}
			s, err := Open(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Prologue plus two settling intervals outside the timer.
			for i := 0; i < 3; i++ {
				if _, serr := s.Step(context.Background()); serr != nil {
					b.Fatal(serr)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, serr := s.Step(context.Background()); serr != nil {
					b.Fatal(serr)
				}
			}
		})
	}
}
