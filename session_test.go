package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"dtmsvs/internal/cluster"
	"dtmsvs/internal/sim"
)

// sessionTestConfig exercises churn, regrouping and every parallel
// stage while staying fast enough to run many times.
func sessionTestConfig(seed int64, workers int) Config {
	return Config{
		Seed:             seed,
		NumUsers:         24,
		NumBS:            2,
		NumIntervals:     4,
		TicksPerInterval: 6,
		WarmupIntervals:  1,
		RegroupEvery:     2,
		CompressorEpochs: 2,
		AgentEpisodes:    10,
		ChurnPerInterval: 0.1,
		PrefetchDepth:    -1,
		Parallelism:      workers,
	}
}

// TestSessionMatchesRun is the batch-equivalence guarantee: stepping
// a session by hand produces the exact trace the engine-level batch
// path (sim.Simulation.Run — the pre-session API, which the internal
// determinism suites pin) produces, and the deprecated Run shim
// agrees with both.
func TestSessionMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := sessionTestConfig(11, workers)
		eng, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		shim, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shim.Records, want.Records) {
			t.Fatalf("workers %d: Run shim diverged from engine batch path", workers)
		}
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !s.Done() {
			rep, serr := s.Step(context.Background())
			if serr != nil {
				t.Fatalf("workers %d step %d: %v", workers, steps, serr)
			}
			if rep.Interval != steps {
				t.Fatalf("workers %d: report interval %d at step %d", workers, rep.Interval, steps)
			}
			steps++
		}
		if steps != cfg.NumIntervals {
			t.Fatalf("workers %d: %d steps for %d intervals", workers, steps, cfg.NumIntervals)
		}
		if s.Interval() != cfg.NumIntervals {
			t.Fatalf("workers %d: Interval() = %d", workers, s.Interval())
		}
		got := s.Trace()
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Fatalf("workers %d: session records diverged from Run", workers)
		}
		if got.K != want.K || got.Silhouette != want.Silhouette ||
			got.CacheHitRate != want.CacheHitRate || got.ChurnedUsers != want.ChurnedUsers {
			t.Fatalf("workers %d: run stats diverged", workers)
		}
		if !reflect.DeepEqual(got.SwipeByGroup, want.SwipeByGroup) {
			t.Fatalf("workers %d: swipe distributions diverged", workers)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterSessionMatchesRunCluster is the cluster-side
// batch-equivalence guarantee across shard counts: the session path
// matches the engine-level cluster.Run, and so does the shim.
func TestClusterSessionMatchesRunCluster(t *testing.T) {
	for _, shards := range []int{1, 2} { // 2 == NumBS
		cfg := ClusterConfig{Sim: sessionTestConfig(7, 4), Shards: shards}
		want, err := cluster.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		shim, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shim.Records, want.Records) {
			t.Fatalf("shards %d: RunCluster shim diverged from engine batch path", shards)
		}
		s, err := OpenCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !s.Done() {
			if _, serr := s.Step(context.Background()); serr != nil {
				t.Fatalf("shards %d: %v", shards, serr)
			}
		}
		got := s.Trace()
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Fatalf("shards %d: session records diverged from RunCluster", shards)
		}
		if !reflect.DeepEqual(got.Cells, want.Cells) {
			t.Fatalf("shards %d: cell stats diverged", shards)
		}
		if got.Handovers != want.Handovers || got.ChurnedUsers != want.ChurnedUsers ||
			got.CacheHitRate != want.CacheHitRate {
			t.Fatalf("shards %d: run stats diverged", shards)
		}
	}
}

// TestSessionSinkAndObservers: the sink receives exactly the trace's
// records (and then owns them — the session retains none), observers
// see every interval in order, progress counts to completion, and the
// AccuracyTracker matches the batch metrics.
func TestSessionSinkAndObservers(t *testing.T) {
	cfg := sessionTestConfig(3, 2)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var sink BufferedSink
	var acc AccuracyTracker
	var seen []int
	var progress [][2]int
	s, err := Open(cfg,
		WithSink(&sink),
		WithObserver(func(rep IntervalReport) { seen = append(seen, rep.Interval) }),
		WithObserver(acc.Observe),
		WithProgress(func(done, total int) { progress = append(progress, [2]int{done, total}) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	if len(sink.Records) != len(want.Records) {
		t.Fatalf("sink has %d records, want %d", len(sink.Records), len(want.Records))
	}
	for i, r := range sink.Records {
		if r.BS != -1 {
			t.Fatalf("monolithic record %d has BS %d", i, r.BS)
		}
		if r.GroupIntervalRecord != want.Records[i] {
			t.Fatalf("sink record %d diverged", i)
		}
	}
	if len(s.Trace().Records) != 0 {
		t.Fatalf("session retained %d records despite sink", len(s.Trace().Records))
	}
	if s.Trace().K != want.K {
		t.Fatalf("stats-only trace K %d, want %d", s.Trace().K, want.K)
	}
	for i, iv := range seen {
		if iv != i {
			t.Fatalf("observer saw intervals %v", seen)
		}
	}
	if len(progress) != cfg.NumIntervals || progress[len(progress)-1] != [2]int{cfg.NumIntervals, cfg.NumIntervals} {
		t.Fatalf("progress %v", progress)
	}
	wantAcc, err := want.RadioAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	gotAcc, err := acc.RadioAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if gotAcc != wantAcc {
		t.Fatalf("tracker accuracy %v, batch %v", gotAcc, wantAcc)
	}
	wantC, err := want.ComputeAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := acc.ComputeAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if gotC != wantC {
		t.Fatalf("tracker compute accuracy %v, batch %v", gotC, wantC)
	}
}

// TestEmptyScenario: degenerate configs fail with the typed
// ErrEmptyScenario from Open, OpenCluster and the shims.
func TestEmptyScenario(t *testing.T) {
	noUsers := sessionTestConfig(1, 1)
	noUsers.NumUsers = 0
	noIntervals := sessionTestConfig(1, 1)
	noIntervals.NumIntervals = 0
	for name, cfg := range map[string]Config{"no users": noUsers, "no intervals": noIntervals} {
		if _, err := Open(cfg); !errors.Is(err, ErrEmptyScenario) {
			t.Fatalf("Open %s: want ErrEmptyScenario, got %v", name, err)
		}
		if _, err := Run(cfg); !errors.Is(err, ErrEmptyScenario) {
			t.Fatalf("Run %s: want ErrEmptyScenario, got %v", name, err)
		}
		if _, err := OpenCluster(ClusterConfig{Sim: cfg}); !errors.Is(err, ErrEmptyScenario) {
			t.Fatalf("OpenCluster %s: want ErrEmptyScenario, got %v", name, err)
		}
		if _, err := RunCluster(ClusterConfig{Sim: cfg}); !errors.Is(err, ErrEmptyScenario) {
			t.Fatalf("RunCluster %s: want ErrEmptyScenario, got %v", name, err)
		}
	}
	// Negative counts stay plain config errors, and every empty-scenario
	// error still matches the broad config class.
	negative := sessionTestConfig(1, 1)
	negative.NumUsers = -1
	if _, err := Open(negative); err == nil || errors.Is(err, ErrEmptyScenario) {
		t.Fatalf("negative users: got %v", err)
	}
}

// TestSessionDoneAndClosed: stepping past the end and after Close
// yields the typed sentinel errors.
func TestSessionDoneAndClosed(t *testing.T) {
	cfg := sessionTestConfig(5, 2)
	cfg.NumIntervals = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := s.Step(context.Background()); serr != nil {
		t.Fatal(serr)
	}
	if !s.Done() {
		t.Fatal("session not done after final interval")
	}
	if _, serr := s.Step(context.Background()); !errors.Is(serr, ErrSessionDone) {
		t.Fatalf("want ErrSessionDone, got %v", serr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double Close: want ErrSessionClosed, got %v", err)
	}
	if _, serr := s.Step(context.Background()); !errors.Is(serr, ErrSessionClosed) {
		t.Fatalf("want ErrSessionClosed, got %v", serr)
	}
	if cerr := s.Checkpoint(io.Discard); !errors.Is(cerr, ErrSessionClosed) {
		t.Fatalf("Checkpoint after Close: want ErrSessionClosed, got %v", cerr)
	}
}

// TestTraceRecordEncodings: the unified record type round-trips both
// schemas through NDJSON and renders the right CSV header per engine.
func TestTraceRecordEncodings(t *testing.T) {
	mono := TraceRecord{BS: -1, GroupIntervalRecord: GroupIntervalRecord{Interval: 2, GroupID: 1, Size: 9, ActualRBs: 3.25}}
	cell := TraceRecord{BS: 3, GroupIntervalRecord: GroupIntervalRecord{Interval: 1, GroupID: 0, Size: 4, ActualRBs: 1.5}}

	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	for _, r := range []TraceRecord{mono, cell} {
		if err := sink.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d NDJSON lines", len(lines))
	}
	if strings.Contains(lines[0], `"bs"`) {
		t.Fatalf("monolithic record leaked a bs field: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], `{"bs":3,`) {
		t.Fatalf("cluster record missing leading bs: %s", lines[1])
	}
	back, err := ReadTraceRecordsNDJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != mono || back[1] != cell {
		t.Fatalf("NDJSON round trip diverged: %+v", back)
	}

	buf.Reset()
	csvSink := NewCSVSink(&buf)
	if err := csvSink.WriteRecord(cell); err != nil {
		t.Fatal(err)
	}
	if err := csvSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "bs,interval,group_id") {
		t.Fatalf("cluster CSV header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	buf.Reset()
	csvSink = NewCSVSink(&buf)
	if err := csvSink.WriteRecord(mono); err != nil {
		t.Fatal(err)
	}
	if err := csvSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "interval,group_id") {
		t.Fatalf("monolithic CSV header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

// failingSink passes records through to an inner sink until a given
// record count, then errors — simulating a writer that dies mid-interval.
type failingSink struct {
	inner   TraceSink
	failAt  int
	written int
}

func (f *failingSink) WriteRecord(r TraceRecord) error {
	if f.written >= f.failAt {
		return errors.New("disk full")
	}
	f.written++
	return f.inner.WriteRecord(r)
}

func (f *failingSink) Flush() error { return f.inner.Flush() }

// TestSinkFailureKeepsWholeIntervalPrefix: when WriteRecord dies
// partway through an interval, neither the failing Step nor Close may
// flush the torn interval — the backing store keeps exactly the
// whole-interval prefix of the last successful flush.
func TestSinkFailureKeepsWholeIntervalPrefix(t *testing.T) {
	cfg := sessionTestConfig(9, 2)
	full, perInterval := ndjsonRun(t, func(opts ...SessionOption) (Session, error) {
		return Open(cfg, opts...)
	})
	if len(perInterval) < 2 || perInterval[1] < 2 {
		t.Fatalf("scenario too small to tear an interval: %v", perInterval)
	}
	// Fail on the second record of interval 1.
	failAt := perInterval[0] + 1
	var buf bytes.Buffer
	sink := &failingSink{inner: NewNDJSONSink(&buf), failAt: failAt}
	s, err := Open(cfg, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := s.Step(context.Background()); serr != nil {
		t.Fatal(serr)
	}
	if _, serr := s.Step(context.Background()); serr == nil {
		t.Fatal("torn-interval step must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := linePrefix(full, perInterval[0])
	if buf.String() != want {
		t.Fatalf("backing store holds %d bytes, want the %d-byte whole-interval prefix",
			buf.Len(), len(want))
	}
}
