//go:build amd64 && !purego

package vecmath

// axpyUseAVX2 is the init-time dispatch decision: true when CPUID
// reports AVX2 (with OS support for the YMM state). ForceGeneric can
// clear it at runtime for same-binary A/B comparisons.
var axpyUseAVX2 bool

// useAVX2 reports whether AXPYUnchecked routes to the AVX2 kernel.
func useAVX2() bool { return axpyUseAVX2 }

// ForceGeneric routes every dispatched kernel to the portable scalar
// implementation (force=true) or restores the init-time CPU feature
// decision (force=false). It exists for equivalence tests and
// interleaved A/B benchmarks; it is not synchronized, so call it only
// while no other goroutine is inside a vecmath kernel.
func ForceGeneric(force bool) {
	axpyUseAVX2 = cpuHasAVX2 && !force
}

// axpyAVX2 computes y[i] += alpha*x[i] for i in [0,n) with 4-wide
// AVX2 multiplies and adds (no fused ops — see kernels.go for the
// rounding contract). Implemented in kern_amd64.s.
//
//go:noescape
func axpyAVX2(alpha float64, x, y *float64, n int)

// cpuid executes CPUID for (leaf, subleaf). Implemented in
// kern_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended-state enable register the OS uses
// to advertise which vector state it saves on context switch.
// Implemented in kern_amd64.s.
func xgetbv0() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return
	}
	// XCR0 bits 1 (SSE) and 2 (AVX/YMM) must both be OS-enabled.
	xeax, _ := xgetbv0()
	if xeax&0x6 != 0x6 {
		return
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	cpuHasAVX2 = b7&avx2Bit != 0
	cpuHasFMA = c1&fmaBit != 0
	axpyUseAVX2 = cpuHasAVX2
}
