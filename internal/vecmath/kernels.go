package vecmath

// CPU-dispatched micro-kernels for the learning hot path.
//
// The package's determinism contract — every destination element
// accumulates its inner sum in fixed ascending index order, bit-
// identical across machines, build tags and worker counts — survives
// vectorization only for kernels in AXPY form: y[i] += alpha*x[i]
// touches each element's sum exactly once per call, so a 4-wide SIMD
// lane computes the same rounded multiply and add the scalar loop
// does. The AVX2 AXPY kernel therefore uses separate VMULPD/VADDPD
// (never VFMADDxxx: a fused multiply-add rounds once where the scalar
// contract rounds twice, which would change result bits) and is
// selected once at init via CPUID feature detection; the `purego`
// build tag, non-amd64 targets and pre-AVX2 hardware all fall back to
// the scalar loop, and ForceGeneric flips the dispatch at runtime for
// same-binary A/B tests and benchmarks.
//
// Dot-form kernels are different: a single inner product is one
// strictly sequential chain of rounded adds, so no reassociating
// (multi-accumulator or horizontal-SIMD) implementation can be
// bit-identical to it. Instead of changing the contract, the dot-form
// hot paths batch *independent* outputs: Dot4Unchecked and
// SqDist4Unchecked compute four sums at once, each with its own
// accumulator walking ascending indices — bit-identical per output to
// DotUnchecked/SqDistUnchecked — while the four independent add
// chains hide the FP-add latency that bounds a lone chain. These are
// hand-unrolled portable Go, identical on every platform and build
// tag by construction.

// cpuHasAVX2 / cpuHasFMA record what CPUID detection found at init
// (always false on non-amd64 and under the purego tag). FMA presence
// is recorded for bench environment blocks even though the kernels
// deliberately never emit fused ops.
var cpuHasAVX2, cpuHasFMA bool

// CPUInfo describes the kernel dispatch decision for this process.
type CPUInfo struct {
	// AVX2 and FMA report CPUID feature detection (with OS XSAVE
	// support for the YMM state). Always false under `purego` and on
	// non-amd64 targets.
	AVX2, FMA bool
	// Kernel names the AXPY micro-kernel implementation in use:
	// "avx2" or "generic".
	Kernel string
}

// CPU reports the detected CPU features and the active kernel
// implementation, for bench environment records and logs.
func CPU() CPUInfo {
	info := CPUInfo{AVX2: cpuHasAVX2, FMA: cpuHasFMA, Kernel: "generic"}
	if useAVX2() {
		info.Kernel = "avx2"
	}
	return info
}

// axpyGeneric is the portable AXPY micro-kernel: the reslice hoists
// the per-element bounds check out of the loop. It is the purego
// fallback of the dispatched kernel and the reference implementation
// the equivalence tests compare against.
func axpyGeneric(alpha float64, x, y Vec) {
	y = y[:len(x)]
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Dot4Unchecked computes the four inner products of a with b0..b3
// without shape checks: the caller guarantees every b has length >=
// len(a). Each sum owns its accumulator and walks ascending indices,
// so every output is bit-identical to DotUnchecked(a, bN) — the four
// independent chains exist purely to hide FP-add latency.
func Dot4Unchecked(a, b0, b1, b2, b3 Vec) (s0, s1, s2, s3 float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for i, av := range a {
		s0 += av * b0[i]
		s1 += av * b1[i]
		s2 += av * b2[i]
		s3 += av * b3[i]
	}
	return s0, s1, s2, s3
}

// SqDist4Unchecked computes the four squared Euclidean distances of a
// to b0..b3 without shape checks: the caller guarantees every b has
// length >= len(a). Each output is bit-identical to
// SqDistUnchecked(a, bN), for the same reason as Dot4Unchecked.
func SqDist4Unchecked(a, b0, b1, b2, b3 Vec) (s0, s1, s2, s3 float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for i, av := range a {
		d0 := av - b0[i]
		s0 += d0 * d0
		d1 := av - b1[i]
		s1 += d1 * d1
		d2 := av - b2[i]
		s2 += d2 * d2
		d3 := av - b3[i]
		s3 += d3 * d3
	}
	return s0, s1, s2, s3
}
