package vecmath

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Vec
		want    float64
		wantErr bool
	}{
		{name: "basic", a: Vec{1, 2, 3}, b: Vec{4, 5, 6}, want: 32},
		{name: "empty", a: Vec{}, b: Vec{}, want: 0},
		{name: "negatives", a: Vec{-1, 1}, b: Vec{1, -1}, want: -2},
		{name: "mismatch", a: Vec{1}, b: Vec{1, 2}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Dot(tt.a, tt.b)
			if tt.wantErr {
				if !errors.Is(err, ErrShape) {
					t.Fatalf("want ErrShape, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got != tt.want {
				t.Fatalf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAXPYAndScale(t *testing.T) {
	y := Vec{1, 2, 3}
	if err := AXPY(2, Vec{1, 1, 1}, y); err != nil {
		t.Fatal(err)
	}
	want := Vec{3, 4, 5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	Scale(0.5, y)
	want = Vec{1.5, 2, 2.5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Scale[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if err := AXPY(1, Vec{1}, Vec{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAddSub(t *testing.T) {
	a, b := Vec{1, 2}, Vec{3, 5}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 4 || sum[1] != 7 {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if diff[0] != 2 || diff[1] != 3 {
		t.Fatalf("Sub = %v", diff)
	}
	if _, err := Add(Vec{1}, Vec{}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := Sub(Vec{1}, Vec{}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNormDist(t *testing.T) {
	if got := Norm2(Vec{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	d, err := Dist(Vec{0, 0}, Vec{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	sq, err := SqDist(Vec{1, 1}, Vec{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sq != 5 {
		t.Fatalf("SqDist = %v, want 5", sq)
	}
	if _, err := SqDist(Vec{1}, Vec{}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestArgMaxMin(t *testing.T) {
	v := Vec{1, 5, 5, -2}
	if got := ArgMax(v); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin(v); got != 3 {
		t.Fatalf("ArgMin = %d, want 3", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Fatalf("ArgMin(nil) = %d, want -1", got)
	}
	if !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Fatal("Max/Min of empty must be NaN")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return Softmax(nil) == nil
		}
		// Constrain to a sane numeric range.
		v := make(Vec, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v = append(v, math.Mod(x, 50))
		}
		s := Softmax(v)
		var sum float64
		for _, p := range s {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxOrderPreserved(t *testing.T) {
	s := Softmax(Vec{1, 3, 2})
	if !(s[1] > s[2] && s[2] > s[0]) {
		t.Fatalf("softmax order violated: %v", s)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10}, {0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Fatalf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if got := Mean(Vec{2, 4}); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Sum(Vec{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 3); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := NewMatrix(3, -1); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad matrix: %+v", m)
	}
}

func TestMatrixAtSetRowClone(t *testing.T) {
	m := MustMatrix(2, 2)
	m.Set(0, 1, 7)
	m.Set(1, 0, -2)
	if m.At(0, 1) != 7 || m.At(1, 0) != -2 {
		t.Fatal("At/Set mismatch")
	}
	r := m.Row(1)
	r[1] = 9 // view mutates backing store
	if m.At(1, 1) != 9 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone must be deep")
	}
}

func TestMulVec(t *testing.T) {
	m := MustMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got, err := m.MulVec(Vec{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := m.MulVec(Vec{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulVecT(t *testing.T) {
	m := MustMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got, err := m.MulVecT(Vec{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := Vec{9, 12, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", got, want)
		}
	}
	if _, err := m.MulVecT(Vec{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAddOuter(t *testing.T) {
	m := MustMatrix(2, 2)
	if err := m.AddOuter(2, Vec{1, 2}, Vec{3, 4}); err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 12, 16}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter data = %v, want %v", m.Data, want)
		}
	}
	if err := m.AddOuter(1, Vec{1}, Vec{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

// MulVecT is the adjoint of MulVec: <Mx, y> == <x, Mᵀy>.
func TestMulVecAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := MustMatrix(rows, cols)
		m.FillRandUniform(rng, 1)
		x := make(Vec, cols)
		y := make(Vec, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		mx, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		mty, err := m.MulVecT(y)
		if err != nil {
			t.Fatal(err)
		}
		lhs, err := Dot(mx, y)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := Dot(x, mty)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(lhs, rhs, 1e-9) {
			t.Fatalf("adjoint violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestCorrelate1D(t *testing.T) {
	out, err := Correlate1D(Vec{1, 2, 3, 4}, Vec{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Vec{3, 5, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Correlate1D = %v, want %v", out, want)
		}
	}
	out, err = Correlate1D(Vec{1, 2, 3, 4, 5}, Vec{1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != 4 || out[1] != 8 {
		t.Fatalf("strided Correlate1D = %v", out)
	}
	if _, err := Correlate1D(Vec{1}, Vec{1, 2}, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := Correlate1D(Vec{1, 2}, Vec{1}, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestFillXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := MustMatrix(8, 8)
	m.FillXavier(rng, 8, 8)
	bound := math.Sqrt(6.0 / 16.0)
	for _, v := range m.Data {
		if math.Abs(v) > bound {
			t.Fatalf("xavier value %v outside ±%v", v, bound)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vec{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone must copy")
	}
	if len(Zeros(4)) != 4 {
		t.Fatal("Zeros length")
	}
}
