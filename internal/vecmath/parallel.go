package vecmath

import (
	"sync/atomic"

	"dtmsvs/internal/parallel"
)

// Pool-parallel GEMM: the blocked kernels fan destination row blocks
// across a persistent parallel.Crew. Every destination row is owned
// by exactly one block, each block runs the very same ascending-k
// range kernel the sequential path runs, and no two blocks share an
// accumulator — so the output is bit-identical to the sequential
// kernels for any worker count, any block size and any scheduling.
// (MatMulTransA* partitions dst rows, i.e. columns of a, with the
// k-axis still outermost and ascending inside each block.)
//
// Fan-out only pays above a work threshold: waking workers costs a
// few microseconds, which tiny minibatch GEMMs undercut. Below the
// threshold the call runs the sequential kernel — identical bits
// either way, so the threshold is purely a speed knob.

// gemmOp selects the range kernel a woken worker runs.
type gemmOp uint8

const (
	opMatMul gemmOp = iota
	opMatMulTransA
	opMatMulTransB
)

// gemmParMinFlops is the default work bound (2·m·k·n multiply-adds)
// below which fan-out cannot win against the crew wake-up cost.
const gemmParMinFlops = 1 << 16

// gemmBlockTargetPerWorker controls block granularity: enough blocks
// per worker that the atomic claim loop load-balances, few enough
// that claim traffic stays negligible.
const gemmBlockTargetPerWorker = 4

// GEMMPool runs the blocked GEMM kernels with destination row blocks
// fanned across a persistent worker crew. The zero value and a nil
// *GEMMPool are valid and always sequential; NewGEMMPool(1) is
// sequential without goroutines; otherwise workers park between
// calls (first spawned when a call clears the parallel threshold)
// until Close.
//
// A GEMMPool runs one kernel call at a time — callers that train
// concurrently (e.g. cluster cells) own one pool each.
type GEMMPool struct {
	crew *parallel.Crew
	// MinFlops overrides the parallel work threshold (2·m·k·n);
	// 0 keeps the default. Results are bit-identical on both sides
	// of any threshold. Exposed for tests and benchmarks.
	MinFlops int

	// Per-call fan-out state, read by woken workers.
	op         gemmOp
	dst, a, b  *Matrix
	rows       int
	blockRows  int
	nextBlock  atomic.Int64
	zeroBefore bool
	runFn      func(w int)

	// Utilization counters, atomic so a live metrics exporter can
	// read them mid-run: kernel calls that fanned out, calls that fell
	// back to the sequential kernel, and row blocks executed.
	fanouts    atomic.Uint64
	sequential atomic.Uint64
	blocks     atomic.Uint64
}

// NewGEMMPool returns a pool with the given worker bound; workers <=
// 0 means all cores, 1 means sequential (no crew, no goroutines,
// Close is a no-op).
func NewGEMMPool(workers int) *GEMMPool {
	p := &GEMMPool{}
	crew := parallel.NewCrew(workers)
	if crew.Workers() > 1 {
		p.crew = crew
	}
	p.runFn = p.runWorker
	return p
}

// Workers reports the pool's worker bound (1 for nil or sequential
// pools).
func (p *GEMMPool) Workers() int {
	if p == nil || p.crew == nil {
		return 1
	}
	return p.crew.Workers()
}

// Close releases the pool's workers. Safe on nil and idempotent.
func (p *GEMMPool) Close() {
	if p != nil && p.crew != nil {
		p.crew.Close()
	}
}

// Stats reports the pool's lifetime utilization. Safe to call
// concurrently with kernel calls, and on a nil or sequential pool.
func (p *GEMMPool) Stats() (fanouts, sequential, blocks uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.fanouts.Load(), p.sequential.Load(), p.blocks.Load()
}

// CrewStats reports the underlying crew's fan-out and wake counters
// (0, 0 for nil or sequential pools).
func (p *GEMMPool) CrewStats() (runs, wakes uint64) {
	if p == nil || p.crew == nil {
		return 0, 0
	}
	return p.crew.Stats()
}

// seqCall counts a sequential fallback, tolerating the nil receiver
// the kernel wrappers support.
func (p *GEMMPool) seqCall() {
	if p != nil {
		p.sequential.Add(1)
	}
}

// parWorkers decides the fan-out width for a kernel call over `rows`
// destination rows costing `flops`; 1 means run sequentially.
func (p *GEMMPool) parWorkers(rows, flops int) int {
	if p == nil || p.crew == nil || rows < 2 {
		return 1
	}
	min := p.MinFlops
	if min <= 0 {
		min = gemmParMinFlops
	}
	if flops < min {
		return 1
	}
	w := p.crew.Workers()
	if w > rows {
		w = rows
	}
	return w
}

// fan publishes the call state and runs the row blocks on the crew.
func (p *GEMMPool) fan(workers int, op gemmOp, dst, a, b *Matrix, rows int, zeroBefore bool) {
	blocks := workers * gemmBlockTargetPerWorker
	blockRows := (rows + blocks - 1) / blocks
	if blockRows < 1 {
		blockRows = 1
	}
	p.op, p.dst, p.a, p.b = op, dst, a, b
	p.rows, p.blockRows, p.zeroBefore = rows, blockRows, zeroBefore
	p.nextBlock.Store(0)
	p.fanouts.Add(1)
	p.crew.Run(workers, p.runFn)
	p.dst, p.a, p.b = nil, nil, nil
}

// runWorker claims row blocks off the shared counter until none
// remain. Rows are exclusively owned, so claim order is irrelevant to
// the result.
func (p *GEMMPool) runWorker(int) {
	for {
		blk := int(p.nextBlock.Add(1)) - 1
		lo := blk * p.blockRows
		if lo >= p.rows {
			return
		}
		p.blocks.Add(1)
		hi := lo + p.blockRows
		if hi > p.rows {
			hi = p.rows
		}
		if p.zeroBefore {
			for i := lo; i < hi; i++ {
				row := p.dst.Row(i)
				for j := range row {
					row[j] = 0
				}
			}
		}
		switch p.op {
		case opMatMul:
			matMulAccumRows(p.dst, p.a, p.b, lo, hi)
		case opMatMulTransA:
			matMulTransAAccumRows(p.dst, p.a, p.b, lo, hi)
		case opMatMulTransB:
			matMulTransBRows(p.dst, p.a, p.b, lo, hi)
		}
	}
}

// MatMulInto is MatMulInto with dst row blocks fanned across the
// pool; bit-identical to the package function for any worker count.
func (p *GEMMPool) MatMulInto(dst, a, b *Matrix) error {
	w := p.parWorkers(matRowsOf(dst), 2*a.Rows*a.Cols*b.Cols)
	if w <= 1 {
		p.seqCall()
		return MatMulInto(dst, a, b)
	}
	if err := checkMatMul(dst, a, b); err != nil {
		return err
	}
	p.fan(w, opMatMul, dst, a, b, dst.Rows, true)
	return nil
}

// MatMulTransAInto is MatMulTransAInto with dst row blocks fanned
// across the pool; bit-identical to the package function.
func (p *GEMMPool) MatMulTransAInto(dst, a, b *Matrix) error {
	w := p.parWorkers(matRowsOf(dst), 2*a.Rows*a.Cols*b.Cols)
	if w <= 1 {
		p.seqCall()
		return MatMulTransAInto(dst, a, b)
	}
	if err := checkTransA(dst, a, b); err != nil {
		return err
	}
	p.fan(w, opMatMulTransA, dst, a, b, dst.Rows, true)
	return nil
}

// MatMulTransAAccumInto is MatMulTransAAccumInto with dst row blocks
// fanned across the pool; bit-identical to the package function.
func (p *GEMMPool) MatMulTransAAccumInto(dst, a, b *Matrix) error {
	w := p.parWorkers(matRowsOf(dst), 2*a.Rows*a.Cols*b.Cols)
	if w <= 1 {
		p.seqCall()
		return MatMulTransAAccumInto(dst, a, b)
	}
	if err := checkTransA(dst, a, b); err != nil {
		return err
	}
	p.fan(w, opMatMulTransA, dst, a, b, dst.Rows, false)
	return nil
}

// MatMulTransBInto is MatMulTransBInto with dst row blocks fanned
// across the pool; bit-identical to the package function.
func (p *GEMMPool) MatMulTransBInto(dst, a, b *Matrix) error {
	w := p.parWorkers(matRowsOf(dst), 2*a.Rows*a.Cols*b.Rows)
	if w <= 1 {
		p.seqCall()
		return MatMulTransBInto(dst, a, b)
	}
	if err := checkTransB(dst, a, b); err != nil {
		return err
	}
	p.fan(w, opMatMulTransB, dst, a, b, dst.Rows, false)
	return nil
}

func matRowsOf(m *Matrix) int {
	if m == nil {
		return 0
	}
	return m.Rows
}
