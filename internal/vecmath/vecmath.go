// Package vecmath provides the dense float64 vector and matrix
// primitives shared by the neural-network, clustering and prediction
// packages. It is deliberately small: plain slices, no BLAS, no
// reflection, so everything stays allocation-predictable and easy to
// benchmark.
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) whenever operand dimensions do not
// line up.
var ErrShape = errors.New("vecmath: shape mismatch")

// Vec is a dense float64 vector.
type Vec = []float64

// Zeros returns a zero vector of length n.
func Zeros(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func Clone(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b Vec) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dot %d vs %d: %w", len(a), len(b), ErrShape)
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y Vec) error {
	if len(x) != len(y) {
		return fmt.Errorf("axpy %d vs %d: %w", len(x), len(y), ErrShape)
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
	return nil
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v Vec) {
	for i := range v {
		v[i] *= alpha
	}
}

// DotUnchecked returns the inner product of a and b without a shape
// check: the caller guarantees len(b) >= len(a). It is the hot-path
// kernel behind MulVecInto and the K-means assignment step. The
// reslice hoists the per-element bounds check out of the loop.
func DotUnchecked(a, b Vec) float64 {
	b = b[:len(a)]
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// AXPYUnchecked computes y += alpha*x without a shape check: the
// caller guarantees len(y) >= len(x). It is the dispatched micro-
// kernel of the GEMM hot path: on amd64 with AVX2 (and without the
// `purego` build tag) long vectors run the 4-wide assembly kernel,
// which is bit-identical to the scalar loop — see kernels.go for the
// contract. Short vectors stay scalar: the call overhead would
// dominate, and the results are identical either way.
func AXPYUnchecked(alpha float64, x, y Vec) {
	y = y[:len(x)]
	if len(x) >= axpySIMDMinLen && useAVX2() {
		axpyAVX2(alpha, &x[0], &y[0], len(x))
		return
	}
	axpyGeneric(alpha, x, y)
}

// axpySIMDMinLen is the vector length where the AVX2 AXPY kernel
// starts beating the scalar loop (call + VZEROUPPER overhead); below
// it the dispatch stays scalar. Purely a speed threshold — both sides
// produce identical bits.
const axpySIMDMinLen = 8

// SqDistUnchecked returns the squared Euclidean distance between a and
// b without a shape check: the caller guarantees len(b) >= len(a).
// The reslice hoists the per-element bounds check out of the loop.
func SqDistUnchecked(a, b Vec) float64 {
	b = b[:len(a)]
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Add returns a+b as a new vector.
func Add(a, b Vec) (Vec, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("add %d vs %d: %w", len(a), len(b), ErrShape)
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// Sub returns a-b as a new vector.
func Sub(a, b Vec) (Vec, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("sub %d vs %d: %w", len(a), len(b), ErrShape)
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b Vec) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("sqdist %d vs %d: %w", len(a), len(b), ErrShape)
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s, nil
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Vec) (float64, error) {
	s, err := SqDist(a, b)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(s), nil
}

// Sum returns the sum of the elements of v.
func Sum(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v (0 for an empty vector).
func Mean(v Vec) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// ArgMax returns the index of the maximum element (-1 for empty).
// Ties resolve to the lowest index.
func ArgMax(v Vec) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element (-1 for empty).
func ArgMin(v Vec) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// Max returns the maximum element of v (NaN for empty).
func Max(v Vec) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	return v[ArgMax(v)]
}

// Min returns the minimum element of v (NaN for empty).
func Min(v Vec) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	return v[ArgMin(v)]
}

// Softmax writes the softmax of v into a new vector. It is
// numerically stabilized by subtracting the maximum.
func Softmax(v Vec) Vec {
	if len(v) == 0 {
		return nil
	}
	out := make(Vec, len(v))
	m := Max(v)
	var z float64
	for i, x := range v {
		e := math.Exp(x - m)
		out[i] = e
		z += e
	}
	for i := range out {
		out[i] /= z
	}
	return out
}

// Clamp limits x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
