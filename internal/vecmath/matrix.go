package vecmath

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("new matrix %dx%d: %w", rows, cols, ErrShape)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// MustMatrix is NewMatrix that panics on invalid shape; for use in
// tests and package-internal constructions with constant shapes.
func MustMatrix(rows, cols int) *Matrix {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// FillRandUniform fills the matrix with samples from U(-scale, scale).
func (m *Matrix) FillRandUniform(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// FillXavier fills with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out.
func (m *Matrix) FillXavier(rng *rand.Rand, fanIn, fanOut int) {
	scale := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.FillRandUniform(rng, scale)
}

// MulVec computes m * x and returns a new vector of length m.Rows.
func (m *Matrix) MulVec(x Vec) (Vec, error) {
	out := make(Vec, m.Rows)
	if err := m.MulVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes dst = m * x without allocating; dst must have
// length m.Rows.
func (m *Matrix) MulVecInto(dst, x Vec) error {
	if m.Cols != len(x) || m.Rows != len(dst) {
		return fmt.Errorf("mulvec %dx%d by %d into %d: %w", m.Rows, m.Cols, len(x), len(dst), ErrShape)
	}
	// Four rows at a time through the multi-chain dot kernel; the
	// shared operand moves to the left slot (row·x and x·row multiply
	// to identical bits), so dst[i] stays bit-identical to the
	// single-row DotUnchecked(m.Row(i), x).
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		dst[i], dst[i+1], dst[i+2], dst[i+3] = Dot4Unchecked(
			x, m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3))
	}
	for ; i < m.Rows; i++ {
		dst[i] = DotUnchecked(m.Row(i), x)
	}
	return nil
}

// MulVecT computes mᵀ * x (x has length m.Rows) and returns a vector
// of length m.Cols. Used for backpropagation through dense layers.
func (m *Matrix) MulVecT(x Vec) (Vec, error) {
	out := make(Vec, m.Cols)
	if err := m.MulVecTInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecTInto computes dst = mᵀ * x without allocating; dst must have
// length m.Cols and is overwritten.
func (m *Matrix) MulVecTInto(dst, x Vec) error {
	if m.Rows != len(x) || m.Cols != len(dst) {
		return fmt.Errorf("mulvecT %dx%d by %d into %d: %w", m.Rows, m.Cols, len(x), len(dst), ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		AXPYUnchecked(xi, m.Row(i), dst)
	}
	return nil
}

// AddOuter accumulates m += alpha * a ⊗ b where len(a)==Rows and
// len(b)==Cols. Used for weight-gradient accumulation.
func (m *Matrix) AddOuter(alpha float64, a, b Vec) error {
	if len(a) != m.Rows || len(b) != m.Cols {
		return fmt.Errorf("addouter %dx%d by %d,%d: %w", m.Rows, m.Cols, len(a), len(b), ErrShape)
	}
	m.AddOuterInto(alpha, a, b)
	return nil
}

// AddOuterInto accumulates m += alpha * a ⊗ b without a shape check:
// the caller guarantees len(a) == Rows and len(b) == Cols. This is the
// weight-gradient kernel of the NN training hot path.
func (m *Matrix) AddOuterInto(alpha float64, a, b Vec) {
	for i := range a {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		AXPYUnchecked(ai, b, m.Row(i))
	}
}

// Correlate1D computes a "valid" 1-D cross-correlation of input x with
// kernel k at the given stride: out[t] = Σ_j x[t*stride+j]*k[j].
// Output length is (len(x)-len(k))/stride + 1.
func Correlate1D(x, k Vec, stride int) (Vec, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("correlate1d stride %d: %w", stride, ErrShape)
	}
	if len(k) == 0 || len(x) < len(k) {
		return nil, fmt.Errorf("correlate1d input %d kernel %d: %w", len(x), len(k), ErrShape)
	}
	n := (len(x)-len(k))/stride + 1
	out := make(Vec, n)
	for t := 0; t < n; t++ {
		base := t * stride
		var s float64
		for j, kj := range k {
			s += x[base+j] * kj
		}
		out[t] = s
	}
	return out, nil
}
