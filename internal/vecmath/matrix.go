package vecmath

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("new matrix %dx%d: %w", rows, cols, ErrShape)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// MustMatrix is NewMatrix that panics on invalid shape; for use in
// tests and package-internal constructions with constant shapes.
func MustMatrix(rows, cols int) *Matrix {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// FillRandUniform fills the matrix with samples from U(-scale, scale).
func (m *Matrix) FillRandUniform(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// FillXavier fills with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out.
func (m *Matrix) FillXavier(rng *rand.Rand, fanIn, fanOut int) {
	scale := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.FillRandUniform(rng, scale)
}

// MulVec computes m * x and returns a new vector of length m.Rows.
func (m *Matrix) MulVec(x Vec) (Vec, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("mulvec %dx%d by %d: %w", m.Rows, m.Cols, len(x), ErrShape)
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MulVecT computes mᵀ * x (x has length m.Rows) and returns a vector
// of length m.Cols. Used for backpropagation through dense layers.
func (m *Matrix) MulVecT(x Vec) (Vec, error) {
	if m.Rows != len(x) {
		return nil, fmt.Errorf("mulvecT %dx%d by %d: %w", m.Rows, m.Cols, len(x), ErrShape)
	}
	out := make(Vec, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, w := range row {
			out[j] += w * xi
		}
	}
	return out, nil
}

// AddOuter accumulates m += alpha * a ⊗ b where len(a)==Rows and
// len(b)==Cols. Used for weight-gradient accumulation.
func (m *Matrix) AddOuter(alpha float64, a, b Vec) error {
	if len(a) != m.Rows || len(b) != m.Cols {
		return fmt.Errorf("addouter %dx%d by %d,%d: %w", m.Rows, m.Cols, len(a), len(b), ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		row := m.Row(i)
		for j := range row {
			row[j] += ai * b[j]
		}
	}
	return nil
}

// Correlate1D computes a "valid" 1-D cross-correlation of input x with
// kernel k at the given stride: out[t] = Σ_j x[t*stride+j]*k[j].
// Output length is (len(x)-len(k))/stride + 1.
func Correlate1D(x, k Vec, stride int) (Vec, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("correlate1d stride %d: %w", stride, ErrShape)
	}
	if len(k) == 0 || len(x) < len(k) {
		return nil, fmt.Errorf("correlate1d input %d kernel %d: %w", len(x), len(k), ErrShape)
	}
	n := (len(x)-len(k))/stride + 1
	out := make(Vec, n)
	for t := 0; t < n; t++ {
		base := t * stride
		var s float64
		for j, kj := range k {
			s += x[base+j] * kj
		}
		out[t] = s
	}
	return out, nil
}
