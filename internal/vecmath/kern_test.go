package vecmath

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// kernTestLens sweeps every alignment case of the 16/4/1-element
// assembly loops plus empty and one-element vectors.
var kernTestLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1000}

// kernTestAlphas includes exact zero (the GEMM kernels' skip value),
// ±1, an irrational-ish scalar and a denormal.
var kernTestAlphas = []float64{0, 1, -1, 0.37251, -2.5e-308, 1e308}

// fillKernVec mixes normal draws with the special values the
// simulation can produce (signed zeros, infinities, denormals).
func fillKernVec(rng *rand.Rand, v Vec) {
	for i := range v {
		switch rng.Intn(12) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = math.Copysign(0, -1)
		case 2:
			v[i] = math.Inf(1)
		case 3:
			v[i] = 5e-324 // smallest denormal
		default:
			v[i] = rng.NormFloat64()
		}
	}
}

// TestAXPYKernelEquivalence is the SIMD half of the kernel
// determinism contract: the dispatched AVX2 AXPY must be bit-
// identical to the scalar loop for every length, alpha and special
// value, including when x and y alias the same slice.
func TestAXPYKernelEquivalence(t *testing.T) {
	if !cpuHasAVX2 {
		t.Skip("no AVX2: dispatch already runs the generic kernel")
	}
	rng := rand.New(rand.NewSource(71))
	for _, n := range kernTestLens {
		for _, alpha := range kernTestAlphas {
			x := make(Vec, n)
			yGen := make(Vec, n)
			ySIMD := make(Vec, n)
			fillKernVec(rng, x)
			fillKernVec(rng, yGen)
			copy(ySIMD, yGen)
			axpyGeneric(alpha, x, yGen)
			if n > 0 {
				axpyAVX2(alpha, &x[0], &ySIMD[0], n)
			}
			for i := range yGen {
				if math.Float64bits(yGen[i]) != math.Float64bits(ySIMD[i]) {
					t.Fatalf("n=%d alpha=%v i=%d: generic %x simd %x",
						n, alpha, i, math.Float64bits(yGen[i]), math.Float64bits(ySIMD[i]))
				}
			}
			// Exact aliasing (y == x): the in-place doubling form.
			aliasGen := make(Vec, n)
			fillKernVec(rng, aliasGen)
			aliasSIMD := append(Vec(nil), aliasGen...)
			axpyGeneric(alpha, aliasGen, aliasGen)
			if n > 0 {
				axpyAVX2(alpha, &aliasSIMD[0], &aliasSIMD[0], n)
			}
			for i := range aliasGen {
				if math.Float64bits(aliasGen[i]) != math.Float64bits(aliasSIMD[i]) {
					t.Fatalf("aliased n=%d alpha=%v i=%d: generic %x simd %x",
						n, alpha, i, math.Float64bits(aliasGen[i]), math.Float64bits(aliasSIMD[i]))
				}
			}
		}
	}
}

// TestAXPYDispatchAllocFree gates the dispatch layer: routing through
// the kernel decision must not touch the heap.
func TestAXPYDispatchAllocFree(t *testing.T) {
	x := make(Vec, 257)
	y := make(Vec, 257)
	for i := range x {
		x[i] = float64(i)
	}
	if n := testing.AllocsPerRun(200, func() {
		AXPYUnchecked(0.5, x, y)
	}); n != 0 {
		t.Fatalf("dispatched AXPY allocates %v per run", n)
	}
}

// TestForceGeneric pins the runtime A/B switch: with the generic
// kernel forced, CPU().Kernel reports it and results stay identical.
func TestForceGeneric(t *testing.T) {
	defer ForceGeneric(false)
	ForceGeneric(true)
	if got := CPU().Kernel; got != "generic" {
		t.Fatalf("forced generic but kernel = %q", got)
	}
	x := Vec{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := make(Vec, len(x))
	AXPYUnchecked(2, x, y)
	ForceGeneric(false)
	y2 := make(Vec, len(x))
	AXPYUnchecked(2, x, y2)
	for i := range y {
		if y[i] != y2[i] {
			t.Fatalf("forced-generic result differs at %d: %v vs %v", i, y[i], y2[i])
		}
	}
	if cpuHasAVX2 && CPU().Kernel != "avx2" {
		t.Fatalf("ForceGeneric(false) did not restore avx2 dispatch: %+v", CPU())
	}
}

// TestDot4SqDist4Equivalence pins the multi-chain kernels to their
// single-output references, output by output and bit by bit.
func TestDot4SqDist4Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, n := range kernTestLens {
		a := make(Vec, n)
		bs := make([]Vec, 4)
		fillKernVec(rng, a)
		for i := range bs {
			bs[i] = make(Vec, n)
			fillKernVec(rng, bs[i])
		}
		d0, d1, d2, d3 := Dot4Unchecked(a, bs[0], bs[1], bs[2], bs[3])
		for i, got := range []float64{d0, d1, d2, d3} {
			want := DotUnchecked(a, bs[i])
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dot4 n=%d lane %d: got %x want %x", n, i, math.Float64bits(got), math.Float64bits(want))
			}
		}
		s0, s1, s2, s3 := SqDist4Unchecked(a, bs[0], bs[1], bs[2], bs[3])
		for i, got := range []float64{s0, s1, s2, s3} {
			want := SqDistUnchecked(a, bs[i])
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("sqdist4 n=%d lane %d: got %x want %x", n, i, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// gemmShapes sweeps odd GEMM shapes: outputs smaller than the block
// size, dimensions off every vector-width multiple, single elements,
// single rows/columns, and a long inner dimension.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{3, 1, 5},
	{2, 3, 2},
	{5, 5, 5},
	{7, 13, 9},
	{16, 16, 16},
	{17, 33, 9},
	{32, 64, 64},
	{64, 3, 64},
	{129, 7, 65},
	{2, 500, 2},
	{65, 66, 67},
}

func fillMat(rng *rand.Rand, m *Matrix) {
	for i := range m.Data {
		// Include exact zeros: the AXPY-form kernels skip them.
		if rng.Intn(8) == 0 {
			m.Data[i] = 0
		} else {
			m.Data[i] = rng.NormFloat64()
		}
	}
}

func matsEqual(t *testing.T, tag string, want, got *Matrix) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", tag, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: element %d: want %x got %x",
				tag, i, math.Float64bits(want.Data[i]), math.Float64bits(got.Data[i]))
		}
	}
}

// TestGEMMPoolMatchesSequential is the pool-parallel half of the
// determinism contract: every kernel, over every odd shape, at every
// worker count, with the threshold forced to zero so the fan-out
// actually engages, must be bit-identical to the sequential kernels —
// which the SIMD equivalence tests in turn pin to the scalar loops.
func TestGEMMPoolMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, workers := range []int{1, 2, 3, 4, 8} {
		pool := NewGEMMPool(workers)
		pool.MinFlops = 1 // force fan-out on every shape
		for _, sh := range gemmShapes {
			a := MustMatrix(sh.m, sh.k)
			b := MustMatrix(sh.k, sh.n)
			at := MustMatrix(sh.k, sh.m)
			bt := MustMatrix(sh.n, sh.k)
			fillMat(rng, a)
			fillMat(rng, b)
			fillMat(rng, at)
			fillMat(rng, bt)
			tag := func(op string) string {
				return fmt.Sprintf("%s w=%d m=%d k=%d n=%d", op, workers, sh.m, sh.k, sh.n)
			}

			want := MustMatrix(sh.m, sh.n)
			got := MustMatrix(sh.m, sh.n)
			fillMat(rng, got) // parallel path must fully overwrite
			if err := MatMulInto(want, a, b); err != nil {
				t.Fatal(err)
			}
			if err := pool.MatMulInto(got, a, b); err != nil {
				t.Fatal(err)
			}
			matsEqual(t, tag("matmul"), want, got)

			if err := MatMulTransAInto(want, at, b); err != nil {
				t.Fatal(err)
			}
			fillMat(rng, got)
			if err := pool.MatMulTransAInto(got, at, b); err != nil {
				t.Fatal(err)
			}
			matsEqual(t, tag("transA"), want, got)

			// Accumulating form: seed both destinations identically.
			fillMat(rng, want)
			copy(got.Data, want.Data)
			if err := MatMulTransAAccumInto(want, at, b); err != nil {
				t.Fatal(err)
			}
			if err := pool.MatMulTransAAccumInto(got, at, b); err != nil {
				t.Fatal(err)
			}
			matsEqual(t, tag("transAaccum"), want, got)

			if err := MatMulTransBInto(want, a, bt); err != nil {
				t.Fatal(err)
			}
			fillMat(rng, got)
			if err := pool.MatMulTransBInto(got, a, bt); err != nil {
				t.Fatal(err)
			}
			matsEqual(t, tag("transB"), want, got)
		}
		pool.Close()
	}
}

// TestGEMMPoolSequentialFallbacks covers the paths that skip the
// fan-out: nil pools, single-worker pools, sub-threshold work and
// shape errors (which must surface identically on both paths).
func TestGEMMPoolSequentialFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := MustMatrix(4, 4)
	b := MustMatrix(4, 4)
	fillMat(rng, a)
	fillMat(rng, b)
	want := MustMatrix(4, 4)
	if err := MatMulInto(want, a, b); err != nil {
		t.Fatal(err)
	}

	var nilPool *GEMMPool
	got := MustMatrix(4, 4)
	if err := nilPool.MatMulInto(got, a, b); err != nil {
		t.Fatal(err)
	}
	matsEqual(t, "nil pool", want, got)
	nilPool.Close() // must not panic

	seq := NewGEMMPool(1)
	defer seq.Close()
	if err := seq.MatMulInto(got, a, b); err != nil {
		t.Fatal(err)
	}
	matsEqual(t, "workers=1", want, got)

	par := NewGEMMPool(4)
	defer par.Close()
	// Default threshold: a 4x4x4 product stays sequential; result
	// must be identical anyway.
	if err := par.MatMulInto(got, a, b); err != nil {
		t.Fatal(err)
	}
	matsEqual(t, "sub-threshold", want, got)

	bad := MustMatrix(3, 3)
	par.MinFlops = 1
	for _, err := range []error{
		par.MatMulInto(bad, a, b),
		par.MatMulTransAInto(bad, a, b),
		par.MatMulTransAAccumInto(bad, a, b),
		par.MatMulTransBInto(bad, a, b),
	} {
		if err == nil {
			t.Fatal("shape mismatch did not error on the pool path")
		}
	}
}

// TestGEMMPoolAllocFree is the allocation gate for the parallel GEMM
// path: once the crew is spawned, a steady-state fanned kernel call
// must not touch the heap at any worker count.
func TestGEMMPoolAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, workers := range []int{1, 4, 8} {
		pool := NewGEMMPool(workers)
		pool.MinFlops = 1
		a := MustMatrix(64, 32)
		b := MustMatrix(32, 48)
		at := MustMatrix(32, 64)
		bt := MustMatrix(48, 32)
		dst := MustMatrix(64, 48)
		gw := MustMatrix(64, 48)
		fillMat(rng, a)
		fillMat(rng, b)
		fillMat(rng, at)
		fillMat(rng, bt)
		// Prime: spawns the crew goroutines.
		if err := pool.MatMulInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := pool.MatMulInto(dst, a, b); err != nil {
				t.Fatal(err)
			}
			if err := pool.MatMulTransAInto(gw, at, b); err != nil {
				t.Fatal(err)
			}
			if err := pool.MatMulTransAAccumInto(gw, at, b); err != nil {
				t.Fatal(err)
			}
			if err := pool.MatMulTransBInto(dst, a, bt); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("workers=%d: parallel GEMM allocates %v per run", workers, n)
		}
		pool.Close()
	}
}
