//go:build !amd64 || purego

package vecmath

// useAVX2 is constant false without the amd64 assembly kernels, so
// the dispatch branch in AXPYUnchecked folds away and the scalar loop
// compiles exactly as it did before the kernel layer existed.
func useAVX2() bool { return false }

// ForceGeneric is a no-op without dispatched kernels: every call
// already runs the portable implementation.
func ForceGeneric(force bool) {}

// axpyAVX2 is never reachable on this build; the stub satisfies the
// shared dispatch call site.
func axpyAVX2(alpha float64, x, y *float64, n int) {
	panic("vecmath: axpyAVX2 called without AVX2 support")
}
