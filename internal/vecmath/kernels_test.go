package vecmath

import (
	"errors"
	"math/rand"
	"testing"
)

func TestUncheckedKernelsMatchChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(17)
		a, b := make(Vec, n), make(Vec, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want, err := Dot(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := DotUnchecked(a, b); got != want {
			t.Fatalf("DotUnchecked = %v want %v", got, want)
		}
		wantSq, err := SqDist(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := SqDistUnchecked(a, b); got != wantSq {
			t.Fatalf("SqDistUnchecked = %v want %v", got, wantSq)
		}
		y1, y2 := Clone(b), Clone(b)
		if err := AXPY(0.7, a, y1); err != nil {
			t.Fatal(err)
		}
		AXPYUnchecked(0.7, a, y2)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("AXPYUnchecked[%d] = %v want %v", i, y2[i], y1[i])
			}
		}
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := MustMatrix(7, 5)
	m.FillRandUniform(rng, 1)
	x := make(Vec, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Vec, 7)
	if err := m.MulVecInto(dst, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v want %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVecInto(make(Vec, 3), x); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if err := m.MulVecInto(dst, make(Vec, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulVecTIntoMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := MustMatrix(4, 9)
	m.FillRandUniform(rng, 1)
	x := make(Vec, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	x[2] = 0 // exercise the zero-skip path
	want, err := m.MulVecT(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Vec, 9)
	for i := range dst {
		dst[i] = 99 // must be overwritten, not accumulated
	}
	if err := m.MulVecTInto(dst, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecTInto[%d] = %v want %v", i, dst[i], want[i])
		}
	}
	if err := m.MulVecTInto(dst, make(Vec, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAddOuterIntoMatchesAddOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := make(Vec, 3)
	b := make(Vec, 4)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	m1 := MustMatrix(3, 4)
	m2 := MustMatrix(3, 4)
	m1.FillRandUniform(rng, 1)
	copy(m2.Data, m1.Data)
	if err := m1.AddOuter(0.3, a, b); err != nil {
		t.Fatal(err)
	}
	m2.AddOuterInto(0.3, a, b)
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatalf("AddOuterInto[%d] = %v want %v", i, m2.Data[i], m1.Data[i])
		}
	}
}

func TestKernelsAllocFree(t *testing.T) {
	m := MustMatrix(16, 16)
	x := make(Vec, 16)
	dst := make(Vec, 16)
	for i := range x {
		x[i] = float64(i)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = m.MulVecInto(dst, x)
		_ = m.MulVecTInto(dst, x)
		m.AddOuterInto(0.1, x, x)
		_ = DotUnchecked(x, x)
		AXPYUnchecked(0.5, x, dst)
		_ = SqDistUnchecked(x, dst)
	}); n != 0 {
		t.Fatalf("kernels allocate %v per run", n)
	}
}
