package vecmath

import "fmt"

// Blocked matrix-matrix kernels for the minibatch training hot path.
//
// Determinism contract: for every destination element the sum over the
// inner dimension accumulates in ascending index order, starting from
// zero, no matter how the loops are tiled. The kernels are sequential,
// so results are bit-identical across machines, worker counts and call
// sites — and they reproduce exactly the accumulation order of the
// per-sample vector kernels (MulVecInto, MulVecTInto, AddOuterInto),
// which is what lets a batched backward pass replace a per-sample loop
// without changing a single trace bit.
//
// The tiling never splits the inner dimension (that would reorder the
// summation); it blocks the *output* dimensions so operand rows are
// reused while they are hot in cache.

// matMulColTile is the number of b-rows kept hot per pass of
// MatMulTransBInto's inner dot loops.
const matMulColTile = 64

// MatMulInto computes dst = a·b where a is (m×k) and b is (k×n); dst
// must be (m×n) and must not alias a or b. Per element the sum runs
// over the inner index in ascending order — the same order as
// MulVecTInto — so dX = dY·W is bit-identical to a per-sample
// Wᵀ·grad loop.
func MatMulInto(dst, a, b *Matrix) error {
	if err := checkMatMul(dst, a, b); err != nil {
		return err
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	matMulAccum(dst, a, b)
	return nil
}

func checkMatMul(dst, a, b *Matrix) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("matmul %dx%d by %dx%d into %dx%d: %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrShape)
	}
	return nil
}

// matMulAccum accumulates dst += a·b with k ascending per element:
// each destination row is an ascending-k sweep of AXPYs against the
// streamed b-rows (the store-light form that measures fastest here —
// a fused multi-row micro-kernel was tried and lost to the extra
// destination streams).
func matMulAccum(dst, a, b *Matrix) {
	matMulAccumRows(dst, a, b, 0, a.Rows)
}

// matMulAccumRows is matMulAccum restricted to dst rows [lo, hi) —
// the row-block unit of the pool-parallel path. Each dst row's sums
// are complete within one call, so any partition of the row range
// produces bit-identical results.
func matMulAccumRows(dst, a, b *Matrix, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for kk := 0; kk < k; kk++ {
			if av := ai[kk]; av != 0 {
				AXPYUnchecked(av, b.Row(kk), di)
			}
		}
	}
}

// MatMulTransAInto computes dst = aᵀ·b where a is (k×m) and b is
// (k×n); dst must be (m×n) and must not alias a or b. The sum over k
// (the shared leading dimension — the batch axis in a dW = dYᵀ·X
// gradient) runs in ascending order.
func MatMulTransAInto(dst, a, b *Matrix) error {
	if err := checkTransA(dst, a, b); err != nil {
		return err
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	matMulTransAAccum(dst, a, b)
	return nil
}

// MatMulTransAAccumInto accumulates dst += aᵀ·b (shapes as
// MatMulTransAInto). Because the k-axis is walked in ascending order,
// accumulating a whole batch into a zeroed gradient matrix produces
// bit-identical results to adding the per-sample outer products
// (AddOuterInto) one sample at a time.
func MatMulTransAAccumInto(dst, a, b *Matrix) error {
	if err := checkTransA(dst, a, b); err != nil {
		return err
	}
	matMulTransAAccum(dst, a, b)
	return nil
}

func checkTransA(dst, a, b *Matrix) error {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		return fmt.Errorf("matmulTransA %dx%d by %dx%d into %dx%d: %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrShape)
	}
	return nil
}

// matMulTransAAccum accumulates dst += aᵀ·b with the shared leading
// dimension k (the batch axis) ascending per element — the same
// AXPY sweep as matMulAccum with the k-axis outermost, which is what
// makes a whole-batch gradient bit-identical to per-sample outer
// products.
func matMulTransAAccum(dst, a, b *Matrix) {
	matMulTransAAccumRows(dst, a, b, 0, a.Cols)
}

// matMulTransAAccumRows is matMulTransAAccum restricted to dst rows
// [lo, hi) (dst row i is column i of a). The k-axis still runs
// outermost and ascending, so each owned element accumulates in
// exactly the sequential order no matter how the rows are
// partitioned.
func matMulTransAAccumRows(dst, a, b *Matrix, lo, hi int) {
	k := a.Rows
	for kk := 0; kk < k; kk++ {
		ak := a.Row(kk)
		bk := b.Row(kk)
		for i := lo; i < hi; i++ {
			if av := ak[i]; av != 0 {
				AXPYUnchecked(av, bk, dst.Row(i))
			}
		}
	}
}

// MatMulTransBInto computes dst = a·bᵀ where a is (m×k) and b is
// (n×k); dst must be (m×n) and must not alias a or b. Each element is
// a row-row dot with k ascending — exactly MulVecInto applied to
// every row of a, and bit-identical to TransposeInto+MatMulInto on
// the same operands. It is the dot-form sibling the training forwards
// trade away (they pay one weight transpose per call to run the
// AXPY-form MatMulInto, whose independent per-element accumulations
// beat the dot form's latency-bound adds on long inner dimensions);
// it remains the right kernel when materializing bᵀ is not worth it.
// The b-rows are walked in tiles so they stay cache-resident while
// the a-rows stream.
func MatMulTransBInto(dst, a, b *Matrix) error {
	if err := checkTransB(dst, a, b); err != nil {
		return err
	}
	matMulTransBRows(dst, a, b, 0, a.Rows)
	return nil
}

func checkTransB(dst, a, b *Matrix) error {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("matmulTransB %dx%d by %dx%d into %dx%d: %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrShape)
	}
	return nil
}

// matMulTransBRows computes the dot-form a·bᵀ for dst rows [lo, hi).
// Four output columns run at once through Dot4Unchecked — four
// independent strict ascending-k chains, bit-identical per element to
// the single-dot loop, ~3× its throughput (a lone dot is FP-add-
// latency-bound; the batch keeps four chains in flight).
func matMulTransBRows(dst, a, b *Matrix, lo, hi int) {
	n := b.Rows
	for j0 := 0; j0 < n; j0 += matMulColTile {
		jEnd := j0 + matMulColTile
		if jEnd > n {
			jEnd = n
		}
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			di := dst.Row(i)
			j := j0
			for ; j+4 <= jEnd; j += 4 {
				di[j], di[j+1], di[j+2], di[j+3] = Dot4Unchecked(
					ai, b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3))
			}
			for ; j < jEnd; j++ {
				di[j] = DotUnchecked(ai, b.Row(j))
			}
		}
	}
}

// TransposeInto writes aᵀ into dst; dst must be (a.Cols × a.Rows) and
// must not alias a. Transposing a weight matrix once per batch lets
// the forward GEMM run in the AXPY form (independent per-element
// accumulations, ~3× the throughput of the dot form on long inner
// dimensions, whose sequential adds are FP-latency-bound) while
// keeping the exact ascending-k summation order of the dot form.
func TransposeInto(dst, a *Matrix) error {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		return fmt.Errorf("transpose %dx%d into %dx%d: %w", a.Rows, a.Cols, dst.Rows, dst.Cols, ErrShape)
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		for j, v := range ai {
			dst.Data[j*dst.Cols+i] = v
		}
	}
	return nil
}

// Resize reshapes m to rows×cols in place, reusing the backing array
// when its capacity allows — the grow-once pattern behind the batch
// scratch matrices of the training hot path. The data is left
// uninitialized (callers overwrite it fully).
func (m *Matrix) Resize(rows, cols int) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("resize matrix to %dx%d: %w", rows, cols, ErrShape)
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return nil
}
