package vecmath

import (
	"errors"
	"math/rand"
	"testing"
)

func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := MustMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMatMul is the textbook triple loop used as the reference
// implementation (j innermost, k middle — a different loop order than
// the tiled kernels, but the same ascending-k summation per element).
func naiveMatMul(a, b *Matrix, transA, transB bool) *Matrix {
	rowsA, colsA := a.Rows, a.Cols
	if transA {
		rowsA, colsA = a.Cols, a.Rows
	}
	colsB := b.Cols
	if transB {
		colsB = b.Rows
	}
	at := func(m *Matrix, i, j int, trans bool) float64 {
		if trans {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	dst := MustMatrix(rowsA, colsB)
	for i := 0; i < rowsA; i++ {
		for j := 0; j < colsB; j++ {
			var s float64
			for k := 0; k < colsA; k++ {
				s += at(a, i, k, transA) * at(b, k, j, transB)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func wantBitIdentical(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s shape %dx%d want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s data[%d] = %v want %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulIntoMatchesNaive covers dst = a·b against the reference
// triple loop, including shapes that are not multiples of the tiles.
func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range [][3]int{{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 2, 3}, {9, 70, 65}, {32, 64, 7}} {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randMat(m, k, rng), randMat(k, n, rng)
		dst := MustMatrix(m, n)
		// Pre-poison dst: Into kernels must overwrite, not accumulate.
		for i := range dst.Data {
			dst.Data[i] = 1e9
		}
		if err := MatMulInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		wantBitIdentical(t, "matmul", dst, naiveMatMul(a, b, false, false))
	}
}

// TestMatMulTransAIntoMatchesNaive covers dst = aᵀ·b and the
// accumulate variant's exact per-sample-order equivalence.
func TestMatMulTransAIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range [][3]int{{1, 1, 1}, {6, 3, 4}, {32, 16, 9}, {5, 66, 70}} {
		k, m, n := sh[0], sh[1], sh[2]
		a, b := randMat(k, m, rng), randMat(k, n, rng)
		dst := MustMatrix(m, n)
		for i := range dst.Data {
			dst.Data[i] = 1e9
		}
		if err := MatMulTransAInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		wantBitIdentical(t, "matmulTransA", dst, naiveMatMul(a, b, true, false))

		// The accumulate variant over a zeroed gradient matrix must be
		// bit-identical to summing the per-sample outer products in
		// sample order — the contract the batched backward relies on.
		acc := MustMatrix(m, n)
		if err := MatMulTransAAccumInto(acc, a, b); err != nil {
			t.Fatal(err)
		}
		perSample := MustMatrix(m, n)
		for s := 0; s < k; s++ {
			perSample.AddOuterInto(1, a.Row(s), b.Row(s))
		}
		wantBitIdentical(t, "matmulTransA-accum-vs-outer", acc, perSample)
	}
}

// TestMatMulTransBIntoMatchesPerRowMulVec covers dst = a·bᵀ and its
// bit-identity with the per-sample MulVecInto path (the batched
// forward contract).
func TestMatMulTransBIntoMatchesPerRowMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range [][3]int{{1, 1, 1}, {4, 6, 3}, {32, 8, 7}, {3, 80, 70}} {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randMat(m, k, rng), randMat(n, k, rng)
		dst := MustMatrix(m, n)
		for i := range dst.Data {
			dst.Data[i] = 1e9
		}
		if err := MatMulTransBInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		wantBitIdentical(t, "matmulTransB", dst, naiveMatMul(a, b, false, true))
		row := make(Vec, n)
		for i := 0; i < m; i++ {
			if err := b.MulVecInto(row, a.Row(i)); err != nil {
				t.Fatal(err)
			}
			for j := range row {
				if dst.At(i, j) != row[j] {
					t.Fatalf("row %d col %d: %v vs MulVecInto %v", i, j, dst.At(i, j), row[j])
				}
			}
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := MustMatrix(3, 4)
	b := MustMatrix(5, 6)
	if err := MatMulInto(MustMatrix(3, 6), a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("matmul inner mismatch: %v", err)
	}
	if err := MatMulTransAInto(MustMatrix(4, 6), a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("matmulTransA mismatch: %v", err)
	}
	if err := MatMulTransBInto(MustMatrix(3, 5), a, MustMatrix(5, 6)); !errors.Is(err, ErrShape) {
		t.Fatalf("matmulTransB mismatch: %v", err)
	}
	if err := MatMulInto(MustMatrix(2, 6), a, MustMatrix(4, 6)); !errors.Is(err, ErrShape) {
		t.Fatalf("matmul dst mismatch: %v", err)
	}
}

func TestMatrixResize(t *testing.T) {
	m := MustMatrix(4, 8)
	base := &m.Data[0]
	if err := m.Resize(2, 3); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("resize gave %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != base {
		t.Fatal("shrinking resize reallocated")
	}
	if err := m.Resize(100, 100); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 100 || m.Cols != 100 || len(m.Data) != 10000 {
		t.Fatalf("growing resize gave %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if err := m.Resize(0, 3); !errors.Is(err, ErrShape) {
		t.Fatalf("zero-row resize: %v", err)
	}
}
