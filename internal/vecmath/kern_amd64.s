//go:build amd64 && !purego

#include "textflag.h"

// func axpyAVX2(alpha float64, x, y *float64, n int)
//
// y[i] += alpha * x[i] for i in [0, n).
//
// Determinism contract: each element is one VMULPD lane followed by
// one VADDPD lane — the same two IEEE-754 roundings, in the same
// order, as the scalar `y[i] += alpha * x[i]` loop. No FMA (one
// rounding where the contract has two) and no reassociation (AXPY has
// no cross-element sums), so the result is bit-identical to the
// generic kernel for every input, including ±0, ±Inf and denormals.
//
// Layout: 16 elements per main-loop pass (4 × YMM), then a 4-wide
// pass, then scalar VEX tail ops. Unaligned loads throughout — Go
// slices carry no alignment guarantee.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	VBROADCASTSD alpha+0(FP), Y0

	MOVQ CX, BX
	SHRQ $4, BX          // BX = n / 16
	JZ   tail4

loop16:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMOVUPD 64(SI), Y3
	VMOVUPD 96(SI), Y4
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y3, Y3
	VMULPD  Y0, Y4, Y4
	VADDPD  (DI), Y1, Y1
	VADDPD  32(DI), Y2, Y2
	VADDPD  64(DI), Y3, Y3
	VADDPD  96(DI), Y4, Y4
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    BX
	JNZ     loop16

tail4:
	MOVQ CX, BX
	ANDQ $15, BX         // BX = n % 16
	MOVQ BX, DX
	SHRQ $2, DX          // DX = remaining / 4
	JZ   tail1

loop4:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     loop4

tail1:
	ANDQ $3, BX          // BX = n % 4
	JZ   done

loop1:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   BX
	JNZ    loop1

done:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
