package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"dtmsvs/internal/checkpoint"
)

// WeightState is the serializable parameter set of a network: one
// flat float64 slice per Param, in layer order. Architectures are
// reconstructed from configuration (not stored), so loading is only
// valid into a network of the identical shape — which Load verifies.
type WeightState struct {
	// Params holds each parameter tensor's flattened values.
	Params [][]float64 `json:"params"`
}

// SaveWeights captures the network's parameters.
func (n *Network) SaveWeights() *WeightState {
	params := n.Params()
	out := &WeightState{Params: make([][]float64, len(params))}
	for i, p := range params {
		out.Params[i] = append([]float64(nil), p.W...)
	}
	return out
}

// LoadWeights restores parameters captured by SaveWeights into a
// network of the identical architecture.
func (n *Network) LoadWeights(state *WeightState) error {
	if state == nil {
		return fmt.Errorf("nil weight state: %w", ErrShape)
	}
	params := n.Params()
	if len(params) != len(state.Params) {
		return fmt.Errorf("weight state has %d tensors, network has %d: %w",
			len(state.Params), len(params), ErrShape)
	}
	for i, p := range params {
		if len(p.W) != len(state.Params[i]) {
			return fmt.Errorf("tensor %d has %d values, want %d: %w",
				i, len(state.Params[i]), len(p.W), ErrShape)
		}
	}
	for i, p := range params {
		copy(p.W, state.Params[i])
	}
	return nil
}

// WriteJSON serializes the weight state.
func (s *WeightState) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// ReadWeightState decodes a weight state.
func ReadWeightState(r io.Reader) (*WeightState, error) {
	var s WeightState
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("decode weights: %w", err)
	}
	return &s, nil
}

// Encode appends the weight state to a checkpoint section: tensor
// count, then each tensor as a length-prefixed float64 slice. Float
// bits round-trip exactly, so encode/decode preserves weights
// bitwise.
func (s *WeightState) Encode(e *checkpoint.Enc) {
	e.U32(uint32(len(s.Params)))
	for _, p := range s.Params {
		e.F64s(p)
	}
}

// DecodeWeightState reads a weight state written by Encode. Shape
// validation happens at LoadWeights time, against the live network.
func DecodeWeightState(d *checkpoint.Dec) *WeightState {
	n := d.U32()
	if d.Err() != nil {
		return &WeightState{}
	}
	s := &WeightState{Params: make([][]float64, 0, min(int(n), 1024))}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		s.Params = append(s.Params, d.F64s())
	}
	return s
}
