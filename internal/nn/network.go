package nn

import (
	"fmt"
	"math"

	"dtmsvs/internal/vecmath"
)

// Network chains layers into a sequential model.
type Network struct {
	layers []Layer
	// params caches the flattened parameter list: layer param sets are
	// static, and rebuilding the slice every ZeroGrads/Step would be
	// the only allocation left in a training step.
	params []Param
}

// NewNetwork validates that consecutive layer shapes are compatible
// for the given input width and returns the model.
func NewNetwork(inputDim int, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("network with no layers: %w", ErrShape)
	}
	width := inputDim
	for i, l := range layers {
		out, err := l.OutSize(width)
		if err != nil {
			return nil, fmt.Errorf("network layer %d: %w", i, err)
		}
		width = out
	}
	return &Network{layers: layers}, nil
}

// Layers exposes the layer list (read-only use expected).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs all layers in order.
func (n *Network) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	cur := x
	for i, l := range n.layers {
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("forward layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}

// Backward propagates an output-gradient through all layers in
// reverse, accumulating parameter gradients, and returns the gradient
// with respect to the network input (useful for chaining networks,
// e.g. autoencoder decoder → encoder).
func (n *Network) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	cur := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		out, err := n.layers[i].Backward(cur)
		if err != nil {
			return nil, fmt.Errorf("backward layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}

// ZeroGrads clears all gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// SetTraining toggles activation caching on every layer that supports
// it. With train=false, Forward skips the backprop caches (and clones)
// entirely — the inference-only fast path; a subsequent Backward
// returns an error until training mode is restored.
func (n *Network) SetTraining(train bool) {
	for _, l := range n.layers {
		if tm, ok := l.(TrainMode); ok {
			tm.SetTraining(train)
		}
	}
}

// Params returns all parameter/grad pairs. The slice is cached — the
// caller must not append to it.
func (n *Network) Params() []Param {
	if n.params == nil {
		for _, l := range n.layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	var total int
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// MSELoss returns ½·mean((pred−target)²) and the gradient w.r.t. pred.
func MSELoss(pred, target vecmath.Vec) (float64, vecmath.Vec, error) {
	grad := make(vecmath.Vec, len(pred))
	loss, err := MSELossInto(grad, pred, target)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// MSELossInto is MSELoss writing the gradient into a caller-owned
// buffer (len(grad) == len(pred)) instead of allocating.
func MSELossInto(grad, pred, target vecmath.Vec) (float64, error) {
	if len(pred) == 0 || len(pred) != len(target) || len(grad) != len(pred) {
		return 0, fmt.Errorf("mse %d vs %d grad %d: %w", len(pred), len(target), len(grad), ErrShape)
	}
	var loss float64
	inv := 1 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * d * d * inv
		grad[i] = d * inv
	}
	return loss, nil
}

// HuberLoss returns the mean Huber loss with threshold delta and its
// gradient. It is the standard DQN loss (smooth L1) — quadratic near
// zero, linear in the tails, which stabilizes TD training.
func HuberLoss(pred, target vecmath.Vec, delta float64) (float64, vecmath.Vec, error) {
	grad := make(vecmath.Vec, len(pred))
	loss, err := HuberLossInto(grad, pred, target, delta)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// HuberLossInto is HuberLoss writing the gradient into a caller-owned
// buffer (len(grad) == len(pred)) instead of allocating.
func HuberLossInto(grad, pred, target vecmath.Vec, delta float64) (float64, error) {
	if len(pred) == 0 || len(pred) != len(target) || len(grad) != len(pred) {
		return 0, fmt.Errorf("huber %d vs %d grad %d: %w", len(pred), len(target), len(grad), ErrShape)
	}
	if delta <= 0 {
		return 0, fmt.Errorf("huber delta=%v: %w", delta, ErrShape)
	}
	var loss float64
	inv := 1 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d * inv
			grad[i] = d * inv
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta) * inv
			if d > 0 {
				grad[i] = delta * inv
			} else {
				grad[i] = -delta * inv
			}
		}
	}
	return loss, nil
}

// Optimizer updates parameters given accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter pair.
	Step(params []Param) error
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR, Momentum float64

	velocity [][]float64
}

var _ Optimizer = (*SGD)(nil)

// Step implements Optimizer.
func (s *SGD) Step(params []Param) error {
	if s.LR <= 0 {
		return fmt.Errorf("sgd lr=%v: %w", s.LR, ErrShape)
	}
	if s.velocity == nil {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p.W))
		}
	}
	if len(s.velocity) != len(params) {
		return fmt.Errorf("sgd param-set changed size: %w", ErrShape)
	}
	for i, p := range params {
		v := s.velocity[i]
		if len(v) != len(p.W) || len(p.G) != len(p.W) {
			return fmt.Errorf("sgd param %d shape: %w", i, ErrShape)
		}
		for j := range p.W {
			v[j] = s.Momentum*v[j] - s.LR*p.G[j]
			p.W[j] += v[j]
		}
	}
	return nil
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v [][]float64
}

// NewAdam returns Adam with conventional defaults for any zero field.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

var _ Optimizer = (*Adam)(nil)

// Step implements Optimizer.
func (a *Adam) Step(params []Param) error {
	if a.LR <= 0 {
		return fmt.Errorf("adam lr=%v: %w", a.LR, ErrShape)
	}
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.W))
			a.v[i] = make([]float64, len(p.W))
		}
	}
	if len(a.m) != len(params) {
		return fmt.Errorf("adam param-set changed size: %w", ErrShape)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		if len(m) != len(p.W) || len(p.G) != len(p.W) {
			return fmt.Errorf("adam param %d shape: %w", i, ErrShape)
		}
		for j := range p.W {
			g := p.G[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.W[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
	return nil
}

// ClipGrads scales all gradients so their global L2 norm is at most
// maxNorm. Returns the pre-clip norm.
func ClipGrads(params []Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.G {
				p.G[j] *= scale
			}
		}
	}
	return norm
}
