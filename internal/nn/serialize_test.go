package nn

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dtmsvs/internal/vecmath"
)

func buildNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := newRNG()
	_ = seed
	d1, err := NewDense(4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense(6, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(4, d1, &Tanh{}, d2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	src := buildNet(t, 1)
	dst := buildNet(t, 2)
	x := vecmath.Vec{0.1, -0.2, 0.3, 0.7}

	before, err := src.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadWeights(src.SaveWeights()); err != nil {
		t.Fatal(err)
	}
	after, err := dst.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("output differs after weight transfer: %v vs %v", before, after)
		}
	}
}

func TestSaveWeightsIsolation(t *testing.T) {
	net := buildNet(t, 3)
	state := net.SaveWeights()
	state.Params[0][0] = 1e9
	x := vecmath.Vec{1, 1, 1, 1}
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v > 1e6 {
			t.Fatal("saved state aliases live weights")
		}
	}
}

func TestLoadWeightsValidation(t *testing.T) {
	net := buildNet(t, 4)
	if err := net.LoadWeights(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if err := net.LoadWeights(&WeightState{Params: [][]float64{{1}}}); !errors.Is(err, ErrShape) {
		t.Fatalf("tensor count: want ErrShape, got %v", err)
	}
	bad := net.SaveWeights()
	bad.Params[0] = bad.Params[0][:1]
	if err := net.LoadWeights(bad); !errors.Is(err, ErrShape) {
		t.Fatalf("tensor size: want ErrShape, got %v", err)
	}
	// A failed load must not partially mutate: check output unchanged.
	x := vecmath.Vec{0.5, 0.5, 0.5, 0.5}
	before, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_ = net.LoadWeights(bad)
	after, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("failed load mutated weights")
		}
	}
}

func TestWeightStateJSONRoundTrip(t *testing.T) {
	net := buildNet(t, 5)
	state := net.SaveWeights()
	var buf bytes.Buffer
	if err := state.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWeightState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	other := buildNet(t, 6)
	if err := other.LoadWeights(back); err != nil {
		t.Fatal(err)
	}
	x := vecmath.Vec{0.2, 0.4, 0.6, 0.8}
	a, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("json round trip changed weights")
		}
	}
}

func TestReadWeightStateError(t *testing.T) {
	if _, err := ReadWeightState(strings.NewReader("{oops")); err == nil {
		t.Fatal("malformed weights must error")
	}
}
