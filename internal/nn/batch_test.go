package nn

import (
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

func randVec(n int, rng *rand.Rand) vecmath.Vec {
	v := make(vecmath.Vec, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func stack(rows []vecmath.Vec) *vecmath.Matrix {
	m := vecmath.MustMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

func cloneGrads(layers []Layer) [][]float64 {
	var out [][]float64
	for _, l := range layers {
		for _, p := range l.Params() {
			out = append(out, append([]float64(nil), p.G...))
		}
	}
	return out
}

// TestDenseBatchMatchesPerSample pins the batched Dense contract: the
// batch forward rows equal per-sample Forward outputs bit for bit,
// and the accumulated dW/db of one BackwardBatch equal the sum of
// per-sample Backwards exactly (same ascending-sample summation
// order). The returned input gradient rows must match too.
func TestDenseBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const batch, inDim, outDim = 7, 13, 9
	dBatch, err := NewDense(inDim, outDim, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	dSingle, err := NewDense(inDim, outDim, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]vecmath.Vec, batch)
	gs := make([]vecmath.Vec, batch)
	for i := range xs {
		xs[i] = randVec(inDim, rng)
		gs[i] = randVec(outDim, rng)
	}
	xB := stack(xs)
	gB := stack(gs)

	out, err := dBatch.ForwardBatch(xB)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := dBatch.BackwardBatch(gB)
	if err != nil {
		t.Fatal(err)
	}

	for s := 0; s < batch; s++ {
		wantOut, err := dSingle.Forward(xs[s])
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantOut {
			if out.At(s, j) != wantOut[j] {
				t.Fatalf("forward row %d col %d: %v want %v", s, j, out.At(s, j), wantOut[j])
			}
		}
		wantDx, err := dSingle.Backward(gs[s])
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantDx {
			if dx.At(s, j) != wantDx[j] {
				t.Fatalf("dx row %d col %d: %v want %v", s, j, dx.At(s, j), wantDx[j])
			}
		}
	}
	bp, sp := dBatch.Params(), dSingle.Params()
	for pi := range bp {
		for j := range bp[pi].G {
			if bp[pi].G[j] != sp[pi].G[j] {
				t.Fatalf("param %d grad %d: %v want %v (batched dW must equal the sum of per-sample dW)",
					pi, j, bp[pi].G[j], sp[pi].G[j])
			}
		}
	}
}

// TestNetworkBatchGradientMatchesPerSample runs the full CNN-compressor
// stack (conv → relu → pool → dense → tanh) both ways: the batched
// backward's accumulated parameter gradients must equal the summed
// per-sample gradients. The conv layer's im2col GEMM groups its
// channel/tap summation differently from the per-sample loop, so the
// comparison uses a tight relative tolerance instead of bit equality.
func TestNetworkBatchGradientMatchesPerSample(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(3))
		conv, err := NewConv1D(3, 12, 4, 3, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := NewMaxPool1D(4, conv.OutLen(), 2)
		if err != nil {
			t.Fatal(err)
		}
		head, err := NewDense(4*pool.OutLen(), 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		net, err := NewNetwork(3*12, conv, &ReLU{}, pool, head, &Tanh{})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	netB, netS := build(), build()
	rng := rand.New(rand.NewSource(4))
	const batch = 6
	xs := make([]vecmath.Vec, batch)
	gs := make([]vecmath.Vec, batch)
	for i := range xs {
		xs[i] = randVec(3*12, rng)
		gs[i] = randVec(5, rng)
	}

	if _, err := netB.ForwardBatch(stack(xs)); err != nil {
		t.Fatal(err)
	}
	if _, err := netB.BackwardBatch(stack(gs)); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < batch; s++ {
		if _, err := netS.Forward(xs[s]); err != nil {
			t.Fatal(err)
		}
		if _, err := netS.Backward(gs[s]); err != nil {
			t.Fatal(err)
		}
	}
	pb, ps := netB.Params(), netS.Params()
	const tol = 1e-12
	for pi := range pb {
		for j := range pb[pi].G {
			got, want := pb[pi].G[j], ps[pi].G[j]
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if want > scale || want < -scale {
				scale = want
				if scale < 0 {
					scale = -scale
				}
			}
			if diff > tol*scale {
				t.Fatalf("param %d grad %d: %v want %v (diff %v)", pi, j, got, want, diff)
			}
		}
	}
}

// TestBatchForwardMatchesPerSampleForward pins bit-identity of the
// whole batched MLP forward against per-sample Forward — the property
// the DDQN's batched next-state evaluation relies on.
func TestBatchForwardMatchesPerSampleForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l1, _ := NewDense(6, 16, rng)
	l2, _ := NewDense(16, 4, rng)
	net, err := NewNetwork(6, l1, &ReLU{}, l2, &Sigmoid{})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 9
	xs := make([]vecmath.Vec, batch)
	for i := range xs {
		xs[i] = randVec(6, rng)
	}
	out, err := net.ForwardBatch(stack(xs))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < batch; s++ {
		want, err := net.Forward(xs[s])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if out.At(s, j) != want[j] {
				t.Fatalf("row %d col %d: %v want %v", s, j, out.At(s, j), want[j])
			}
		}
	}
}

// TestBackwardBatchBeforeForwardErrors pins the priming contract on
// the batch path, including after an inference-mode forward.
func TestBackwardBatchBeforeForwardErrors(t *testing.T) {
	d, err := NewDense(4, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BackwardBatch(vecmath.MustMatrix(2, 3)); err == nil {
		t.Fatal("BackwardBatch before ForwardBatch must error")
	}
	d.SetTraining(false)
	if _, err := d.ForwardBatch(vecmath.MustMatrix(2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BackwardBatch(vecmath.MustMatrix(2, 3)); err == nil {
		t.Fatal("BackwardBatch after inference-mode ForwardBatch must error")
	}
	d.SetTraining(true)
	if _, err := d.ForwardBatch(vecmath.MustMatrix(2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BackwardBatch(vecmath.MustMatrix(2, 3)); err != nil {
		t.Fatalf("BackwardBatch after training-mode ForwardBatch: %v", err)
	}
}

// TestNetworkBatchTrainStepAllocFree is the allocation gate for the
// batched training hot path over the compressor stack: after the
// scratch is grown once, a steady-state batched forward+backward must
// not touch the heap.
func TestNetworkBatchTrainStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv, err := NewConv1D(5, 16, 8, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool1D(8, conv.OutLen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	head, err := NewDense(8*pool.OutLen(), 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(5*16, conv, &ReLU{}, pool, head, &Tanh{})
	if err != nil {
		t.Fatal(err)
	}
	x := vecmath.MustMatrix(8, 5*16)
	grad := vecmath.MustMatrix(8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range grad.Data {
		grad.Data[i] = rng.NormFloat64()
	}
	// Prime scratch.
	if _, err := net.ForwardBatch(x); err != nil {
		t.Fatal(err)
	}
	if _, err := net.BackwardBatch(grad); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		net.ZeroGrads()
		if _, err := net.ForwardBatch(x); err != nil {
			t.Fatal(err)
		}
		if _, err := net.BackwardBatch(grad); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("batched forward+backward allocates %v per run", n)
	}
}
