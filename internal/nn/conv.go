package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/vecmath"
)

// Conv1D is a multi-channel 1-D convolution ("valid" padding). Input
// and output are flattened channel-major vectors:
//
//	in  = [c0 t0..tL-1, c1 t0..tL-1, ...]   (InCh × InLen)
//	out = [f0 t0..tO-1, f1 t0..tO-1, ...]   (Filters × outLen)
//
// where outLen = (InLen − Kernel)/Stride + 1.
type Conv1D struct {
	InCh, InLen    int
	Filters        int
	Kernel, Stride int

	// w[f][c] is the kernel of filter f over input channel c.
	w, gw [][]vecmath.Vec
	b, gb vecmath.Vec

	infer  bool
	primed bool
	lastIn vecmath.Vec
	out    vecmath.Vec
	dx     vecmath.Vec

	// Batched-training scratch (see batch.go): the im2col window
	// matrix, flattened weight/gradient views, the GEMM outputs and
	// the batch input-gradient — all grow-once layer-owned.
	bPrimed                     bool
	xcol, wflat, wflatT, gwflat *vecmath.Matrix
	ycol, dycol, dxcol          *vecmath.Matrix
	bOut, bDx                   *vecmath.Matrix

	// gemm optionally fans the batch-path GEMM row blocks across a
	// worker pool (nil = sequential; identical bits either way).
	gemm *vecmath.GEMMPool
}

// SetGEMMPool routes the layer's batch-path GEMMs through the given
// pool (nil restores the sequential kernels). Outputs are
// bit-identical for any pool and worker count.
func (c *Conv1D) SetGEMMPool(p *vecmath.GEMMPool) { c.gemm = p }

// NewConv1D builds a conv layer with Xavier-style initialization.
func NewConv1D(inCh, inLen, filters, kernel, stride int, rng *rand.Rand) (*Conv1D, error) {
	if inCh <= 0 || inLen <= 0 || filters <= 0 || kernel <= 0 || stride <= 0 {
		return nil, fmt.Errorf("conv1d params ch=%d len=%d f=%d k=%d s=%d: %w",
			inCh, inLen, filters, kernel, stride, ErrShape)
	}
	if kernel > inLen {
		return nil, fmt.Errorf("conv1d kernel %d > input %d: %w", kernel, inLen, ErrShape)
	}
	fanIn := inCh * kernel
	fanOut := filters * kernel
	scale := math.Sqrt(6.0 / float64(fanIn+fanOut))
	w := make([][]vecmath.Vec, filters)
	gw := make([][]vecmath.Vec, filters)
	for f := 0; f < filters; f++ {
		w[f] = make([]vecmath.Vec, inCh)
		gw[f] = make([]vecmath.Vec, inCh)
		for c := 0; c < inCh; c++ {
			k := make(vecmath.Vec, kernel)
			for i := range k {
				k[i] = (rng.Float64()*2 - 1) * scale
			}
			w[f][c] = k
			gw[f][c] = make(vecmath.Vec, kernel)
		}
	}
	c := &Conv1D{
		InCh: inCh, InLen: inLen, Filters: filters, Kernel: kernel, Stride: stride,
		w: w, gw: gw,
		b: make(vecmath.Vec, filters), gb: make(vecmath.Vec, filters),
	}
	c.lastIn = make(vecmath.Vec, inCh*inLen)
	c.out = make(vecmath.Vec, filters*c.OutLen())
	c.dx = make(vecmath.Vec, inCh*inLen)
	return c, nil
}

var _ Layer = (*Conv1D)(nil)
var _ TrainMode = (*Conv1D)(nil)

// SetTraining implements TrainMode.
func (c *Conv1D) SetTraining(train bool) { c.infer = !train }

// OutLen returns the temporal length of each output channel.
func (c *Conv1D) OutLen() int { return (c.InLen-c.Kernel)/c.Stride + 1 }

// OutSize implements Layer.
func (c *Conv1D) OutSize(in int) (int, error) {
	if in != c.InCh*c.InLen {
		return 0, fmt.Errorf("conv1d outsize for %d want %d: %w", in, c.InCh*c.InLen, ErrShape)
	}
	return c.Filters * c.OutLen(), nil
}

// Forward implements Layer.
func (c *Conv1D) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	if len(x) != c.InCh*c.InLen {
		return nil, fmt.Errorf("conv1d forward got %d want %d: %w", len(x), c.InCh*c.InLen, ErrShape)
	}
	if c.infer {
		c.primed = false
	} else {
		copy(c.lastIn, x)
		c.primed = true
	}
	outLen := c.OutLen()
	out := c.out
	for i := range out {
		out[i] = 0
	}
	for f := 0; f < c.Filters; f++ {
		dst := out[f*outLen : (f+1)*outLen]
		for ch := 0; ch < c.InCh; ch++ {
			src := x[ch*c.InLen : (ch+1)*c.InLen]
			kern := c.w[f][ch]
			for t := 0; t < outLen; t++ {
				base := t * c.Stride
				var s float64
				for j, kj := range kern {
					s += src[base+j] * kj
				}
				dst[t] += s
			}
		}
		for t := range dst {
			dst[t] += c.b[f]
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	outLen := c.OutLen()
	if len(grad) != c.Filters*outLen {
		return nil, fmt.Errorf("conv1d backward got %d want %d: %w", len(grad), c.Filters*outLen, ErrShape)
	}
	if !c.primed {
		return nil, fmt.Errorf("conv1d backward before training-mode forward: %w", ErrShape)
	}
	dx := c.dx
	for i := range dx {
		dx[i] = 0
	}
	for f := 0; f < c.Filters; f++ {
		g := grad[f*outLen : (f+1)*outLen]
		for _, gv := range g {
			c.gb[f] += gv
		}
		for ch := 0; ch < c.InCh; ch++ {
			src := c.lastIn[ch*c.InLen : (ch+1)*c.InLen]
			kern := c.w[f][ch]
			gk := c.gw[f][ch]
			dsrc := dx[ch*c.InLen : (ch+1)*c.InLen]
			for t := 0; t < outLen; t++ {
				base := t * c.Stride
				gv := g[t]
				if gv == 0 {
					continue
				}
				for j := 0; j < c.Kernel; j++ {
					gk[j] += gv * src[base+j]
					dsrc[base+j] += gv * kern[j]
				}
			}
		}
	}
	return dx, nil
}

// Params implements Layer.
func (c *Conv1D) Params() []Param {
	params := make([]Param, 0, c.Filters*c.InCh+1)
	for f := range c.w {
		for ch := range c.w[f] {
			params = append(params, Param{W: c.w[f][ch], G: c.gw[f][ch]})
		}
	}
	params = append(params, Param{W: c.b, G: c.gb})
	return params
}

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of the given size.
type MaxPool1D struct {
	Ch, InLen, Window int

	lastArg []int // index of max per output element
	primed  bool
	out     vecmath.Vec
	dx      vecmath.Vec

	bArg      []int // batched argmax cache, row-major per sample
	bOut, bDx *vecmath.Matrix
}

// NewMaxPool1D validates the shape and returns the layer.
func NewMaxPool1D(ch, inLen, window int) (*MaxPool1D, error) {
	if ch <= 0 || inLen <= 0 || window <= 0 || window > inLen {
		return nil, fmt.Errorf("maxpool ch=%d len=%d w=%d: %w", ch, inLen, window, ErrShape)
	}
	p := &MaxPool1D{Ch: ch, InLen: inLen, Window: window}
	p.lastArg = make([]int, ch*p.OutLen())
	p.out = make(vecmath.Vec, ch*p.OutLen())
	p.dx = make(vecmath.Vec, ch*inLen)
	return p, nil
}

var _ Layer = (*MaxPool1D)(nil)

// OutLen returns the pooled length per channel.
func (p *MaxPool1D) OutLen() int { return p.InLen / p.Window }

// OutSize implements Layer.
func (p *MaxPool1D) OutSize(in int) (int, error) {
	if in != p.Ch*p.InLen {
		return 0, fmt.Errorf("maxpool outsize for %d want %d: %w", in, p.Ch*p.InLen, ErrShape)
	}
	return p.Ch * p.OutLen(), nil
}

// Forward implements Layer.
func (p *MaxPool1D) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	if len(x) != p.Ch*p.InLen {
		return nil, fmt.Errorf("maxpool forward got %d want %d: %w", len(x), p.Ch*p.InLen, ErrShape)
	}
	outLen := p.OutLen()
	out := p.out
	p.primed = true
	for c := 0; c < p.Ch; c++ {
		src := x[c*p.InLen : (c+1)*p.InLen]
		for t := 0; t < outLen; t++ {
			base := t * p.Window
			best := base
			for j := base + 1; j < base+p.Window; j++ {
				if src[j] > src[best] {
					best = j
				}
			}
			out[c*outLen+t] = src[best]
			p.lastArg[c*outLen+t] = c*p.InLen + best
		}
	}
	return out, nil
}

// Backward implements Layer.
func (p *MaxPool1D) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	outLen := p.OutLen()
	if len(grad) != p.Ch*outLen || !p.primed {
		return nil, fmt.Errorf("maxpool backward got %d want %d: %w", len(grad), p.Ch*outLen, ErrShape)
	}
	dx := p.dx
	for i := range dx {
		dx[i] = 0
	}
	for i, g := range grad {
		dx[p.lastArg[i]] += g
	}
	return dx, nil
}

// Params implements Layer.
func (p *MaxPool1D) Params() []Param { return nil }
