package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

func newRNG() *rand.Rand { return rand.New(rand.NewSource(12345)) }

func TestDenseShapeValidation(t *testing.T) {
	rng := newRNG()
	if _, err := NewDense(0, 3, rng); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	d, err := NewDense(3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Forward(vecmath.Vec{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := d.Backward(vecmath.Vec{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("backward before forward: want ErrShape, got %v", err)
	}
	if _, err := d.OutSize(5); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	out, err := d.OutSize(3)
	if err != nil || out != 2 {
		t.Fatalf("OutSize = %d, %v", out, err)
	}
}

func TestDenseForwardKnownWeights(t *testing.T) {
	d, err := NewDense(2, 2, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	copy(d.w.Data, []float64{1, 2, 3, 4})
	copy(d.b, []float64{0.5, -0.5})
	out, err := d.Forward(vecmath.Vec{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3.5 || out[1] != 6.5 {
		t.Fatalf("forward = %v", out)
	}
}

// Finite-difference check of the dense layer gradient.
func TestDenseGradientNumerically(t *testing.T) {
	rng := newRNG()
	d, err := NewDense(3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := vecmath.Vec{0.3, -0.7, 1.2}
	target := vecmath.Vec{0.1, -0.4}

	lossOf := func() float64 {
		out, ferr := d.Forward(x)
		if ferr != nil {
			t.Fatal(ferr)
		}
		l, _, lerr := MSELoss(out, target)
		if lerr != nil {
			t.Fatal(lerr)
		}
		return l
	}

	out, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := MSELoss(out, target)
	if err != nil {
		t.Fatal(err)
	}
	ZeroGrads([]Layer{d})
	if _, err := d.Backward(grad); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-6
	for _, p := range d.Params() {
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + eps
			lp := lossOf()
			p.W[j] = orig - eps
			lm := lossOf()
			p.W[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G[j]) > 1e-5 {
				t.Fatalf("param grad mismatch: numeric %v analytic %v", num, p.G[j])
			}
		}
	}
}

func TestReLU(t *testing.T) {
	var r ReLU
	out, err := r.Forward(vecmath.Vec{-1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("relu forward %v", out)
	}
	g, err := r.Backward(vecmath.Vec{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 0 || g[1] != 0 || g[2] != 1 {
		t.Fatalf("relu backward %v", g)
	}
	if _, err := r.Backward(vecmath.Vec{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if r.Params() != nil {
		t.Fatal("relu must be stateless")
	}
}

func TestTanhSigmoidGradients(t *testing.T) {
	for name, layer := range map[string]Layer{"tanh": &Tanh{}, "sigmoid": &Sigmoid{}} {
		x := vecmath.Vec{0.5, -0.3}
		out, err := layer.Forward(x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = out
		grad, err := layer.Backward(vecmath.Vec{1, 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// numeric check
		const eps = 1e-6
		for i := range x {
			xp := vecmath.Clone(x)
			xp[i] += eps
			opRaw, _ := layer.Forward(xp)
			op := vecmath.Clone(opRaw) // Forward returns layer-owned scratch
			xm := vecmath.Clone(x)
			xm[i] -= eps
			om, _ := layer.Forward(xm)
			num := (op[i] - om[i]) / (2 * eps)
			// re-prime cache for the original input
			if _, err := layer.Forward(x); err != nil {
				t.Fatal(err)
			}
			if math.Abs(num-grad[i]) > 1e-5 {
				t.Fatalf("%s grad[%d]: numeric %v analytic %v", name, i, num, grad[i])
			}
		}
	}
}

func TestConv1DValidation(t *testing.T) {
	rng := newRNG()
	if _, err := NewConv1D(0, 8, 2, 3, 1, rng); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := NewConv1D(1, 2, 2, 3, 1, rng); !errors.Is(err, ErrShape) {
		t.Fatalf("kernel>input: want ErrShape, got %v", err)
	}
	c, err := NewConv1D(2, 8, 3, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutLen() != 6 {
		t.Fatalf("OutLen = %d", c.OutLen())
	}
	if _, err := c.Forward(vecmath.Vec{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	n, err := c.OutSize(16)
	if err != nil || n != 18 {
		t.Fatalf("OutSize = %d, %v", n, err)
	}
}

func TestConv1DKnownKernel(t *testing.T) {
	c, err := NewConv1D(1, 4, 1, 2, 1, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	copy(c.w[0][0], []float64{1, 1})
	c.b[0] = 0
	out, err := c.Forward(vecmath.Vec{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("conv out %v, want %v", out, want)
		}
	}
}

func TestConv1DGradientNumerically(t *testing.T) {
	rng := newRNG()
	c, err := NewConv1D(2, 6, 2, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make(vecmath.Vec, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	target := make(vecmath.Vec, 2*c.OutLen())
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	lossOf := func() float64 {
		out, ferr := c.Forward(x)
		if ferr != nil {
			t.Fatal(ferr)
		}
		l, _, lerr := MSELoss(out, target)
		if lerr != nil {
			t.Fatal(lerr)
		}
		return l
	}
	out, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := MSELoss(out, target)
	if err != nil {
		t.Fatal(err)
	}
	ZeroGrads([]Layer{c})
	dx, err := c.Backward(grad)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for _, p := range c.Params() {
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + eps
			lp := lossOf()
			p.W[j] = orig - eps
			lm := lossOf()
			p.W[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G[j]) > 1e-5 {
				t.Fatalf("conv param grad: numeric %v analytic %v", num, p.G[j])
			}
		}
	}
	// input gradient
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := lossOf()
		x[i] = orig - eps
		lm := lossOf()
		x[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5 {
			t.Fatalf("conv input grad[%d]: numeric %v analytic %v", i, num, dx[i])
		}
	}
}

func TestMaxPool(t *testing.T) {
	if _, err := NewMaxPool1D(1, 4, 5); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	p, err := NewMaxPool1D(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Forward(vecmath.Vec{1, 3, 2, 2, 5, 4, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 5, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool out %v, want %v", out, want)
		}
	}
	g, err := p.Backward(vecmath.Vec{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantG := []float64{0, 1, 1, 0, 1, 0, 0, 1}
	for i := range wantG {
		if g[i] != wantG[i] {
			t.Fatalf("pool grad %v, want %v", g, wantG)
		}
	}
	if _, err := p.Forward(vecmath.Vec{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNetworkValidation(t *testing.T) {
	rng := newRNG()
	if _, err := NewNetwork(4); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	d1, _ := NewDense(4, 8, rng)
	d2, _ := NewDense(9, 2, rng) // mismatched
	if _, err := NewNetwork(4, d1, d2); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNetworkLearnsXOR(t *testing.T) {
	rng := newRNG()
	d1, err := NewDense(2, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(2, d1, &Tanh{}, d2, &Sigmoid{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumParams() != 2*8+8+8+1 {
		t.Fatalf("NumParams = %d", net.NumParams())
	}
	inputs := []vecmath.Vec{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []vecmath.Vec{{0}, {1}, {1}, {0}}
	opt := NewAdam(0.05)
	for epoch := 0; epoch < 2000; epoch++ {
		for i := range inputs {
			out, ferr := net.Forward(inputs[i])
			if ferr != nil {
				t.Fatal(ferr)
			}
			_, grad, lerr := MSELoss(out, targets[i])
			if lerr != nil {
				t.Fatal(lerr)
			}
			net.ZeroGrads()
			if _, berr := net.Backward(grad); berr != nil {
				t.Fatal(berr)
			}
			if serr := opt.Step(net.Params()); serr != nil {
				t.Fatal(serr)
			}
		}
	}
	for i := range inputs {
		out, ferr := net.Forward(inputs[i])
		if ferr != nil {
			t.Fatal(ferr)
		}
		if math.Abs(out[0]-targets[i][0]) > 0.2 {
			t.Fatalf("XOR not learned: in=%v out=%v want %v", inputs[i], out[0], targets[i][0])
		}
	}
}

func TestSGDMomentum(t *testing.T) {
	w := []float64{1}
	g := []float64{1}
	s := &SGD{LR: 0.1, Momentum: 0.9}
	params := []Param{{W: w, G: g}}
	if err := s.Step(params); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.9) > 1e-12 {
		t.Fatalf("after step1 w=%v", w[0])
	}
	if err := s.Step(params); err != nil {
		t.Fatal(err)
	}
	// v2 = 0.9*(-0.1) - 0.1 = -0.19; w = 0.9-0.19 = 0.71
	if math.Abs(w[0]-0.71) > 1e-12 {
		t.Fatalf("after step2 w=%v", w[0])
	}
	bad := &SGD{LR: 0}
	if err := bad.Step(params); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAdamDecreasesLoss(t *testing.T) {
	rng := newRNG()
	d, err := NewDense(3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := vecmath.Vec{1, 2, 3}
	target := vecmath.Vec{5}
	opt := NewAdam(0.01)
	var first, last float64
	for i := 0; i < 500; i++ {
		out, ferr := d.Forward(x)
		if ferr != nil {
			t.Fatal(ferr)
		}
		loss, grad, lerr := MSELoss(out, target)
		if lerr != nil {
			t.Fatal(lerr)
		}
		if i == 0 {
			first = loss
		}
		last = loss
		ZeroGrads([]Layer{d})
		if _, berr := d.Backward(grad); berr != nil {
			t.Fatal(berr)
		}
		if serr := opt.Step(d.Params()); serr != nil {
			t.Fatal(serr)
		}
	}
	if last >= first || last > 1e-4 {
		t.Fatalf("adam did not converge: first %v last %v", first, last)
	}
}

func TestHuberLoss(t *testing.T) {
	if _, _, err := HuberLoss(vecmath.Vec{1}, vecmath.Vec{1}, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, _, err := HuberLoss(nil, nil, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	// Inside the quadratic zone Huber == MSE.
	lh, gh, err := HuberLoss(vecmath.Vec{0.5}, vecmath.Vec{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm, gm, err := MSELoss(vecmath.Vec{0.5}, vecmath.Vec{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lh-lm) > 1e-12 || math.Abs(gh[0]-gm[0]) > 1e-12 {
		t.Fatalf("huber != mse in quadratic zone: %v vs %v", lh, lm)
	}
	// Outside: gradient saturates at ±delta/n.
	_, g, err := HuberLoss(vecmath.Vec{10}, vecmath.Vec{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 1 {
		t.Fatalf("saturated grad %v, want 1", g[0])
	}
	_, g, err = HuberLoss(vecmath.Vec{-10}, vecmath.Vec{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != -1 {
		t.Fatalf("saturated grad %v, want -1", g[0])
	}
}

func TestClipGrads(t *testing.T) {
	g := []float64{3, 4} // norm 5
	params := []Param{{W: []float64{0, 0}, G: g}}
	norm := ClipGrads(params, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if math.Abs(math.Hypot(g[0], g[1])-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", math.Hypot(g[0], g[1]))
	}
	// Below threshold: untouched.
	g2 := []float64{0.1}
	ClipGrads([]Param{{W: []float64{0}, G: g2}}, 1)
	if g2[0] != 0.1 {
		t.Fatal("clip must not touch small grads")
	}
}

func TestDenseCopyWeightsFrom(t *testing.T) {
	rng := newRNG()
	a, _ := NewDense(3, 2, rng)
	b, _ := NewDense(3, 2, rng)
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.w.Data {
		if a.w.Data[i] != b.w.Data[i] {
			t.Fatal("weights not copied")
		}
	}
	c, _ := NewDense(4, 2, rng)
	if err := c.CopyWeightsFrom(a); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNetworkCNNPipelineShapes(t *testing.T) {
	rng := newRNG()
	conv, err := NewConv1D(4, 32, 8, 5, 1, rng) // out 8×28
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool1D(8, 28, 2) // out 8×14
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDense(8*14, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(4*32, conv, &ReLU{}, pool, dense)
	if err != nil {
		t.Fatal(err)
	}
	x := make(vecmath.Vec, 4*32)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("pipeline out %d, want 8", len(out))
	}
	_, grad, err := MSELoss(out, make(vecmath.Vec, 8))
	if err != nil {
		t.Fatal(err)
	}
	net.ZeroGrads()
	if _, err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
}
