// Package nn is a small from-scratch neural-network library used by
// the 1D-CNN UDT-data compressor (internal/cnn) and the DDQN grouping
// agent (internal/ddqn). It supports single-sample forward/backward
// passes over dense, conv1d, pooling and activation layers with SGD or
// Adam optimization. Networks are deterministic given a seeded RNG.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/vecmath"
)

// ErrShape is returned when a layer receives input of the wrong size.
var ErrShape = errors.New("nn: shape mismatch")

// Layer is one differentiable stage of a network. Forward consumes an
// input vector and returns the output; Backward consumes the gradient
// of the loss w.r.t. the output and returns the gradient w.r.t. the
// input, accumulating parameter gradients internally.
type Layer interface {
	// Forward runs the layer on x, caching whatever Backward needs.
	Forward(x vecmath.Vec) (vecmath.Vec, error)
	// Backward propagates the output gradient to the input gradient.
	Backward(grad vecmath.Vec) (vecmath.Vec, error)
	// Params returns parameter/gradient pairs for the optimizer
	// (nil for stateless layers).
	Params() []Param
	// OutSize reports the output width for the given input width,
	// or an error if the input width is unsupported.
	OutSize(in int) (int, error)
}

// Param couples a parameter slice with its gradient accumulator.
type Param struct {
	W, G []float64
}

// ZeroGrads clears all gradient accumulators of the given layers.
func ZeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			for i := range p.G {
				p.G[i] = 0
			}
		}
	}
}

// Dense is a fully connected layer: y = W·x + b.
type Dense struct {
	InDim, OutDim int

	w, gw *vecmath.Matrix
	b, gb vecmath.Vec

	lastIn vecmath.Vec
}

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(inDim, outDim int, rng *rand.Rand) (*Dense, error) {
	if inDim <= 0 || outDim <= 0 {
		return nil, fmt.Errorf("dense %d->%d: %w", inDim, outDim, ErrShape)
	}
	w, err := vecmath.NewMatrix(outDim, inDim)
	if err != nil {
		return nil, err
	}
	gw, err := vecmath.NewMatrix(outDim, inDim)
	if err != nil {
		return nil, err
	}
	w.FillXavier(rng, inDim, outDim)
	return &Dense{
		InDim: inDim, OutDim: outDim,
		w: w, gw: gw,
		b: make(vecmath.Vec, outDim), gb: make(vecmath.Vec, outDim),
	}, nil
}

var _ Layer = (*Dense)(nil)

// Forward implements Layer.
func (d *Dense) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	if len(x) != d.InDim {
		return nil, fmt.Errorf("dense forward got %d want %d: %w", len(x), d.InDim, ErrShape)
	}
	d.lastIn = vecmath.Clone(x)
	out, err := d.w.MulVec(x)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] += d.b[i]
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != d.OutDim {
		return nil, fmt.Errorf("dense backward got %d want %d: %w", len(grad), d.OutDim, ErrShape)
	}
	if d.lastIn == nil {
		return nil, fmt.Errorf("dense backward before forward: %w", ErrShape)
	}
	if err := d.gw.AddOuter(1, grad, d.lastIn); err != nil {
		return nil, err
	}
	for i := range grad {
		d.gb[i] += grad[i]
	}
	return d.w.MulVecT(grad)
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{W: d.w.Data, G: d.gw.Data}, {W: d.b, G: d.gb}}
}

// OutSize implements Layer.
func (d *Dense) OutSize(in int) (int, error) {
	if in != d.InDim {
		return 0, fmt.Errorf("dense outsize for %d want %d: %w", in, d.InDim, ErrShape)
	}
	return d.OutDim, nil
}

// CopyWeightsFrom copies parameters from another dense layer of the
// same shape. Used for DDQN target-network synchronization.
func (d *Dense) CopyWeightsFrom(src *Dense) error {
	if d.InDim != src.InDim || d.OutDim != src.OutDim {
		return fmt.Errorf("copy dense %dx%d from %dx%d: %w", d.OutDim, d.InDim, src.OutDim, src.InDim, ErrShape)
	}
	copy(d.w.Data, src.w.Data)
	copy(d.b, src.b)
	return nil
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	lastIn vecmath.Vec
}

var _ Layer = (*ReLU)(nil)

// Forward implements Layer.
func (r *ReLU) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	r.lastIn = vecmath.Clone(x)
	out := make(vecmath.Vec, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != len(r.lastIn) {
		return nil, fmt.Errorf("relu backward got %d want %d: %w", len(grad), len(r.lastIn), ErrShape)
	}
	out := make(vecmath.Vec, len(grad))
	for i, g := range grad {
		if r.lastIn[i] > 0 {
			out[i] = g
		}
	}
	return out, nil
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// OutSize implements Layer.
func (r *ReLU) OutSize(in int) (int, error) { return in, nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut vecmath.Vec
}

var _ Layer = (*Tanh)(nil)

// Forward implements Layer.
func (t *Tanh) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	out := make(vecmath.Vec, len(x))
	for i, v := range x {
		out[i] = math.Tanh(v)
	}
	t.lastOut = vecmath.Clone(out)
	return out, nil
}

// Backward implements Layer.
func (t *Tanh) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != len(t.lastOut) {
		return nil, fmt.Errorf("tanh backward got %d want %d: %w", len(grad), len(t.lastOut), ErrShape)
	}
	out := make(vecmath.Vec, len(grad))
	for i, g := range grad {
		y := t.lastOut[i]
		out[i] = g * (1 - y*y)
	}
	return out, nil
}

// Params implements Layer.
func (t *Tanh) Params() []Param { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize(in int) (int, error) { return in, nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	lastOut vecmath.Vec
}

var _ Layer = (*Sigmoid)(nil)

// Forward implements Layer.
func (s *Sigmoid) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	out := make(vecmath.Vec, len(x))
	for i, v := range x {
		out[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = vecmath.Clone(out)
	return out, nil
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != len(s.lastOut) {
		return nil, fmt.Errorf("sigmoid backward got %d want %d: %w", len(grad), len(s.lastOut), ErrShape)
	}
	out := make(vecmath.Vec, len(grad))
	for i, g := range grad {
		y := s.lastOut[i]
		out[i] = g * y * (1 - y)
	}
	return out, nil
}

// Params implements Layer.
func (s *Sigmoid) Params() []Param { return nil }

// OutSize implements Layer.
func (s *Sigmoid) OutSize(in int) (int, error) { return in, nil }
