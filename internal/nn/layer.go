// Package nn is a small from-scratch neural-network library used by
// the 1D-CNN UDT-data compressor (internal/cnn) and the DDQN grouping
// agent (internal/ddqn). It supports single-sample forward/backward
// passes over dense, conv1d, pooling and activation layers with SGD or
// Adam optimization. Networks are deterministic given a seeded RNG.
//
// Layers own preallocated scratch buffers: Forward and Backward return
// views into layer-owned memory that the next call overwrites, so a
// full training step runs with zero steady-state heap allocations.
// Callers that need an output to survive the next pass must copy it
// (vecmath.Clone).
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/vecmath"
)

// ErrShape is returned when a layer receives input of the wrong size.
var ErrShape = errors.New("nn: shape mismatch")

// Layer is one differentiable stage of a network. Forward consumes an
// input vector and returns the output; Backward consumes the gradient
// of the loss w.r.t. the output and returns the gradient w.r.t. the
// input, accumulating parameter gradients internally. Returned slices
// are layer-owned scratch, overwritten by the next call.
type Layer interface {
	// Forward runs the layer on x, caching whatever Backward needs.
	Forward(x vecmath.Vec) (vecmath.Vec, error)
	// Backward propagates the output gradient to the input gradient.
	Backward(grad vecmath.Vec) (vecmath.Vec, error)
	// Params returns parameter/gradient pairs for the optimizer
	// (nil for stateless layers).
	Params() []Param
	// OutSize reports the output width for the given input width,
	// or an error if the input width is unsupported.
	OutSize(in int) (int, error)
}

// TrainMode is implemented by layers that cache forward activations
// for backprop. SetTraining(false) skips the caching on
// inference-only paths (e.g. encoding after the compressor is fitted);
// a Backward call after an inference-mode Forward returns an error.
type TrainMode interface {
	SetTraining(train bool)
}

// Param couples a parameter slice with its gradient accumulator.
type Param struct {
	W, G []float64
}

// ZeroGrads clears all gradient accumulators of the given layers.
func ZeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			for i := range p.G {
				p.G[i] = 0
			}
		}
	}
}

// ensure returns (*buf)[:n], reallocating only when capacity is short:
// the grow-once, reuse-forever pattern behind the scratch buffers of
// shape-agnostic layers.
func ensure(buf *vecmath.Vec, n int) vecmath.Vec {
	if cap(*buf) < n {
		*buf = make(vecmath.Vec, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Dense is a fully connected layer: y = W·x + b.
type Dense struct {
	InDim, OutDim int

	w, gw *vecmath.Matrix
	b, gb vecmath.Vec

	// infer disables lastIn capture (zero value = training mode, so
	// existing construction sites keep their semantics).
	infer bool
	// primed reports that lastIn holds the input of a training-mode
	// Forward that Backward has not consumed yet.
	primed bool
	lastIn vecmath.Vec
	out    vecmath.Vec
	dx     vecmath.Vec

	// Batched-training scratch (see batch.go): bIn references the
	// caller's input batch between ForwardBatch and BackwardBatch,
	// bOut/bDx are layer-owned grow-once matrices, wT holds the
	// transposed weights for the AXPY-form forward GEMM.
	bIn, bOut, bDx, wT *vecmath.Matrix

	// gemm optionally fans the batch-path GEMM row blocks across a
	// worker pool (nil = sequential; identical bits either way).
	gemm *vecmath.GEMMPool
}

// SetGEMMPool routes the layer's batch-path GEMMs through the given
// pool (nil restores the sequential kernels). Outputs are
// bit-identical for any pool and worker count.
func (d *Dense) SetGEMMPool(p *vecmath.GEMMPool) { d.gemm = p }

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(inDim, outDim int, rng *rand.Rand) (*Dense, error) {
	if inDim <= 0 || outDim <= 0 {
		return nil, fmt.Errorf("dense %d->%d: %w", inDim, outDim, ErrShape)
	}
	w, err := vecmath.NewMatrix(outDim, inDim)
	if err != nil {
		return nil, err
	}
	gw, err := vecmath.NewMatrix(outDim, inDim)
	if err != nil {
		return nil, err
	}
	w.FillXavier(rng, inDim, outDim)
	return &Dense{
		InDim: inDim, OutDim: outDim,
		w: w, gw: gw,
		b: make(vecmath.Vec, outDim), gb: make(vecmath.Vec, outDim),
		lastIn: make(vecmath.Vec, inDim),
		out:    make(vecmath.Vec, outDim),
		dx:     make(vecmath.Vec, inDim),
	}, nil
}

var _ Layer = (*Dense)(nil)
var _ TrainMode = (*Dense)(nil)

// SetTraining implements TrainMode.
func (d *Dense) SetTraining(train bool) { d.infer = !train }

// Forward implements Layer.
func (d *Dense) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	if len(x) != d.InDim {
		return nil, fmt.Errorf("dense forward got %d want %d: %w", len(x), d.InDim, ErrShape)
	}
	if d.infer {
		d.primed = false
	} else {
		copy(d.lastIn, x)
		d.primed = true
	}
	if err := d.w.MulVecInto(d.out, x); err != nil {
		return nil, err
	}
	vecmath.AXPYUnchecked(1, d.b, d.out)
	return d.out, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != d.OutDim {
		return nil, fmt.Errorf("dense backward got %d want %d: %w", len(grad), d.OutDim, ErrShape)
	}
	if !d.primed {
		return nil, fmt.Errorf("dense backward before training-mode forward: %w", ErrShape)
	}
	d.gw.AddOuterInto(1, grad, d.lastIn)
	vecmath.AXPYUnchecked(1, grad, d.gb)
	if err := d.w.MulVecTInto(d.dx, grad); err != nil {
		return nil, err
	}
	return d.dx, nil
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{W: d.w.Data, G: d.gw.Data}, {W: d.b, G: d.gb}}
}

// OutSize implements Layer.
func (d *Dense) OutSize(in int) (int, error) {
	if in != d.InDim {
		return 0, fmt.Errorf("dense outsize for %d want %d: %w", in, d.InDim, ErrShape)
	}
	return d.OutDim, nil
}

// CopyWeightsFrom copies parameters from another dense layer of the
// same shape. Used for DDQN target-network synchronization.
func (d *Dense) CopyWeightsFrom(src *Dense) error {
	if d.InDim != src.InDim || d.OutDim != src.OutDim {
		return fmt.Errorf("copy dense %dx%d from %dx%d: %w", d.OutDim, d.InDim, src.OutDim, src.InDim, ErrShape)
	}
	copy(d.w.Data, src.w.Data)
	copy(d.b, src.b)
	return nil
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	// out doubles as the backward cache: out[i] > 0 iff lastIn[i] > 0.
	out vecmath.Vec
	dx  vecmath.Vec

	bOut, bDx *vecmath.Matrix // batched scratch, same caching role
}

var _ Layer = (*ReLU)(nil)

// Forward implements Layer.
func (r *ReLU) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	out := ensure(&r.out, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != len(r.out) {
		return nil, fmt.Errorf("relu backward got %d want %d: %w", len(grad), len(r.out), ErrShape)
	}
	dx := ensure(&r.dx, len(grad))
	for i, g := range grad {
		if r.out[i] > 0 {
			dx[i] = g
		} else {
			dx[i] = 0
		}
	}
	return dx, nil
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// OutSize implements Layer.
func (r *ReLU) OutSize(in int) (int, error) { return in, nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out vecmath.Vec // doubles as the backward cache (y = tanh x)
	dx  vecmath.Vec

	bOut, bDx *vecmath.Matrix // batched scratch, same caching role
}

var _ Layer = (*Tanh)(nil)

// Forward implements Layer.
func (t *Tanh) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	out := ensure(&t.out, len(x))
	for i, v := range x {
		out[i] = math.Tanh(v)
	}
	return out, nil
}

// Backward implements Layer.
func (t *Tanh) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != len(t.out) {
		return nil, fmt.Errorf("tanh backward got %d want %d: %w", len(grad), len(t.out), ErrShape)
	}
	dx := ensure(&t.dx, len(grad))
	for i, g := range grad {
		y := t.out[i]
		dx[i] = g * (1 - y*y)
	}
	return dx, nil
}

// Params implements Layer.
func (t *Tanh) Params() []Param { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize(in int) (int, error) { return in, nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out vecmath.Vec // doubles as the backward cache (y = σ(x))
	dx  vecmath.Vec

	bOut, bDx *vecmath.Matrix // batched scratch, same caching role
}

var _ Layer = (*Sigmoid)(nil)

// Forward implements Layer.
func (s *Sigmoid) Forward(x vecmath.Vec) (vecmath.Vec, error) {
	out := ensure(&s.out, len(x))
	for i, v := range x {
		out[i] = 1 / (1 + math.Exp(-v))
	}
	return out, nil
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad vecmath.Vec) (vecmath.Vec, error) {
	if len(grad) != len(s.out) {
		return nil, fmt.Errorf("sigmoid backward got %d want %d: %w", len(grad), len(s.out), ErrShape)
	}
	dx := ensure(&s.dx, len(grad))
	for i, g := range grad {
		y := s.out[i]
		dx[i] = g * y * (1 - y)
	}
	return dx, nil
}

// Params implements Layer.
func (s *Sigmoid) Params() []Param { return nil }

// OutSize implements Layer.
func (s *Sigmoid) OutSize(in int) (int, error) { return in, nil }
