package nn

import (
	"math"
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

// buildBatchNet constructs the compressor-shaped stack the batched
// training paths exercise: conv → relu → pool → dense → tanh.
func buildBatchNet(t *testing.T, rng *rand.Rand) *Network {
	t.Helper()
	conv, err := NewConv1D(5, 16, 8, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool1D(8, conv.OutLen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	head, err := NewDense(8*pool.OutLen(), 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(5*16, conv, &ReLU{}, pool, head, &Tanh{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestBatchGEMMPoolIdentical pins the plumbed pool to the sequential
// batch path: forward outputs, input gradients and every parameter
// gradient must be bit-identical at every worker count.
func TestBatchGEMMPoolIdentical(t *testing.T) {
	const batch = 12
	mkIO := func() (*vecmath.Matrix, *vecmath.Matrix) {
		rng := rand.New(rand.NewSource(21))
		x := vecmath.MustMatrix(batch, 5*16)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		g := vecmath.MustMatrix(batch, 8)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		return x, g
	}
	run := func(pool *vecmath.GEMMPool) (*vecmath.Matrix, *vecmath.Matrix, []Param) {
		rng := rand.New(rand.NewSource(22))
		net := buildBatchNet(t, rng)
		net.SetGEMMPool(pool)
		x, g := mkIO()
		out, err := net.ForwardBatch(x)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := net.BackwardBatch(g)
		if err != nil {
			t.Fatal(err)
		}
		return out, dx, net.Params()
	}

	wantOut, wantDx, wantParams := run(nil)
	for _, workers := range []int{1, 4, 8} {
		pool := vecmath.NewGEMMPool(workers)
		pool.MinFlops = 1 // force fan-out even on these small batches
		out, dx, params := run(pool)
		for i := range wantOut.Data {
			if math.Float64bits(out.Data[i]) != math.Float64bits(wantOut.Data[i]) {
				t.Fatalf("workers=%d: forward out differs at %d", workers, i)
			}
		}
		for i := range wantDx.Data {
			if math.Float64bits(dx.Data[i]) != math.Float64bits(wantDx.Data[i]) {
				t.Fatalf("workers=%d: input gradient differs at %d", workers, i)
			}
		}
		for pi := range wantParams {
			for j := range wantParams[pi].G {
				if math.Float64bits(params[pi].G[j]) != math.Float64bits(wantParams[pi].G[j]) {
					t.Fatalf("workers=%d: param %d gradient differs at %d", workers, pi, j)
				}
			}
		}
		pool.Close()
	}
}

// TestBatchGEMMPoolAllocFree extends the batched-training allocation
// gate to the pooled path: steady-state forward+backward through the
// fanned GEMMs must stay off the heap at every worker count.
func TestBatchGEMMPoolAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := buildBatchNet(t, rng)
	x := vecmath.MustMatrix(16, 5*16)
	g := vecmath.MustMatrix(16, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	for _, workers := range []int{1, 4, 8} {
		pool := vecmath.NewGEMMPool(workers)
		pool.MinFlops = 1
		net.SetGEMMPool(pool)
		// Prime scratch and spawn the crew.
		if _, err := net.ForwardBatch(x); err != nil {
			t.Fatal(err)
		}
		if _, err := net.BackwardBatch(g); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(50, func() {
			net.ZeroGrads()
			if _, err := net.ForwardBatch(x); err != nil {
				t.Fatal(err)
			}
			if _, err := net.BackwardBatch(g); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("workers=%d: pooled batch step allocates %v per run", workers, n)
		}
		pool.Close()
	}
	net.SetGEMMPool(nil)
}
