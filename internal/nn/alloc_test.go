package nn

import (
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

// TestDenseForwardBackwardAllocFree is the allocation regression gate
// for the training hot path: a steady-state Dense forward+backward
// must not touch the heap.
func TestDenseForwardBackwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDense(32, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make(vecmath.Vec, 32)
	grad := make(vecmath.Vec, 16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range grad {
		grad[i] = rng.NormFloat64()
	}
	// Prime scratch.
	if _, err := d.Forward(x); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Backward(grad); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := d.Forward(x); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Backward(grad); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Dense forward+backward allocates %v per run", n)
	}
}

// TestInferenceForwardAllocFreeAndUncached checks the inference-only
// path: no lastIn capture, no allocations, and Backward refuses to run
// against the stale cache.
func TestInferenceForwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := NewDense(8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make(vecmath.Vec, 8)
	d.SetTraining(false)
	if n := testing.AllocsPerRun(200, func() {
		if _, err := d.Forward(x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("inference Forward allocates %v per run", n)
	}
	if _, err := d.Backward(make(vecmath.Vec, 4)); err == nil {
		t.Fatal("Backward after inference-mode Forward must error")
	}
	d.SetTraining(true)
	if _, err := d.Forward(x); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Backward(make(vecmath.Vec, 4)); err != nil {
		t.Fatalf("Backward after training-mode Forward: %v", err)
	}
}

// TestNetworkTrainStepAllocFree covers the stack the CNN compressor
// trains: conv → relu → pool → dense → tanh, forward and backward.
func TestNetworkTrainStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv, err := NewConv1D(5, 16, 8, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool1D(8, conv.OutLen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	head, err := NewDense(8*pool.OutLen(), 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(5*16, conv, &ReLU{}, pool, head, &Tanh{})
	if err != nil {
		t.Fatal(err)
	}
	x := make(vecmath.Vec, 5*16)
	grad := make(vecmath.Vec, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range grad {
		grad[i] = rng.NormFloat64()
	}
	if _, err := net.Forward(x); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		net.ZeroGrads()
		if _, err := net.Forward(x); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("network forward+backward allocates %v per run", n)
	}
}
