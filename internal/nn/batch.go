package nn

import (
	"fmt"
	"math"

	"dtmsvs/internal/vecmath"
)

// Batched training paths: every layer of the CNN compressor and the
// DDQN Q-network can push a whole minibatch (one sample per matrix
// row) through forward and backward as blocked matrix ops, so a
// minibatch backward through a Dense layer is exactly three GEMMs:
//
//	Y  = X·Wᵀ + b      (forward)
//	dX = dY·W           (input gradient)
//	dW = dYᵀ·X          (weight gradient, accumulated)
//
// The vecmath kernels accumulate every element's inner sum in
// ascending index order, matching the per-sample vector kernels, so a
// batched Dense/ReLU pass is bit-identical to running the samples one
// at a time — the batched DDQN learn step reproduces the per-sample
// trace exactly. (Conv1D goes through an im2col window matrix whose
// GEMM sums over channel and tap in one run, a different — but still
// fixed and deterministic — grouping than the per-sample loop.)
//
// Like the per-sample paths, returned matrices are layer-owned scratch
// overwritten by the next call, and all scratch grows once and is
// reused, so steady-state batched training does not touch the heap.

// gemmPooled is implemented by layers whose batch paths can fan GEMM
// row blocks across a vecmath.GEMMPool.
type gemmPooled interface {
	SetGEMMPool(*vecmath.GEMMPool)
}

// SetGEMMPool routes the batch-path GEMMs of every layer that has one
// through the given pool (nil restores the sequential kernels). The
// pool only changes wall-clock time: outputs and gradients are
// bit-identical for any worker count.
func (n *Network) SetGEMMPool(p *vecmath.GEMMPool) {
	for _, l := range n.layers {
		if gl, ok := l.(gemmPooled); ok {
			gl.SetGEMMPool(p)
		}
	}
}

// BatchLayer is implemented by layers that support whole-minibatch
// forward/backward passes. Matrix rows are samples. ForwardBatch
// honors TrainMode: in inference mode nothing is cached and a
// subsequent BackwardBatch errors. The input matrix passed to a
// training-mode ForwardBatch must stay unmodified until the matching
// BackwardBatch (layers keep a reference, not a copy).
type BatchLayer interface {
	Layer
	ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error)
	BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error)
}

// ensureMat resizes a lazily allocated layer-owned scratch matrix,
// reusing its backing array whenever capacity allows.
func ensureMat(m **vecmath.Matrix, rows, cols int) (*vecmath.Matrix, error) {
	if *m == nil {
		*m = &vecmath.Matrix{}
	}
	if err := (*m).Resize(rows, cols); err != nil {
		return nil, err
	}
	return *m, nil
}

// ensureInts is ensure for index scratch.
func ensureInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// ---------------------------------------------------------------- Dense

var _ BatchLayer = (*Dense)(nil)

// ForwardBatch maps every row of x through the layer in one GEMM:
// out = x·Wᵀ + b, computed as x·(Wᵀ) against a transposed weight
// scratch so the kernel runs in its fast AXPY form — the summation
// order (ascending input index) is identical to the per-sample
// W·x path, so the batch is bit-identical to per-sample Forwards. In
// training mode the input batch is retained (by reference) for
// BackwardBatch. Shapes: x is (n × InDim), the returned layer-owned
// matrix is (n × OutDim).
func (d *Dense) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	if x == nil || x.Cols != d.InDim || x.Rows <= 0 {
		return nil, fmt.Errorf("dense forward batch got %dx%d want ?x%d: %w",
			matRows(x), matCols(x), d.InDim, ErrShape)
	}
	out, err := ensureMat(&d.bOut, x.Rows, d.OutDim)
	if err != nil {
		return nil, err
	}
	wT, err := ensureMat(&d.wT, d.InDim, d.OutDim)
	if err != nil {
		return nil, err
	}
	if err := vecmath.TransposeInto(wT, d.w); err != nil {
		return nil, err
	}
	if err := d.gemm.MatMulInto(out, x, wT); err != nil {
		return nil, err
	}
	for r := 0; r < out.Rows; r++ {
		vecmath.AXPYUnchecked(1, d.b, out.Row(r))
	}
	if d.infer {
		d.bIn = nil
	} else {
		d.bIn = x
	}
	return out, nil
}

// BackwardBatch consumes the loss gradient w.r.t. the batched output
// (n × OutDim), accumulates dW = dYᵀ·X and db = Σ rows dY — in
// ascending sample order, bit-identical to per-sample Backward calls —
// and returns the layer-owned input gradient dX = dY·W (n × InDim).
func (d *Dense) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	if grad == nil || grad.Cols != d.OutDim {
		return nil, fmt.Errorf("dense backward batch got %dx%d want ?x%d: %w",
			matRows(grad), matCols(grad), d.OutDim, ErrShape)
	}
	if d.bIn == nil || d.bIn.Rows != grad.Rows {
		return nil, fmt.Errorf("dense backward batch before training-mode forward batch: %w", ErrShape)
	}
	if err := d.gemm.MatMulTransAAccumInto(d.gw, grad, d.bIn); err != nil {
		return nil, err
	}
	for r := 0; r < grad.Rows; r++ {
		vecmath.AXPYUnchecked(1, grad.Row(r), d.gb)
	}
	dx, err := ensureMat(&d.bDx, grad.Rows, d.InDim)
	if err != nil {
		return nil, err
	}
	if err := d.gemm.MatMulInto(dx, grad, d.w); err != nil {
		return nil, err
	}
	return dx, nil
}

func matRows(m *vecmath.Matrix) int {
	if m == nil {
		return 0
	}
	return m.Rows
}

func matCols(m *vecmath.Matrix) int {
	if m == nil {
		return 0
	}
	return m.Cols
}

// ----------------------------------------------------- activations

var _ BatchLayer = (*ReLU)(nil)

// ForwardBatch implements BatchLayer.
func (r *ReLU) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	if x == nil || x.Rows <= 0 {
		return nil, fmt.Errorf("relu forward batch of empty input: %w", ErrShape)
	}
	out, err := ensureMat(&r.bOut, x.Rows, x.Cols)
	if err != nil {
		return nil, err
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// BackwardBatch implements BatchLayer.
func (r *ReLU) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	if grad == nil || r.bOut == nil || grad.Rows != r.bOut.Rows || grad.Cols != r.bOut.Cols {
		return nil, fmt.Errorf("relu backward batch got %dx%d want %dx%d: %w",
			matRows(grad), matCols(grad), matRows(r.bOut), matCols(r.bOut), ErrShape)
	}
	dx, err := ensureMat(&r.bDx, grad.Rows, grad.Cols)
	if err != nil {
		return nil, err
	}
	for i, g := range grad.Data {
		if r.bOut.Data[i] > 0 {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

var _ BatchLayer = (*Tanh)(nil)

// ForwardBatch implements BatchLayer.
func (t *Tanh) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	if x == nil || x.Rows <= 0 {
		return nil, fmt.Errorf("tanh forward batch of empty input: %w", ErrShape)
	}
	out, err := ensureMat(&t.bOut, x.Rows, x.Cols)
	if err != nil {
		return nil, err
	}
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out, nil
}

// BackwardBatch implements BatchLayer.
func (t *Tanh) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	if grad == nil || t.bOut == nil || grad.Rows != t.bOut.Rows || grad.Cols != t.bOut.Cols {
		return nil, fmt.Errorf("tanh backward batch got %dx%d want %dx%d: %w",
			matRows(grad), matCols(grad), matRows(t.bOut), matCols(t.bOut), ErrShape)
	}
	dx, err := ensureMat(&t.bDx, grad.Rows, grad.Cols)
	if err != nil {
		return nil, err
	}
	for i, g := range grad.Data {
		y := t.bOut.Data[i]
		dx.Data[i] = g * (1 - y*y)
	}
	return dx, nil
}

var _ BatchLayer = (*Sigmoid)(nil)

// ForwardBatch implements BatchLayer.
func (s *Sigmoid) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	if x == nil || x.Rows <= 0 {
		return nil, fmt.Errorf("sigmoid forward batch of empty input: %w", ErrShape)
	}
	out, err := ensureMat(&s.bOut, x.Rows, x.Cols)
	if err != nil {
		return nil, err
	}
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return out, nil
}

// BackwardBatch implements BatchLayer.
func (s *Sigmoid) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	if grad == nil || s.bOut == nil || grad.Rows != s.bOut.Rows || grad.Cols != s.bOut.Cols {
		return nil, fmt.Errorf("sigmoid backward batch got %dx%d want %dx%d: %w",
			matRows(grad), matCols(grad), matRows(s.bOut), matCols(s.bOut), ErrShape)
	}
	dx, err := ensureMat(&s.bDx, grad.Rows, grad.Cols)
	if err != nil {
		return nil, err
	}
	for i, g := range grad.Data {
		y := s.bOut.Data[i]
		dx.Data[i] = g * y * (1 - y)
	}
	return dx, nil
}

// ------------------------------------------------------- MaxPool1D

var _ BatchLayer = (*MaxPool1D)(nil)

// ForwardBatch implements BatchLayer.
func (p *MaxPool1D) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	if x == nil || x.Rows <= 0 || x.Cols != p.Ch*p.InLen {
		return nil, fmt.Errorf("maxpool forward batch got %dx%d want ?x%d: %w",
			matRows(x), matCols(x), p.Ch*p.InLen, ErrShape)
	}
	outLen := p.OutLen()
	out, err := ensureMat(&p.bOut, x.Rows, p.Ch*outLen)
	if err != nil {
		return nil, err
	}
	arg := ensureInts(&p.bArg, x.Rows*p.Ch*outLen)
	for s := 0; s < x.Rows; s++ {
		xr := x.Row(s)
		or := out.Row(s)
		ar := arg[s*p.Ch*outLen : (s+1)*p.Ch*outLen]
		for c := 0; c < p.Ch; c++ {
			src := xr[c*p.InLen : (c+1)*p.InLen]
			for t := 0; t < outLen; t++ {
				base := t * p.Window
				best := base
				for j := base + 1; j < base+p.Window; j++ {
					if src[j] > src[best] {
						best = j
					}
				}
				or[c*outLen+t] = src[best]
				ar[c*outLen+t] = c*p.InLen + best
			}
		}
	}
	return out, nil
}

// BackwardBatch implements BatchLayer.
func (p *MaxPool1D) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	outLen := p.OutLen()
	if grad == nil || p.bOut == nil || grad.Rows != p.bOut.Rows || grad.Cols != p.Ch*outLen {
		return nil, fmt.Errorf("maxpool backward batch got %dx%d want %dx%d: %w",
			matRows(grad), matCols(grad), matRows(p.bOut), p.Ch*outLen, ErrShape)
	}
	dx, err := ensureMat(&p.bDx, grad.Rows, p.Ch*p.InLen)
	if err != nil {
		return nil, err
	}
	for i := range dx.Data {
		dx.Data[i] = 0
	}
	for s := 0; s < grad.Rows; s++ {
		gr := grad.Row(s)
		dr := dx.Row(s)
		ar := p.bArg[s*p.Ch*outLen : (s+1)*p.Ch*outLen]
		for i, g := range gr {
			dr[ar[i]] += g
		}
	}
	return dx, nil
}

// --------------------------------------------------------- Conv1D

var _ BatchLayer = (*Conv1D)(nil)

// colWidth is the im2col row width: one conv receptive field,
// flattened channel-major.
func (c *Conv1D) colWidth() int { return c.InCh * c.Kernel }

// fillWFlat copies the per-filter kernels into the flattened (Filters
// × InCh·Kernel) weight matrix the GEMM kernels consume.
func (c *Conv1D) fillWFlat() (*vecmath.Matrix, error) {
	wf, err := ensureMat(&c.wflat, c.Filters, c.colWidth())
	if err != nil {
		return nil, err
	}
	for f := 0; f < c.Filters; f++ {
		row := wf.Row(f)
		for ch := 0; ch < c.InCh; ch++ {
			copy(row[ch*c.Kernel:(ch+1)*c.Kernel], c.w[f][ch])
		}
	}
	return wf, nil
}

// fillWFlatT is fillWFlat transposed (InCh·Kernel × Filters), feeding
// the AXPY-form forward GEMM (same ascending-tap summation order as
// the dot form).
func (c *Conv1D) fillWFlatT() (*vecmath.Matrix, error) {
	wt, err := ensureMat(&c.wflatT, c.colWidth(), c.Filters)
	if err != nil {
		return nil, err
	}
	for f := 0; f < c.Filters; f++ {
		for ch := 0; ch < c.InCh; ch++ {
			kern := c.w[f][ch]
			for j, v := range kern {
				wt.Data[(ch*c.Kernel+j)*c.Filters+f] = v
			}
		}
	}
	return wt, nil
}

// ForwardBatch implements BatchLayer via im2col: every output position
// of every sample becomes one row of a window matrix, and the whole
// batch convolution is a single (B·outLen × InCh·Kernel)·(InCh·Kernel
// × Filters) GEMM.
func (c *Conv1D) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	if x == nil || x.Rows <= 0 || x.Cols != c.InCh*c.InLen {
		return nil, fmt.Errorf("conv1d forward batch got %dx%d want ?x%d: %w",
			matRows(x), matCols(x), c.InCh*c.InLen, ErrShape)
	}
	outLen := c.OutLen()
	cw := c.colWidth()
	xcol, err := ensureMat(&c.xcol, x.Rows*outLen, cw)
	if err != nil {
		return nil, err
	}
	for s := 0; s < x.Rows; s++ {
		xr := x.Row(s)
		for t := 0; t < outLen; t++ {
			row := xcol.Row(s*outLen + t)
			base := t * c.Stride
			for ch := 0; ch < c.InCh; ch++ {
				copy(row[ch*c.Kernel:(ch+1)*c.Kernel], xr[ch*c.InLen+base:ch*c.InLen+base+c.Kernel])
			}
		}
	}
	wt, err := c.fillWFlatT()
	if err != nil {
		return nil, err
	}
	ycol, err := ensureMat(&c.ycol, x.Rows*outLen, c.Filters)
	if err != nil {
		return nil, err
	}
	if err := c.gemm.MatMulInto(ycol, xcol, wt); err != nil {
		return nil, err
	}
	out, err := ensureMat(&c.bOut, x.Rows, c.Filters*outLen)
	if err != nil {
		return nil, err
	}
	for s := 0; s < x.Rows; s++ {
		or := out.Row(s)
		for t := 0; t < outLen; t++ {
			yr := ycol.Row(s*outLen + t)
			for f := 0; f < c.Filters; f++ {
				or[f*outLen+t] = yr[f] + c.b[f]
			}
		}
	}
	c.bPrimed = !c.infer
	return out, nil
}

// BackwardBatch implements BatchLayer: the weight gradient is one
// dYᵀ·Xcol GEMM (scatter-added into the per-filter kernels) and the
// input gradient is one dY·W GEMM followed by a deterministic col2im
// scatter in ascending (sample, position) order.
func (c *Conv1D) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	outLen := c.OutLen()
	if grad == nil || grad.Cols != c.Filters*outLen {
		return nil, fmt.Errorf("conv1d backward batch got %dx%d want ?x%d: %w",
			matRows(grad), matCols(grad), c.Filters*outLen, ErrShape)
	}
	if !c.bPrimed || c.xcol == nil || c.xcol.Rows != grad.Rows*outLen {
		return nil, fmt.Errorf("conv1d backward batch before training-mode forward batch: %w", ErrShape)
	}
	// Gather the output gradient into im2col layout: row (s,t), col f.
	dycol, err := ensureMat(&c.dycol, grad.Rows*outLen, c.Filters)
	if err != nil {
		return nil, err
	}
	for s := 0; s < grad.Rows; s++ {
		gr := grad.Row(s)
		for t := 0; t < outLen; t++ {
			dr := dycol.Row(s*outLen + t)
			for f := 0; f < c.Filters; f++ {
				dr[f] = gr[f*outLen+t]
			}
		}
	}
	// Bias gradient: ascending (sample, position) accumulation.
	for r := 0; r < dycol.Rows; r++ {
		vecmath.AXPYUnchecked(1, dycol.Row(r), c.gb)
	}
	// Weight gradient: dW = dYᵀ·Xcol, then scatter-add into the
	// per-filter per-channel kernels.
	cw := c.colWidth()
	gwf, err := ensureMat(&c.gwflat, c.Filters, cw)
	if err != nil {
		return nil, err
	}
	if err := c.gemm.MatMulTransAInto(gwf, dycol, c.xcol); err != nil {
		return nil, err
	}
	for f := 0; f < c.Filters; f++ {
		row := gwf.Row(f)
		for ch := 0; ch < c.InCh; ch++ {
			vecmath.AXPYUnchecked(1, row[ch*c.Kernel:(ch+1)*c.Kernel], c.gw[f][ch])
		}
	}
	// Input gradient: dXcol = dY·W, then col2im scatter-add.
	wf, err := c.fillWFlat()
	if err != nil {
		return nil, err
	}
	dxcol, err := ensureMat(&c.dxcol, grad.Rows*outLen, cw)
	if err != nil {
		return nil, err
	}
	if err := c.gemm.MatMulInto(dxcol, dycol, wf); err != nil {
		return nil, err
	}
	dx, err := ensureMat(&c.bDx, grad.Rows, c.InCh*c.InLen)
	if err != nil {
		return nil, err
	}
	for i := range dx.Data {
		dx.Data[i] = 0
	}
	for s := 0; s < grad.Rows; s++ {
		dr := dx.Row(s)
		for t := 0; t < outLen; t++ {
			row := dxcol.Row(s*outLen + t)
			base := t * c.Stride
			for ch := 0; ch < c.InCh; ch++ {
				vecmath.AXPYUnchecked(1, row[ch*c.Kernel:(ch+1)*c.Kernel], dr[ch*c.InLen+base:ch*c.InLen+base+c.Kernel])
			}
		}
	}
	return dx, nil
}

// -------------------------------------------------------- Network

// ForwardBatch runs all layers on a whole minibatch (one sample per
// row). Every layer must implement BatchLayer.
func (n *Network) ForwardBatch(x *vecmath.Matrix) (*vecmath.Matrix, error) {
	cur := x
	for i, l := range n.layers {
		bl, ok := l.(BatchLayer)
		if !ok {
			return nil, fmt.Errorf("forward batch layer %d (%T) has no batch path: %w", i, l, ErrShape)
		}
		out, err := bl.ForwardBatch(cur)
		if err != nil {
			return nil, fmt.Errorf("forward batch layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}

// BackwardBatch propagates a batched output gradient through all
// layers in reverse, accumulating parameter gradients, and returns the
// gradient w.r.t. the network input batch.
func (n *Network) BackwardBatch(grad *vecmath.Matrix) (*vecmath.Matrix, error) {
	cur := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		bl, ok := n.layers[i].(BatchLayer)
		if !ok {
			return nil, fmt.Errorf("backward batch layer %d (%T) has no batch path: %w", i, n.layers[i], ErrShape)
		}
		out, err := bl.BackwardBatch(cur)
		if err != nil {
			return nil, fmt.Errorf("backward batch layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}
