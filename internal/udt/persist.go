package udt

import (
	"encoding/json"
	"fmt"
	"io"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/video"
)

// Snapshot is the serializable state of a twin: the edge server
// persists snapshots across restarts and ships them between edge
// sites when users move (the "UDT migration" use case of the DT
// literature the paper builds on).
type Snapshot struct {
	UserID int    `json:"userId"`
	Ticks  int    `json:"ticks"`
	Config Config `json:"config"`

	CQI        []float64 `json:"cqi"`
	LocX       []float64 `json:"locX"`
	LocY       []float64 `json:"locY"`
	Watch      []float64 `json:"watch"`
	Engage     []float64 `json:"engage"`
	Preference []float64 `json:"preference"`

	WatchByCat  []float64 `json:"watchByCat"`
	EngageByCat []float64 `json:"engageByCat"`
	ViewsByCat  []int     `json:"viewsByCat"`
	Swipes      int       `json:"swipes"`
	Views       int       `json:"views"`

	Staleness map[string]int `json:"staleness"`
}

// chronological returns the ring's stored values oldest-first.
func (r *ring) chronological() []float64 {
	n := r.len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// restore refills the ring from a chronological series, keeping at
// most the ring capacity of the newest values.
func (r *ring) restore(vals []float64) {
	r.next = 0
	r.full = false
	start := 0
	if len(vals) > len(r.buf) {
		start = len(vals) - len(r.buf)
	}
	for _, v := range vals[start:] {
		r.add(v)
	}
}

// Snapshot captures the twin's full state.
func (t *Twin) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &Snapshot{
		UserID:      t.UserID,
		Ticks:       t.ticks,
		Config:      t.cfg,
		CQI:         t.cqi.chronological(),
		LocX:        t.locX.chronological(),
		LocY:        t.locY.chronological(),
		Watch:       t.watch.chronological(),
		Engage:      t.engage.chronological(),
		Preference:  append([]float64(nil), t.pref...),
		WatchByCat:  t.watchByCat[:],
		EngageByCat: t.engageByCat[:],
		ViewsByCat:  t.viewsByCat[:],
		Swipes:      t.swipes,
		Views:       t.views,
		Staleness:   make(map[string]int, len(t.staleness)),
	}
	// Copy the array-backed slices so the snapshot does not alias the
	// twin's state.
	s.WatchByCat = append([]float64(nil), s.WatchByCat...)
	s.EngageByCat = append([]float64(nil), s.EngageByCat...)
	s.ViewsByCat = append([]int(nil), s.ViewsByCat...)
	for a, v := range t.staleness {
		s.Staleness[a.String()] = v
	}
	return s
}

// Restore builds a twin from a snapshot.
func Restore(s *Snapshot) (*Twin, error) {
	if s == nil {
		return nil, fmt.Errorf("nil snapshot: %w", ErrParam)
	}
	t, err := NewTwin(s.UserID, s.Config)
	if err != nil {
		return nil, err
	}
	if len(s.Preference) != video.NumCategories {
		return nil, fmt.Errorf("snapshot preference len %d: %w", len(s.Preference), ErrParam)
	}
	pref := behavior.Preference(append([]float64(nil), s.Preference...))
	if err := pref.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot preference: %w", err)
	}
	if len(s.WatchByCat) != video.NumCategories ||
		len(s.EngageByCat) != video.NumCategories ||
		len(s.ViewsByCat) != video.NumCategories {
		return nil, fmt.Errorf("snapshot counters wrong arity: %w", ErrParam)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ticks = s.Ticks
	t.cqi.restore(s.CQI)
	t.locX.restore(s.LocX)
	t.locY.restore(s.LocY)
	t.watch.restore(s.Watch)
	t.engage.restore(s.Engage)
	t.pref = pref
	copy(t.watchByCat[:], s.WatchByCat)
	copy(t.engageByCat[:], s.EngageByCat)
	copy(t.viewsByCat[:], s.ViewsByCat)
	t.swipes = s.Swipes
	t.views = s.Views
	for name, v := range s.Staleness {
		for a := range t.staleness {
			if a.String() == name {
				t.staleness[a] = v
			}
		}
	}
	return t, nil
}

// WriteJSON serializes the snapshot.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	return &s, nil
}
