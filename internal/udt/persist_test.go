package udt

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/video"
)

// populatedTwin builds a twin with data in every series.
func populatedTwin(t *testing.T) *Twin {
	t.Helper()
	tw := newTwin(t, Config{ChannelEvery: 1, LocationEvery: 1, WatchEvery: 1, PreferenceEvery: 1})
	pref := behavior.Preference{0.4, 0.2, 0.2, 0.1, 0.1}
	for tick := 1; tick <= 12; tick++ {
		tw.Tick()
		if _, err := tw.CollectChannel(1 + tick%15); err != nil {
			t.Fatal(err)
		}
		tw.CollectLocation(float64(10*tick), float64(5*tick))
		if _, err := tw.CollectView(video.Music, float64(tick), 0.5, tick%2 == 0); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.CollectPreference(pref); err != nil {
			t.Fatal(err)
		}
	}
	return tw
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tw := populatedTwin(t)
	snap := tw.Snapshot()
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.UserID != tw.UserID || back.Ticks() != tw.Ticks() {
		t.Fatalf("identity lost: %d/%d vs %d/%d", back.UserID, back.Ticks(), tw.UserID, tw.Ticks())
	}
	// Feature windows must be identical.
	w1, err := tw.FeatureWindow(8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := back.FeatureWindow(8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("feature window differs at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
	// Counters survive.
	s1, v1 := tw.SwipeStats()
	s2, v2 := back.SwipeStats()
	if s1 != s2 || v1 != v2 {
		t.Fatalf("swipe stats %d/%d vs %d/%d", s1, v1, s2, v2)
	}
	if tw.WatchByCategory() != back.WatchByCategory() {
		t.Fatal("watch counters differ")
	}
	if tw.EngagementByCategory() != back.EngagementByCategory() {
		t.Fatal("engagement counters differ")
	}
	// Preference survives.
	p1, p2 := tw.Preference(), back.Preference()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("preference differs")
		}
	}
	// Staleness survives.
	for _, a := range []Attribute{AttrChannel, AttrLocation, AttrWatch, AttrPreference} {
		if tw.Staleness(a) != back.Staleness(a) {
			t.Fatalf("staleness %v differs", a)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tw := populatedTwin(t)
	snap := tw.Snapshot()
	snap.WatchByCat[0] = 9999
	snap.Preference[0] = 9999
	if tw.WatchByCategory()[0] == 9999 {
		t.Fatal("snapshot aliases twin counters")
	}
	if tw.Preference()[0] == 9999 {
		t.Fatal("snapshot aliases twin preference")
	}
}

func TestRestoreValidation(t *testing.T) {
	if _, err := Restore(nil); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	tw := populatedTwin(t)
	snap := tw.Snapshot()
	bad := *snap
	bad.Preference = []float64{1}
	if _, err := Restore(&bad); !errors.Is(err, ErrParam) {
		t.Fatalf("short preference: want ErrParam, got %v", err)
	}
	bad = *snap
	bad.Preference = []float64{2, 2, 2, 2, 2}
	if _, err := Restore(&bad); err == nil {
		t.Fatal("non-normalized preference must fail")
	}
	bad = *snap
	bad.ViewsByCat = []int{1}
	if _, err := Restore(&bad); !errors.Is(err, ErrParam) {
		t.Fatalf("counter arity: want ErrParam, got %v", err)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tw := populatedTwin(t)
	snap := tw.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(back)
	if err != nil {
		t.Fatal(err)
	}
	if restored.MeanCQI(4) != tw.MeanCQI(4) {
		t.Fatal("cqi differs after JSON round trip")
	}
	x1, y1 := tw.LastLocation()
	x2, y2 := restored.LastLocation()
	if x1 != x2 || y1 != y2 {
		t.Fatal("location differs after JSON round trip")
	}
}

func TestReadSnapshotError(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed snapshot must error")
	}
}

func TestRestoreTruncatesOversizedHistory(t *testing.T) {
	tw := populatedTwin(t)
	snap := tw.Snapshot()
	// Shrink the ring capacity below the recorded history: restore
	// must keep only the newest values.
	snap.Config.HistoryLen = 4
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	// The last collected CQI is 1 + 12%15 = 13; window(1) returns it.
	w, err := back.FeatureWindow(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 13.0/15 {
		t.Fatalf("newest cqi feature %v, want %v", w[0], 13.0/15)
	}
}
