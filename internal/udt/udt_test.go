package udt

import (
	"errors"
	"math"
	"sync"
	"testing"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/video"
)

func newTwin(t *testing.T, cfg Config) *Twin {
	t.Helper()
	tw, err := NewTwin(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{HistoryLen: 1}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if err := (Config{ChannelEvery: -1}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestAttributeString(t *testing.T) {
	if AttrChannel.String() != "channel" || AttrPreference.String() != "preference" {
		t.Fatal("attribute names")
	}
	if Attribute(42).String() != "Attribute(42)" {
		t.Fatal("unknown attribute format")
	}
}

func TestRingWindow(t *testing.T) {
	r := newRing(4)
	w := r.window(3)
	for _, v := range w {
		if v != 0 {
			t.Fatal("empty ring window must be zeros")
		}
	}
	r.add(1)
	r.add(2)
	w = r.window(4)
	// Left-padded with oldest value (1).
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("window %v, want %v", w, want)
		}
	}
	for _, x := range []float64{3, 4, 5, 6} {
		r.add(x)
	}
	// Ring holds 3,4,5,6 now.
	w = r.window(3)
	want = []float64{4, 5, 6}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("wrapped window %v, want %v", w, want)
		}
	}
	if r.len() != 4 {
		t.Fatalf("ring len %d", r.len())
	}
}

func TestCollectionFrequencies(t *testing.T) {
	tw := newTwin(t, Config{ChannelEvery: 2, LocationEvery: 3, WatchEvery: 1, PreferenceEvery: 4})
	accepted := map[string]int{}
	pref := behavior.NewUniformPreference()
	for tick := 1; tick <= 12; tick++ {
		tw.Tick()
		if ok, err := tw.CollectChannel(7); err != nil {
			t.Fatal(err)
		} else if ok {
			accepted["cqi"]++
		}
		if tw.CollectLocation(1, 2) {
			accepted["loc"]++
		}
		if ok, err := tw.CollectView(video.News, 10, 0.5, true); err != nil {
			t.Fatal(err)
		} else if ok {
			accepted["watch"]++
		}
		if ok, err := tw.CollectPreference(pref); err != nil {
			t.Fatal(err)
		} else if ok {
			accepted["pref"]++
		}
	}
	if accepted["cqi"] != 6 || accepted["loc"] != 4 || accepted["watch"] != 12 || accepted["pref"] != 3 {
		t.Fatalf("acceptance counts %v, want cqi=6 loc=4 watch=12 pref=3", accepted)
	}
}

func TestCollectValidation(t *testing.T) {
	tw := newTwin(t, Config{})
	tw.Tick()
	if _, err := tw.CollectChannel(0); !errors.Is(err, ErrParam) {
		t.Fatalf("cqi 0: want ErrParam, got %v", err)
	}
	if _, err := tw.CollectChannel(16); !errors.Is(err, ErrParam) {
		t.Fatalf("cqi 16: want ErrParam, got %v", err)
	}
	if _, err := tw.CollectView(video.Category(0), 1, 0.5, false); !errors.Is(err, ErrParam) {
		t.Fatalf("bad category: want ErrParam, got %v", err)
	}
	if _, err := tw.CollectView(video.News, -1, 0.5, false); !errors.Is(err, ErrParam) {
		t.Fatalf("negative watch: want ErrParam, got %v", err)
	}
	if _, err := tw.CollectView(video.News, 1, 1.5, false); !errors.Is(err, ErrParam) {
		t.Fatalf("engagement>1: want ErrParam, got %v", err)
	}
	if _, err := tw.CollectPreference(behavior.Preference{1}); err == nil {
		t.Fatal("bad preference must error")
	}
}

func TestStaleness(t *testing.T) {
	tw := newTwin(t, Config{PreferenceEvery: 100})
	for i := 0; i < 5; i++ {
		tw.Tick()
		if _, err := tw.CollectChannel(5); err != nil {
			t.Fatal(err)
		}
	}
	if s := tw.Staleness(AttrChannel); s != 0 {
		t.Fatalf("channel staleness %d, want 0", s)
	}
	if s := tw.Staleness(AttrPreference); s != 5 {
		t.Fatalf("preference staleness %d, want 5", s)
	}
	if tw.Ticks() != 5 {
		t.Fatalf("ticks %d", tw.Ticks())
	}
}

func TestIntervalCounters(t *testing.T) {
	tw := newTwin(t, Config{})
	tw.Tick()
	if _, err := tw.CollectView(video.News, 12, 0.6, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.CollectView(video.Game, 3, 0.2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.CollectView(video.News, 8, 1.0, false); err != nil {
		t.Fatal(err)
	}
	wbc := tw.WatchByCategory()
	if wbc[video.News.Index()] != 20 || wbc[video.Game.Index()] != 3 {
		t.Fatalf("watch by category %v", wbc)
	}
	vbc := tw.ViewsByCategory()
	if vbc[video.News.Index()] != 2 || vbc[video.Game.Index()] != 1 {
		t.Fatalf("views by category %v", vbc)
	}
	swipes, views := tw.SwipeStats()
	if swipes != 2 || views != 3 {
		t.Fatalf("swipes %d views %d", swipes, views)
	}
	tw.ResetIntervalCounters()
	swipes, views = tw.SwipeStats()
	if swipes != 0 || views != 0 {
		t.Fatal("reset did not clear counters")
	}
	if tw.WatchByCategory()[0] != 0 {
		t.Fatal("reset did not clear watch")
	}
}

func TestPreferenceSnapshotIsolation(t *testing.T) {
	tw := newTwin(t, Config{PreferenceEvery: 1})
	tw.Tick()
	p := behavior.NewUniformPreference()
	if _, err := tw.CollectPreference(p); err != nil {
		t.Fatal(err)
	}
	p[0] = 0.99 // mutate caller's copy
	got := tw.Preference()
	if got[0] == 0.99 {
		t.Fatal("twin must store a clone")
	}
	got[1] = 0.5
	if tw.Preference()[1] == 0.5 {
		t.Fatal("accessor must return a clone")
	}
}

func TestFeatureWindow(t *testing.T) {
	tw := newTwin(t, Config{ChannelEvery: 1, LocationEvery: 1, WatchEvery: 1, PreferenceEvery: 1})
	if _, err := tw.FeatureWindow(0, 2000); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := tw.FeatureWindow(8, 0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	tw.Tick()
	if _, err := tw.CollectChannel(15); err != nil {
		t.Fatal(err)
	}
	tw.CollectLocation(1000, 500)
	if _, err := tw.CollectView(video.News, 30, 0.5, true); err != nil {
		t.Fatal(err)
	}
	const steps = 8
	w, err := tw.FeatureWindow(steps, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != NumFeatureChannels*steps {
		t.Fatalf("window len %d", len(w))
	}
	// Channel block last value: CQI 15 → 1.0.
	if math.Abs(w[steps-1]-1.0) > 1e-12 {
		t.Fatalf("cqi feature %v, want 1.0", w[steps-1])
	}
	// x block last value: 1000/2000 = 0.5.
	if math.Abs(w[2*steps-1]-0.5) > 1e-12 {
		t.Fatalf("x feature %v, want 0.5", w[2*steps-1])
	}
	// watch block last value: 30/60 = 0.5.
	if math.Abs(w[4*steps-1]-0.5) > 1e-12 {
		t.Fatalf("watch feature %v, want 0.5", w[4*steps-1])
	}
	// engagement block last value: 0.5.
	if math.Abs(w[5*steps-1]-0.5) > 1e-12 {
		t.Fatalf("engage feature %v, want 0.5", w[5*steps-1])
	}
}

func TestMeanCQIAndLastLocation(t *testing.T) {
	tw := newTwin(t, Config{})
	tw.Tick()
	if _, err := tw.CollectChannel(10); err != nil {
		t.Fatal(err)
	}
	tw.Tick()
	if _, err := tw.CollectChannel(12); err != nil {
		t.Fatal(err)
	}
	if got := tw.MeanCQI(2); math.Abs(got-11) > 1e-12 {
		t.Fatalf("mean cqi %v", got)
	}
	tw.CollectLocation(7, 9)
	x, y := tw.LastLocation()
	if x != 7 || y != 9 {
		t.Fatalf("last location %v,%v", x, y)
	}
}

// The twin must tolerate concurrent writers and readers (BS collectors
// vs grouping pipeline). Run with -race.
func TestConcurrentAccess(t *testing.T) {
	tw := newTwin(t, Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tw.Tick()
			_, _ = tw.CollectChannel(1 + i%15)
			tw.CollectLocation(float64(i), float64(i))
			_, _ = tw.CollectView(video.Music, 5, 0.5, true)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_, _ = tw.FeatureWindow(16, 2000)
			tw.MeanCQI(8)
			tw.SwipeStats()
		}
	}()
	go func() {
		defer wg.Done()
		<-stop
	}()
	close(stop)
	wg.Wait()
}
