package udt

import (
	"errors"
	"math/rand"
	"testing"

	"dtmsvs/internal/video"
)

func replayDataset(t *testing.T) []video.DatasetRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	cat, err := video.NewCatalog(video.CatalogConfig{NumVideos: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := video.GenerateDataset(cat, video.DatasetConfig{Users: 8, EventsPerUser: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestReplayDatasetValidation(t *testing.T) {
	if _, err := ReplayDataset(nil, Config{}, 0.1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	recs := replayDataset(t)
	if _, err := ReplayDataset(recs, Config{}, 0); !errors.Is(err, ErrParam) {
		t.Fatalf("lr 0: want ErrParam, got %v", err)
	}
	bad := []video.DatasetRecord{{UserID: -1, Category: video.News}}
	if _, err := ReplayDataset(bad, Config{}, 0.1); !errors.Is(err, ErrParam) {
		t.Fatalf("negative user: want ErrParam, got %v", err)
	}
}

func TestReplayDatasetBuildsTwins(t *testing.T) {
	recs := replayDataset(t)
	cfg := Config{WatchEvery: 1, PreferenceEvery: 1}
	twins, err := ReplayDataset(recs, cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(twins) != 8 {
		t.Fatalf("%d twins, want 8", len(twins))
	}
	// Twins sorted by user id.
	for i, tw := range twins {
		if tw.UserID != i {
			t.Fatalf("twin %d has id %d", i, tw.UserID)
		}
		_, views := tw.SwipeStats()
		if views != 20 {
			t.Fatalf("twin %d has %d views, want 20", i, views)
		}
		if err := tw.Preference().Validate(); err != nil {
			t.Fatalf("twin %d preference: %v", i, err)
		}
		// Watch series populated: feature window non-zero.
		w, werr := tw.FeatureWindow(8, 2000)
		if werr != nil {
			t.Fatal(werr)
		}
		var sum float64
		for _, v := range w {
			sum += v
		}
		if sum == 0 {
			t.Fatalf("twin %d has empty feature window", i)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	recs := replayDataset(t)
	cfg := Config{WatchEvery: 1, PreferenceEvery: 1}
	t1, err := ReplayDataset(recs, cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ReplayDataset(recs, cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		p1, p2 := t1[i].Preference(), t2[i].Preference()
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatal("replay must be deterministic")
			}
		}
	}
}
