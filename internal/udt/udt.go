// Package udt implements user digital twins (paper §II-A): per-user
// edge-side stores of time-series status — channel condition,
// location, watching duration and preference — each collected at its
// own frequency. The grouping pipeline reads fixed-size feature
// windows out of the twins; the prediction pipeline reads
// watch-duration and preference summaries.
package udt

import (
	"errors"
	"fmt"
	"sync"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/vecmath"
	"dtmsvs/internal/video"
)

// ErrParam indicates an invalid twin parameter.
var ErrParam = errors.New("udt: invalid parameter")

// Attribute identifies one collected data stream.
type Attribute int

// The four attributes the paper collects into UDTs.
const (
	AttrChannel    Attribute = iota + 1 // CQI
	AttrLocation                        // (x, y) pairs — stored as two series
	AttrWatch                           // watch duration per view
	AttrPreference                      // preference vector snapshots
)

// String implements fmt.Stringer.
func (a Attribute) String() string {
	switch a {
	case AttrChannel:
		return "channel"
	case AttrLocation:
		return "location"
	case AttrWatch:
		return "watch"
	case AttrPreference:
		return "preference"
	default:
		return fmt.Sprintf("Attribute(%d)", int(a))
	}
}

// ring is a fixed-capacity float64 ring buffer.
type ring struct {
	buf  []float64
	next int
	full bool
}

func newRing(capacity int) *ring { return &ring{buf: make([]float64, capacity)} }

func (r *ring) add(x float64) {
	r.buf[r.next] = x
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *ring) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// window returns the most recent n values, oldest first. When fewer
// than n are stored, the result is left-padded with the oldest value
// (or zeros when empty) so it always has length n.
func (r *ring) window(n int) []float64 {
	out := make([]float64, n)
	have := r.len()
	if have == 0 {
		return out
	}
	// Collect up to n most recent in chronological order.
	take := have
	if take > n {
		take = n
	}
	start := r.next - take
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < take; i++ {
		out[n-take+i] = r.buf[(start+i)%len(r.buf)]
	}
	// Left-pad with the oldest collected value.
	for i := 0; i < n-take; i++ {
		out[i] = out[n-take]
	}
	return out
}

// Config sets twin capacities and collection frequencies.
type Config struct {
	// HistoryLen is the ring capacity per scalar series (default 256).
	HistoryLen int
	// ChannelEvery, LocationEvery, WatchEvery, PreferenceEvery are
	// collection periods in simulation ticks: the twin accepts a
	// sample only when the tick counter is a multiple of the period.
	// Defaults: 1, 2, 1, 5 — channel and watch duration change fast,
	// location slower, preference slowest, matching the paper's
	// "different data attributes are collected with different
	// frequencies".
	ChannelEvery, LocationEvery, WatchEvery, PreferenceEvery int
}

func (c Config) withDefaults() Config {
	if c.HistoryLen == 0 {
		c.HistoryLen = 256
	}
	if c.ChannelEvery == 0 {
		c.ChannelEvery = 1
	}
	if c.LocationEvery == 0 {
		c.LocationEvery = 2
	}
	if c.WatchEvery == 0 {
		c.WatchEvery = 1
	}
	if c.PreferenceEvery == 0 {
		c.PreferenceEvery = 5
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c.withDefaults()
	if d.HistoryLen < 2 {
		return fmt.Errorf("history len %d: %w", d.HistoryLen, ErrParam)
	}
	for _, period := range []int{d.ChannelEvery, d.LocationEvery, d.WatchEvery, d.PreferenceEvery} {
		if period < 1 {
			return fmt.Errorf("collection period %d: %w", period, ErrParam)
		}
	}
	return nil
}

// Twin is one user's digital twin. It is safe for concurrent use: the
// BS-side collectors write while the grouping pipeline reads.
type Twin struct {
	UserID int

	mu sync.RWMutex

	cfg Config

	cqi        *ring
	locX, locY *ring
	watch      *ring // watch durations (s)
	engage     *ring // engagement ratios [0,1]
	pref       behavior.Preference
	// watchByCat accumulates total watch seconds per category since
	// the last ResetIntervalCounters call.
	watchByCat  [video.NumCategories]float64
	engageByCat [video.NumCategories]float64
	viewsByCat  [video.NumCategories]int
	swipes      int
	views       int

	ticks     int
	staleness map[Attribute]int
}

// NewTwin constructs a twin for the user.
func NewTwin(userID int, cfg Config) (*Twin, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	return &Twin{
		UserID: userID,
		cfg:    c,
		cqi:    newRing(c.HistoryLen),
		locX:   newRing(c.HistoryLen),
		locY:   newRing(c.HistoryLen),
		watch:  newRing(c.HistoryLen),
		engage: newRing(c.HistoryLen),
		pref:   behavior.NewUniformPreference(),
		staleness: map[Attribute]int{
			AttrChannel: 0, AttrLocation: 0, AttrWatch: 0, AttrPreference: 0,
		},
	}, nil
}

// Tick advances the twin's collection clock by one simulation tick.
func (t *Twin) Tick() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ticks++
	for a := range t.staleness {
		t.staleness[a]++
	}
}

// Ticks returns the collection clock.
func (t *Twin) Ticks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ticks
}

// Staleness returns ticks since the attribute was last accepted.
func (t *Twin) Staleness(a Attribute) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.staleness[a]
}

// due reports whether the attribute's collection period has elapsed.
// Caller must hold the lock.
func (t *Twin) due(period int) bool { return t.ticks%period == 0 }

// CollectChannel records a CQI sample if the channel period is due.
// Returns whether the sample was accepted.
func (t *Twin) CollectChannel(cqi int) (bool, error) {
	if cqi < 1 || cqi > 15 {
		return false, fmt.Errorf("cqi %d: %w", cqi, ErrParam)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.due(t.cfg.ChannelEvery) {
		return false, nil
	}
	t.cqi.add(float64(cqi))
	t.staleness[AttrChannel] = 0
	return true, nil
}

// CollectLocation records an (x, y) sample if due.
func (t *Twin) CollectLocation(x, y float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.due(t.cfg.LocationEvery) {
		return false
	}
	t.locX.add(x)
	t.locY.add(y)
	t.staleness[AttrLocation] = 0
	return true
}

// CollectView records a completed view (watch duration, engagement,
// category, swipe) if the watch period is due. View counters used for
// interval-level swiping statistics are always updated, matching the
// paper's separation between raw status series and abstracted
// group-level data.
func (t *Twin) CollectView(cat video.Category, watchS, engagement float64, swiped bool) (bool, error) {
	idx := cat.Index()
	if idx < 0 {
		return false, fmt.Errorf("category %v: %w", cat, ErrParam)
	}
	if watchS < 0 || engagement < 0 || engagement > 1 {
		return false, fmt.Errorf("watch %v engagement %v: %w", watchS, engagement, ErrParam)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watchByCat[idx] += watchS
	t.engageByCat[idx] += engagement
	t.viewsByCat[idx]++
	t.views++
	if swiped {
		t.swipes++
	}
	if !t.due(t.cfg.WatchEvery) {
		return false, nil
	}
	t.watch.add(watchS)
	t.engage.add(engagement)
	t.staleness[AttrWatch] = 0
	return true, nil
}

// CollectPreference snapshots the user's preference vector if due.
func (t *Twin) CollectPreference(p behavior.Preference) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.due(t.cfg.PreferenceEvery) {
		return false, nil
	}
	t.pref = p.Clone()
	t.staleness[AttrPreference] = 0
	return true, nil
}

// Preference returns the last collected preference snapshot.
func (t *Twin) Preference() behavior.Preference {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pref.Clone()
}

// WatchByCategory returns total watch seconds per category since the
// last interval reset.
func (t *Twin) WatchByCategory() [video.NumCategories]float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.watchByCat
}

// EngagementByCategory returns the summed engagement fractions per
// category since the last interval reset; divided by the view counts
// it yields the mean watched fraction per category — the direct input
// to the group swiping-probability distribution.
func (t *Twin) EngagementByCategory() [video.NumCategories]float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.engageByCat
}

// ViewsByCategory returns view counts per category since the last
// interval reset.
func (t *Twin) ViewsByCategory() [video.NumCategories]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.viewsByCat
}

// SwipeStats returns (swipes, views) since the last interval reset.
func (t *Twin) SwipeStats() (swipes, views int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.swipes, t.views
}

// ResetIntervalCounters clears the per-interval accumulators (called
// at each reservation-interval boundary).
func (t *Twin) ResetIntervalCounters() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watchByCat = [video.NumCategories]float64{}
	t.engageByCat = [video.NumCategories]float64{}
	t.viewsByCat = [video.NumCategories]int{}
	t.swipes = 0
	t.views = 0
}

// NumFeatureChannels is the number of channels in a feature window:
// CQI, x, y, watch duration, engagement.
const NumFeatureChannels = 5

// FeatureWindow returns a flattened channel-major window of the last
// steps samples per channel: [cqi..., x..., y..., watch..., engage...].
// Values are scaled to roughly [0, 1] so the CNN sees balanced inputs:
// CQI/15, x/scale, y/scale, watch/60 s, engagement as-is.
func (t *Twin) FeatureWindow(steps int, posScale float64) (vecmath.Vec, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("window of %d steps: %w", steps, ErrParam)
	}
	if posScale <= 0 {
		return nil, fmt.Errorf("position scale %v: %w", posScale, ErrParam)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(vecmath.Vec, 0, NumFeatureChannels*steps)
	for _, v := range t.cqi.window(steps) {
		out = append(out, v/15)
	}
	for _, v := range t.locX.window(steps) {
		out = append(out, v/posScale)
	}
	for _, v := range t.locY.window(steps) {
		out = append(out, v/posScale)
	}
	for _, v := range t.watch.window(steps) {
		out = append(out, v/60)
	}
	out = append(out, t.engage.window(steps)...)
	return out, nil
}

// MeanCQI returns the mean collected CQI over the last steps samples
// (0 when nothing collected).
func (t *Twin) MeanCQI(steps int) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	w := t.cqi.window(steps)
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}

// LastLocation returns the most recent collected position (0,0 when
// nothing collected).
func (t *Twin) LastLocation() (x, y float64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	wx := t.locX.window(1)
	wy := t.locY.window(1)
	return wx[0], wy[0]
}
