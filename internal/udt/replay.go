package udt

import (
	"fmt"
	"sort"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/video"
)

// ReplayDataset builds one twin per user from an offline viewing
// trace (e.g. the synthetic short-video-streaming-challenge dataset
// from internal/video, or a real trace converted to its schema). Each
// record becomes a view collection; per-user preferences are learned
// from the observed engagements with the given learning rate. This is
// the offline path into the grouping/abstraction pipeline when no
// live simulation is running.
func ReplayDataset(records []video.DatasetRecord, cfg Config, prefLR float64) ([]*Twin, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("empty dataset: %w", ErrParam)
	}
	if prefLR <= 0 || prefLR > 1 {
		return nil, fmt.Errorf("preference learning rate %v: %w", prefLR, ErrParam)
	}
	// Group records per user, preserving timestamp order.
	byUser := map[int][]video.DatasetRecord{}
	for _, r := range records {
		if r.UserID < 0 {
			return nil, fmt.Errorf("record with user id %d: %w", r.UserID, ErrParam)
		}
		byUser[r.UserID] = append(byUser[r.UserID], r)
	}
	userIDs := make([]int, 0, len(byUser))
	for id := range byUser {
		userIDs = append(userIDs, id)
	}
	sort.Ints(userIDs)

	twins := make([]*Twin, 0, len(userIDs))
	for _, id := range userIDs {
		recs := byUser[id]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].TimestampS < recs[j].TimestampS })
		tw, err := NewTwin(id, cfg)
		if err != nil {
			return nil, err
		}
		pref := behavior.NewUniformPreference()
		for _, r := range recs {
			tw.Tick()
			engagement := 0.0
			if r.DurationS > 0 {
				engagement = r.WatchS / r.DurationS
			}
			if engagement > 1 {
				engagement = 1
			}
			if engagement < 0 {
				engagement = 0
			}
			if _, err := tw.CollectView(r.Category, r.WatchS, engagement, r.Swiped); err != nil {
				return nil, fmt.Errorf("user %d view: %w", id, err)
			}
			if err := pref.Update(r.Category, engagement, prefLR); err != nil {
				return nil, fmt.Errorf("user %d preference: %w", id, err)
			}
			if _, err := tw.CollectPreference(pref); err != nil {
				return nil, fmt.Errorf("user %d preference snapshot: %w", id, err)
			}
		}
		twins = append(twins, tw)
	}
	return twins, nil
}
