package cnn

import (
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

// TestTrainBatchAllocFree is the allocation regression gate for the
// batched fit step: once the batch scratch has grown, a steady-state
// TrainBatch (stack, blocked-GEMM forward+backward, optimizer step)
// must not touch the heap.
func TestTrainBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	windows := make([]vecmath.Vec, 8)
	for i := range windows {
		w := make(vecmath.Vec, c.InputDim())
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		windows[i] = w
	}
	// Prime the scratch.
	if _, err := c.TrainBatch(windows); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := c.TrainBatch(windows); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("TrainBatch allocates %v per run in steady state", n)
	}
}

// TestTrainBatchMatchesTrainStepAtBatchOne pins the compatibility
// contract: a TrainBatch over a single window takes the same gradient
// step as the per-window TrainStep on an identically seeded
// compressor, up to the conv im2col summation grouping (tight
// relative tolerance rather than bit equality).
func TestTrainBatchMatchesTrainStepAtBatchOne(t *testing.T) {
	mk := func() *Compressor {
		c, err := New(testConfig(), rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(6))
	w := make(vecmath.Vec, a.InputDim())
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	la, err := a.TrainStep(w)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.TrainBatch([]vecmath.Vec{w})
	if err != nil {
		t.Fatal(err)
	}
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-12*(1+la) {
		t.Fatalf("batch-of-one loss %v vs per-window loss %v", lb, la)
	}
}

func TestTrainBatchValidation(t *testing.T) {
	c, err := New(testConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainBatch(nil); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, err := c.TrainBatch([]vecmath.Vec{make(vecmath.Vec, 3)}); err == nil {
		t.Fatal("short window must error")
	}
}
