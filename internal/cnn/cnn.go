// Package cnn implements the paper's 1D-CNN compressor for time-series
// UDT data (§II-B1): a convolutional autoencoder that maps a window of
// F feature channels over T time steps to a low-dimensional code. The
// encoder half is what the grouping pipeline uses; the decoder exists
// so the model can be trained with a reconstruction objective.
package cnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/nn"
	"dtmsvs/internal/vecmath"
)

// ErrConfig indicates an invalid compressor configuration.
var ErrConfig = errors.New("cnn: invalid config")

// Config describes the autoencoder architecture.
type Config struct {
	// Channels is the number of feature channels F in a UDT window.
	Channels int
	// Window is the number of time steps T per channel.
	Window int
	// Filters is the number of conv filters in the encoder.
	Filters int
	// Kernel is the conv kernel width.
	Kernel int
	// Pool is the max-pool window after the conv.
	Pool int
	// CodeDim is the size of the compressed representation.
	CodeDim int
	// LearningRate for Adam. When zero it defaults to 1e-3·√Batch
	// (≈2.83e-3 at the default Batch of 8) — see the Batch field for
	// the scaling rationale; set it explicitly for a fixed rate.
	LearningRate float64
	// Batch is the Fit minibatch size (default 8): each optimizer
	// step averages the reconstruction gradient over Batch windows
	// pushed through the network as one blocked-GEMM pass. 1 recovers
	// per-window SGD (the pre-batched trainer, still available as
	// TrainStep). Note the zero-value LearningRate default scales
	// with √Batch and the optimizer is shared, so TrainStep on a
	// default config inherits the batch-tuned rate; set Batch: 1 (or
	// an explicit LearningRate) for classic 1e-3 per-window SGD.
	Batch int
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.Window <= 0:
		return fmt.Errorf("channels=%d window=%d: %w", c.Channels, c.Window, ErrConfig)
	case c.Filters <= 0 || c.Kernel <= 0 || c.Kernel > c.Window:
		return fmt.Errorf("filters=%d kernel=%d window=%d: %w", c.Filters, c.Kernel, c.Window, ErrConfig)
	case c.Pool <= 0 || c.Pool > c.Window-c.Kernel+1:
		return fmt.Errorf("pool=%d convlen=%d: %w", c.Pool, c.Window-c.Kernel+1, ErrConfig)
	case c.CodeDim <= 0:
		return fmt.Errorf("codedim=%d: %w", c.CodeDim, ErrConfig)
	case c.Batch < 0:
		return fmt.Errorf("batch=%d: %w", c.Batch, ErrConfig)
	}
	return nil
}

// Compressor is a trainable 1D-CNN autoencoder.
type Compressor struct {
	cfg     Config
	encoder *nn.Network
	decoder *nn.Network
	opt     *nn.Adam
	inDim   int

	// gradBuf and params are training scratch, built lazily on the
	// first TrainStep and reused so the fit loop stays allocation-free.
	gradBuf vecmath.Vec
	params  []nn.Param

	// Minibatch scratch (grow-once): the stacked window batch and the
	// batched reconstruction gradient. The per-layer activations live
	// inside the layers (nn batch scratch).
	xB, gradB *vecmath.Matrix
}

// New builds a compressor from the config with weights drawn from rng.
func New(cfg Config, rng *rand.Rand) (*Compressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	lr := cfg.LearningRate
	if lr == 0 {
		// Square-root LR scaling: a minibatch step averages Batch
		// per-window gradients, so the per-epoch step count drops by
		// Batch; scaling the default LR by √Batch keeps the epoch
		// budget roughly equivalent to per-window SGD at 1e-3.
		lr = 1e-3 * math.Sqrt(float64(cfg.Batch))
	}
	inDim := cfg.Channels * cfg.Window

	conv, err := nn.NewConv1D(cfg.Channels, cfg.Window, cfg.Filters, cfg.Kernel, 1, rng)
	if err != nil {
		return nil, fmt.Errorf("cnn encoder conv: %w", err)
	}
	convLen := conv.OutLen()
	pool, err := nn.NewMaxPool1D(cfg.Filters, convLen, cfg.Pool)
	if err != nil {
		return nil, fmt.Errorf("cnn encoder pool: %w", err)
	}
	pooled := cfg.Filters * pool.OutLen()
	encHead, err := nn.NewDense(pooled, cfg.CodeDim, rng)
	if err != nil {
		return nil, fmt.Errorf("cnn encoder head: %w", err)
	}
	encoder, err := nn.NewNetwork(inDim, conv, &nn.ReLU{}, pool, encHead, &nn.Tanh{})
	if err != nil {
		return nil, fmt.Errorf("cnn encoder: %w", err)
	}

	decHidden, err := nn.NewDense(cfg.CodeDim, pooled, rng)
	if err != nil {
		return nil, fmt.Errorf("cnn decoder hidden: %w", err)
	}
	decOut, err := nn.NewDense(pooled, inDim, rng)
	if err != nil {
		return nil, fmt.Errorf("cnn decoder out: %w", err)
	}
	decoder, err := nn.NewNetwork(cfg.CodeDim, decHidden, &nn.ReLU{}, decOut)
	if err != nil {
		return nil, fmt.Errorf("cnn decoder: %w", err)
	}

	return &Compressor{cfg: cfg, encoder: encoder, decoder: decoder, opt: nn.NewAdam(lr), inDim: inDim}, nil
}

// SetGEMMPool routes the batched Fit/TrainBatch GEMMs of the encoder
// and decoder through the given pool (nil restores the sequential
// kernels). Purely a wall-clock knob: fitted weights, codes and
// reconstructions are bit-identical for any worker count.
func (c *Compressor) SetGEMMPool(p *vecmath.GEMMPool) {
	c.encoder.SetGEMMPool(p)
	c.decoder.SetGEMMPool(p)
}

// Config returns the compressor's configuration.
func (c *Compressor) Config() Config { return c.cfg }

// InputDim returns the flattened window size Channels×Window.
func (c *Compressor) InputDim() int { return c.inDim }

// Encode compresses one flattened window into a CodeDim vector. The
// returned code is caller-owned (a copy of the network scratch).
func (c *Compressor) Encode(window vecmath.Vec) (vecmath.Vec, error) {
	if len(window) != c.inDim {
		return nil, fmt.Errorf("encode input %d want %d: %w", len(window), c.inDim, ErrConfig)
	}
	c.encoder.SetTraining(false)
	code, err := c.encoder.Forward(window)
	if err != nil {
		return nil, err
	}
	return vecmath.Clone(code), nil
}

// EncodeBatch compresses many windows.
func (c *Compressor) EncodeBatch(windows []vecmath.Vec) ([]vecmath.Vec, error) {
	out := make([]vecmath.Vec, len(windows))
	for i, w := range windows {
		code, err := c.Encode(w)
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", i, err)
		}
		out[i] = code
	}
	return out, nil
}

// Reconstruct runs the full autoencoder on one window. The returned
// reconstruction is caller-owned.
func (c *Compressor) Reconstruct(window vecmath.Vec) (vecmath.Vec, error) {
	if len(window) != c.inDim {
		return nil, fmt.Errorf("reconstruct input %d want %d: %w", len(window), c.inDim, ErrConfig)
	}
	c.encoder.SetTraining(false)
	c.decoder.SetTraining(false)
	code, err := c.encoder.Forward(window)
	if err != nil {
		return nil, err
	}
	recon, err := c.decoder.Forward(code)
	if err != nil {
		return nil, err
	}
	return vecmath.Clone(recon), nil
}

// TrainStep performs one reconstruction-loss gradient step on a single
// window and returns the loss. Steady-state it allocates nothing: the
// loss gradient lives in a compressor-owned scratch buffer and the
// layers reuse their own.
func (c *Compressor) TrainStep(window vecmath.Vec) (float64, error) {
	c.encoder.SetTraining(true)
	c.decoder.SetTraining(true)
	code, err := c.encoder.Forward(window)
	if err != nil {
		return 0, err
	}
	recon, err := c.decoder.Forward(code)
	if err != nil {
		return 0, err
	}
	if cap(c.gradBuf) < len(recon) {
		c.gradBuf = make(vecmath.Vec, len(recon))
	}
	grad := c.gradBuf[:len(recon)]
	loss, err := nn.MSELossInto(grad, recon, window)
	if err != nil {
		return 0, err
	}
	c.encoder.ZeroGrads()
	c.decoder.ZeroGrads()
	codeGrad, err := c.decoder.Backward(grad)
	if err != nil {
		return 0, err
	}
	if _, err := c.encoder.Backward(codeGrad); err != nil {
		return 0, err
	}
	nn.ClipGrads(c.allParams(), 5)
	if err := c.opt.Step(c.params); err != nil {
		return 0, err
	}
	return loss, nil
}

// allParams lazily builds and caches the joint encoder+decoder
// parameter list shared by the clip and optimizer steps.
func (c *Compressor) allParams() []nn.Param {
	if c.params == nil {
		enc, dec := c.encoder.Params(), c.decoder.Params()
		c.params = make([]nn.Param, 0, len(enc)+len(dec))
		c.params = append(c.params, enc...)
		c.params = append(c.params, dec...)
	}
	return c.params
}

// TrainBatch performs one reconstruction-loss gradient step over a
// minibatch of windows and returns their mean loss. The whole batch
// runs through encoder and decoder as blocked GEMMs (the conv layer
// via an im2col window matrix), the gradient is averaged over the
// batch, and one optimizer step is applied. Steady-state it allocates
// nothing: the batch matrices are compressor-owned grow-once scratch.
func (c *Compressor) TrainBatch(windows []vecmath.Vec) (float64, error) {
	if len(windows) == 0 {
		return 0, fmt.Errorf("train batch with no windows: %w", ErrConfig)
	}
	for i, w := range windows {
		if len(w) != c.inDim {
			return 0, fmt.Errorf("train batch window %d size %d want %d: %w", i, len(w), c.inDim, ErrConfig)
		}
	}
	if c.xB == nil {
		c.xB = &vecmath.Matrix{}
	}
	if err := c.xB.Resize(len(windows), c.inDim); err != nil {
		return 0, err
	}
	for i, w := range windows {
		copy(c.xB.Row(i), w)
	}
	return c.trainOn(c.xB)
}

// trainOn is the shared minibatch step over a stacked window batch.
func (c *Compressor) trainOn(x *vecmath.Matrix) (float64, error) {
	c.encoder.SetTraining(true)
	c.decoder.SetTraining(true)
	code, err := c.encoder.ForwardBatch(x)
	if err != nil {
		return 0, err
	}
	recon, err := c.decoder.ForwardBatch(code)
	if err != nil {
		return 0, err
	}
	if c.gradB == nil {
		c.gradB = &vecmath.Matrix{}
	}
	if err := c.gradB.Resize(recon.Rows, recon.Cols); err != nil {
		return 0, err
	}
	var loss float64
	for r := 0; r < recon.Rows; r++ {
		l, lerr := nn.MSELossInto(c.gradB.Row(r), recon.Row(r), x.Row(r))
		if lerr != nil {
			return 0, lerr
		}
		loss += l
	}
	// Average the gradient over the batch so one step has the same
	// scale as a per-window step on the mean loss.
	inv := 1 / float64(recon.Rows)
	vecmath.Scale(inv, c.gradB.Data)
	c.encoder.ZeroGrads()
	c.decoder.ZeroGrads()
	codeGrad, err := c.decoder.BackwardBatch(c.gradB)
	if err != nil {
		return 0, err
	}
	if _, err := c.encoder.BackwardBatch(codeGrad); err != nil {
		return 0, err
	}
	nn.ClipGrads(c.allParams(), 5)
	if err := c.opt.Step(c.params); err != nil {
		return 0, err
	}
	return loss * inv, nil
}

// State is the compressor's serializable parameter set.
type State struct {
	Encoder *nn.WeightState `json:"encoder"`
	Decoder *nn.WeightState `json:"decoder"`
}

// SaveState captures the trained weights (architecture comes from
// Config, which the caller persists separately).
func (c *Compressor) SaveState() *State {
	return &State{Encoder: c.encoder.SaveWeights(), Decoder: c.decoder.SaveWeights()}
}

// LoadState restores weights saved from a compressor with the same
// Config.
func (c *Compressor) LoadState(s *State) error {
	if s == nil || s.Encoder == nil || s.Decoder == nil {
		return fmt.Errorf("nil state: %w", ErrConfig)
	}
	if err := c.encoder.LoadWeights(s.Encoder); err != nil {
		return fmt.Errorf("encoder: %w", err)
	}
	if err := c.decoder.LoadWeights(s.Decoder); err != nil {
		return fmt.Errorf("decoder: %w", err)
	}
	return nil
}

// Fit trains for the given number of epochs over the window set,
// returning the mean reconstruction loss of the final epoch. Each
// epoch shuffles the windows and walks them in minibatches of
// Config.Batch: one blocked-GEMM forward+backward and one optimizer
// step per batch instead of per window.
func (c *Compressor) Fit(windows []vecmath.Vec, epochs int, rng *rand.Rand) (float64, error) {
	if len(windows) == 0 {
		return 0, fmt.Errorf("fit with no windows: %w", ErrConfig)
	}
	if epochs <= 0 {
		return 0, fmt.Errorf("fit epochs=%d: %w", epochs, ErrConfig)
	}
	for i, w := range windows {
		if len(w) != c.inDim {
			return 0, fmt.Errorf("fit window %d size %d want %d: %w", i, len(w), c.inDim, ErrConfig)
		}
	}
	bs := c.cfg.Batch
	if bs > len(windows) {
		bs = len(windows)
	}
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}
	if c.xB == nil {
		c.xB = &vecmath.Matrix{}
	}
	var last float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for start := 0; start < len(order); start += bs {
			end := start + bs
			if end > len(order) {
				end = len(order)
			}
			if err := c.xB.Resize(end-start, c.inDim); err != nil {
				return 0, err
			}
			for r, idx := range order[start:end] {
				copy(c.xB.Row(r), windows[idx])
			}
			loss, err := c.trainOn(c.xB)
			if err != nil {
				return 0, fmt.Errorf("epoch %d batch at %d: %w", e, start, err)
			}
			// Weight by batch size so the epoch mean matches the
			// per-window mean.
			sum += loss * float64(end-start)
		}
		last = sum / float64(len(windows))
	}
	return last, nil
}
