package cnn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

func testConfig() Config {
	return Config{Channels: 3, Window: 16, Filters: 4, Kernel: 3, Pool: 2, CodeDim: 4}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero channels", func(c *Config) { c.Channels = 0 }},
		{"zero window", func(c *Config) { c.Window = 0 }},
		{"zero filters", func(c *Config) { c.Filters = 0 }},
		{"kernel too wide", func(c *Config) { c.Kernel = 99 }},
		{"pool too wide", func(c *Config) { c.Pool = 99 }},
		{"zero pool", func(c *Config) { c.Pool = 0 }},
		{"zero codedim", func(c *Config) { c.CodeDim = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	cfg.CodeDim = 0
	if _, err := New(cfg, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestEncodeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.InputDim() != 48 {
		t.Fatalf("InputDim = %d", c.InputDim())
	}
	w := make(vecmath.Vec, 48)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	code, err := c.Encode(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 4 {
		t.Fatalf("code len %d", len(code))
	}
	// Tanh head bounds the code.
	for _, v := range code {
		if v < -1 || v > 1 {
			t.Fatalf("code value %v outside [-1,1]", v)
		}
	}
	if _, err := c.Encode(vecmath.Vec{1, 2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vecmath.Vec, c.InputDim())
	for i := range w {
		w[i] = math.Sin(float64(i))
	}
	a, err := c.Encode(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Encode(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encode must be deterministic")
		}
	}
}

func TestEncodeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	windows := make([]vecmath.Vec, 5)
	for i := range windows {
		w := make(vecmath.Vec, c.InputDim())
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		windows[i] = w
	}
	codes, err := c.EncodeBatch(windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 5 {
		t.Fatalf("batch len %d", len(codes))
	}
	windows[2] = vecmath.Vec{1}
	if _, err := c.EncodeBatch(windows); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestFitReducesReconstructionLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	cfg.LearningRate = 3e-3
	c, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Structured signals: two latent prototypes plus noise, the kind
	// of low-rank time series a UDT window has.
	windows := make([]vecmath.Vec, 24)
	for i := range windows {
		w := make(vecmath.Vec, c.InputDim())
		phase := float64(i%2) * math.Pi
		for j := range w {
			w[j] = 0.7*math.Sin(float64(j)/3+phase) + 0.05*rng.NormFloat64()
		}
		windows[i] = w
	}
	var firstLoss float64
	for i, w := range windows {
		l, terr := c.TrainStep(w)
		if terr != nil {
			t.Fatal(terr)
		}
		if i == 0 {
			firstLoss = l
		}
	}
	finalLoss, err := c.Fit(windows, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if finalLoss >= firstLoss {
		t.Fatalf("reconstruction loss did not drop: first %v final %v", firstLoss, finalLoss)
	}
	if finalLoss > 0.05 {
		t.Fatalf("final loss too high: %v", finalLoss)
	}
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fit(nil, 1, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	w := make(vecmath.Vec, c.InputDim())
	if _, err := c.Fit([]vecmath.Vec{w}, 0, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestReconstructShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vecmath.Vec, c.InputDim())
	recon, err := c.Reconstruct(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != c.InputDim() {
		t.Fatalf("recon len %d want %d", len(recon), c.InputDim())
	}
}

// Similar inputs should map to nearby codes after training — the
// property the clustering stage depends on.
func TestCodesSeparateClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := testConfig()
	c, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(amp float64, n int) []vecmath.Vec {
		ws := make([]vecmath.Vec, n)
		for i := range ws {
			w := make(vecmath.Vec, c.InputDim())
			for j := range w {
				w[j] = amp*math.Sin(float64(j)/2) + 0.02*rng.NormFloat64()
			}
			ws[i] = w
		}
		return ws
	}
	classA := mk(0.9, 12)
	classB := mk(-0.9, 12)
	all := append(append([]vecmath.Vec{}, classA...), classB...)
	if _, err := c.Fit(all, 40, rng); err != nil {
		t.Fatal(err)
	}
	codeA, err := c.EncodeBatch(classA)
	if err != nil {
		t.Fatal(err)
	}
	codeB, err := c.EncodeBatch(classB)
	if err != nil {
		t.Fatal(err)
	}
	centroid := func(cs []vecmath.Vec) vecmath.Vec {
		out := make(vecmath.Vec, len(cs[0]))
		for _, v := range cs {
			for i := range v {
				out[i] += v[i]
			}
		}
		for i := range out {
			out[i] /= float64(len(cs))
		}
		return out
	}
	ca, cb := centroid(codeA), centroid(codeB)
	between, err := vecmath.Dist(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	var within float64
	for _, v := range codeA {
		d, derr := vecmath.Dist(v, ca)
		if derr != nil {
			t.Fatal(derr)
		}
		within += d
	}
	within /= float64(len(codeA))
	if between <= 2*within {
		t.Fatalf("codes not separated: between %v within %v", between, within)
	}
}

func TestSaveLoadState(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(), rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	w := make(vecmath.Vec, a.InputDim())
	for i := range w {
		w[i] = math.Sin(float64(i) / 2)
	}
	if _, err := a.TrainStep(w); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadState(a.SaveState()); err != nil {
		t.Fatal(err)
	}
	ca, err := a.Encode(w)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Encode(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("codes differ after state transfer")
		}
	}
	if err := b.LoadState(nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	// Mismatched architecture must be rejected.
	small := testConfig()
	small.CodeDim = 2
	c, err := New(small, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadState(a.SaveState()); err == nil {
		t.Fatal("mismatched architecture must fail")
	}
}
