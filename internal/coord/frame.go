// Package coord is the distributed cluster coordinator: a supervisor
// drives N worker processes, each owning a contiguous block of
// coverage cells (cluster.Worker), through the scenario in lockstep
// boundaries — exchanging handover-twin batches, per-interval record
// streams and per-boundary checkpoints as length-prefixed
// CRC32-guarded binary frames over pipes.
//
// The robustness layer is the point: workers heartbeat between
// frames, every boundary ships a checkpoint, and on worker loss —
// process exit, SIGKILL, torn frame, missed heartbeat, stalled step —
// the supervisor restarts the worker with exponential backoff from
// the last checkpoint it acked and replays the in-flight boundary.
// Because workers are deterministic and boundaries are idempotent to
// replay, the merged trace stays bit-identical to the single-process
// cluster run at the same seed, faults or none.
package coord

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"dtmsvs/internal/obs"
)

// Typed wire errors.
var (
	// ErrFrame marks a torn or corrupt frame: bad length prefix, bad
	// CRC, or a stream that ends mid-frame.
	ErrFrame = errors.New("coord: corrupt frame")
	// ErrProtocol marks a well-formed frame that violates the
	// supervisor/worker protocol (wrong type, wrong sequence, bad
	// payload shape).
	ErrProtocol = errors.New("coord: protocol violation")
	// ErrWorkerFailed marks a worker that died more times than the
	// restart budget allows (and, absent adoption, fails the run).
	ErrWorkerFailed = errors.New("coord: worker failed")
)

// protoVersion gates the hello exchange so a supervisor never drives
// a worker speaking a different frame dialect.
const protoVersion = 1

// maxFramePayload bounds one frame's payload: worker checkpoints
// carry whole cell populations, so the ceiling is generous, but a
// corrupt length prefix must never cause an unbounded allocation.
const maxFramePayload = 1 << 26

// frameType tags a frame's payload shape.
type frameType uint8

const (
	// Supervisor → worker.
	fHello    frameType = 1 // config, partition, faults, optional resume checkpoint
	fStep     frameType = 2 // run one phase
	fImports  frameType = 3 // twin batch routed into this worker
	fShutdown frameType = 4 // clean exit
	// Worker → supervisor.
	fReady     frameType = 5  // hello processed, engine constructed/restored
	fRecords   frameType = 6  // one interval's records as a tracebin stream
	fExports   frameType = 7  // twin batch leaving this worker
	fBoundary  frameType = 8  // step done: counters + boundary checkpoint
	fHeartbeat frameType = 9  // liveness beat
	fError     frameType = 10 // terminal worker-side failure, as text
)

// phase selects what a step frame runs.
type phase uint8

const (
	phaseWarmup phase = iota
	phaseTrain
	phaseInterval
	phaseCkpt // checkpoint-only boundary: no engine work, fresh state blob
)

func (p phase) String() string {
	switch p {
	case phaseWarmup:
		return "warmup"
	case phaseTrain:
		return "train"
	case phaseInterval:
		return "interval"
	case phaseCkpt:
		return "checkpoint"
	}
	return "unknown"
}

// appendFrame appends one encoded frame — [u32 len][type+payload]
// [u32 crc] — to dst. The CRC covers the type byte and payload.
func appendFrame(dst []byte, typ frameType, payload []byte) []byte {
	n := 1 + len(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	body := len(dst)
	dst = append(dst, byte(typ))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[body:]))
}

// ReadFrame reads one frame from br, reusing buf for the payload. It
// returns the frame type, the payload (aliasing the possibly-grown
// buffer, valid until the next call), and the buffer for reuse. A
// clean EOF at a frame start returns io.EOF; a stream ending inside a
// frame, an out-of-range length or a checksum mismatch return
// ErrFrame. Allocation is bounded by the frame length cap regardless
// of input.
func ReadFrame(br *bufio.Reader, buf []byte) (frameType, []byte, []byte, error) {
	buf = buf[:cap(buf)]
	var lenb [4]byte
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, fmt.Errorf("frame length: %w", ErrFrame)
	}
	n := int(binary.LittleEndian.Uint32(lenb[:]))
	if n < 1 || n > maxFramePayload {
		return 0, nil, buf, fmt.Errorf("frame length %d: %w", n, ErrFrame)
	}
	// Read the body in bounded chunks, growing the buffer only as
	// bytes actually arrive: a torn stream whose length prefix claims
	// a huge frame must not allocate the claim up front.
	const chunk = 1 << 16
	for read := 0; read < n; {
		end := read + chunk
		if end > n {
			end = n
		}
		if cap(buf) < end {
			grow := 2 * cap(buf)
			if grow < end {
				grow = end
			}
			if grow > n {
				grow = n
			}
			nb := make([]byte, grow)
			copy(nb, buf[:read])
			buf = nb
		}
		if _, err := io.ReadFull(br, buf[read:end]); err != nil {
			return 0, nil, buf, fmt.Errorf("frame body: %w", ErrFrame)
		}
		read = end
	}
	body := buf[:n]
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		return 0, nil, buf, fmt.Errorf("frame checksum: %w", ErrFrame)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(lenb[:]); got != want {
		return 0, nil, buf, fmt.Errorf("frame checksum %08x (want %08x): %w", got, want, ErrFrame)
	}
	return frameType(body[0]), body[1:], buf, nil
}

// conn serializes frame writes to one pipe. Both worker (main loop +
// heartbeat goroutine) and supervisor (step loop) funnel through it;
// each frame reaches the pipe as a single Write.
type conn struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	tx  *obs.Counter // frame bytes written; nil-safe
	err error
}

func newConn(w io.Writer, tx *obs.Counter) *conn { return &conn{w: w, tx: tx} }

// send writes one frame. A failed write latches the conn so the
// heartbeat goroutine stops hammering a torn pipe.
func (c *conn) send(typ frameType, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.buf = appendFrame(c.buf[:0], typ, payload)
	if _, err := c.w.Write(c.buf); err != nil {
		c.err = err
		return err
	}
	c.tx.Add(uint64(len(c.buf)))
	return nil
}

// sendGarbage writes a deliberately corrupt frame (valid length, bad
// CRC) — the ProcGarbage fault. The conn is NOT latched: the fault
// model is a worker emitting damage, not a dead pipe.
func (c *conn) sendGarbage() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.buf = appendFrame(c.buf[:0], fHeartbeat, []byte("garbage"))
	c.buf[len(c.buf)-1] ^= 0xFF // break the checksum
	if _, err := c.w.Write(c.buf); err != nil {
		c.err = err
		return err
	}
	c.tx.Add(uint64(len(c.buf)))
	return nil
}

// hold grabs the write mutex for d — the ProcHang fault. Heartbeats
// and step responses stall together, so the supervisor's liveness
// deadline (not the pipe) must detect the loss.
func (c *conn) hold(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(d)
}
