package coord

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dtmsvs/internal/cluster"
	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/sim"
)

// testClusterConfig mirrors the cluster package's unit scenario:
// small enough to run many full distributed pipelines in a test,
// busy enough to exercise churn, regrouping and cross-worker
// handover every interval.
func testClusterConfig(seed int64, parallelism int) cluster.Config {
	return cluster.Config{Sim: sim.Config{
		Seed:             seed,
		NumUsers:         32,
		NumBS:            4,
		NumIntervals:     4,
		TicksPerInterval: 6,
		WarmupIntervals:  1,
		RegroupEvery:     2,
		CompressorEpochs: 2,
		AgentEpisodes:    10,
		ChurnPerInterval: 0.1,
		PrefetchDepth:    -1,
		Parallelism:      parallelism,
	}}
}

// fastFailure shrinks every robustness timescale so fault tests run
// in milliseconds: beats every 10ms, dead after 5 missed, hangs last
// 150ms, restarts back off from 2ms.
func fastFailure(cfg *Config) {
	cfg.Heartbeat = 10 * time.Millisecond
	cfg.HeartbeatMiss = 5
	cfg.HangDuration = 150 * time.Millisecond
	cfg.Backoff = 2 * time.Millisecond
	cfg.StepTimeout = time.Minute
}

// supRun is everything one supervised run produced.
type supRun struct {
	records   []cluster.Record
	cells     []cluster.CellStats
	handovers int
	churned   int
	hits      int
	misses    int
	ckpts     [][]byte
	restarts  int
	adoptions int
	hbMisses  int
}

func driveSupervisor(t *testing.T, cfg Config) *supRun {
	t.Helper()
	out, err := driveSupervisorErr(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// driveSupervisorErr runs the full scenario through a supervisor —
// the same boundary sequence the session layer drives — and collects
// the merged outputs plus a final checkpoint.
func driveSupervisorErr(cfg Config) (*supRun, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ctx := context.Background()
	d := cfg.Cluster.Defaulted()
	out := &supRun{}
	for i := 0; i < d.Sim.WarmupIntervals; i++ {
		if err := s.WarmupStep(ctx); err != nil {
			return nil, err
		}
	}
	if err := s.TrainAndBuild(ctx); err != nil {
		return nil, err
	}
	for n := 0; n < d.Sim.NumIntervals; n++ {
		recs, err := s.StepInterval(ctx, n)
		if err != nil {
			return nil, err
		}
		out.records = append(out.records, recs...)
	}
	if out.cells, out.hits, out.misses, err = s.Stats(); err != nil {
		return nil, err
	}
	out.handovers, out.churned = s.Handovers(), s.Churned()
	if out.ckpts, err = s.CheckpointBlobs(ctx); err != nil {
		return nil, err
	}
	out.restarts, out.adoptions, out.hbMisses = s.Restarts(), s.Adoptions(), s.HeartbeatMisses()
	return out, nil
}

// assertMatchesEngine compares a supervised run against the
// single-process cluster engine at the same seed — the package's
// bit-identity contract.
func assertMatchesEngine(t *testing.T, got *supRun, want *cluster.Trace, label string) {
	t.Helper()
	if len(got.records) == 0 {
		t.Fatalf("%s: empty distributed trace", label)
	}
	if !reflect.DeepEqual(got.records, want.Records) {
		t.Fatalf("%s: records diverged (%d vs %d rows)", label, len(got.records), len(want.Records))
	}
	if !reflect.DeepEqual(got.cells, want.Cells) {
		t.Fatalf("%s: cell stats diverged:\n got %+v\nwant %+v", label, got.cells, want.Cells)
	}
	if got.handovers != want.Handovers {
		t.Fatalf("%s: handovers %d want %d", label, got.handovers, want.Handovers)
	}
	if got.churned != want.ChurnedUsers {
		t.Fatalf("%s: churned %d want %d", label, got.churned, want.ChurnedUsers)
	}
	hitRate := 0.0
	if total := got.hits + got.misses; total > 0 {
		hitRate = float64(got.hits) / float64(total)
	}
	if hitRate != want.CacheHitRate {
		t.Fatalf("%s: cache hit rate %v want %v", label, hitRate, want.CacheHitRate)
	}
}

// TestSupervisorBitIdentical is the tentpole contract: the merged
// distributed trace is bit-identical to the single-process cluster
// engine for every worker count and intra-worker parallelism.
func TestSupervisorBitIdentical(t *testing.T) {
	const seed = 3
	want, err := cluster.Run(testClusterConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, par := range []int{1, 4} {
			got := driveSupervisor(t, Config{Cluster: testClusterConfig(seed, par), Workers: workers})
			label := "workers=" + itoa(workers) + " par=" + itoa(par)
			assertMatchesEngine(t, got, want, label)
			if got.restarts != 0 || got.hbMisses != 0 {
				t.Fatalf("%s: %d restarts, %d heartbeat misses in a healthy run", label, got.restarts, got.hbMisses)
			}
		}
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// TestSupervisorFaultRecovery is the chaos contract: kill, hang and
// garbage faults each cost a restart, the lost boundary replays from
// the acked checkpoint, and the final trace AND final checkpoint stay
// byte-identical to the unfaulted distributed run.
func TestSupervisorFaultRecovery(t *testing.T) {
	const seed = 97
	base := Config{Cluster: testClusterConfig(seed, 2), Workers: 2}
	clean := driveSupervisor(t, base)
	want, err := cluster.Run(testClusterConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEngine(t, clean, want, "clean distributed")

	faulted := base
	fastFailure(&faulted)
	faulted.Faults = []faultinject.ProcFault{
		{Worker: 0, Interval: 1, Kind: faultinject.ProcKill},
		{Worker: 1, Interval: 2, Kind: faultinject.ProcHang},
		{Worker: 0, Interval: 3, Kind: faultinject.ProcGarbage},
	}
	got := driveSupervisor(t, faulted)
	assertMatchesEngine(t, got, want, "faulted distributed")
	if got.restarts < 3 {
		t.Fatalf("restarts %d, want at least one per fault", got.restarts)
	}
	if got.hbMisses < 1 {
		t.Fatalf("hang fault never tripped the heartbeat deadline (misses %d)", got.hbMisses)
	}
	if len(got.ckpts) != len(clean.ckpts) {
		t.Fatalf("checkpoint count %d want %d", len(got.ckpts), len(clean.ckpts))
	}
	for i := range got.ckpts {
		if !bytes.Equal(got.ckpts[i], clean.ckpts[i]) {
			t.Fatalf("worker %d final checkpoint diverged after recovery", i)
		}
	}
}

// TestSupervisorProcPlan: a seed-derived fault plan drives recovery
// the same way hand-placed faults do.
func TestSupervisorProcPlan(t *testing.T) {
	const seed = 11
	want, err := cluster.Run(testClusterConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: testClusterConfig(seed, 1), Workers: 2}
	fastFailure(&cfg)
	d := cfg.Cluster.Defaulted()
	cfg.Faults = []faultinject.ProcFault{faultinject.ProcPlan(seed, cfg.Workers, d.Sim.NumIntervals)}
	got := driveSupervisor(t, cfg)
	assertMatchesEngine(t, got, want, "procplan")
	if got.restarts == 0 {
		t.Fatalf("planned fault %+v caused no restart", cfg.Faults[0])
	}
}

// TestSupervisorRestartBudget: with restarts forbidden and no
// adoption, the first worker loss is ErrWorkerFailed.
func TestSupervisorRestartBudget(t *testing.T) {
	cfg := Config{Cluster: testClusterConfig(5, 1), Workers: 2, MaxRestarts: -1}
	fastFailure(&cfg)
	cfg.Faults = []faultinject.ProcFault{{Worker: 1, Interval: 0, Kind: faultinject.ProcKill}}
	_, err := driveSupervisorErr(cfg)
	if !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("exhausted budget: %v", err)
	}
}

// TestSupervisorAdoption: with adoption on, an unrestartable worker's
// cells move in-process and the run completes bit-identically.
func TestSupervisorAdoption(t *testing.T) {
	const seed = 13
	want, err := cluster.Run(testClusterConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: testClusterConfig(seed, 1), Workers: 2, MaxRestarts: -1, Adopt: true}
	fastFailure(&cfg)
	cfg.Faults = []faultinject.ProcFault{{Worker: 1, Interval: 1, Kind: faultinject.ProcKill}}
	got := driveSupervisor(t, cfg)
	assertMatchesEngine(t, got, want, "adopted")
	if got.adoptions != 1 {
		t.Fatalf("adoptions %d want 1", got.adoptions)
	}
}

// TestSupervisorResume: CheckpointBlobs mid-run seed a fresh
// supervisor that continues the scenario — records, stats and the
// final checkpoint all byte-identical to the uninterrupted run.
func TestSupervisorResume(t *testing.T) {
	const seed = 41
	cfg := Config{Cluster: testClusterConfig(seed, 2), Workers: 2}
	full := driveSupervisor(t, cfg)
	d := cfg.Cluster.Defaulted()

	ctx := context.Background()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Sim.WarmupIntervals; i++ {
		if err := a.WarmupStep(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.TrainAndBuild(ctx); err != nil {
		t.Fatal(err)
	}
	var head []cluster.Record
	for n := 0; n < 2; n++ {
		recs, err := a.StepInterval(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		head = append(head, recs...)
	}
	blobs, err := a.CheckpointBlobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.SetResume(blobs); err != nil {
		t.Fatal(err)
	}
	tail := append([]cluster.Record(nil), head...)
	for n := 2; n < d.Sim.NumIntervals; n++ {
		recs, err := b.StepInterval(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, recs...)
	}
	if !reflect.DeepEqual(tail, full.records) {
		t.Fatalf("resumed records diverged (%d vs %d rows)", len(tail), len(full.records))
	}
	cells, hits, misses, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, full.cells) || hits != full.hits || misses != full.misses {
		t.Fatal("resumed stats diverged")
	}
	final, err := b.CheckpointBlobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range final {
		if !bytes.Equal(final[i], full.ckpts[i]) {
			t.Fatalf("worker %d resumed final checkpoint diverged", i)
		}
	}
	if b.Handovers() != full.handovers || b.Churned() != full.churned {
		t.Fatalf("resumed counters: handovers %d/%d churned %d/%d",
			b.Handovers(), full.handovers, b.Churned(), full.churned)
	}
}
