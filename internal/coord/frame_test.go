package coord

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip: every frame type survives encode→decode, with
// buffer reuse across frames.
func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70_000)}
	types := []frameType{fHello, fStep, fImports, fShutdown, fReady, fRecords, fExports, fBoundary, fHeartbeat, fError}
	for i, typ := range types {
		stream = appendFrame(stream, typ, payloads[i%len(payloads)])
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range types {
		typ, payload, nbuf, err := ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("frame %d: type %d want %d", i, typ, want)
		}
		if wantP := payloads[i%len(payloads)]; !bytes.Equal(payload, wantP) {
			t.Fatalf("frame %d: payload %d bytes want %d", i, len(payload), len(wantP))
		}
	}
	if _, _, _, err := ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("stream end: %v", err)
	}
}

// TestFrameCorruption: torn and damaged streams fail with ErrFrame
// (typed, no panic); EOF is clean only at a frame start.
func TestFrameCorruption(t *testing.T) {
	frame := appendFrame(nil, fBoundary, []byte("payload"))
	cases := map[string][]byte{
		"torn length":   frame[:2],
		"torn body":     frame[:6],
		"torn checksum": frame[:len(frame)-2],
		"zero length":   binary.LittleEndian.AppendUint32(nil, 0),
		"huge length":   binary.LittleEndian.AppendUint32(nil, maxFramePayload+1),
	}
	for name, data := range cases {
		br := bufio.NewReader(bytes.NewReader(data))
		if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: %v", name, err)
		}
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0xFF
	br := bufio.NewReader(bytes.NewReader(flipped))
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("flipped checksum: %v", err)
	}
	// A huge claimed length with no data behind it must fail without
	// allocating the claim.
	lie := binary.LittleEndian.AppendUint32(nil, maxFramePayload)
	br = bufio.NewReader(bytes.NewReader(lie))
	_, _, scratch, err := ReadFrame(br, nil)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("lying length: %v", err)
	}
	if cap(scratch) > 1<<17 {
		t.Fatalf("lying length prefix grew the buffer to %d bytes", cap(scratch))
	}
}

// TestSendGarbage: the garbage fault emits a frame the reader rejects
// as ErrFrame, and the conn stays usable afterwards.
func TestSendGarbage(t *testing.T) {
	var pipe bytes.Buffer
	c := newConn(&pipe, nil)
	if err := c.sendGarbage(); err != nil {
		t.Fatal(err)
	}
	if err := c.send(fHeartbeat, nil); err != nil {
		t.Fatalf("conn latched by garbage: %v", err)
	}
	br := bufio.NewReader(bytes.NewReader(pipe.Bytes()))
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("garbage frame: %v", err)
	}
}

// FuzzReadFrame: arbitrary bytes must decode into frames or fail with
// a typed error — never panic, never allocate beyond the frame cap,
// and consume the stream making progress.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, fHello, []byte("hello")))
	f.Add(appendFrame(appendFrame(nil, fStep, nil), fBoundary, bytes.Repeat([]byte{7}, 300)))
	torn := appendFrame(nil, fRecords, bytes.Repeat([]byte{1}, 100))
	f.Add(torn[:len(torn)-3])
	f.Add(binary.LittleEndian.AppendUint32(nil, maxFramePayload))
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))
	bad := appendFrame(nil, fExports, []byte("x"))
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for frames := 0; ; frames++ {
			if frames > len(data) {
				t.Fatalf("more frames than input bytes: no progress")
			}
			typ, payload, nbuf, err := ReadFrame(br, buf)
			buf = nbuf
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrFrame) {
					t.Fatalf("untyped error: %v", err)
				}
				return
			}
			if typ == 0 && len(payload) == 0 {
				t.Fatal("empty frame decoded as valid")
			}
			if len(payload) > maxFramePayload {
				t.Fatalf("payload %d beyond cap", len(payload))
			}
		}
	})
}
