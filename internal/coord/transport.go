// This file carries the supervisor↔worker byte channels. Two
// transports speak the same frame protocol: an in-process one (the
// worker loop on a goroutine over io.Pipes — the default, no exec
// needed) and a process one (a child process over stdin/stdout, so
// worker death is real SIGKILL death). The supervisor never knows
// which it drives.

package coord

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
)

// Transport is one worker's byte channel as the supervisor sees it.
type Transport interface {
	// Reader carries frames from the worker.
	Reader() io.Reader
	// Writer carries frames to the worker.
	Writer() io.Writer
	// Kill tears the worker down abruptly: SIGKILL for processes,
	// poisoned pipes for in-process workers. Idempotent.
	Kill()
	// Done is closed when the worker has fully stopped.
	Done() <-chan struct{}
}

// TransportFactory builds the transport for one worker index. The
// supervisor calls it again for every restart incarnation.
type TransportFactory func(index int) (Transport, error)

// errKilled poisons the pipes of an in-process worker the supervisor
// tore down.
var errKilled = fmt.Errorf("coord: worker killed")

type inprocTransport struct {
	fromWorker *io.PipeReader // supervisor reads
	toWorker   *io.PipeWriter // supervisor writes
	workerIn   *io.PipeReader // worker reads
	workerOut  *io.PipeWriter // worker writes
	done       chan struct{}
}

func (t *inprocTransport) Reader() io.Reader     { return t.fromWorker }
func (t *inprocTransport) Writer() io.Writer     { return t.toWorker }
func (t *inprocTransport) Done() <-chan struct{} { return t.done }
func (t *inprocTransport) Kill() {
	// Poison every end: the worker's next read or write fails, its
	// heartbeat stops, and the goroutine unwinds.
	t.fromWorker.CloseWithError(errKilled)
	t.toWorker.CloseWithError(errKilled)
	t.workerIn.CloseWithError(errKilled)
	t.workerOut.CloseWithError(errKilled)
}

// InProcess runs each worker as a goroutine in the supervisor's own
// process, joined by synchronous pipes. This is the default
// transport: no child processes, full protocol — a ProcKill fault
// tears the pipes instead of delivering a signal.
func InProcess() TransportFactory {
	return func(index int) (Transport, error) {
		workerIn, toWorker := io.Pipe()
		fromWorker, workerOut := io.Pipe()
		t := &inprocTransport{
			fromWorker: fromWorker,
			toWorker:   toWorker,
			workerIn:   workerIn,
			workerOut:  workerOut,
			done:       make(chan struct{}),
		}
		go func() {
			defer close(t.done)
			kill := func() {
				// Abrupt in-process death: poison the pipes mid-protocol
				// and abandon the worker goroutine without cleanup, the
				// closest analog of SIGKILL that shares an address space.
				workerIn.CloseWithError(errKilled)
				workerOut.CloseWithError(errKilled)
				runtime.Goexit()
			}
			_ = RunWorkerOpts(workerIn, workerOut, WorkerOptions{Kill: kill})
			workerOut.Close()
			workerIn.Close()
		}()
		return t, nil
	}
}

type procTransport struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
	done   chan struct{}
}

func (t *procTransport) Reader() io.Reader     { return t.stdout }
func (t *procTransport) Writer() io.Writer     { return t.stdin }
func (t *procTransport) Done() <-chan struct{} { return t.done }
func (t *procTransport) Kill() {
	if t.cmd.Process != nil {
		_ = t.cmd.Process.Kill() // SIGKILL; the wait goroutine reaps
	}
	t.stdin.Close()
}

// Process runs each worker as a child process speaking frames over
// stdin/stdout, with stderr passed through. argv is the worker
// command; extraEnv entries (KEY=VALUE) are appended to the current
// environment — pass WorkerEnv+"=1" to re-exec a binary that calls
// MaybeWorker early in main.
func Process(argv []string, extraEnv ...string) TransportFactory {
	return func(index int) (Transport, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("empty worker command: %w", ErrProtocol)
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("start worker %d: %w", index, err)
		}
		t := &procTransport{cmd: cmd, stdin: stdin, stdout: stdout, done: make(chan struct{})}
		go func() {
			defer close(t.done)
			_ = cmd.Wait()
		}()
		return t, nil
	}
}

// WorkerEnv marks a process as a re-exec'ed frame worker: a binary
// whose main calls MaybeWorker turns into a worker when it sees this
// variable set.
const WorkerEnv = "DTMSVS_COORD_WORKER"

// MaybeWorker turns the current process into a frame worker over
// stdin/stdout if WorkerEnv is set, never returning. Call it first
// thing in main (before flag parsing) of any binary used with
// SelfTransport.
func MaybeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := RunWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dtmsvs worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// SelfTransport re-execs the current binary as the worker process
// (its main must call MaybeWorker). This is how dtsim and the test
// suite get real processes — and real SIGKILLs — without shipping a
// second binary.
func SelfTransport() TransportFactory {
	exe, err := os.Executable()
	return func(index int) (Transport, error) {
		if err != nil {
			return nil, fmt.Errorf("resolve own executable: %w", err)
		}
		return Process([]string{exe}, WorkerEnv+"=1")(index)
	}
}
