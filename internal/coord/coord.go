// This file is the supervisor: it drives N workers through the
// scenario one boundary at a time, routes twin batches between them,
// merges their record streams, and — the point of the package —
// survives worker loss. Every boundary acks a checkpoint; a worker
// that dies (process exit, torn frame, missed heartbeat) is killed,
// restarted with exponential backoff from its last acked checkpoint,
// and the in-flight boundary is replayed. Exports and records the
// first incarnation already delivered are deduplicated, so replay is
// idempotent and the merged trace stays bit-identical.

package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/cluster"
	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/obs"
	"dtmsvs/internal/tracebin"
)

// Config parameterizes a supervised distributed run.
type Config struct {
	// Cluster is the scenario, exactly as a single-process
	// cluster.Run would take it. Faults here are cell faults and are
	// rejected (they live below the worker partition); process faults
	// go in Faults.
	Cluster cluster.Config
	// Workers is the number of worker processes, each owning a
	// contiguous block of cells. Must be in [1, NumBS].
	Workers int
	// Transport builds each worker's byte channel. nil = InProcess().
	Transport TransportFactory
	// Heartbeat is the worker beat period (default 100ms).
	Heartbeat time.Duration
	// HeartbeatMiss is how many consecutive missed beats declare a
	// worker dead (default 10).
	HeartbeatMiss int
	// StepTimeout is the hard deadline for one boundary across all
	// workers, recoveries included (default 10 minutes).
	StepTimeout time.Duration
	// MaxRestarts is the per-worker restart budget (default 3).
	// Negative forbids restarts entirely, so the first loss exhausts
	// the budget.
	MaxRestarts int
	// Backoff is the first restart delay; it doubles per consecutive
	// restart of the same worker, capped at 1s (default 25ms).
	Backoff time.Duration
	// Adopt degrades gracefully instead of failing: a worker that
	// exhausts its restart budget is adopted — its cells run
	// in-process inside the supervisor from the last acked
	// checkpoint. Without Adopt, budget exhaustion is ErrWorkerFailed.
	Adopt bool
	// Faults schedules deterministic process-fault injection
	// (kill/hang/garbage) on workers, for tests and chaos runs.
	Faults []faultinject.ProcFault
	// HangDuration is how long a ProcHang fault stalls a worker
	// (default 30s; tests shrink it).
	HangDuration time.Duration
	// Metrics receives restart/heartbeat/byte counters and per-worker
	// boundary timings. nil disables.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	c.Cluster = c.Cluster.Defaulted()
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Transport == nil {
		c.Transport = InProcess()
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 10
	}
	if c.StepTimeout <= 0 {
		c.StepTimeout = 10 * time.Minute
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.HangDuration <= 0 {
		c.HangDuration = 30 * time.Second
	}
	return c
}

// workerEvent is one frame (or read failure) from one worker
// incarnation, pumped into the supervisor's event channel.
type workerEvent struct {
	idx     int
	inc     int
	typ     frameType
	payload []byte
	err     error
}

// workerHandle is the supervisor's view of one worker slot across
// incarnations.
type workerHandle struct {
	idx      int
	inc      int // incarnation; events from older incarnations are stale
	restarts int
	// stripBelow drops scheduled faults with Interval < stripBelow
	// from restart hellos, so the fault that killed an incarnation
	// cannot re-fire on replay and crash-loop the worker.
	stripBelow int
	t          Transport
	conn       *conn
	sendq      chan sendReq // ordered async sends of the live incarnation
	lastCkpt   []byte       // last acked boundary checkpoint (resume blob before any)
	lastBeat   time.Time    // last frame of the live incarnation
	wk         *cluster.Worker
	plan       []cluster.Handover // adopted: full handover plan awaiting imports

	// Per-step state. got* flags survive recovery: a replayed worker
	// re-sends exports and records, and the duplicates are dropped.
	gotRecords  bool
	gotExports  bool
	gotBoundary bool
	records     []byte
	exports     []cluster.Handover
	imports     []cluster.Handover
	numUsers    int
	handovers   int
	churned     int
	stats       []byte
	stepStart   time.Time

	stage     *obs.Stage
	restartsC *obs.Counter
}

// stepState is the boundary currently in flight.
type stepState struct {
	ph            phase
	n             int
	seq           int64
	importsRouted bool
}

// Supervisor drives a distributed cluster run. It is not safe for
// concurrent use; the session layer calls it from one goroutine.
type Supervisor struct {
	cfg     Config
	handles []*workerHandle
	events  chan workerEvent
	step    *stepState
	seq     int64
	started bool
	closed  bool
	err     error

	restartsTotal   int
	adoptionsTotal  int
	heartbeatMisses int

	tx, rx  *obs.Counter
	hbMissC *obs.Counter
	adoptC  *obs.Counter
}

// New validates cfg and builds a supervisor. Workers are spawned
// lazily at the first step (so SetResume can run first).
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Cluster.Faults) > 0 {
		return nil, fmt.Errorf("%w: cell faults are not supported under a coordinator (workers own the cells)", ErrProtocol)
	}
	if cfg.Workers < 1 || cfg.Workers > cfg.Cluster.Sim.NumBS {
		return nil, fmt.Errorf("%w: %d workers for %d cells", ErrProtocol, cfg.Workers, cfg.Cluster.Sim.NumBS)
	}
	for _, f := range cfg.Faults {
		if f.Worker < 0 || f.Worker >= cfg.Workers {
			return nil, fmt.Errorf("%w: fault for worker %d of %d", ErrProtocol, f.Worker, cfg.Workers)
		}
	}
	s := &Supervisor{
		cfg:    cfg,
		events: make(chan workerEvent, 64+16*cfg.Workers),
	}
	reg := cfg.Metrics
	s.tx = reg.Counter("dtmsvs_coord_tx_bytes_total", "Frame bytes written to workers.")
	s.rx = reg.Counter("dtmsvs_coord_rx_bytes_total", "Frame bytes read from workers.")
	s.hbMissC = reg.Counter("dtmsvs_heartbeat_miss_total", "Workers declared dead by heartbeat deadline.")
	s.adoptC = reg.Counter("dtmsvs_worker_adoptions_total", "Workers adopted in-process after exhausting restarts.")
	for i := 0; i < cfg.Workers; i++ {
		lbl := obs.Label{Name: "worker", Value: strconv.Itoa(i)}
		s.handles = append(s.handles, &workerHandle{
			idx:       i,
			stage:     reg.Stage("coord_boundary", lbl),
			restartsC: reg.Counter("dtmsvs_worker_restarts_total", "Worker restarts after crash, torn frame or missed heartbeat.", lbl),
		})
	}
	return s, nil
}

// SetResume seeds each worker with a boundary checkpoint blob (one
// per worker, from a previous run's CheckpointBlobs). Must be called
// before the first step.
func (s *Supervisor) SetResume(blobs [][]byte) error {
	if s.started {
		return fmt.Errorf("%w: resume after start", ErrProtocol)
	}
	if len(blobs) != len(s.handles) {
		return fmt.Errorf("%w: %d resume blobs for %d workers", ErrProtocol, len(blobs), len(s.handles))
	}
	for i, b := range blobs {
		s.handles[i].lastCkpt = append([]byte(nil), b...)
	}
	return nil
}

// Restarts reports total worker restarts so far.
func (s *Supervisor) Restarts() int { return s.restartsTotal }

// Adoptions reports how many workers the supervisor has adopted
// in-process.
func (s *Supervisor) Adoptions() int { return s.adoptionsTotal }

// HeartbeatMisses reports how many worker losses were declared by
// heartbeat deadline (as opposed to observed directly).
func (s *Supervisor) HeartbeatMisses() int { return s.heartbeatMisses }

// fail latches a fatal supervisor error.
func (s *Supervisor) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// sendReq is one queued frame for a worker.
type sendReq struct {
	typ     frameType
	payload []byte
}

// startSender serializes frames to one worker incarnation through an
// ordered queue, so the supervisor's event loop never blocks on a
// synchronous pipe (a restarted worker reads its next frame only
// after reconstructing the engine) and frames cannot reorder. Send
// failures latch the conn and surface through the pump's read error.
func startSender(c *conn) chan sendReq {
	ch := make(chan sendReq, 16)
	go func() {
		for r := range ch {
			_ = c.send(r.typ, r.payload)
		}
	}()
	return ch
}

// pump reads frames from one worker incarnation into the event
// channel until the transport dies. The final event carries the read
// error.
func (s *Supervisor) pump(idx, inc int, t Transport) {
	br := bufio.NewReaderSize(t.Reader(), 1<<16)
	var buf []byte
	for {
		typ, payload, nbuf, err := ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			s.events <- workerEvent{idx: idx, inc: inc, err: err}
			return
		}
		s.rx.Add(uint64(9 + len(payload)))
		var p []byte
		if len(payload) > 0 {
			p = append([]byte(nil), payload...)
		}
		s.events <- workerEvent{idx: idx, inc: inc, typ: typ, payload: p}
	}
}

// helloPayload builds the hello frame for a worker: config +
// partition + its remaining faults, plus its resume checkpoint.
func (s *Supervisor) helloPayload(h *workerHandle) ([]byte, error) {
	var faults []faultinject.ProcFault
	for _, f := range s.cfg.Faults {
		if f.Worker == h.idx && f.Interval >= h.stripBelow {
			faults = append(faults, f)
		}
	}
	hm := helloMsg{
		Proto:       protoVersion,
		Cluster:     s.cfg.Cluster,
		Index:       h.idx,
		Count:       len(s.handles),
		HeartbeatMS: int(s.cfg.Heartbeat / time.Millisecond),
		HangMS:      int(s.cfg.HangDuration / time.Millisecond),
		Faults:      faults,
	}
	jb, err := json.Marshal(hm)
	if err != nil {
		return nil, err
	}
	var e checkpoint.Enc
	e.Blob(jb)
	e.Blob(h.lastCkpt)
	return append([]byte(nil), e.Bytes()...), nil
}

// spawn starts a fresh incarnation of h and queues its hello. resend
// additionally replays the in-flight step (and routed imports) — the
// recovery path.
func (s *Supervisor) spawn(h *workerHandle, resend bool) error {
	hello, err := s.helloPayload(h)
	if err != nil {
		return err
	}
	t, err := s.cfg.Transport(h.idx)
	if err != nil {
		return err
	}
	h.inc++
	h.t = t
	h.conn = newConn(t.Writer(), s.tx)
	if h.sendq != nil {
		close(h.sendq)
	}
	h.sendq = startSender(h.conn)
	h.lastBeat = time.Now()
	go s.pump(h.idx, h.inc, t)

	h.sendq <- sendReq{fHello, hello}
	if resend && s.step != nil {
		h.sendq <- sendReq{fStep, stepPayload(s.step.ph, s.step.n, s.step.seq)}
		if s.step.importsRouted {
			h.sendq <- sendReq{fImports, importsPayload(s.step.seq, h.imports)}
		}
	}
	return nil
}

func stepPayload(ph phase, n int, seq int64) []byte {
	var e checkpoint.Enc
	e.U8(uint8(ph))
	e.I64(int64(n))
	e.I64(seq)
	return append([]byte(nil), e.Bytes()...)
}

func importsPayload(seq int64, hs []cluster.Handover) []byte {
	var e checkpoint.Enc
	e.I64(seq)
	appendHandovers(&e, hs)
	return append([]byte(nil), e.Bytes()...)
}

// ensureStarted spawns every worker on first use.
func (s *Supervisor) ensureStarted() error {
	if s.started {
		return nil
	}
	for _, h := range s.handles {
		if err := s.spawn(h, false); err != nil {
			return s.fail(fmt.Errorf("spawn worker %d: %w", h.idx, err))
		}
	}
	s.started = true
	return nil
}

// recover handles the loss of worker h for any cause: kill whatever
// is left, and either restart it (replaying the in-flight boundary)
// or — budget exhausted — adopt it in-process / fail the run.
func (s *Supervisor) recover(h *workerHandle, cause error) error {
	if h.t != nil {
		h.t.Kill()
	}
	h.inc++ // orphan any event still in flight from the dead incarnation
	h.restarts++
	s.restartsTotal++
	h.restartsC.Inc()
	if s.step != nil && s.step.ph == phaseInterval && s.step.n >= h.stripBelow {
		h.stripBelow = s.step.n + 1
	}
	budget := s.cfg.MaxRestarts
	if budget < 0 {
		budget = 0
	}
	if h.restarts > budget {
		if s.cfg.Adopt {
			return s.adopt(h, cause)
		}
		return s.fail(fmt.Errorf("worker %d lost %d times (budget %d), last cause: %v: %w",
			h.idx, h.restarts, budget, cause, ErrWorkerFailed))
	}
	backoff := s.cfg.Backoff
	for i := 1; i < h.restarts && backoff < time.Second; i++ {
		backoff *= 2
	}
	if backoff > time.Second {
		backoff = time.Second
	}
	time.Sleep(backoff)
	if err := s.spawn(h, true); err != nil {
		return s.fail(fmt.Errorf("respawn worker %d: %v: %w", h.idx, err, ErrWorkerFailed))
	}
	return nil
}

// adopt runs h's cells in-process from its last acked checkpoint —
// graceful degradation once the restart budget is gone. The in-flight
// boundary is replayed locally.
func (s *Supervisor) adopt(h *workerHandle, cause error) error {
	wk, err := cluster.NewWorker(s.cfg.Cluster, h.idx, len(s.handles))
	if err != nil {
		return s.fail(fmt.Errorf("adopt worker %d: %v: %w", h.idx, err, ErrWorkerFailed))
	}
	if len(h.lastCkpt) > 0 {
		if err := restoreWorker(wk, s.cfg.Cluster, h.idx, len(s.handles), h.lastCkpt); err != nil {
			wk.Close()
			return s.fail(fmt.Errorf("adopt worker %d: %v: %w", h.idx, err, ErrWorkerFailed))
		}
	}
	h.wk = wk
	h.t = nil
	h.conn = nil
	if h.sendq != nil {
		close(h.sendq)
		h.sendq = nil
	}
	s.adoptionsTotal++
	s.adoptC.Inc()
	_ = cause
	if s.step != nil {
		return s.runLocal(h)
	}
	return nil
}

// restoreWorker restores wk from a boundary checkpoint blob.
func restoreWorker(wk *cluster.Worker, cfg cluster.Config, index, count int, blob []byte) error {
	fp, err := WorkerFingerprint(cfg, index, count)
	if err != nil {
		return err
	}
	cr, err := checkpoint.NewReader(bytes.NewReader(blob), WorkerKind, fp)
	if err != nil {
		return err
	}
	if err := wk.ReadState(cr); err != nil {
		return err
	}
	return cr.Finish()
}

// runLocal replays the in-flight boundary on an adopted worker: the
// phase's engine work, records, exports — deduplicated against what
// the dead incarnation already delivered — and, if imports are
// already routed, the apply and boundary.
func (s *Supervisor) runLocal(h *workerHandle) error {
	st := s.step
	ctx := context.Background()
	var err error
	switch st.ph {
	case phaseWarmup:
		err = h.wk.WarmupStep(ctx)
	case phaseTrain:
		err = h.wk.TrainAndBuild(ctx)
	case phaseInterval:
		var recs []cluster.Record
		if recs, err = h.wk.StepInterval(ctx, st.n); err == nil {
			var blob []byte
			if blob, err = encodeRecordsStream(recs); err == nil && !h.gotRecords {
				h.records = blob
				h.gotRecords = true
			}
		}
	case phaseCkpt:
		// Checkpoint-only boundary: no engine work.
	}
	if err != nil {
		return s.fail(fmt.Errorf("adopted worker %d %s %d: %w", h.idx, st.ph, st.n, err))
	}
	h.plan = nil
	if st.ph == phaseWarmup || st.ph == phaseInterval {
		if h.plan, err = h.wk.PlanHandovers(); err != nil {
			return s.fail(fmt.Errorf("adopted worker %d plan: %w", h.idx, err))
		}
	}
	if !h.gotExports {
		for _, x := range h.plan {
			if x.Twin != nil {
				h.exports = append(h.exports, x)
			}
		}
		h.gotExports = true
	}
	if st.importsRouted {
		return s.finishLocal(h)
	}
	return nil
}

// finishLocal applies the routed imports on an adopted worker and
// produces its boundary: counters, a fresh checkpoint, and final
// stats on the last interval — exactly what a wire worker's boundary
// frame carries.
func (s *Supervisor) finishLocal(h *workerHandle) error {
	st := s.step
	if st.ph == phaseWarmup || st.ph == phaseInterval {
		if err := h.wk.ApplyHandovers(append(h.plan, h.imports...)); err != nil {
			return s.fail(fmt.Errorf("adopted worker %d apply: %w", h.idx, err))
		}
	}
	ckpt, err := encodeWorkerCheckpoint(h.wk, s.cfg.Cluster, h.idx, len(s.handles))
	if err != nil {
		return s.fail(fmt.Errorf("adopted worker %d checkpoint: %w", h.idx, err))
	}
	h.lastCkpt = ckpt
	h.numUsers = h.wk.NumUsers()
	h.handovers = h.wk.Handovers()
	h.churned = h.wk.Churned()
	if st.ph == phaseCkpt || (st.ph == phaseInterval && st.n == s.cfg.Cluster.Sim.NumIntervals-1) {
		cells, hits, misses := h.wk.FinishStats()
		jb, jerr := json.Marshal(workerStats{Cells: cells, Hits: hits, Misses: misses})
		if jerr != nil {
			return s.fail(jerr)
		}
		h.stats = jb
	}
	h.gotBoundary = true
	h.stage.ObserveSince(h.stepStart)
	return nil
}

// encodeWorkerCheckpoint captures wk as a self-contained blob, same
// container a wire worker ships at every boundary.
func encodeWorkerCheckpoint(wk *cluster.Worker, cfg cluster.Config, index, count int) ([]byte, error) {
	fp, err := WorkerFingerprint(cfg, index, count)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	cw := checkpoint.NewWriter(&buf, WorkerKind, fp)
	if err := wk.WriteState(cw); err != nil {
		return nil, err
	}
	if err := cw.Finish(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runStep drives one boundary across all workers: step out, exports
// in, imports routed, boundaries in — recovering workers as they
// fall.
func (s *Supervisor) runStep(ctx context.Context, ph phase, n int) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return fmt.Errorf("%w: supervisor closed", ErrProtocol)
	}
	if err := s.ensureStarted(); err != nil {
		return err
	}
	s.seq++
	s.step = &stepState{ph: ph, n: n, seq: s.seq}
	defer func() { s.step = nil }()
	now := time.Now()
	for _, h := range s.handles {
		h.gotExports = false
		h.gotBoundary = false
		h.gotRecords = ph != phaseInterval
		h.records = nil
		h.exports = nil
		h.imports = nil
		h.plan = nil
		h.lastBeat = now
		h.stepStart = h.stage.Start()
	}
	step := stepPayload(ph, n, s.seq)
	for _, h := range s.handles {
		if h.wk != nil {
			if err := s.runLocal(h); err != nil {
				return err
			}
			continue
		}
		h.sendq <- sendReq{fStep, step}
	}
	return s.gather(ctx)
}

// gather runs the event loop for the in-flight boundary until every
// worker has delivered it.
func (s *Supervisor) gather(ctx context.Context) error {
	deadline := time.Now().Add(s.cfg.StepTimeout)
	missAfter := s.cfg.Heartbeat * time.Duration(s.cfg.HeartbeatMiss)
	tick := s.cfg.Heartbeat / 2
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	for {
		if !s.step.importsRouted && s.allExports() {
			if err := s.routeImports(); err != nil {
				return err
			}
		}
		if s.allBoundaries() {
			return s.checkConservation()
		}
		select {
		case ev := <-s.events:
			if err := s.handleEvent(ev); err != nil {
				return err
			}
		case <-time.After(tick):
		}
		if err := ctx.Err(); err != nil {
			return s.fail(err)
		}
		if time.Now().After(deadline) {
			return s.fail(fmt.Errorf("%s %d: step deadline %v exceeded: %w",
				s.step.ph, s.step.n, s.cfg.StepTimeout, ErrWorkerFailed))
		}
		for _, h := range s.handles {
			if h.wk == nil && !h.gotBoundary && time.Since(h.lastBeat) > missAfter {
				s.heartbeatMisses++
				s.hbMissC.Inc()
				if err := s.recover(h, fmt.Errorf("missed %d heartbeats", s.cfg.HeartbeatMiss)); err != nil {
					return err
				}
			}
		}
	}
}

func (s *Supervisor) allExports() bool {
	for _, h := range s.handles {
		if !h.gotExports {
			return false
		}
	}
	return true
}

func (s *Supervisor) allBoundaries() bool {
	for _, h := range s.handles {
		if !h.gotBoundary || !h.gotRecords {
			return false
		}
	}
	return true
}

// routeImports fans every worker's exports out to their destination
// workers, then releases everyone: imports frames to wire workers,
// local apply for adopted ones.
func (s *Supervisor) routeImports() error {
	numCells := s.cfg.Cluster.Sim.NumBS
	workers := len(s.handles)
	for _, h := range s.handles {
		for _, x := range h.exports {
			dst := cluster.WorkerForCell(x.To, numCells, workers)
			if dst == h.idx || dst < 0 || dst >= workers {
				return s.fail(fmt.Errorf("worker %d exported user %d to its own cell %d: %w",
					h.idx, x.ID, x.To, ErrProtocol))
			}
			s.handles[dst].imports = append(s.handles[dst].imports, x)
		}
	}
	s.step.importsRouted = true
	for _, h := range s.handles {
		if h.wk != nil {
			if err := s.finishLocal(h); err != nil {
				return err
			}
			continue
		}
		h.sendq <- sendReq{fImports, importsPayload(s.step.seq, h.imports)}
	}
	return nil
}

// handleEvent processes one frame (or loss) from a worker.
func (s *Supervisor) handleEvent(ev workerEvent) error {
	h := s.handles[ev.idx]
	if ev.inc != h.inc || h.wk != nil {
		return nil // stale incarnation
	}
	if ev.err != nil {
		return s.recover(h, fmt.Errorf("read: %w", ev.err))
	}
	h.lastBeat = time.Now()
	switch ev.typ {
	case fHeartbeat, fReady:
		return nil
	case fError:
		// Worker-side engine errors are deterministic: a restart would
		// re-fail, so they are terminal.
		d := checkpoint.NewDec(ev.payload)
		msg := d.Blob()
		return s.fail(fmt.Errorf("worker %d: %s", ev.idx, msg))
	case fRecords:
		d := checkpoint.NewDec(ev.payload)
		seq := d.I64()
		blob := d.Blob()
		if err := d.Close(); err != nil || seq != s.step.seq {
			return s.recover(h, fmt.Errorf("records frame (seq %d, want %d): %w", seq, s.step.seq, ErrProtocol))
		}
		if !h.gotRecords {
			h.records = blob // aliases the event's private payload copy
			h.gotRecords = true
		}
		return nil
	case fExports:
		d := checkpoint.NewDec(ev.payload)
		seq := d.I64()
		hs, err := decodeHandovers(d)
		if err == nil {
			err = d.Close()
		}
		if err != nil || seq != s.step.seq {
			return s.recover(h, fmt.Errorf("exports frame (seq %d, want %d): %w", seq, s.step.seq, ErrProtocol))
		}
		if !h.gotExports {
			h.exports = hs
			h.gotExports = true
		}
		return nil
	case fBoundary:
		d := checkpoint.NewDec(ev.payload)
		seq := d.I64()
		numUsers := int(d.I64())
		handovers := int(d.I64())
		churned := int(d.I64())
		ckpt := d.Blob()
		stats := d.Blob()
		if err := d.Close(); err != nil || seq != s.step.seq {
			return s.recover(h, fmt.Errorf("boundary frame (seq %d, want %d): %w", seq, s.step.seq, ErrProtocol))
		}
		h.numUsers = numUsers
		h.handovers = handovers
		h.churned = churned
		h.lastCkpt = append([]byte(nil), ckpt...)
		if len(stats) > 0 {
			h.stats = append([]byte(nil), stats...)
		}
		h.gotBoundary = true
		h.stage.ObserveSince(h.stepStart)
		return nil
	default:
		return s.recover(h, fmt.Errorf("frame %d from worker: %w", ev.typ, ErrProtocol))
	}
}

// checkConservation asserts no user was lost or duplicated across the
// partition at this boundary.
func (s *Supervisor) checkConservation() error {
	total := 0
	for _, h := range s.handles {
		total += h.numUsers
	}
	if want := s.cfg.Cluster.Sim.NumUsers; total != want {
		return s.fail(fmt.Errorf("%s %d: %d users across workers, want %d: %w",
			s.step.ph, s.step.n, total, want, ErrProtocol))
	}
	return nil
}

// WarmupStep runs one warmup boundary across all workers.
func (s *Supervisor) WarmupStep(ctx context.Context) error {
	return s.runStep(ctx, phaseWarmup, 0)
}

// TrainAndBuild runs the training boundary.
func (s *Supervisor) TrainAndBuild(ctx context.Context) error {
	return s.runStep(ctx, phaseTrain, 0)
}

// StepInterval runs interval n and returns the merged records, in
// the same order the single-process cluster engine emits them
// (workers own contiguous cell blocks, so index order is cell order).
func (s *Supervisor) StepInterval(ctx context.Context, n int) ([]cluster.Record, error) {
	if err := s.runStep(ctx, phaseInterval, n); err != nil {
		return nil, err
	}
	var merged bytes.Buffer
	aw := tracebin.NewAppendWriter(&merged)
	for _, h := range s.handles {
		if _, err := aw.AppendStream(bytes.NewReader(h.records)); err != nil {
			return nil, s.fail(fmt.Errorf("merge worker %d records: %w", h.idx, err))
		}
	}
	if err := aw.Close(); err != nil {
		return nil, s.fail(err)
	}
	rows, err := tracebin.ReadAll(bytes.NewReader(merged.Bytes()))
	if err != nil {
		return nil, s.fail(fmt.Errorf("decode merged records: %w", err))
	}
	recs := make([]cluster.Record, len(rows))
	for i, b := range rows {
		recs[i] = cluster.RecordFromBin(b)
	}
	return recs, nil
}

// CheckpointBlobs runs a checkpoint-only boundary and returns one
// fresh state blob per worker — the resume payload for SetResume.
func (s *Supervisor) CheckpointBlobs(ctx context.Context) ([][]byte, error) {
	if err := s.runStep(ctx, phaseCkpt, -1); err != nil {
		return nil, err
	}
	blobs := make([][]byte, len(s.handles))
	for i, h := range s.handles {
		blobs[i] = append([]byte(nil), h.lastCkpt...)
	}
	return blobs, nil
}

// Handovers reports total cross-cell handovers so far (each counted
// once, at the source worker).
func (s *Supervisor) Handovers() int {
	total := 0
	for _, h := range s.handles {
		total += h.handovers
	}
	return total
}

// Churned reports total churned users so far.
func (s *Supervisor) Churned() int {
	total := 0
	for _, h := range s.handles {
		total += h.churned
	}
	return total
}

// Stats assembles the end-of-run per-cell stats the workers attached
// to their final boundary, in cell-id order, plus global cache
// hit/miss totals. Only valid after the last interval.
func (s *Supervisor) Stats() ([]cluster.CellStats, int, int, error) {
	var cells []cluster.CellStats
	hits, misses := 0, 0
	for _, h := range s.handles {
		if len(h.stats) == 0 {
			return nil, 0, 0, fmt.Errorf("%w: worker %d sent no final stats", ErrProtocol, h.idx)
		}
		var ws workerStats
		if err := json.Unmarshal(h.stats, &ws); err != nil {
			return nil, 0, 0, fmt.Errorf("worker %d stats: %v: %w", h.idx, err, ErrProtocol)
		}
		cells = append(cells, ws.Cells...)
		hits += ws.Hits
		misses += ws.Misses
	}
	return cells, hits, misses, nil
}

// FinalStats is Stats, fetching missing stats with a checkpoint-only
// boundary first — a supervisor that restored into an
// already-finished run never saw the final interval's boundary, but
// its workers can still report.
func (s *Supervisor) FinalStats(ctx context.Context) ([]cluster.CellStats, int, int, error) {
	for _, h := range s.handles {
		if len(h.stats) == 0 {
			if _, err := s.CheckpointBlobs(ctx); err != nil {
				return nil, 0, 0, err
			}
			break
		}
	}
	return s.Stats()
}

// Close shuts every worker down: a shutdown frame for the live ones,
// then the transports are killed and reaped. Adopted workers are
// closed in-process. Safe to call more than once.
func (s *Supervisor) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, h := range s.handles {
		if h.wk != nil {
			h.wk.Close()
			h.wk = nil
			continue
		}
		if h.sendq != nil {
			h.sendq <- sendReq{fShutdown, nil}
			close(h.sendq)
			h.sendq = nil
		}
	}
	// Give workers a moment to exit cleanly, then kill what is left.
	// The event channel keeps draining so pump goroutines can deliver
	// their final error and unwind.
	patience := time.After(2 * time.Second)
	done := make([]bool, len(s.handles))
	for {
		live := false
		for i, h := range s.handles {
			if h.t == nil || done[i] {
				continue
			}
			select {
			case <-h.t.Done():
				done[i] = true
			default:
				live = true
			}
		}
		if !live {
			return nil
		}
		select {
		case <-s.events:
		case <-patience:
			for i, h := range s.handles {
				if h.t != nil && !done[i] {
					h.t.Kill()
				}
			}
			// One bounded reap pass after the kill.
			reap := time.After(2 * time.Second)
			for i, h := range s.handles {
				if h.t == nil || done[i] {
					continue
				}
				select {
				case <-h.t.Done():
					done[i] = true
				case <-s.events:
				case <-reap:
					return nil
				}
			}
			return nil
		case <-time.After(10 * time.Millisecond):
		}
	}
}
