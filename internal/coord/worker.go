// This file is the worker side of the frame protocol: parse hello,
// construct (or restore) the owned cell block, then serve step frames
// until shutdown — heartbeating the whole time, checkpointing at
// every boundary, and injecting scheduled process faults on itself.

package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/cluster"
	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/tracebin"
)

// WorkerKind is the checkpoint-container kind of a worker's boundary
// state blob.
const WorkerKind = "dtworker"

// WorkerFingerprint is the config fingerprint a worker checkpoint is
// stamped with: the fully defaulted cluster configuration plus the
// worker's slot in the partition, so a blob can never restore into
// the wrong worker.
func WorkerFingerprint(cfg cluster.Config, index, count int) (uint64, error) {
	return checkpoint.Fingerprint(struct {
		Cluster cluster.Config `json:"cluster"`
		Index   int            `json:"index"`
		Count   int            `json:"count"`
	}{cfg.Defaulted(), index, count})
}

// helloMsg is the supervisor's opening frame, as JSON inside the
// hello payload (config structs already marshal as JSON elsewhere;
// the hot frames stay binary).
type helloMsg struct {
	Proto       int                     `json:"proto"`
	Cluster     cluster.Config          `json:"cluster"`
	Index       int                     `json:"index"`
	Count       int                     `json:"count"`
	HeartbeatMS int                     `json:"heartbeatMs"`
	HangMS      int                     `json:"hangMs"`
	Faults      []faultinject.ProcFault `json:"faults,omitempty"`
}

// workerStats is the worker's end-of-run contribution to the merged
// trace, attached to the final interval's boundary frame as JSON.
type workerStats struct {
	Cells  []cluster.CellStats `json:"cells"`
	Hits   int                 `json:"hits"`
	Misses int                 `json:"misses"`
}

// appendHandovers encodes a twin batch.
func appendHandovers(e *checkpoint.Enc, hs []cluster.Handover) {
	e.U32(uint32(len(hs)))
	for _, h := range hs {
		e.Int(h.ID)
		e.Int(h.From)
		e.Int(h.To)
		e.Blob(h.Twin)
	}
}

// decodeHandovers decodes a twin batch, bounding the prealloc so a
// corrupt count cannot balloon.
func decodeHandovers(d *checkpoint.Dec) ([]cluster.Handover, error) {
	n := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	hs := make([]cluster.Handover, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n; i++ {
		h := cluster.Handover{ID: d.Int(), From: d.Int(), To: d.Int()}
		h.Twin = d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(h.Twin) > 0 {
			h.Twin = append([]byte(nil), h.Twin...)
		} else {
			h.Twin = nil
		}
		hs = append(hs, h)
	}
	return hs, nil
}

// WorkerOptions tune RunWorkerOpts.
type WorkerOptions struct {
	// Kill abandons the worker abruptly when a ProcKill fault fires.
	// nil means SIGKILL the own process — real, unhandleable death for
	// process transports; in-process transports substitute a pipe
	// teardown.
	Kill func()
}

// RunWorker serves the worker protocol over r/w until shutdown or
// transport loss. It is the entire lifecycle of cmd/dtworker and of
// re-exec'ed MaybeWorker processes.
func RunWorker(r io.Reader, w io.Writer) error {
	return RunWorkerOpts(r, w, WorkerOptions{})
}

// RunWorkerOpts is RunWorker with explicit options.
func RunWorkerOpts(r io.Reader, w io.Writer, opts WorkerOptions) error {
	if opts.Kill == nil {
		opts.Kill = func() {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			os.Exit(137) // unreachable; belt and braces
		}
	}
	br := bufio.NewReaderSize(r, 1<<16)
	c := newConn(w, nil)

	typ, payload, buf, err := ReadFrame(br, nil)
	if err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if typ != fHello {
		return fmt.Errorf("first frame %d is not hello: %w", typ, ErrProtocol)
	}
	d := checkpoint.NewDec(payload)
	helloBlob := d.Blob()
	resume := d.Blob()
	if err := d.Close(); err != nil {
		return fmt.Errorf("hello payload: %w", err)
	}
	var hello helloMsg
	if err := json.Unmarshal(helloBlob, &hello); err != nil {
		return fmt.Errorf("hello header: %v: %w", err, ErrProtocol)
	}
	if hello.Proto != protoVersion {
		return sendErrf(c, "protocol version %d, worker speaks %d", hello.Proto, protoVersion)
	}

	// Heartbeats flow on their own goroutine through the shared conn
	// from the moment the hello parses — construction and restore can
	// be slow, and the supervisor's liveness deadline must cover them
	// like any other phase.
	hb := hello.HeartbeatMS
	if hb <= 0 {
		hb = 100
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(time.Duration(hb) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if c.send(fHeartbeat, nil) != nil {
					return
				}
			}
		}
	}()

	wk, err := cluster.NewWorker(hello.Cluster, hello.Index, hello.Count)
	if err != nil {
		return sendErrf(c, "construct worker %d/%d: %v", hello.Index, hello.Count, err)
	}
	defer wk.Close()
	fp, err := WorkerFingerprint(hello.Cluster, hello.Index, hello.Count)
	if err != nil {
		return sendErrf(c, "fingerprint: %v", err)
	}
	if len(resume) > 0 {
		cr, rerr := checkpoint.NewReader(bytes.NewReader(resume), WorkerKind, fp)
		if rerr == nil {
			rerr = wk.ReadState(cr)
		}
		if rerr == nil {
			rerr = cr.Finish()
		}
		if rerr != nil {
			return sendErrf(c, "restore worker %d: %v", hello.Index, rerr)
		}
	}

	if err := c.send(fReady, nil); err != nil {
		return err
	}

	ws := &workerSession{
		wk:    wk,
		c:     c,
		br:    br,
		buf:   buf,
		fp:    fp,
		hello: hello,
		kill:  opts.Kill,
	}
	for {
		typ, payload, nbuf, err := ReadFrame(ws.br, ws.buf)
		ws.buf = nbuf
		if err != nil {
			if err == io.EOF {
				return nil // supervisor went away cleanly
			}
			return err
		}
		switch typ {
		case fStep:
			if err := ws.handleStep(payload); err != nil {
				return err
			}
		case fShutdown:
			return nil
		default:
			return fmt.Errorf("frame %d outside a step: %w", typ, ErrProtocol)
		}
	}
}

// sendErrf reports a terminal worker-side failure to the supervisor
// and returns it locally too.
func sendErrf(c *conn, format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	var e checkpoint.Enc
	e.Blob([]byte(err.Error()))
	_ = c.send(fError, e.Bytes())
	return err
}

// workerSession is the per-connection state of a running worker.
type workerSession struct {
	wk    *cluster.Worker
	c     *conn
	br    *bufio.Reader
	buf   []byte
	fp    uint64
	hello helloMsg
	enc   checkpoint.Enc
	kill  func()
}

// handleStep runs one boundary: fault injection, the phase's engine
// work, the export/import twin exchange, then the boundary frame with
// a fresh checkpoint (and final stats on the last interval).
func (ws *workerSession) handleStep(payload []byte) error {
	d := checkpoint.NewDec(payload)
	ph := phase(d.U8())
	n := int(d.I64())
	seq := d.I64()
	if err := d.Close(); err != nil {
		return fmt.Errorf("step payload: %w", err)
	}

	if ph == phaseInterval {
		ws.injectFaults(n)
	}

	ctx := context.Background()
	var err error
	switch ph {
	case phaseWarmup:
		err = ws.wk.WarmupStep(ctx)
	case phaseTrain:
		err = ws.wk.TrainAndBuild(ctx)
	case phaseInterval:
		var recs []cluster.Record
		if recs, err = ws.wk.StepInterval(ctx, n); err == nil {
			err = ws.sendRecords(seq, recs)
		}
	case phaseCkpt:
		// Checkpoint-only boundary: no engine work.
	default:
		return fmt.Errorf("step phase %d: %w", ph, ErrProtocol)
	}
	if err != nil {
		return sendErrf(ws.c, "worker %d %s %d: %v", ws.hello.Index, ph, n, err)
	}

	migrating := ph == phaseWarmup || ph == phaseInterval
	var plan []cluster.Handover
	if migrating {
		if plan, err = ws.wk.PlanHandovers(); err != nil {
			return sendErrf(ws.c, "worker %d plan: %v", ws.hello.Index, err)
		}
	}
	var exports []cluster.Handover
	for _, h := range plan {
		if h.Twin != nil {
			exports = append(exports, h)
		}
	}
	ws.enc.Reset()
	ws.enc.I64(seq)
	appendHandovers(&ws.enc, exports)
	if err := ws.c.send(fExports, ws.enc.Bytes()); err != nil {
		return err
	}

	imports, err := ws.awaitImports(seq)
	if err != nil {
		return err
	}
	if migrating {
		if err := ws.wk.ApplyHandovers(append(plan, imports...)); err != nil {
			return sendErrf(ws.c, "worker %d apply: %v", ws.hello.Index, err)
		}
	} else if len(imports) > 0 {
		return fmt.Errorf("%d imports at a %s boundary: %w", len(imports), ph, ErrProtocol)
	}

	ckpt, err := ws.encodeCheckpoint()
	if err != nil {
		return sendErrf(ws.c, "worker %d checkpoint: %v", ws.hello.Index, err)
	}
	// Stats ride the final interval's boundary — and every
	// checkpoint-only boundary, so a supervisor restoring into an
	// already-finished run can still assemble the trace summary.
	var stats []byte
	if ph == phaseCkpt || (ph == phaseInterval && n == ws.wk.Config().Sim.NumIntervals-1) {
		cells, hits, misses := ws.wk.FinishStats()
		if stats, err = json.Marshal(workerStats{Cells: cells, Hits: hits, Misses: misses}); err != nil {
			return sendErrf(ws.c, "worker %d stats: %v", ws.hello.Index, err)
		}
	}
	ws.enc.Reset()
	ws.enc.I64(seq)
	ws.enc.I64(int64(ws.wk.NumUsers()))
	ws.enc.I64(int64(ws.wk.Handovers()))
	ws.enc.I64(int64(ws.wk.Churned()))
	ws.enc.Blob(ckpt)
	ws.enc.Blob(stats)
	return ws.c.send(fBoundary, ws.enc.Bytes())
}

// injectFaults fires any scheduled process fault for interval n.
// Faults arrive pre-filtered: the supervisor strips ones a previous
// incarnation already fired.
func (ws *workerSession) injectFaults(n int) {
	for _, f := range ws.hello.Faults {
		if f.Worker != ws.hello.Index || f.Interval != n {
			continue
		}
		switch f.Kind {
		case faultinject.ProcKill:
			ws.kill()
		case faultinject.ProcHang:
			hang := time.Duration(ws.hello.HangMS) * time.Millisecond
			if hang <= 0 {
				hang = 30 * time.Second
			}
			ws.c.hold(hang)
		case faultinject.ProcGarbage:
			_ = ws.c.sendGarbage()
		}
	}
}

// encodeRecordsStream encodes one interval's records as a whole
// columnar trace stream — the unit of the supervisor's block-append
// merge. Worker processes and adopted in-process workers both encode
// through here, so the merged bytes cannot depend on where a worker
// runs.
func encodeRecordsStream(recs []cluster.Record) ([]byte, error) {
	var stream bytes.Buffer
	bw, err := tracebin.NewWriter(&stream, tracebin.WriterOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	rows := make([]tracebin.Record, len(recs))
	for i, r := range recs {
		rows[i] = r.BinRecord()
	}
	if err := bw.Flush(rows); err != nil {
		return nil, err
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return stream.Bytes(), nil
}

// sendRecords ships one interval's records in the records frame.
func (ws *workerSession) sendRecords(seq int64, recs []cluster.Record) error {
	stream, err := encodeRecordsStream(recs)
	if err != nil {
		return err
	}
	ws.enc.Reset()
	ws.enc.I64(seq)
	ws.enc.Blob(stream)
	return ws.c.send(fRecords, ws.enc.Bytes())
}

// awaitImports blocks on the routed twin batch for seq. Shutdown
// while waiting ends the worker cleanly (the supervisor abandoned the
// step).
func (ws *workerSession) awaitImports(seq int64) ([]cluster.Handover, error) {
	for {
		typ, payload, nbuf, err := ReadFrame(ws.br, ws.buf)
		ws.buf = nbuf
		if err != nil {
			return nil, err
		}
		switch typ {
		case fImports:
			d := checkpoint.NewDec(payload)
			gotSeq := d.I64()
			hs, herr := decodeHandovers(d)
			if herr == nil {
				herr = d.Close()
			}
			if herr != nil {
				return nil, fmt.Errorf("imports payload: %w", herr)
			}
			if gotSeq != seq {
				return nil, fmt.Errorf("imports for step %d during step %d: %w", gotSeq, seq, ErrProtocol)
			}
			return hs, nil
		case fShutdown:
			return nil, io.ErrClosedPipe
		default:
			return nil, fmt.Errorf("frame %d while awaiting imports: %w", typ, ErrProtocol)
		}
	}
}

// encodeCheckpoint captures the worker's boundary state as a
// self-contained checkpoint blob.
func (ws *workerSession) encodeCheckpoint() ([]byte, error) {
	var buf bytes.Buffer
	cw := checkpoint.NewWriter(&buf, WorkerKind, ws.fp)
	if err := ws.wk.WriteState(cw); err != nil {
		return nil, err
	}
	if err := cw.Finish(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
