// Snapshot: the deterministic, sorted read side of the registry.
// Snapshot() materializes every family and series into plain structs
// — families ordered by name, series by label signature — which is
// what the Prometheus writer, the JSON end-of-run dump and the
// dtreport -timings table all consume.
package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Family is one metric family in a snapshot.
type Family struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Kind   string   `json:"kind"`
	Series []Series `json:"series"`
}

// Series is one labelled series in a snapshot. Counters and gauges
// use Value; histograms use Count/Sum/Bounds/Buckets (Buckets holds
// per-bucket, non-cumulative counts; its length is len(Bounds)+1,
// the final entry being the implicit +Inf bucket).
type Series struct {
	Labels  []Label   `json:"labels,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Label returns the value of the named label, or "" when absent.
func (s *Series) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family returns the named family of the snapshot, or nil.
func (s *Snapshot) Family(name string) *Family {
	if s == nil {
		return nil
	}
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Snapshot copies the registry into deterministic sorted order. Safe
// to call concurrently with hot-path updates; each series is read
// atomically (histogram bucket/count/sum triples are read without a
// global lock, so a concurrent Observe may be visible in count but
// not yet in sum — consistent enough for live export). A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := Family{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, k := range keys {
			s := f.series[k]
			ser := Series{Labels: append([]Label(nil), s.labels...)}
			switch {
			case s.counter != nil:
				ser.Value = float64(s.counter.Value())
			case s.counterFn != nil:
				ser.Value = float64(s.counterFn())
			case s.gauge != nil:
				ser.Value = s.gauge.Value()
			case s.gaugeFn != nil:
				ser.Value = s.gaugeFn()
			case s.hist != nil:
				ser.Count = s.hist.Count()
				ser.Sum = s.hist.Sum()
				ser.Bounds = append([]float64(nil), s.hist.bounds...)
				ser.Buckets = make([]uint64, len(s.hist.buckets))
				for i := range s.hist.buckets {
					ser.Buckets[i] = s.hist.buckets[i].Load()
				}
			}
			out.Series = append(out.Series, ser)
		}
		snap.Families = append(snap.Families, out)
	}
	r.mu.Unlock()
	return snap
}

// WriteJSON writes the registry's current snapshot as indented JSON
// — the -metrics-out format consumed by dtreport -timings.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
