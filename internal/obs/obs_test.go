package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "Requests."); again != c {
		t.Fatalf("re-registration returned a different counter handle")
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	labelled := r.Counter("requests_total", "Requests.", Label{Name: "cell", Value: "1"})
	if labelled == c {
		t.Fatalf("labelled series shares the unlabelled handle")
	}
	labelled.Inc()
	if c.Value() != 5 || labelled.Value() != 1 {
		t.Fatalf("series values crossed: base=%d labelled=%d", c.Value(), labelled.Value())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "X.", Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	b := r.Counter("x_total", "X.", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	if a != b {
		t.Fatalf("label order created distinct series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	var want float64
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
		want += v
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	ser := snap.Family("latency_seconds").Series[0]
	wantBuckets := []uint64{2, 1, 1, 2} // le 0.01: {0.005, 0.01}; le 0.1: {0.05}; le 1: {0.5}; +Inf: {2, 3}
	for i, b := range ser.Buckets {
		if b != wantBuckets[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, b, wantBuckets[i], ser.Buckets)
		}
	}
}

func TestStageTimers(t *testing.T) {
	r := New()
	st := r.Stage("interval/schedule", Label{Name: "cell", Value: "0"})
	t0 := st.Start()
	if t0.IsZero() {
		t.Fatalf("enabled stage returned zero start time")
	}
	st.ObserveSince(t0)
	st.Observe(3 * time.Millisecond)
	if got := st.Histogram().Count(); got != 2 {
		t.Fatalf("stage count = %d, want 2", got)
	}
	ser := r.Snapshot().Family(StageFamily).Series[0]
	if ser.Label("stage") != "interval/schedule" || ser.Label("cell") != "0" {
		t.Fatalf("stage labels = %v", ser.Labels)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "A.")
	g := r.Gauge("b", "B.")
	h := r.Histogram("c", "C.", DurationBuckets)
	st := r.Stage("warmup")
	if c != nil || g != nil || h != nil || st != nil {
		t.Fatalf("nil registry handed out non-nil handles")
	}
	r.CounterFunc("d_total", "D.", func() uint64 { return 1 })
	r.GaugeFunc("e", "E.", func() float64 { return 1 })

	// All no-ops, no panics.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	t0 := st.Start()
	if !t0.IsZero() {
		t.Fatalf("nil stage Start returned a real time")
	}
	st.ObserveSince(t0)
	st.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles accumulated state")
	}
	snap := r.Snapshot()
	if len(snap.Families) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry exposition not empty: %q", sb.String())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := New()
	var n uint64
	r.CounterFunc("ext_total", "External.", func() uint64 { return n })
	r.GaugeFunc("ext_bytes", "External bytes.", func() float64 { return float64(n) * 2 })
	n = 21
	snap := r.Snapshot()
	if got := snap.Family("ext_total").Series[0].Value; got != 21 {
		t.Fatalf("counter func value = %v, want 21", got)
	}
	if got := snap.Family("ext_bytes").Series[0].Value; got != 42 {
		t.Fatalf("gauge func value = %v, want 42", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "M.")
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() *Snapshot {
		r := New()
		r.Counter("z_total", "Z.")
		r.Counter("a_total", "A.", Label{Name: "cell", Value: "2"})
		r.Counter("a_total", "A.", Label{Name: "cell", Value: "0"})
		r.Gauge("m", "M.")
		r.Stage("s1")
		r.Stage("s0")
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a.Families) != 4 {
		t.Fatalf("families = %d, want 4", len(a.Families))
	}
	for i, f := range a.Families {
		if f.Name != b.Families[i].Name {
			t.Fatalf("family order differs at %d: %s vs %s", i, f.Name, b.Families[i].Name)
		}
		for j, s := range f.Series {
			if labelKey(s.Labels) != labelKey(b.Families[i].Series[j].Labels) {
				t.Fatalf("series order differs in %s at %d", f.Name, j)
			}
		}
	}
	names := []string{a.Families[0].Name, a.Families[1].Name, a.Families[2].Name, a.Families[3].Name}
	want := []string{"a_total", StageFamily, "m", "z_total"}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("sorted family names = %v, want %v", names, want)
		}
	}
	cells := a.Family("a_total")
	if cells.Series[0].Label("cell") != "0" || cells.Series[1].Label("cell") != "2" {
		t.Fatalf("series not sorted by labels: %+v", cells.Series)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("hits_total", "Hits.", Label{Name: "cell", Value: "0"}).Add(17)
	r.Gauge("bytes", "Bytes.").Set(4096)
	r.Stage("interval/stream").Observe(5 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	snap, err := ReadSnapshot(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got := snap.Family("hits_total").Series[0].Value; got != 17 {
		t.Fatalf("round-tripped counter = %v, want 17", got)
	}
	st := snap.Family(StageFamily).Series[0]
	if st.Count != 1 || st.Sum <= 0 || len(st.Buckets) != len(DurationBuckets)+1 {
		t.Fatalf("round-tripped stage series = %+v", st)
	}
}

// TestConcurrentUpdatesAndSnapshots drives all handle types from
// several goroutines while snapshots and expositions are taken
// concurrently — the race job runs this package, so this is the
// race-safety gate for live HTTP export.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h", "H.", DurationBuckets)
	st := r.Stage("s")
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				st.Observe(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Snapshot()
		r.WritePrometheus(&strings.Builder{})
		// Late registration against live updates.
		r.Counter("late_total", "Late.").Inc()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestHotPathAllocs is the zero-alloc gate for every hot-path
// operation, enabled and disabled.
func TestHotPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h", "H.", DurationBuckets)
	st := r.Stage("s")
	var nilC *Counter
	var nilSt *Stage
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"counter-add", func() { c.Add(3) }},
		{"gauge-set", func() { g.Set(1.5) }},
		{"gauge-add", func() { g.Add(0.5) }},
		{"histogram-observe", func() { h.Observe(0.003) }},
		{"stage-span", func() { st.ObserveSince(st.Start()) }},
		{"stage-observe", func() { st.Observe(time.Millisecond) }},
		{"nil-counter", func() { nilC.Inc() }},
		{"nil-stage", func() { nilSt.ObserveSince(nilSt.Start()) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, avg)
		}
	}
}
