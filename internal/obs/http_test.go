package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("dtmsvs_handovers_total", "Twin handovers.").Add(3)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("/metrics content-type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(string(body), "dtmsvs_handovers_total 3\n") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestServeEphemeralPort(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
