package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSnapshot hammers the -metrics-out snapshot reader with
// mutated JSON: ReadSnapshot must never panic, and an accepted
// snapshot must survive the accessors dtreport leans on (Family
// lookup, label access, Prometheus re-encoding).
func FuzzReadSnapshot(f *testing.F) {
	reg := New()
	reg.Counter("dtmsvs_fuzz_total", "Fuzz corpus counter.", Label{Name: "cell", Value: "0"}).Add(3)
	reg.Gauge("dtmsvs_fuzz_gauge", "Fuzz corpus gauge.").Set(1.5)
	reg.Stage("fuzz/stage").Observe(2)
	var seed bytes.Buffer
	if err := reg.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"families":[{"name":"x","kind":"counter","series":[{"value":1}]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		snap, err := ReadSnapshot(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, fam := range snap.Families {
			if got := snap.Family(fam.Name); got == nil {
				t.Fatalf("family %q not found by its own name", fam.Name)
			}
			for _, s := range fam.Series {
				for _, l := range s.Labels {
					_ = s.Label(l.Name)
				}
			}
		}
		var sink bytes.Buffer
		if werr := snap.WritePrometheus(&sink); werr != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", werr)
		}
	})
}
