// Package obs is the dependency-free observability substrate of the
// digital-twin system: counters, gauges and fixed-bucket histograms
// with zero-allocation hot-path updates, plus hierarchical stage
// timers layered on top of a shared duration histogram family.
//
// Design constraints, in order:
//
//   - Determinism first. Metrics never touch engine state — no RNG
//     draws, no float accumulation that feeds back into the
//     simulation. Traces are bit-identical with metrics on or off.
//   - Disabled is free. Every handle type (*Counter, *Gauge,
//     *Histogram, *Stage) treats a nil receiver as a no-op, and a nil
//     *Registry hands out nil handles, so un-instrumented runs pay a
//     single predictable nil check per site. (*Stage).Start returns
//     the zero time.Time on a nil stage, skipping the time.Now call
//     entirely.
//   - Hot paths allocate nothing. Counter.Inc, Gauge.Set/Add and
//     Histogram.Observe are single atomic operations (a short CAS
//     loop for float sums) over storage fixed at registration time;
//     the alloc gates in obs_test.go enforce 0 allocs/op.
//   - Reads are race-free and live. Snapshot may be called from an
//     HTTP handler goroutine while the engines are mid-interval; all
//     storage is atomic and registration is mutex-guarded, so the
//     race detector stays quiet and exported values are internally
//     consistent per metric.
//
// Registration is idempotent: asking for the same (family, labels)
// series twice returns the same handle. Families are keyed by name
// and carry a single kind; re-registering a name under a different
// kind (or a histogram under different bounds) is a programming error
// and panics. Snapshot output is deterministic — families sorted by
// name, series by label signature — so golden tests and diffable
// end-of-run dumps work without post-processing.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a metric series, e.g.
// {Name: "cell", Value: "3"}. Labels are ordered by name internally;
// the order they are passed in does not matter.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Kind discriminates the three metric families.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// StageFamily is the histogram family name shared by all Stage
// timers; each stage is one series labelled stage="<name>" (plus any
// extra labels such as the owning cell).
const StageFamily = "dtmsvs_stage_duration_seconds"

// DurationBuckets is the fixed bucket layout used by Stage timers:
// log-spaced upper bounds from 100µs to 60s, wide enough for a city-
// scale prologue and fine enough to see a 1 ms scheduler pass. The
// implicit +Inf bucket is appended by the histogram itself.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// Registry holds metric families and hands out hot-path handles. The
// zero value is ready to use; a nil *Registry is the disabled
// registry and hands out nil (no-op) handles everywhere.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty, enabled registry.
func New() *Registry { return &Registry{} }

type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram upper bounds, nil otherwise
	series map[string]*series
}

type series struct {
	labels    []Label // sorted by name
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// Counter is a monotonically increasing uint64. The nil counter is a
// no-op; Inc and Add are single atomic adds.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that may go up or down, stored as IEEE-754 bits
// in a single atomic word. The nil gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets chosen at
// registration. Observe is a linear scan over the (short) bound
// slice plus three atomic updates; it allocates nothing. The nil
// histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Stage is a named wall-clock span recorder over the shared
// StageFamily histogram. The usual pattern brackets a pipeline phase:
//
//	t := met.schedule.Start()
//	... phase body ...
//	met.schedule.ObserveSince(t)
//
// On a nil stage Start returns the zero time and ObserveSince
// returns immediately, so disabled instrumentation never calls
// time.Now.
type Stage struct{ h *Histogram }

// Start returns the span start time, or the zero time when disabled.
func (s *Stage) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the span from t0 to now. A zero t0 (from a
// nil stage's Start, or a caller that skipped timing) is ignored.
func (s *Stage) ObserveSince(t0 time.Time) {
	if s == nil || t0.IsZero() {
		return
	}
	s.h.Observe(time.Since(t0).Seconds())
}

// Observe records an externally measured span duration.
func (s *Stage) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.h.Observe(d.Seconds())
}

// Histogram returns the underlying histogram (nil when disabled).
func (s *Stage) Histogram() *Histogram {
	if s == nil {
		return nil
	}
	return s.h
}

// labelKey builds the canonical series key from sorted labels. Only
// called at registration time, so the allocations don't matter.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// sortedLabels returns a name-sorted copy of labels.
func sortedLabels(labels []Label) []Label {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// getFamily finds or creates a family, enforcing kind (and, for
// histograms, bound) consistency. Caller must hold r.mu.
func (r *Registry) getFamily(name, help string, kind Kind, bounds []float64) *family {
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic("obs: family " + name + " re-registered as " + kind.String() + ", was " + f.kind.String())
	}
	if kind == KindHistogram && len(f.bounds) != len(bounds) {
		panic("obs: histogram family " + name + " re-registered with different buckets")
	}
	return f
}

// getSeries finds or creates a series within f. Caller must hold
// r.mu. Returns the series and whether it already existed.
func (f *family) getSeries(labels []Label) (*series, bool) {
	ls := sortedLabels(labels)
	key := labelKey(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		f.series[key] = s
	}
	return s, ok
}

// Counter registers (or finds) a counter series. A nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.getFamily(name, help, KindCounter, nil).getSeries(labels)
	if !ok {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or finds) a gauge series. A nil registry returns
// a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.getFamily(name, help, KindGauge, nil).getSeries(labels)
	if !ok {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or finds) a histogram series with the given
// ascending upper bounds (+Inf implicit). A nil registry returns a
// nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.getFamily(name, help, KindHistogram, bounds).getSeries(labels)
	if !ok {
		s.hist = &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	}
	return s.hist
}

// CounterFunc registers a counter series whose value is read from fn
// at snapshot time — for components that already maintain their own
// atomic counters (edge caches, GEMM pools). fn must be safe to call
// concurrently with the run. The first registration for a given
// (name, labels) wins; later ones are ignored.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.getFamily(name, help, KindCounter, nil).getSeries(labels)
	if !ok {
		s.counterFn = fn
	}
}

// GaugeFunc is CounterFunc for float-valued, non-monotonic readings.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.getFamily(name, help, KindGauge, nil).getSeries(labels)
	if !ok {
		s.gaugeFn = fn
	}
}

// Stage registers (or finds) a stage timer: one series of the shared
// StageFamily duration histogram labelled stage=name plus any extra
// labels. A nil registry returns a nil (no-op) stage.
func (r *Registry) Stage(stage string, labels ...Label) *Stage {
	if r == nil {
		return nil
	}
	ls := make([]Label, 0, len(labels)+1)
	ls = append(ls, Label{Name: "stage", Value: stage})
	ls = append(ls, labels...)
	return &Stage{h: r.Histogram(StageFamily, "Wall-clock duration of pipeline stages.", DurationBuckets, ls...)}
}
