// Live export: an http.Handler serving /metrics (Prometheus text
// exposition of the registry) and the net/http/pprof profiling
// endpoints, mounted on a private mux so importing this package
// never pollutes http.DefaultServeMux.
package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns a mux serving /metrics for reg plus the standard
// pprof endpoints under /debug/pprof/. reg may be nil (an empty
// exposition is served).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":9090", "127.0.0.1:0", ...) and serves
// Handler(reg) on it in a background goroutine. It returns the
// server (Close it to stop) and the concrete listen address, which
// matters when addr requested port 0.
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
