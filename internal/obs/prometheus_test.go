package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one series of every kind and
// fully deterministic values (durations injected, never measured).
func goldenRegistry() *Registry {
	r := New()
	hits := r.Counter("dtmsvs_edge_cache_hits_total", "Edge cache lookups served locally.", Label{Name: "cell", Value: "0"})
	hits.Add(42)
	r.Counter("dtmsvs_edge_cache_hits_total", "Edge cache lookups served locally.", Label{Name: "cell", Value: "1"}).Add(7)
	r.Gauge("dtmsvs_checkpoint_bytes", "Size of the last checkpoint written.").Set(16384)
	r.GaugeFunc("dtmsvs_edge_cache_used_bytes", "Bytes resident in the edge cache.", func() float64 { return 1.5e6 }, Label{Name: "cell", Value: "0"})
	esc := r.Counter("dtmsvs_escapes_total", "Escapes.", Label{Name: "path", Value: "a\\b\"c\nd"})
	esc.Inc()
	st := r.Stage("interval/schedule", Label{Name: "cell", Value: "0"})
	st.Observe(350 * time.Microsecond)
	st.Observe(2 * time.Millisecond)
	st.Observe(90 * time.Second)
	return r
}

// TestPrometheusGolden locks the exposition format against
// testdata/exposition.golden. Regenerate with:
//
//	go test ./internal/obs -run Golden -update
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusFormatDetails(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dtmsvs_edge_cache_hits_total counter\n",
		`dtmsvs_edge_cache_hits_total{cell="0"} 42` + "\n",
		"# TYPE " + StageFamily + " histogram\n",
		StageFamily + `_bucket{cell="0",stage="interval/schedule",le="+Inf"} 3` + "\n",
		StageFamily + `_count{cell="0",stage="interval/schedule"} 3` + "\n",
		`dtmsvs_escapes_total{path="a\\b\"c\nd"} 1` + "\n",
		"dtmsvs_edge_cache_used_bytes{cell=\"0\"} 1.5e+06\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\nfull output:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at the
	// count: 350µs ≤ 0.0005, 2ms ≤ 0.0025, 90s overflows into +Inf.
	if !strings.Contains(out, `,le="0.0005"} 1`+"\n") {
		t.Errorf("350µs observation not cumulative at le=0.0005:\n%s", out)
	}
	if !strings.Contains(out, `,le="0.0025"} 2`+"\n") {
		t.Errorf("2ms observation not cumulative at le=0.0025:\n%s", out)
	}
	if !strings.Contains(out, `,le="60"} 2`+"\n") {
		t.Errorf("90s observation leaked below +Inf:\n%s", out)
	}
}
