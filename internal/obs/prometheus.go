// Prometheus text exposition (format version 0.0.4) over the sorted
// snapshot. Hand-rolled on purpose: the format is a page of spec and
// pulling in client_golang would drag a dependency tree into a
// repository that is deliberately stdlib-only.
package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type for the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry's current snapshot in the
// Prometheus text exposition format. Output is deterministic for a
// given snapshot (families sorted by name, series by labels).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus writes an already-taken snapshot in the Prometheus
// text exposition format.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind)
		bw.WriteByte('\n')
		for _, ser := range f.Series {
			if f.Kind == "histogram" {
				writeHistogramSeries(bw, f.Name, &ser)
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, ser.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(ser.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogramSeries emits the cumulative _bucket lines plus _sum
// and _count for one histogram series.
func writeHistogramSeries(bw *bufio.Writer, name string, ser *Series) {
	var cum uint64
	for i, b := range ser.Buckets {
		cum += b
		le := "+Inf"
		if i < len(ser.Bounds) {
			le = formatValue(ser.Bounds[i])
		}
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, ser.Labels, le)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, ser.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(formatValue(ser.Sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, ser.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(ser.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels writes the {a="b",...} label block; le, when non-empty,
// is appended as the histogram bucket bound label.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Name)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// formatValue renders a sample value: integers print without a
// decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
