package channel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsvs/internal/mobility"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{"carrier", func(p *Params) { p.CarrierGHz = 0 }},
		{"shadow", func(p *Params) { p.ShadowSigmaDB = -1 }},
		{"rb", func(p *Params) { p.RBBandwidthHz = 0 }},
		{"mindist", func(p *Params) { p.MinDistM = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mut(&p)
			if err := p.Validate(); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

func TestPathLossMonotone(t *testing.T) {
	p := DefaultParams()
	prev := p.PathLossDB(10)
	for d := 20.0; d <= 2000; d += 10 {
		pl := p.PathLossDB(d)
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m: %v <= %v", d, pl, prev)
		}
		prev = pl
	}
	// Clamped below MinDist.
	if p.PathLossDB(1) != p.PathLossDB(5) {
		t.Fatal("distances below MinDist must clamp")
	}
}

func TestPathLossReference(t *testing.T) {
	// At 1 km and 2 GHz the UMa formula gives 128.1 dB.
	p := DefaultParams()
	p.CarrierGHz = 2
	if got := p.PathLossDB(1000); math.Abs(got-128.1) > 1e-9 {
		t.Fatalf("PL(1km, 2GHz) = %v, want 128.1", got)
	}
}

func TestNoisePower(t *testing.T) {
	p := DefaultParams()
	// -174 + 10log10(180e3) + 9 ≈ -112.45 dBm
	want := -174 + 10*math.Log10(180e3) + 9
	if got := p.NoisePowerDBm(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("noise %v, want %v", got, want)
	}
}

func TestSpectralEfficiency(t *testing.T) {
	if se := SpectralEfficiency(0); math.Abs(se-1) > 1e-9 {
		t.Fatalf("SE(0dB) = %v, want 1", se)
	}
	if se := SpectralEfficiency(100); se != 7.8 {
		t.Fatalf("SE must cap at 7.8, got %v", se)
	}
	if se := SpectralEfficiency(-30); se <= 0 || se > 0.01 {
		t.Fatalf("SE(-30dB) = %v", se)
	}
	// Monotone non-decreasing property.
	f := func(a, b float64) bool {
		a = math.Mod(a, 60)
		b = math.Mod(b, 60)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return SpectralEfficiency(lo) <= SpectralEfficiency(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCQIRange(t *testing.T) {
	if CQI(-100) != 1 {
		t.Fatalf("CQI floor: %d", CQI(-100))
	}
	if CQI(100) != 15 {
		t.Fatalf("CQI ceil: %d", CQI(100))
	}
	prev := 0
	for snr := -10.0; snr <= 25; snr += 0.25 {
		q := CQI(snr)
		if q < 1 || q > 15 {
			t.Fatalf("CQI(%v) = %d out of range", snr, q)
		}
		if q < prev {
			t.Fatalf("CQI not monotone at %v dB", snr)
		}
		prev = q
	}
}

func TestNewLinkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bs := &BaseStation{Pos: mobility.Point{X: 0, Y: 0}, TxPowerDBm: 30}
	bad := DefaultParams()
	bad.CarrierGHz = 0
	if _, err := NewLink(bad, bs, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewLink(DefaultParams(), nil, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("nil bs: want ErrParam, got %v", err)
	}
	l, err := NewLink(DefaultParams(), bs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.BS() != bs {
		t.Fatal("BS accessor")
	}
}

func TestLinkSNRDecreasesWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bs := &BaseStation{Pos: mobility.Point{X: 0, Y: 0}, TxPowerDBm: 30}
	params := DefaultParams()
	params.ShadowSigmaDB = 0 // isolate distance effect
	l, err := NewLink(params, bs, rng)
	if err != nil {
		t.Fatal(err)
	}
	meanSNR := func(d float64) float64 {
		var sum float64
		const n = 3000
		for i := 0; i < n; i++ {
			sum += l.Sample(mobility.Point{X: d, Y: 0})
		}
		return sum / n
	}
	near, far := meanSNR(50), meanSNR(1500)
	if near <= far {
		t.Fatalf("SNR near %v <= far %v", near, far)
	}
	if near-far < 30 {
		t.Fatalf("distance effect too small: %v dB", near-far)
	}
}

func TestRedrawShadowingChangesState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bs := &BaseStation{Pos: mobility.Point{}, TxPowerDBm: 30}
	l, err := NewLink(DefaultParams(), bs, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := l.shadowDB
	changed := false
	for i := 0; i < 10; i++ {
		l.RedrawShadowing()
		if l.shadowDB != before {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("shadowing never changed across redraws")
	}
}

func TestRateBps(t *testing.T) {
	p := DefaultParams()
	// 0 dB SNR → SE 1 → 180 kbps per RB.
	if got := p.RateBps(0); math.Abs(got-180e3) > 1 {
		t.Fatalf("rate %v, want 180e3", got)
	}
}

func TestNearestBS(t *testing.T) {
	if _, err := NearestBS(nil, mobility.Point{}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	a := &BaseStation{ID: 0, Pos: mobility.Point{X: 0, Y: 0}}
	b := &BaseStation{ID: 1, Pos: mobility.Point{X: 100, Y: 0}}
	got, err := NearestBS([]*BaseStation{a, b}, mobility.Point{X: 80, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 1 {
		t.Fatalf("nearest = %d, want 1", got.ID)
	}
}

func TestGridDeploy(t *testing.T) {
	m := mobility.CampusMap()
	if _, err := GridDeploy(m, 0, 30); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := GridDeploy(nil, 4, 30); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	stations, err := GridDeploy(m, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(stations) != 4 {
		t.Fatalf("%d stations", len(stations))
	}
	seen := map[int]bool{}
	for _, bs := range stations {
		if seen[bs.ID] {
			t.Fatalf("duplicate id %d", bs.ID)
		}
		seen[bs.ID] = true
		if !m.Contains(bs.Pos) {
			t.Fatalf("bs %d outside map", bs.ID)
		}
		if bs.TxPowerDBm != 30 {
			t.Fatalf("bs power %v", bs.TxPowerDBm)
		}
	}
	// Non-square count still yields exactly n.
	stations, err = GridDeploy(m, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(stations) != 5 {
		t.Fatalf("%d stations, want 5", len(stations))
	}
}

func TestFadingRhoValidation(t *testing.T) {
	p := DefaultParams()
	p.FadingRho = 1.0
	if err := p.Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("rho 1: want ErrParam, got %v", err)
	}
	p.FadingRho = -0.1
	if err := p.Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("negative rho: want ErrParam, got %v", err)
	}
	p.FadingRho = 0.95
	if err := p.Validate(); err != nil {
		t.Fatalf("valid rho rejected: %v", err)
	}
}

// Correlated fading must have a higher lag-1 autocorrelation of the
// SNR series than i.i.d. fading, with the same stationary mean.
func TestCorrelatedFading(t *testing.T) {
	series := func(rho float64, seed int64) []float64 {
		params := DefaultParams()
		params.ShadowSigmaDB = 0
		params.FadingRho = rho
		rng := rand.New(rand.NewSource(seed))
		bs := &BaseStation{Pos: mobility.Point{}, TxPowerDBm: 30}
		l, err := NewLink(params, bs, rng)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 20000)
		pos := mobility.Point{X: 200, Y: 0}
		for i := range out {
			out[i] = l.Sample(pos)
		}
		return out
	}
	lag1 := func(xs []float64) float64 {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var num, den float64
		for i := 0; i < len(xs)-1; i++ {
			num += (xs[i] - mean) * (xs[i+1] - mean)
			den += (xs[i] - mean) * (xs[i] - mean)
		}
		return num / den
	}
	iid := series(0, 1)
	corr := series(0.95, 1)
	if a := lag1(iid); math.Abs(a) > 0.05 {
		t.Fatalf("iid lag-1 autocorr %v, want ~0", a)
	}
	if a := lag1(corr); a < 0.5 {
		t.Fatalf("correlated lag-1 autocorr %v, want > 0.5", a)
	}
	// Same stationary mean (E|h|² = 1 in both processes).
	meanOf := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			m += x
		}
		return m / float64(len(xs))
	}
	if d := math.Abs(meanOf(iid) - meanOf(corr)); d > 0.5 {
		t.Fatalf("stationary means differ by %v dB", d)
	}
}
