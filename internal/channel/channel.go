// Package channel models the wireless link between a base station and
// a user: 3GPP-style urban-macro path loss, log-normal shadowing,
// Rayleigh fast fading, SNR and Shannon spectral efficiency, plus the
// CQI quantization UDTs store as "channel condition". The paper is
// simulation-only; this is the standard substitute for real RAN
// measurements (DESIGN.md §2).
package channel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/mobility"
)

// ErrParam indicates an invalid channel parameter.
var ErrParam = errors.New("channel: invalid parameter")

// BaseStation is a transmitter at a fixed position.
type BaseStation struct {
	ID int
	// Pos is the BS location on the campus map.
	Pos mobility.Point
	// TxPowerDBm is the transmit power per resource block.
	TxPowerDBm float64
}

// Params holds the propagation model constants.
type Params struct {
	// CarrierGHz is the carrier frequency (default 2.6 GHz).
	CarrierGHz float64
	// ShadowSigmaDB is the log-normal shadowing std dev (default 8 dB).
	ShadowSigmaDB float64
	// NoiseFigureDB at the receiver (default 9 dB).
	NoiseFigureDB float64
	// RBBandwidthHz is the bandwidth of one resource block
	// (default 180 kHz, LTE-style).
	RBBandwidthHz float64
	// MinDistM clamps the path-loss distance (default 10 m).
	MinDistM float64
	// FadingRho is the AR(1) correlation of the fast-fading process
	// between consecutive samples (Jakes-style temporal correlation).
	// 0 (default) gives i.i.d. Rayleigh fading per sample; values
	// toward 1 model slow-moving users whose fades persist across
	// collection ticks.
	FadingRho float64
}

// DefaultParams returns the parameter set used by the experiments.
func DefaultParams() Params {
	return Params{
		CarrierGHz:    2.6,
		ShadowSigmaDB: 8,
		NoiseFigureDB: 9,
		RBBandwidthHz: 180e3,
		MinDistM:      10,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.CarrierGHz <= 0:
		return fmt.Errorf("carrier %v GHz: %w", p.CarrierGHz, ErrParam)
	case p.ShadowSigmaDB < 0:
		return fmt.Errorf("shadow sigma %v dB: %w", p.ShadowSigmaDB, ErrParam)
	case p.RBBandwidthHz <= 0:
		return fmt.Errorf("rb bandwidth %v Hz: %w", p.RBBandwidthHz, ErrParam)
	case p.MinDistM <= 0:
		return fmt.Errorf("min dist %v m: %w", p.MinDistM, ErrParam)
	case p.FadingRho < 0 || p.FadingRho >= 1:
		return fmt.Errorf("fading rho %v: %w", p.FadingRho, ErrParam)
	}
	return nil
}

// PathLossDB returns the 3GPP UMa-style path loss in dB at distance d
// meters: PL = 128.1 + 37.6·log10(d/1000) adjusted for carrier
// frequency. Distances below MinDistM are clamped.
func (p Params) PathLossDB(d float64) float64 {
	if d < p.MinDistM {
		d = p.MinDistM
	}
	// 128.1 dB reference at 2 GHz; shift by 21·log10(f/2) to account
	// for carrier frequency (approximate frequency scaling).
	ref := 128.1 + 21*math.Log10(p.CarrierGHz/2)
	return ref + 37.6*math.Log10(d/1000)
}

// NoisePowerDBm returns thermal noise power over one RB including the
// noise figure: -174 dBm/Hz + 10·log10(B) + NF.
func (p Params) NoisePowerDBm() float64 {
	return -174 + 10*math.Log10(p.RBBandwidthHz) + p.NoiseFigureDB
}

// Link models one user's channel to a base station, holding the
// slow-varying shadowing state. Fast fading is redrawn per sample.
type Link struct {
	params   Params
	bs       *BaseStation
	shadowDB float64
	rng      *rand.Rand

	// hRe/hIm is the complex fading tap for the AR(1) process
	// (only evolved when FadingRho > 0).
	hRe, hIm float64
}

// NewLink creates a link with freshly drawn shadowing.
func NewLink(params Params, bs *BaseStation, rng *rand.Rand) (*Link, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if bs == nil {
		return nil, fmt.Errorf("nil base station: %w", ErrParam)
	}
	const invSqrt2 = 0.7071067811865476
	return &Link{
		params:   params,
		bs:       bs,
		shadowDB: rng.NormFloat64() * params.ShadowSigmaDB,
		rng:      rng,
		hRe:      rng.NormFloat64() * invSqrt2,
		hIm:      rng.NormFloat64() * invSqrt2,
	}, nil
}

// BS returns the serving base station.
func (l *Link) BS() *BaseStation { return l.bs }

// RedrawShadowing resamples the slow-fading term — call when the user
// has moved far enough for the shadowing to decorrelate (~50 m).
func (l *Link) RedrawShadowing() {
	l.shadowDB = l.rng.NormFloat64() * l.params.ShadowSigmaDB
}

// Handover re-points the link at a new serving base station while
// keeping the shadowing state: the slow fade is modeled as user-local
// clutter (body/indoor loss) that travels with the user, which also
// keeps the digital twin's calibration offset valid across cells.
func (l *Link) Handover(bs *BaseStation) error {
	if bs == nil {
		return fmt.Errorf("handover to nil bs: %w", ErrParam)
	}
	l.bs = bs
	return nil
}

// Sample returns the instantaneous SNR (dB) at the given user
// position: TX power − path loss − shadowing + Rayleigh fading − noise.
// With FadingRho > 0 the fading tap evolves as a complex AR(1)
// process (temporally correlated fades); otherwise each sample draws
// an independent Rayleigh realization.
func (l *Link) Sample(userPos mobility.Point) float64 {
	d := l.bs.Pos.Dist(userPos)
	pl := l.params.PathLossDB(d)
	var h2 float64
	if rho := l.params.FadingRho; rho > 0 {
		const invSqrt2 = 0.7071067811865476
		innov := math.Sqrt(1 - rho*rho)
		l.hRe = rho*l.hRe + innov*l.rng.NormFloat64()*invSqrt2
		l.hIm = rho*l.hIm + innov*l.rng.NormFloat64()*invSqrt2
		h2 = l.hRe*l.hRe + l.hIm*l.hIm
	} else {
		// |h|² of a unit complex Gaussian is Exp(1).
		h2 = l.rng.ExpFloat64()
	}
	if h2 < 1e-9 {
		h2 = 1e-9
	}
	fadeDB := 10 * math.Log10(h2)
	rxDBm := l.bs.TxPowerDBm - pl - l.shadowDB + fadeDB
	return rxDBm - l.params.NoisePowerDBm()
}

// SpectralEfficiency converts an SNR in dB to Shannon spectral
// efficiency bits/s/Hz, capped at 7.8 (64-QAM 5/6-ish practical max).
func SpectralEfficiency(snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	se := math.Log2(1 + snr)
	if se > 7.8 {
		se = 7.8
	}
	return se
}

// RateBps returns the achievable rate of one resource block at the
// given SNR for the parameter set.
func (p Params) RateBps(snrDB float64) float64 {
	return p.RBBandwidthHz * SpectralEfficiency(snrDB)
}

// MeanSNRdB returns the deterministic (fading- and shadowing-free)
// SNR of a link at distance d for the given transmit power. Digital
// twins use it as the propagation model underlying calibrated SNR
// prediction: observed SNR minus MeanSNRdB yields a per-user offset
// that absorbs shadowing and mean fading.
func (p Params) MeanSNRdB(txPowerDBm, d float64) float64 {
	return txPowerDBm - p.PathLossDB(d) - p.NoisePowerDBm()
}

// CQI quantizes an SNR (dB) into a 1..15 channel-quality indicator,
// the discrete "channel condition" stored in UDTs. The thresholds are
// a standard LTE-like mapping of roughly -6 dB..20 dB.
func CQI(snrDB float64) int {
	// 15 levels spanning [-6, 20) dB, ~1.86 dB per step.
	const lo, hi = -6.0, 20.0
	if snrDB < lo {
		return 1
	}
	if snrDB >= hi {
		return 15
	}
	q := 1 + int((snrDB-lo)/(hi-lo)*15)
	if q > 15 {
		q = 15
	}
	return q
}

// NearestBS returns the base station closest to the position.
func NearestBS(stations []*BaseStation, pos mobility.Point) (*BaseStation, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("no base stations: %w", ErrParam)
	}
	best := stations[0]
	bestD := best.Pos.Dist(pos)
	for _, bs := range stations[1:] {
		if d := bs.Pos.Dist(pos); d < bestD {
			best, bestD = bs, d
		}
	}
	return best, nil
}

// NearestAliveBS returns the closest base station whose id is not
// marked in down. A nil (or empty) mask degenerates to NearestBS
// exactly — same iteration order, same tie-breaking — so healthy
// deployments pay nothing for the capability. A mask that rules out
// every station is an error: the map has no coverage left.
func NearestAliveBS(stations []*BaseStation, down []bool, pos mobility.Point) (*BaseStation, error) {
	if len(down) == 0 {
		return NearestBS(stations, pos)
	}
	var best *BaseStation
	var bestD float64
	for _, bs := range stations {
		if bs.ID >= 0 && bs.ID < len(down) && down[bs.ID] {
			continue
		}
		if d := bs.Pos.Dist(pos); best == nil || d < bestD {
			best, bestD = bs, d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no surviving base stations: %w", ErrParam)
	}
	return best, nil
}

// GridDeploy places n base stations on a uniform grid over the map
// with the given per-RB transmit power.
func GridDeploy(m *mobility.Map, n int, txPowerDBm float64) ([]*BaseStation, error) {
	if m == nil || n <= 0 {
		return nil, fmt.Errorf("deploy %d stations: %w", n, ErrParam)
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	out := make([]*BaseStation, 0, n)
	id := 0
	for i := 0; i < side && id < n; i++ {
		for j := 0; j < side && id < n; j++ {
			out = append(out, &BaseStation{
				ID: id,
				Pos: mobility.Point{
					X: (float64(i) + 0.5) * m.Width / float64(side),
					Y: (float64(j) + 0.5) * m.Height / float64(side),
				},
				TxPowerDBm: txPowerDBm,
			})
			id++
		}
	}
	return out, nil
}
