// This file exports the link's mutable state for session
// checkpoint/restore. The channel parameters and the link's random
// stream are restored by replaying construction on the same derived
// stream; these accessors cover the serving station, the shadowing
// draw, and the AR(1) fading tap.

package channel

import "fmt"

// LinkState is the mutable state of a Link. BS is the serving base
// station id (station pointers are rebound at restore).
type LinkState struct {
	BS       int
	ShadowDB float64
	HRe, HIm float64
}

// State captures the link's mutable state.
func (l *Link) State() LinkState {
	return LinkState{BS: l.bs.ID, ShadowDB: l.shadowDB, HRe: l.hRe, HIm: l.hIm}
}

// SetState restores state captured by State, rebinding the serving
// station from the deployment (stations[i].ID must equal i, as
// GridDeploy guarantees).
func (l *Link) SetState(st LinkState, stations []*BaseStation) error {
	if st.BS < 0 || st.BS >= len(stations) {
		return fmt.Errorf("link state bs %d of %d: %w", st.BS, len(stations), ErrParam)
	}
	l.bs = stations[st.BS]
	l.shadowDB = st.ShadowDB
	l.hRe, l.hIm = st.HRe, st.HIm
	return nil
}
