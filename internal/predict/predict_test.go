package predict

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/channel"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/video"
)

func obsOf(cat video.Category, fracs ...float64) []GroupObservation {
	out := make([]GroupObservation, len(fracs))
	for i, f := range fracs {
		out[i] = GroupObservation{Category: cat, WatchFraction: f}
	}
	return out
}

func TestNewSwipeDistributionValidation(t *testing.T) {
	if _, err := NewSwipeDistribution(obsOf(video.Category(0), 0.5)); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := NewSwipeDistribution(obsOf(video.News, -0.1)); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := NewSwipeDistribution(obsOf(video.News, 1.5)); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

func TestSwipeDistributionEmptyUniform(t *testing.T) {
	d, err := NewSwipeDistribution(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range video.AllCategories() {
		e, eerr := d.ExpectedWatchFraction(c)
		if eerr != nil {
			t.Fatal(eerr)
		}
		// Uniform CDF → E[frac] ≈ 0.5.
		if math.Abs(e-0.5) > 0.05 {
			t.Fatalf("empty-category expectation %v, want ~0.5", e)
		}
	}
}

func TestSwipeCDFMonotoneNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var obs []GroupObservation
	for i := 0; i < 500; i++ {
		obs = append(obs, GroupObservation{Category: video.News, WatchFraction: rng.Float64()})
	}
	d, err := NewSwipeDistribution(obs)
	if err != nil {
		t.Fatal(err)
	}
	cdf := d.CDF[video.News.Index()]
	if len(cdf) != SwipeBins {
		t.Fatalf("cdf bins %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("cdf not monotone")
		}
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		t.Fatalf("cdf tail %v", cdf[len(cdf)-1])
	}
	if d.Samples[video.News.Index()] != 500 {
		t.Fatalf("samples %d", d.Samples[video.News.Index()])
	}
}

func TestExpectedWatchFractionKnownDistributions(t *testing.T) {
	// All watch to completion → expectation ≈ 1.
	d, err := NewSwipeDistribution(obsOf(video.News, 1, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.ExpectedWatchFraction(video.News)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0.95 {
		t.Fatalf("completion expectation %v, want ~1", e)
	}
	// All swipe instantly → expectation ≈ 0.
	d, err = NewSwipeDistribution(obsOf(video.Game, 0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err = d.ExpectedWatchFraction(video.Game)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.06 {
		t.Fatalf("instant-swipe expectation %v, want ~0", e)
	}
	// Uniform draws → ≈ 0.5.
	rng := rand.New(rand.NewSource(2))
	var fr []float64
	for i := 0; i < 2000; i++ {
		fr = append(fr, rng.Float64())
	}
	d, err = NewSwipeDistribution(obsOf(video.Music, fr...))
	if err != nil {
		t.Fatal(err)
	}
	e, err = d.ExpectedWatchFraction(video.Music)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.5) > 0.05 {
		t.Fatalf("uniform expectation %v, want ~0.5", e)
	}
	if _, err := d.ExpectedWatchFraction(video.Category(9)); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

// E[max of m] must be ≥ E[single] and increase with m.
func TestExpectedMaxWatchFractionMonotoneInGroupSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var fr []float64
	for i := 0; i < 1000; i++ {
		fr = append(fr, rng.Float64())
	}
	d, err := NewSwipeDistribution(obsOf(video.News, fr...))
	if err != nil {
		t.Fatal(err)
	}
	single, err := d.ExpectedWatchFraction(video.News)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, m := range []int{1, 2, 5, 20, 100} {
		mx, merr := d.ExpectedMaxWatchFraction(video.News, m)
		if merr != nil {
			t.Fatal(merr)
		}
		if mx < prev-1e-9 {
			t.Fatalf("E[max] not monotone at m=%d", m)
		}
		if m == 1 && math.Abs(mx-single) > 1e-9 {
			t.Fatalf("E[max of 1] %v != E[single] %v", mx, single)
		}
		prev = mx
	}
	if _, err := d.ExpectedMaxWatchFraction(video.News, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

func TestSwipeProbBefore(t *testing.T) {
	d, err := NewSwipeDistribution(obsOf(video.Game, 0.1, 0.1, 0.1, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.SwipeProbBefore(video.Game, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("P(swipe≤0.5) = %v, want 0.75", p)
	}
	if _, err := d.SwipeProbBefore(video.Game, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := d.SwipeProbBefore(video.Category(0), 0.5); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

// Sticky category (News) must have a CDF dominated by the fast-swipe
// category (Game) — the Fig. 3(a) shape.
func TestStickyVsFastSwipeCDFOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var obs []GroupObservation
	for i := 0; i < 1000; i++ {
		obs = append(obs,
			GroupObservation{Category: video.News, WatchFraction: math.Min(1, 0.6+0.4*rng.Float64())},
			GroupObservation{Category: video.Game, WatchFraction: 0.4 * rng.Float64()},
		)
	}
	d, err := NewSwipeDistribution(obs)
	if err != nil {
		t.Fatal(err)
	}
	newsCDF := d.CDF[video.News.Index()]
	gameCDF := d.CDF[video.Game.Index()]
	for i := 0; i < SwipeBins-1; i++ {
		if newsCDF[i] > gameCDF[i]+1e-9 {
			t.Fatalf("bin %d: news cdf %v above game %v", i, newsCDF[i], gameCDF[i])
		}
	}
	eNews, err := d.ExpectedWatchFraction(video.News)
	if err != nil {
		t.Fatal(err)
	}
	eGame, err := d.ExpectedWatchFraction(video.Game)
	if err != nil {
		t.Fatal(err)
	}
	if eNews <= eGame {
		t.Fatalf("news %v not watched longer than game %v", eNews, eGame)
	}
}

func groupTwins(t *testing.T, n int) []*udt.Twin {
	t.Helper()
	twins := make([]*udt.Twin, n)
	for i := range twins {
		tw, err := udt.NewTwin(i, udt.Config{
			ChannelEvery: 1, LocationEvery: 1, WatchEvery: 1, PreferenceEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		tw.Tick()
		if _, err := tw.CollectView(video.News, 25, 0.8, false); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.CollectView(video.Game, 4, 0.15, true); err != nil {
			t.Fatal(err)
		}
		pref, perr := behavior.NewRandomPreference(rand.New(rand.NewSource(int64(i))), video.News, 4)
		if perr != nil {
			t.Fatal(perr)
		}
		if _, err := tw.CollectPreference(pref); err != nil {
			t.Fatal(err)
		}
		twins[i] = tw
	}
	return twins
}

func TestObservationsFromTwins(t *testing.T) {
	empty, err := ObservationsFromTwins(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("nil twins: %v, %v", empty, err)
	}
	twins := groupTwins(t, 3)
	obs, err := ObservationsFromTwins(twins)
	if err != nil {
		t.Fatal(err)
	}
	// 2 views per twin.
	if len(obs) != 6 {
		t.Fatalf("%d observations", len(obs))
	}
	for _, o := range obs {
		if o.WatchFraction < 0 || o.WatchFraction > 1 {
			t.Fatalf("fraction %v", o.WatchFraction)
		}
	}
}

func testCatalog(t *testing.T) *video.Catalog {
	t.Helper()
	cat, err := video.NewCatalog(video.CatalogConfig{NumVideos: 100}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestBuildGroupProfile(t *testing.T) {
	cat := testCatalog(t)
	if _, err := BuildGroupProfile(nil, cat, 10); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	twins := groupTwins(t, 5)
	if _, err := BuildGroupProfile(twins, nil, 10); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := BuildGroupProfile(twins, cat, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	p, err := BuildGroupProfile(twins, cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size != 5 {
		t.Fatalf("size %d", p.Size)
	}
	if len(p.Recommended) != 10 {
		t.Fatalf("%d recommended", len(p.Recommended))
	}
	if err := p.Preference.Validate(); err != nil {
		t.Fatalf("mean preference invalid: %v", err)
	}
	// News-leaning twins → News preference dominant.
	if p.Preference[video.News.Index()] < 0.3 {
		t.Fatalf("news preference %v", p.Preference[video.News.Index()])
	}
	// Mean engagement = (25+4)/2.
	if math.Abs(p.MeanEngagementS-14.5) > 1e-9 {
		t.Fatalf("mean engagement %v", p.MeanEngagementS)
	}
	// Recommended sorted by popularity×preference, descending.
	for i := 1; i < len(p.Recommended); i++ {
		si := cat.Popularity(p.Recommended[i].ID) * p.Preference[p.Recommended[i].Category.Index()]
		sp := cat.Popularity(p.Recommended[i-1].ID) * p.Preference[p.Recommended[i-1].Category.Index()]
		if si > sp+1e-12 {
			t.Fatalf("recommendation order violated at %d", i)
		}
	}
}

func demandPredictor() DemandPredictor {
	return DemandPredictor{
		Params:             channel.DefaultParams(),
		IntervalS:          300,
		SwipeGapS:          0.5,
		MeanVideoDurationS: 35,
		CyclesPerBit:       50,
	}
}

func TestDemandPredictorValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*DemandPredictor)
	}{
		{"interval", func(p *DemandPredictor) { p.IntervalS = 0 }},
		{"gap", func(p *DemandPredictor) { p.SwipeGapS = -1 }},
		{"duration", func(p *DemandPredictor) { p.MeanVideoDurationS = 0 }},
		{"cycles", func(p *DemandPredictor) { p.CyclesPerBit = -1 }},
		{"hitrate", func(p *DemandPredictor) { p.CacheHitRate = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := demandPredictor()
			tt.mut(&p)
			if err := p.Validate(); !errors.Is(err, ErrInput) {
				t.Fatalf("want ErrInput, got %v", err)
			}
		})
	}
}

func testProfile(t *testing.T) *GroupProfile {
	t.Helper()
	twins := groupTwins(t, 8)
	p, err := BuildGroupProfile(twins, testCatalog(t), 20)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPredictDemandBasics(t *testing.T) {
	pr := demandPredictor()
	profile := testProfile(t)
	if _, err := pr.Predict(nil, 1e6, 10); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := pr.Predict(profile, 0, 10); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	d, err := pr.Predict(profile, 1.85e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.RadioRBs <= 0 || d.TrafficBits <= 0 || d.EngagementS <= 0 {
		t.Fatalf("degenerate demand %+v", d)
	}
	// Transcoding predicted since 1.85 Mbps < top rung.
	if d.ComputeCycles <= 0 {
		t.Fatalf("compute cycles %v", d.ComputeCycles)
	}
	// Top rung → no transcode.
	dTop, err := pr.Predict(profile, 2.5e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dTop.ComputeCycles != 0 {
		t.Fatalf("top-rung cycles %v", dTop.ComputeCycles)
	}
}

func TestPredictDemandMonotoneInSNR(t *testing.T) {
	pr := demandPredictor()
	profile := testProfile(t)
	dLow, err := pr.Predict(profile, 1.2e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	dHigh, err := pr.Predict(profile, 1.2e6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if dHigh.RadioRBs >= dLow.RadioRBs {
		t.Fatalf("better snr must need fewer RBs: %v vs %v", dHigh.RadioRBs, dLow.RadioRBs)
	}
}

func TestPredictTrafficScalesWithBitrate(t *testing.T) {
	pr := demandPredictor()
	profile := testProfile(t)
	d1, err := pr.Predict(profile, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := pr.Predict(profile, 2e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2.TrafficBits/d1.TrafficBits-2) > 1e-9 {
		t.Fatalf("traffic not linear in bitrate: %v vs %v", d1.TrafficBits, d2.TrafficBits)
	}
}

func TestSNRForecaster(t *testing.T) {
	if _, err := NewSNRForecaster(0); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := NewSNRForecaster(1.5); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	f, err := NewSNRForecaster(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Forecast(); ok {
		t.Fatal("forecast before any observation")
	}
	f.Observe(10)
	v, ok := f.Forecast()
	if !ok || v != 10 {
		t.Fatalf("first observation %v", v)
	}
	f.Observe(20)
	v, _ = f.Forecast()
	if v != 15 {
		t.Fatalf("ewma %v, want 15", v)
	}
}

func TestBaselinePredictors(t *testing.T) {
	if _, err := NewMovingAverage(0); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := NewEWMA(0); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}

	lv := &LastValue{}
	if _, ok := lv.Predict(); ok {
		t.Fatal("empty last-value predicted")
	}
	lv.Observe(3)
	lv.Observe(7)
	if v, ok := lv.Predict(); !ok || v != 7 {
		t.Fatalf("last value %v", v)
	}
	if lv.Name() != "last-value" {
		t.Fatal("name")
	}

	ma, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ma.Predict(); ok {
		t.Fatal("empty ma predicted")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		ma.Observe(x)
	}
	if v, ok := ma.Predict(); !ok || v != 3 {
		t.Fatalf("ma %v, want 3 (mean of 2,3,4)", v)
	}

	ew, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ew.Observe(10)
	ew.Observe(0)
	if v, ok := ew.Predict(); !ok || v != 5 {
		t.Fatalf("ewma %v, want 5", v)
	}
}

// Moving average over window 1 must behave exactly like last-value.
func TestMovingAverageWindowOneEqualsLastValue(t *testing.T) {
	f := func(xs []float64) bool {
		ma, err := NewMovingAverage(1)
		if err != nil {
			return false
		}
		lv := &LastValue{}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			ma.Observe(x)
			lv.Observe(x)
			mv, mok := ma.Predict()
			lvv, lok := lv.Predict()
			if mok != lok || mv != lvv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedMaxWasteFraction(t *testing.T) {
	// Everyone completes → no waste at any depth.
	d, err := NewSwipeDistribution(obsOf(video.News, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	wf, err := d.ExpectedMaxWasteFraction(video.News, 5, 35, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wf > 0.01 {
		t.Fatalf("completion waste %v, want ~0", wf)
	}
	// Instant swipers → waste ≈ first segment + prefetch window.
	d, err = NewSwipeDistribution(obsOf(video.Game, 0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	wf, err = d.ExpectedMaxWasteFraction(video.Game, 3, 40, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Swipe at bin edge 0.05 → watched 2 s, delivered ceil(2/4)+2
	// segments = 12 s → waste 10 s of 40 s = 0.25.
	if math.Abs(wf-0.25) > 0.02 {
		t.Fatalf("instant-swipe waste %v, want ~0.25", wf)
	}
	// Validation.
	if _, err := d.ExpectedMaxWasteFraction(video.Category(0), 3, 40, 4, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := d.ExpectedMaxWasteFraction(video.Game, 0, 40, 4, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := d.ExpectedMaxWasteFraction(video.Game, 3, 0, 4, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := d.ExpectedMaxWasteFraction(video.Game, 3, 40, 4, -1); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

// Waste expectation grows with prefetch depth.
func TestExpectedMaxWasteMonotoneInDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var fr []float64
	for i := 0; i < 500; i++ {
		fr = append(fr, 0.7*rng.Float64())
	}
	d, err := NewSwipeDistribution(obsOf(video.Music, fr...))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for depth := 0; depth <= 6; depth++ {
		wf, werr := d.ExpectedMaxWasteFraction(video.Music, 2, 35, 4, depth)
		if werr != nil {
			t.Fatal(werr)
		}
		if wf < prev-1e-9 {
			t.Fatalf("waste not monotone at depth %d: %v < %v", depth, wf, prev)
		}
		prev = wf
	}
}

func TestPredictWithSegments(t *testing.T) {
	pr := demandPredictor()
	pr.SegmentS = 4
	pr.PrefetchDepth = 2
	profile := testProfile(t)
	d, err := pr.Predict(profile, 1.85e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.WasteBits < 0 {
		t.Fatalf("negative waste %v", d.WasteBits)
	}
	if d.WasteBits >= d.TrafficBits {
		t.Fatalf("waste %v not below traffic %v", d.WasteBits, d.TrafficBits)
	}
	// Without segmentation the waste is zero and traffic lower.
	pr.SegmentS = 0
	pr.PrefetchDepth = 0
	d0, err := pr.Predict(profile, 1.85e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d0.WasteBits != 0 {
		t.Fatalf("no-segment waste %v", d0.WasteBits)
	}
	if d.TrafficBits < d0.TrafficBits {
		t.Fatalf("segmented traffic %v below plain %v", d.TrafficBits, d0.TrafficBits)
	}
	// Validation of the new fields.
	pr.SegmentS = -1
	if err := pr.Validate(); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}
