package predict

import (
	"fmt"
	"math"
)

// SeriesPredictor forecasts the next value of a scalar demand series.
// It is the interface shared by the baseline predictors used in the
// predictor-ablation experiment (E4).
type SeriesPredictor interface {
	// Observe folds one measured value.
	Observe(x float64)
	// Predict returns the forecast for the next interval and whether
	// enough history exists to make one.
	Predict() (float64, bool)
	// Name identifies the predictor in experiment output.
	Name() string
}

// LastValue predicts the most recent observation.
type LastValue struct {
	last  float64
	ready bool
}

var _ SeriesPredictor = (*LastValue)(nil)

// Observe implements SeriesPredictor.
func (p *LastValue) Observe(x float64) { p.last, p.ready = x, true }

// Predict implements SeriesPredictor.
func (p *LastValue) Predict() (float64, bool) { return p.last, p.ready }

// Name implements SeriesPredictor.
func (p *LastValue) Name() string { return "last-value" }

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	Window int

	buf  []float64
	next int
	full bool
}

// NewMovingAverage builds a moving-average predictor.
func NewMovingAverage(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, fmt.Errorf("ma window %d: %w", window, ErrInput)
	}
	return &MovingAverage{Window: window, buf: make([]float64, window)}, nil
}

var _ SeriesPredictor = (*MovingAverage)(nil)

// Observe implements SeriesPredictor.
func (p *MovingAverage) Observe(x float64) {
	p.buf[p.next] = x
	p.next++
	if p.next == len(p.buf) {
		p.next = 0
		p.full = true
	}
}

// Predict implements SeriesPredictor.
func (p *MovingAverage) Predict() (float64, bool) {
	n := p.next
	if p.full {
		n = len(p.buf)
	}
	if n == 0 {
		return 0, false
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.buf[i]
	}
	return sum / float64(n), true
}

// Name implements SeriesPredictor.
func (p *MovingAverage) Name() string { return fmt.Sprintf("moving-average(%d)", p.Window) }

// EWMA predicts an exponentially weighted moving average.
type EWMA struct {
	Alpha float64

	value float64
	ready bool
}

// NewEWMA builds an EWMA predictor (alpha in (0,1]).
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("ewma alpha %v: %w", alpha, ErrInput)
	}
	return &EWMA{Alpha: alpha}, nil
}

var _ SeriesPredictor = (*EWMA)(nil)

// Observe implements SeriesPredictor.
func (p *EWMA) Observe(x float64) {
	if !p.ready {
		p.value, p.ready = x, true
		return
	}
	p.value = p.Alpha*x + (1-p.Alpha)*p.value
}

// Predict implements SeriesPredictor.
func (p *EWMA) Predict() (float64, bool) { return p.value, p.ready }

// Name implements SeriesPredictor.
func (p *EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", p.Alpha) }
