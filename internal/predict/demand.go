package predict

import (
	"fmt"
	"math"

	"dtmsvs/internal/channel"
	"dtmsvs/internal/video"
)

// Demand is one interval's predicted (or measured) resource demand
// for a multicast group.
type Demand struct {
	// RadioRBs is the radio demand in resource blocks.
	RadioRBs float64
	// ComputeCycles is the transcoding demand in CPU cycles.
	ComputeCycles float64
	// TrafficBits is the multicast traffic volume in bits.
	TrafficBits float64
	// WasteBits is the delivered-but-unplayed share of TrafficBits
	// caused by swiping under segment prefetching (0 when the
	// predictor runs without segmentation).
	WasteBits float64
	// EngagementS is the expected per-member engagement seconds.
	EngagementS float64
}

// DemandPredictor turns a group profile plus channel forecast into a
// next-interval demand prediction.
type DemandPredictor struct {
	// Params is the radio parameter set.
	Params channel.Params
	// IntervalS is the reservation interval length (paper: 300 s).
	IntervalS float64
	// SwipeGapS is the idle time between consecutive videos.
	SwipeGapS float64
	// MeanVideoDurationS of the catalog.
	MeanVideoDurationS float64
	// CyclesPerBit of the edge transcoder.
	CyclesPerBit float64
	// CacheHitRate is the expected fraction of requests served from
	// cache (no transcode).
	CacheHitRate float64
	// SegmentS enables segment-level prefetch accounting when > 0:
	// traffic covers segment-rounded delivery plus the prefetch
	// window, and the over-delivered share is reported as WasteBits.
	SegmentS float64
	// PrefetchDepth is the prefetch window in segments (used when
	// SegmentS > 0).
	PrefetchDepth int
}

// Validate checks the predictor parameters.
func (p DemandPredictor) Validate() error {
	switch {
	case p.IntervalS <= 0:
		return fmt.Errorf("interval %v: %w", p.IntervalS, ErrInput)
	case p.SwipeGapS < 0:
		return fmt.Errorf("swipe gap %v: %w", p.SwipeGapS, ErrInput)
	case p.MeanVideoDurationS <= 0:
		return fmt.Errorf("mean duration %v: %w", p.MeanVideoDurationS, ErrInput)
	case p.CyclesPerBit < 0:
		return fmt.Errorf("cycles/bit %v: %w", p.CyclesPerBit, ErrInput)
	case p.CacheHitRate < 0 || p.CacheHitRate > 1:
		return fmt.Errorf("cache hit rate %v: %w", p.CacheHitRate, ErrInput)
	case p.SegmentS < 0 || p.PrefetchDepth < 0:
		return fmt.Errorf("segment %v depth %d: %w", p.SegmentS, p.PrefetchDepth, ErrInput)
	}
	return p.Params.Validate()
}

// Predict computes the expected next-interval demand of a group from
// its abstracted profile, the group's streaming bitrate, and the
// forecast worst-member SNR (from the UDT channel series).
//
// Model: the group multicasts a shared feed. Each video of category c
// is transmitted for E[max over Size members of watch fraction]·D
// seconds (the BS transmits until the last member swipes), where D is
// the mean video duration. The number of videos per interval follows
// from the per-video cycle (transmit time + swipe gap). Traffic =
// videos × transmit seconds × bitrate. Radio RBs = traffic rate /
// per-RB rate at the forecast worst SNR. Compute = non-cache-hit
// videos × transcode cycles for the interval's transmitted seconds.
func (p DemandPredictor) Predict(profile *GroupProfile, bitrateBps, worstSNRdB float64) (*Demand, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if profile == nil || profile.Size <= 0 {
		return nil, fmt.Errorf("nil/empty profile: %w", ErrInput)
	}
	if bitrateBps <= 0 {
		return nil, fmt.Errorf("bitrate %v: %w", bitrateBps, ErrInput)
	}

	// Expected transmit (playback) fraction, wasted fraction under
	// prefetching, and per-member watch fraction — each weighted by
	// the group's category mix. Waste is estimated directly from the
	// Tmax distribution (not as a difference of two expectations) so
	// discretization error does not swamp the small waste signal.
	var txFrac, wasteFrac, watchFrac float64
	for i, c := range video.AllCategories() {
		w := profile.Preference[i]
		if w == 0 {
			continue
		}
		mx, err := profile.Swipe.ExpectedMaxWatchFraction(c, profile.Size)
		if err != nil {
			return nil, err
		}
		ew, err := profile.Swipe.ExpectedWatchFraction(c)
		if err != nil {
			return nil, err
		}
		if p.SegmentS > 0 {
			wf, werr := profile.Swipe.ExpectedMaxWasteFraction(
				c, profile.Size, p.MeanVideoDurationS, p.SegmentS, p.PrefetchDepth)
			if werr != nil {
				return nil, werr
			}
			wasteFrac += w * wf
		}
		txFrac += w * mx
		watchFrac += w * ew
	}
	if txFrac <= 0 {
		txFrac = 1.0 / SwipeBins
	}
	deliveredFrac := txFrac + wasteFrac
	if deliveredFrac > 1 {
		deliveredFrac = 1
	}

	txPerVideoS := txFrac * p.MeanVideoDurationS
	deliveredPerVideoS := deliveredFrac * p.MeanVideoDurationS
	videosPerInterval := p.IntervalS / (txPerVideoS + p.SwipeGapS)
	traffic := videosPerInterval * deliveredPerVideoS * bitrateBps
	waste := videosPerInterval * (deliveredPerVideoS - txPerVideoS) * bitrateBps

	perRB := p.Params.RateBps(worstSNRdB)
	if perRB <= 0 {
		return nil, fmt.Errorf("per-RB rate %v at %v dB: %w", perRB, worstSNRdB, ErrInput)
	}
	// Average RBs needed so the interval's traffic fits: the feed
	// streams at bitrateBps while transmitting, so the demand is the
	// duty-cycle-weighted RB count.
	rbs := (traffic / p.IntervalS) / perRB

	// Transcoding: every non-cached video is transcoded from the top
	// ladder rung down to bitrateBps for its delivered duration
	// (prefetched segments are transcoded too).
	topRate := video.DefaultLadder()[len(video.DefaultLadder())-1].BitrateBps
	var cycles float64
	if bitrateBps < topRate && p.CyclesPerBit > 0 {
		cycles = (1 - p.CacheHitRate) * videosPerInterval * p.CyclesPerBit * topRate * deliveredPerVideoS
	}

	return &Demand{
		RadioRBs:      rbs,
		ComputeCycles: cycles,
		TrafficBits:   traffic,
		WasteBits:     waste,
		EngagementS:   watchFrac * p.MeanVideoDurationS * videosPerInterval,
	}, nil
}

// SNRForecaster tracks a group's worst-member SNR with an EWMA — the
// channel forecast feeding Predict.
type SNRForecaster struct {
	// Alpha is the EWMA weight of the newest observation.
	Alpha float64

	value float64
	ready bool
}

// NewSNRForecaster builds a forecaster (alpha in (0,1]).
func NewSNRForecaster(alpha float64) (*SNRForecaster, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("snr ewma alpha %v: %w", alpha, ErrInput)
	}
	return &SNRForecaster{Alpha: alpha}, nil
}

// Observe folds one measured worst-member SNR in dB.
func (f *SNRForecaster) Observe(snrDB float64) {
	if !f.ready {
		f.value = snrDB
		f.ready = true
		return
	}
	f.value = f.Alpha*snrDB + (1-f.Alpha)*f.value
}

// Forecast returns the current estimate and whether any observation
// has been folded.
func (f *SNRForecaster) Forecast() (float64, bool) { return f.value, f.ready }
