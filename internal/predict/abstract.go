// Package predict implements the paper's group-based resource demand
// prediction (§II-B2). From the UDTs of a multicast group it abstracts
// (a) the group's swiping probability distribution per video category
// — the CDF of the fraction of a video watched before swiping — and
// (b) the recommended video list (video popularity × group
// preference). From those it derives expected engagement time, video
// traffic, and computing consumption to predict the radio and
// computing resource demand of the next reservation interval.
// EWMA/moving-average/last-value baselines are provided for the
// predictor-ablation experiments.
package predict

import (
	"errors"
	"fmt"
	"math"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/segment"
	"dtmsvs/internal/stats"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/video"
)

// ErrInput indicates invalid prediction input.
var ErrInput = errors.New("predict: invalid input")

// SwipeBins is the resolution of the swiping-probability CDF over the
// normalized watch fraction [0, 1].
const SwipeBins = 20

// SwipeDistribution is a multicast group's per-category swiping
// probability distribution: for category c, CDF[c][i] is the
// probability a group member swipes at or before watch fraction
// (i+1)/SwipeBins of a video. Flat-rising CDFs mean sticky content
// (News in Fig. 3a); steep CDFs mean fast swiping (Game).
type SwipeDistribution struct {
	CDF [video.NumCategories][]float64
	// Samples counts the observations behind each category's CDF.
	Samples [video.NumCategories]int
}

// GroupObservation is one member's view event, as read back from UDTs.
type GroupObservation struct {
	Category video.Category
	// WatchFraction in [0,1] of the video watched before the swipe
	// (1 = watched to the end).
	WatchFraction float64
}

// NewSwipeDistribution estimates the distribution from observations.
// Categories with no observations get a uniform CDF (maximum
// uncertainty) so downstream expectations stay defined.
func NewSwipeDistribution(obs []GroupObservation) (*SwipeDistribution, error) {
	hists := [video.NumCategories]*stats.Histogram{}
	for i := range hists {
		h, err := stats.NewHistogram(0, 1.0000001, SwipeBins)
		if err != nil {
			return nil, err
		}
		hists[i] = h
	}
	for _, o := range obs {
		idx := o.Category.Index()
		if idx < 0 {
			return nil, fmt.Errorf("category %v: %w", o.Category, ErrInput)
		}
		if o.WatchFraction < 0 || o.WatchFraction > 1 || math.IsNaN(o.WatchFraction) {
			return nil, fmt.Errorf("watch fraction %v: %w", o.WatchFraction, ErrInput)
		}
		hists[idx].Add(o.WatchFraction)
	}
	var d SwipeDistribution
	for i, h := range hists {
		d.Samples[i] = h.Total()
		if h.Total() == 0 {
			cdf := make([]float64, SwipeBins)
			for j := range cdf {
				cdf[j] = float64(j+1) / SwipeBins
			}
			d.CDF[i] = cdf
			continue
		}
		d.CDF[i] = h.CDF()
	}
	return &d, nil
}

// ExpectedWatchFraction returns E[watch fraction] for the category:
// ∫₀¹ (1 − F(t)) dt evaluated on the binned CDF.
func (d *SwipeDistribution) ExpectedWatchFraction(cat video.Category) (float64, error) {
	idx := cat.Index()
	if idx < 0 {
		return 0, fmt.Errorf("category %v: %w", cat, ErrInput)
	}
	var e float64
	for _, f := range d.CDF[idx] {
		e += (1 - f) / SwipeBins
	}
	// Survivors at the last bin edge watched to completion; the CDF
	// construction puts them in the final bin, so e already counts
	// everything up to 1.0. Add the bin-width correction for the mass
	// that never swipes within [0,1): approximate by half a bin.
	e += 0.5 / SwipeBins
	if e > 1 {
		e = 1
	}
	return e, nil
}

// ExpectedMaxWatchFraction returns E[max of m i.i.d. watch fractions]
// = ∫₀¹ (1 − F(t)^m) dt — the expected multicast transmission length
// of a video when the BS keeps transmitting until the last of m group
// members swipes.
func (d *SwipeDistribution) ExpectedMaxWatchFraction(cat video.Category, m int) (float64, error) {
	idx := cat.Index()
	if idx < 0 {
		return 0, fmt.Errorf("category %v: %w", cat, ErrInput)
	}
	if m <= 0 {
		return 0, fmt.Errorf("group size %d: %w", m, ErrInput)
	}
	var e float64
	for _, f := range d.CDF[idx] {
		e += (1 - math.Pow(f, float64(m))) / SwipeBins
	}
	e += 0.5 / SwipeBins
	if e > 1 {
		e = 1
	}
	return e, nil
}

// ExpectedMaxWasteFraction returns the expected *wasted* fraction of
// a video under segment-level prefetching: the group's transmission
// covers the last swiper's watch prefix rounded up to segment
// boundaries plus the prefetch window (segment.Plan); the overshoot
// beyond the swipe point is waste. The expectation is over Tmax, the
// maximum of m i.i.d. watch fractions (CDF F^m). durS is the video
// duration, segS the segment length and depth the prefetch window in
// segments.
func (d *SwipeDistribution) ExpectedMaxWasteFraction(cat video.Category, m int, durS, segS float64, depth int) (float64, error) {
	idx := cat.Index()
	if idx < 0 {
		return 0, fmt.Errorf("category %v: %w", cat, ErrInput)
	}
	if m <= 0 {
		return 0, fmt.Errorf("group size %d: %w", m, ErrInput)
	}
	if durS <= 0 || segS <= 0 || depth < 0 {
		return 0, fmt.Errorf("dur %v seg %v depth %d: %w", durS, segS, depth, ErrInput)
	}
	cdf := d.CDF[idx]
	var e float64
	prev := 0.0
	for i, f := range cdf {
		fm := math.Pow(f, float64(m))
		pmf := fm - prev
		prev = fm
		if pmf <= 0 {
			continue
		}
		t := float64(i+1) / float64(len(cdf)) // bin upper edge
		_, waste, perr := segment.Plan(t*durS, durS, segS, depth)
		if perr != nil {
			return 0, perr
		}
		e += pmf * waste / durS
	}
	if e < 0 {
		e = 0
	}
	return e, nil
}

// SwipeProbBefore returns P(swipe at or before watch fraction t).
func (d *SwipeDistribution) SwipeProbBefore(cat video.Category, t float64) (float64, error) {
	idx := cat.Index()
	if idx < 0 {
		return 0, fmt.Errorf("category %v: %w", cat, ErrInput)
	}
	if t < 0 || t > 1 || math.IsNaN(t) {
		return 0, fmt.Errorf("fraction %v: %w", t, ErrInput)
	}
	bin := int(t * SwipeBins)
	if bin >= SwipeBins {
		bin = SwipeBins - 1
	}
	return d.CDF[idx][bin], nil
}

// GroupProfile is the abstracted group-level information of §II-B2.
type GroupProfile struct {
	// Swipe is the group's swiping probability distribution.
	Swipe *SwipeDistribution
	// Preference is the mean member preference (category mix the
	// group will be served).
	Preference behavior.Preference
	// Recommended is the ranked recommendation list.
	Recommended []*video.Video
	// Size is the number of members.
	Size int
	// MeanEngagementS is the average watch seconds per view observed
	// in the last interval.
	MeanEngagementS float64
}

// ObservationsFromTwins converts the twins' accumulated per-category
// engagement fractions into per-view observations for the swipe
// distribution: each user contributes, per category, their mean
// watched fraction weighted by their view count.
func ObservationsFromTwins(twins []*udt.Twin) ([]GroupObservation, error) {
	var obs []GroupObservation
	for _, tw := range twins {
		engage := tw.EngagementByCategory()
		views := tw.ViewsByCategory()
		for ci, n := range views {
			if n == 0 {
				continue
			}
			frac := engage[ci] / float64(n)
			if frac > 1 {
				frac = 1
			}
			if frac < 0 {
				frac = 0
			}
			cat := video.AllCategories()[ci]
			for v := 0; v < n; v++ {
				obs = append(obs, GroupObservation{Category: cat, WatchFraction: frac})
			}
		}
	}
	return obs, nil
}

// BuildGroupProfile abstracts one multicast group from its members'
// twins: swipe distribution, mean preference, recommendation list
// (popularity × preference score) and mean engagement.
func BuildGroupProfile(twins []*udt.Twin, cat *video.Catalog, topN int) (*GroupProfile, error) {
	if len(twins) == 0 {
		return nil, fmt.Errorf("empty group: %w", ErrInput)
	}
	if cat == nil || cat.Size() == 0 {
		return nil, fmt.Errorf("empty catalog: %w", ErrInput)
	}
	if topN <= 0 {
		return nil, fmt.Errorf("topN %d: %w", topN, ErrInput)
	}
	obs, err := ObservationsFromTwins(twins)
	if err != nil {
		return nil, err
	}
	swipe, err := NewSwipeDistribution(obs)
	if err != nil {
		return nil, err
	}

	// Mean preference across members.
	pref := make(behavior.Preference, video.NumCategories)
	for _, tw := range twins {
		p := tw.Preference()
		for i, v := range p {
			pref[i] += v
		}
	}
	for i := range pref {
		pref[i] /= float64(len(twins))
	}

	// Mean engagement seconds per view.
	var watchSum float64
	var viewSum int
	for _, tw := range twins {
		w := tw.WatchByCategory()
		v := tw.ViewsByCategory()
		for ci := range w {
			watchSum += w[ci]
			viewSum += v[ci]
		}
	}
	meanEng := 0.0
	if viewSum > 0 {
		meanEng = watchSum / float64(viewSum)
	}

	// Recommendation: score = popularity × preference of the video's
	// category; take the topN by score.
	rec := rankByScore(cat, pref, topN)

	return &GroupProfile{
		Swipe:           swipe,
		Preference:      pref,
		Recommended:     rec,
		Size:            len(twins),
		MeanEngagementS: meanEng,
	}, nil
}

// rankByScore returns the topN videos by popularity × category
// preference using partial selection.
func rankByScore(cat *video.Catalog, pref behavior.Preference, topN int) []*video.Video {
	type scored struct {
		v *video.Video
		s float64
	}
	all := make([]scored, 0, cat.Size())
	for _, v := range cat.Videos {
		idx := v.Category.Index()
		if idx < 0 {
			continue
		}
		all = append(all, scored{v: v, s: cat.Popularity(v.ID) * pref[idx]})
	}
	// Partial selection sort for topN (topN << catalog size).
	if topN > len(all) {
		topN = len(all)
	}
	for i := 0; i < topN; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[best].s {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]*video.Video, topN)
	for i := 0; i < topN; i++ {
		out[i] = all[i].v
	}
	return out
}
