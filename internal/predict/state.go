// This file exports the mutable state of the EWMA-family predictors
// for session checkpoint/restore. Alpha is configuration (replayed at
// construction); value/ready is what an interval's observations
// accumulate.

package predict

// EWMAState is the mutable state of an EWMA or SNRForecaster.
type EWMAState struct {
	Value float64
	Ready bool
}

// State captures the predictor's mutable state.
func (e *EWMA) State() EWMAState { return EWMAState{Value: e.value, Ready: e.ready} }

// SetState restores state captured by State.
func (e *EWMA) SetState(st EWMAState) { e.value, e.ready = st.Value, st.Ready }

// State captures the forecaster's mutable state.
func (f *SNRForecaster) State() EWMAState { return EWMAState{Value: f.value, Ready: f.ready} }

// SetState restores state captured by State.
func (f *SNRForecaster) SetState(st EWMAState) { f.value, f.ready = st.Value, st.Ready }
