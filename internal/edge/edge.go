// Package edge models the edge server (paper §II-A): it caches
// popular short videos at their highest representation and transcodes
// them down to lower rungs on demand. Computing consumption is
// measured in CPU cycles with a standard cycles-per-bit transcoding
// cost model; cache hits at the exact representation cost nothing.
package edge

import (
	"container/list"
	"errors"
	"fmt"
	"sync/atomic"

	"dtmsvs/internal/video"
)

// ErrParam indicates invalid edge-server input.
var ErrParam = errors.New("edge: invalid parameter")

// cacheKey identifies a cached (video, representation level) pair.
type cacheKey struct {
	videoID int
	level   int
}

// Cache is an LRU cache of video representations measured in bytes.
//
// The structural state (list, map) has a single writer — the engine
// goroutine that owns the cell — but the accounting counters are
// atomics so a live metrics exporter (obs.Registry func metrics read
// from an HTTP handler goroutine) can sample hits/misses/evictions
// and resident bytes mid-interval without a data race.
type Cache struct {
	capacityBytes int64
	usedBytes     atomic.Int64
	ll            *list.List
	items         map[cacheKey]*list.Element

	hits, misses, evictions atomic.Int64
}

type cacheEntry struct {
	key  cacheKey
	size int64
}

// NewCache creates an LRU cache with the given byte capacity.
func NewCache(capacityBytes int64) (*Cache, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("cache capacity %d: %w", capacityBytes, ErrParam)
	}
	return &Cache{
		capacityBytes: capacityBytes,
		ll:            list.New(),
		items:         make(map[cacheKey]*list.Element),
	}, nil
}

// Used returns bytes currently cached.
func (c *Cache) Used() int64 { return c.usedBytes.Load() }

// Capacity returns the cache capacity in bytes.
func (c *Cache) Capacity() int64 { return c.capacityBytes }

// Len returns the number of cached representations.
func (c *Cache) Len() int { return c.ll.Len() }

// Counts returns the raw hit/miss counters, letting callers (the
// cluster engine) aggregate hit rates across many caches weighted by
// actual lookup volume.
func (c *Cache) Counts() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}

// Evictions returns the number of LRU evictions so far.
func (c *Cache) Evictions() int { return int(c.evictions.Load()) }

// HitRate returns hits/(hits+misses), 0 before any lookups.
func (c *Cache) HitRate() float64 {
	hits, misses := c.Counts()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Contains checks for an exact (video, level) entry and refreshes its
// recency on hit. Hit/miss counters are updated.
func (c *Cache) Contains(videoID, level int) bool {
	if el, ok := c.items[cacheKey{videoID, level}]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return true
	}
	c.misses.Add(1)
	return false
}

// Put inserts a representation of the given size, evicting LRU
// entries as needed. Items larger than the capacity are rejected.
func (c *Cache) Put(videoID, level int, sizeBytes int64) error {
	if sizeBytes <= 0 {
		return fmt.Errorf("size %d: %w", sizeBytes, ErrParam)
	}
	if sizeBytes > c.capacityBytes {
		return fmt.Errorf("object %d bytes exceeds cache %d: %w", sizeBytes, c.capacityBytes, ErrParam)
	}
	key := cacheKey{videoID, level}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return nil
	}
	for c.usedBytes.Load()+sizeBytes > c.capacityBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent, ok := oldest.Value.(*cacheEntry)
		if !ok {
			return fmt.Errorf("corrupt cache entry: %w", ErrParam)
		}
		delete(c.items, ent.key)
		c.usedBytes.Add(-ent.size)
		c.ll.Remove(oldest)
		c.evictions.Add(1)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, size: sizeBytes})
	c.usedBytes.Add(sizeBytes)
	return nil
}

// TranscodeModel converts transcoded bits into CPU cycles.
type TranscodeModel struct {
	// CyclesPerBit is the CPU cost of transcoding one source bit
	// (default 50 cycles/bit, in line with x264 software transcode
	// measurements used in edge-computing literature).
	CyclesPerBit float64
}

// DefaultTranscodeModel returns the model used by the experiments.
func DefaultTranscodeModel() TranscodeModel { return TranscodeModel{CyclesPerBit: 50} }

// Cycles returns the CPU cycles to transcode a video segment of
// durationS seconds from srcBps down to dstBps. Transcoding up or to
// the same rate is free (served from source).
func (m TranscodeModel) Cycles(srcBps, dstBps, durationS float64) (float64, error) {
	if srcBps <= 0 || dstBps <= 0 || durationS < 0 {
		return 0, fmt.Errorf("transcode src=%v dst=%v dur=%v: %w", srcBps, dstBps, durationS, ErrParam)
	}
	if dstBps >= srcBps {
		return 0, nil
	}
	return m.CyclesPerBit * srcBps * durationS, nil
}

// Server is the edge server: cache + transcoder + accounting.
type Server struct {
	cache *Cache
	model TranscodeModel

	// cyclesUsed accumulates transcoding cycles in the current
	// interval.
	cyclesUsed float64
}

// NewServer builds a server, pre-warming the cache with the top-N
// most popular videos at their highest representation, matching the
// paper's "stores popular short videos with the highest
// representation".
func NewServer(cacheBytes int64, model TranscodeModel, cat *video.Catalog, prewarmTopN int) (*Server, error) {
	c, err := NewCache(cacheBytes)
	if err != nil {
		return nil, err
	}
	if model.CyclesPerBit <= 0 {
		return nil, fmt.Errorf("cycles/bit %v: %w", model.CyclesPerBit, ErrParam)
	}
	s := &Server{cache: c, model: model}
	if cat != nil && prewarmTopN > 0 {
		for _, v := range cat.TopN(prewarmTopN) {
			top := v.HighestRep()
			size := int64(top.BitrateBps * v.DurationS / 8)
			if size <= 0 {
				size = 1
			}
			if err := c.Put(v.ID, top.Level, size); err != nil {
				// Cache smaller than one object: stop pre-warming.
				break
			}
		}
	}
	return s, nil
}

// Cache exposes the underlying cache for inspection.
func (s *Server) Cache() *Cache { return s.cache }

// CyclesUsed returns transcoding cycles consumed this interval.
func (s *Server) CyclesUsed() float64 { return s.cyclesUsed }

// ResetInterval clears the per-interval cycle accounting.
func (s *Server) ResetInterval() { s.cyclesUsed = 0 }

// Serve delivers (video, representation) for a watch of durationS
// seconds and returns the transcoding cycles consumed. Matching the
// paper's edge-server architecture, the cache holds videos at their
// highest representation only; lower rungs are transcoded on demand
// from the cached source every time they are requested (transcoded
// outputs are not retained). A request for the highest rung that
// misses the cache is fetched and cached at no compute cost.
func (s *Server) Serve(v *video.Video, rep video.Representation, durationS float64) (float64, error) {
	if v == nil {
		return 0, fmt.Errorf("nil video: %w", ErrParam)
	}
	if durationS < 0 {
		return 0, fmt.Errorf("duration %v: %w", durationS, ErrParam)
	}
	top := v.HighestRep()
	if !s.cache.Contains(v.ID, top.Level) {
		// Fetch the source from the CDN and cache it at the highest
		// representation; oversized objects are served pass-through.
		size := int64(top.BitrateBps * v.DurationS / 8)
		if size > 0 {
			if err := s.cache.Put(v.ID, top.Level, size); err != nil && !errors.Is(err, ErrParam) {
				return 0, err
			}
		}
	}
	if rep.Level == top.Level {
		return 0, nil
	}
	cycles, err := s.model.Cycles(top.BitrateBps, rep.BitrateBps, durationS)
	if err != nil {
		return 0, err
	}
	s.cyclesUsed += cycles
	return cycles, nil
}
