package edge

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsvs/internal/video"
)

func testCatalog(t *testing.T) *video.Catalog {
	t.Helper()
	cat, err := video.NewCatalog(video.CatalogConfig{NumVideos: 50}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestCachePutContains(t *testing.T) {
	c, err := NewCache(1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Contains(1, 0) {
		t.Fatal("empty cache hit")
	}
	if err := c.Put(1, 0, 400); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(1, 0) {
		t.Fatal("miss after put")
	}
	if c.Contains(1, 1) {
		t.Fatal("wrong level hit")
	}
	if c.Used() != 400 || c.Len() != 1 {
		t.Fatalf("used %d len %d", c.Used(), c.Len())
	}
	// Hit rate: 1 hit, 2 misses so far.
	if hr := c.HitRate(); hr < 0.3 || hr > 0.34 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestCachePutValidation(t *testing.T) {
	c, err := NewCache(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 0, 0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if err := c.Put(1, 0, 200); !errors.Is(err, ErrParam) {
		t.Fatalf("oversized: want ErrParam, got %v", err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(i, 0, 400); err != nil { // third put evicts
			t.Fatal(err)
		}
	}
	if c.Contains(0, 0) {
		t.Fatal("oldest entry not evicted")
	}
	if !c.Contains(1, 0) || !c.Contains(2, 0) {
		t.Fatal("recent entries evicted")
	}
	if c.Used() > 1000 {
		t.Fatalf("capacity exceeded: %d", c.Used())
	}
}

func TestCacheLRURecencyOnHit(t *testing.T) {
	c, err := NewCache(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(0, 0, 400); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 0, 400); err != nil {
		t.Fatal(err)
	}
	// Touch 0 so 1 becomes LRU.
	if !c.Contains(0, 0) {
		t.Fatal("expected hit")
	}
	if err := c.Put(2, 0, 400); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(0, 0) {
		t.Fatal("recently used entry evicted")
	}
	if c.Contains(1, 0) {
		t.Fatal("lru entry survived")
	}
}

func TestTranscodeModel(t *testing.T) {
	m := DefaultTranscodeModel()
	if _, err := m.Cycles(0, 1, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := m.Cycles(1, 1, -1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	// Down-transcode: 2.5 Mbps source, 30 s → 50 × 2.5e6 × 30 cycles.
	cy, err := m.Cycles(2.5e6, 1e6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cy != 50*2.5e6*30 {
		t.Fatalf("cycles %v", cy)
	}
	// Same or up: free.
	cy, err = m.Cycles(1e6, 1e6, 30)
	if err != nil || cy != 0 {
		t.Fatalf("same-rate cycles %v err %v", cy, err)
	}
	cy, err = m.Cycles(1e6, 2e6, 30)
	if err != nil || cy != 0 {
		t.Fatalf("up-rate cycles %v err %v", cy, err)
	}
}

func TestNewServerValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := NewServer(0, DefaultTranscodeModel(), cat, 5); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewServer(1000, TranscodeModel{}, cat, 5); !errors.Is(err, ErrParam) {
		t.Fatalf("zero cycles/bit: want ErrParam, got %v", err)
	}
}

func TestServerPrewarm(t *testing.T) {
	cat := testCatalog(t)
	s, err := NewServer(1<<30, DefaultTranscodeModel(), cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cache().Len() != 10 {
		t.Fatalf("prewarmed %d, want 10", s.Cache().Len())
	}
	// Top video at highest rep must be a hit.
	top := cat.TopN(1)[0]
	if !s.Cache().Contains(top.ID, top.HighestRep().Level) {
		t.Fatal("top video not prewarmed at highest rep")
	}
}

func TestServeCacheHitFree(t *testing.T) {
	cat := testCatalog(t)
	s, err := NewServer(1<<30, DefaultTranscodeModel(), cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	top := cat.TopN(1)[0]
	cy, err := s.Serve(top, top.HighestRep(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if cy != 0 {
		t.Fatalf("cache hit cost %v cycles", cy)
	}
	if s.CyclesUsed() != 0 {
		t.Fatal("interval accounting after free hit")
	}
}

func TestServeTranscodeMissThenHit(t *testing.T) {
	cat := testCatalog(t)
	s, err := NewServer(1<<30, DefaultTranscodeModel(), cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	top := cat.TopN(1)[0]
	low := top.Ladder[0]
	cy, err := s.Serve(top, low, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 50.0 * top.HighestRep().BitrateBps * 20
	if cy != want {
		t.Fatalf("transcode cycles %v, want %v", cy, want)
	}
	if s.CyclesUsed() != want {
		t.Fatalf("interval cycles %v", s.CyclesUsed())
	}
	// Second request for the same rung: transcoded outputs are not
	// retained, so the transcode cost recurs.
	cy, err = s.Serve(top, low, 20)
	if err != nil {
		t.Fatal(err)
	}
	if cy != want {
		t.Fatalf("repeat serve cost %v, want %v", cy, want)
	}
	s.ResetInterval()
	if s.CyclesUsed() != 0 {
		t.Fatal("reset failed")
	}
}

func TestServeValidation(t *testing.T) {
	cat := testCatalog(t)
	s, err := NewServer(1<<30, DefaultTranscodeModel(), cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Serve(nil, video.Representation{}, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	v := cat.Videos[0]
	if _, err := s.Serve(v, v.Ladder[0], -1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestServerTinyCache(t *testing.T) {
	// Cache smaller than any object: prewarm stops gracefully, serves
	// still work (pass-through).
	cat := testCatalog(t)
	s, err := NewServer(10, DefaultTranscodeModel(), cat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cache().Len() != 0 {
		t.Fatalf("tiny cache holds %d", s.Cache().Len())
	}
	v := cat.Videos[0]
	if _, err := s.Serve(v, v.Ladder[0], 30); err != nil {
		t.Fatalf("pass-through serve failed: %v", err)
	}
}

// Cache byte accounting stays consistent under arbitrary put/lookup
// sequences: used bytes never exceed capacity and always equal the
// sum of live entries.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewCache(5000)
		if err != nil {
			return false
		}
		for _, op := range ops {
			id := int(op % 37)
			level := int(op/37) % 5
			size := int64(op%900) + 1
			switch {
			case op%3 == 0:
				c.Contains(id, level)
			default:
				if err := c.Put(id, level, size); err != nil && !errors.Is(err, ErrParam) {
					return false
				}
			}
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCounts(t *testing.T) {
	c, err := NewCache(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 0, 100); err != nil {
		t.Fatal(err)
	}
	c.Contains(1, 0) // hit
	c.Contains(2, 0) // miss
	c.Contains(2, 0) // miss
	hits, misses := c.Counts()
	if hits != 1 || misses != 2 {
		t.Fatalf("counts %d/%d, want 1/2", hits, misses)
	}
	if want := 1.0 / 3.0; c.HitRate() != want {
		t.Fatalf("hit rate %v, want %v", c.HitRate(), want)
	}
}

// TestCacheDrop: quarantining a cell empties its cache in one call —
// entries and byte accounting go to zero while the hit/miss history
// survives (dropped entries are losses, not evictions) — and the
// cache accepts new content afterwards.
func TestCacheDrop(t *testing.T) {
	c, err := NewCache(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Put(i, 0, 300); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Contains(0, 0) { // 1 hit, and misses from the Put probes
		t.Fatal("entry missing before drop")
	}
	hits, misses := c.Counts()
	evictions := c.Evictions()

	c.Drop()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("after drop: len %d used %d", c.Len(), c.Used())
	}
	if c.Contains(0, 0) || c.Contains(1, 0) {
		t.Fatal("dropped entry still present")
	}
	// The Contains probes above count as misses; everything before the
	// drop is preserved and no eviction was recorded.
	if h, m := c.Counts(); h != hits || m != misses+2 {
		t.Fatalf("counters rewritten: hits %d->%d misses %d->%d", hits, h, misses, m)
	}
	if c.Evictions() != evictions {
		t.Fatalf("drop counted as eviction: %d -> %d", evictions, c.Evictions())
	}
	if err := c.Put(5, 1, 800); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(5, 1) || c.Used() != 800 {
		t.Fatal("cache unusable after drop")
	}
}
