// This file exports the cache's full state — entries in recency
// order plus the hit/miss counters — for session checkpoint/restore.
// The cache is the only edge-server state that survives an interval
// boundary (cycle accounting is reset at the start of every
// interval), so restoring it restores the server.

package edge

import "fmt"

// CacheEntry is one cached representation, exported for
// serialization.
type CacheEntry struct {
	VideoID, Level int
	SizeBytes      int64
}

// Entries returns the cached entries from most- to least-recently
// used.
func (c *Cache) Entries() []CacheEntry {
	out := make([]CacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		out = append(out, CacheEntry{VideoID: ent.key.videoID, Level: ent.key.level, SizeBytes: ent.size})
	}
	return out
}

// Drop discards every cached entry — the cell's cache contents are
// gone with the failed node — while keeping the hit/miss counters:
// those lookups were really served and still belong in the run's
// aggregate cache statistics. Dropped entries are not evictions.
func (c *Cache) Drop() {
	c.ll.Init()
	clear(c.items)
	c.usedBytes.Store(0)
}

// Restore replaces the cache contents with the given entries (in the
// MRU-to-LRU order Entries produced) and counters. Entries must fit
// the capacity — a restore never silently evicts.
func (c *Cache) Restore(entries []CacheEntry, hits, misses int) error {
	var total int64
	for _, ent := range entries {
		if ent.SizeBytes <= 0 {
			return fmt.Errorf("cache restore entry (%d,%d) size %d: %w", ent.VideoID, ent.Level, ent.SizeBytes, ErrParam)
		}
		total += ent.SizeBytes
	}
	if total > c.capacityBytes {
		return fmt.Errorf("cache restore %d bytes into capacity %d: %w", total, c.capacityBytes, ErrParam)
	}
	if hits < 0 || misses < 0 {
		return fmt.Errorf("cache restore counters %d/%d: %w", hits, misses, ErrParam)
	}
	c.ll.Init()
	clear(c.items)
	c.usedBytes.Store(0)
	// Insert back-to-front so list order matches the captured recency.
	for i := len(entries) - 1; i >= 0; i-- {
		ent := entries[i]
		key := cacheKey{ent.VideoID, ent.Level}
		if _, ok := c.items[key]; ok {
			return fmt.Errorf("cache restore duplicate entry (%d,%d): %w", ent.VideoID, ent.Level, ErrParam)
		}
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, size: ent.SizeBytes})
		c.usedBytes.Add(ent.SizeBytes)
	}
	c.hits.Store(int64(hits))
	c.misses.Store(int64(misses))
	return nil
}
