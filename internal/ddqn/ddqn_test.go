package ddqn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

func testCfg() Config {
	return Config{StateDim: 2, NumActions: 3, Hidden: 16, BatchSize: 8, ReplayCapacity: 64, TargetSync: 10}
}

func TestReplayBuffer(t *testing.T) {
	if _, err := NewReplayBuffer(0); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	rb, err := NewReplayBuffer(3)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Len() != 0 || rb.Cap() != 3 {
		t.Fatalf("len=%d cap=%d", rb.Len(), rb.Cap())
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := rb.Sample(1, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty sample: want ErrConfig, got %v", err)
	}
	for i := 0; i < 5; i++ {
		rb.Add(Transition{Reward: float64(i)})
	}
	if rb.Len() != 3 {
		t.Fatalf("ring len %d, want 3", rb.Len())
	}
	// Oldest entries (0,1) must have been evicted.
	batch, err := rb.Sample(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range batch {
		if tr.Reward < 2 {
			t.Fatalf("evicted transition %v still sampled", tr.Reward)
		}
	}
	if _, err := rb.Sample(0, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"statedim", func(c *Config) { c.StateDim = 0 }},
		{"actions", func(c *Config) { c.NumActions = 1 }},
		{"gamma", func(c *Config) { c.Gamma = 1.5 }},
		{"epsdecay", func(c *Config) { c.EpsDecay = 2 }},
		{"eps order", func(c *Config) { c.EpsStart = 0.1; c.EpsEnd = 0.9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testCfg()
			tt.mut(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
	if err := testCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAgentActBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := New(testCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	state := vecmath.Vec{0.1, -0.2}
	for i := 0; i < 200; i++ {
		act, aerr := a.Act(state)
		if aerr != nil {
			t.Fatal(aerr)
		}
		if act < 0 || act >= 3 {
			t.Fatalf("action %d out of range", act)
		}
	}
	if _, err := a.QValues(vecmath.Vec{1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestObserveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, err := New(testCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	good := Transition{State: vecmath.Vec{1, 2}, Action: 0, NextState: vecmath.Vec{1, 2}}
	if err := a.Observe(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Action = 7
	if err := a.Observe(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	bad = good
	bad.State = vecmath.Vec{1}
	if err := a.Observe(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	// Done transitions may omit NextState.
	terminal := Transition{State: vecmath.Vec{1, 2}, Action: 1, Done: true}
	if err := a.Observe(terminal); err != nil {
		t.Fatalf("terminal transition rejected: %v", err)
	}
}

func TestEpsilonDecays(t *testing.T) {
	cfg := testCfg()
	cfg.EpsStart = 1.0
	cfg.EpsEnd = 0.1
	cfg.EpsDecay = 0.5
	rng := rand.New(rand.NewSource(4))
	a, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := Transition{State: vecmath.Vec{0, 0}, Action: 0, NextState: vecmath.Vec{0, 0}}
	for i := 0; i < 10; i++ {
		if err := a.Observe(tr); err != nil {
			t.Fatal(err)
		}
	}
	if a.Epsilon() != 0.1 {
		t.Fatalf("epsilon %v, want floor 0.1", a.Epsilon())
	}
}

func TestLearnNoOpBeforeWarmup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := New(testCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	loss, learned, err := a.Learn()
	if err != nil || learned || loss != 0 {
		t.Fatalf("pre-warmup learn: loss=%v learned=%v err=%v", loss, learned, err)
	}
}

// twoArmEnv is a 1-step bandit: action 1 always pays 1, action 0 pays
// 0. The greedy policy must learn to pick action 1.
type twoArmEnv struct{}

func (twoArmEnv) Reset() (vecmath.Vec, error) { return vecmath.Vec{1, 0}, nil }

func (twoArmEnv) Step(action int) (vecmath.Vec, float64, bool, error) {
	r := 0.0
	if action == 1 {
		r = 1
	}
	return vecmath.Vec{1, 0}, r, true, nil
}

func TestAgentLearnsBandit(t *testing.T) {
	cfg := Config{
		StateDim: 2, NumActions: 2, Hidden: 16,
		BatchSize: 16, ReplayCapacity: 256, TargetSync: 20,
		EpsDecay: 0.99, LearningRate: 5e-3,
	}
	rng := rand.New(rand.NewSource(6))
	a, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	returns, err := a.Train(twoArmEnv{}, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(returns) != 300 {
		t.Fatalf("returns len %d", len(returns))
	}
	act, err := a.Greedy(vecmath.Vec{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if act != 1 {
		q, _ := a.QValues(vecmath.Vec{1, 0})
		t.Fatalf("greedy action %d, want 1 (q=%v)", act, q)
	}
}

// chainEnv is a 3-state chain: from state i, action 1 advances, action
// 0 stays; reaching state 2 ends the episode with reward 1, each step
// costs -0.05. Tests multi-step credit assignment via bootstrapping.
type chainEnv struct {
	pos int
}

func (c *chainEnv) state() vecmath.Vec {
	s := make(vecmath.Vec, 3)
	s[c.pos] = 1
	return s
}

func (c *chainEnv) Reset() (vecmath.Vec, error) {
	c.pos = 0
	return c.state(), nil
}

func (c *chainEnv) Step(action int) (vecmath.Vec, float64, bool, error) {
	if action == 1 {
		c.pos++
	}
	if c.pos >= 2 {
		return c.state(), 1, true, nil
	}
	return c.state(), -0.05, false, nil
}

func TestAgentSolvesChain(t *testing.T) {
	cfg := Config{
		StateDim: 3, NumActions: 2, Hidden: 24,
		BatchSize: 16, ReplayCapacity: 512, TargetSync: 25,
		EpsDecay: 0.995, LearningRate: 3e-3, Gamma: 0.9,
	}
	rng := rand.New(rand.NewSource(7))
	a, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(&chainEnv{}, 250, 20); err != nil {
		t.Fatal(err)
	}
	// Greedy policy must advance from both non-terminal states.
	for pos := 0; pos < 2; pos++ {
		s := make(vecmath.Vec, 3)
		s[pos] = 1
		act, gerr := a.Greedy(s)
		if gerr != nil {
			t.Fatal(gerr)
		}
		if act != 1 {
			t.Fatalf("state %d greedy action %d, want 1", pos, act)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, err := New(testCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(twoArmEnv{}, 0, 5); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	if _, err := a.Train(twoArmEnv{}, 5, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

// failEnv returns an error on Step to exercise error propagation.
type failEnv struct{}

func (failEnv) Reset() (vecmath.Vec, error) { return vecmath.Vec{0, 0}, nil }
func (failEnv) Step(int) (vecmath.Vec, float64, bool, error) {
	return nil, 0, false, fmt.Errorf("boom")
}

func TestTrainPropagatesEnvError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, err := New(testCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(failEnv{}, 1, 5); err == nil {
		t.Fatal("env error must propagate")
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() []float64 {
		cfg := testCfg()
		cfg.NumActions = 2
		a, err := New(cfg, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		rets, err := a.Train(twoArmEnv{}, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rets
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("training must be deterministic for a fixed seed")
		}
	}
}

func TestAgentSaveLoadState(t *testing.T) {
	cfg := testCfg()
	a, err := New(cfg, rand.New(rand.NewSource(30)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	state := vecmath.Vec{0.3, -0.4}
	if err := b.LoadState(a.SaveState()); err != nil {
		t.Fatal(err)
	}
	qa, err := a.QValues(state)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.QValues(state)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("q-values differ after state transfer")
		}
	}
	// Mismatched shape rejected.
	other, err := New(Config{StateDim: 3, NumActions: 2, Hidden: 8}, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadState(a.SaveState()); err == nil {
		t.Fatal("mismatched agent must fail to load")
	}
}

// Both DQN variants must solve the chain; double-Q exists to curb
// value overestimation, which we check by comparing the learned
// maximum Q value of the start state against the true optimal return.
func TestVanillaVsDoubleOverestimation(t *testing.T) {
	maxQ := func(vanilla bool) float64 {
		cfg := Config{
			StateDim: 3, NumActions: 2, Hidden: 24,
			BatchSize: 16, ReplayCapacity: 512, TargetSync: 25,
			EpsDecay: 0.995, LearningRate: 3e-3, Gamma: 0.9,
			Vanilla: vanilla,
		}
		a, err := New(cfg, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Train(&chainEnv{}, 250, 20); err != nil {
			t.Fatal(err)
		}
		q, err := a.QValues(vecmath.Vec{1, 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		return q[vecmath.ArgMax(q)]
	}
	// True optimal return from the start: -0.05 + 0.9·1 = 0.85.
	const optimal = 0.85
	double := maxQ(false)
	vanilla := maxQ(true)
	if math.Abs(double-optimal) > 0.5 {
		t.Fatalf("double-DQN start-state value %v far from optimal %v", double, optimal)
	}
	// Vanilla must also learn the task (policy check).
	if vanilla < 0 {
		t.Fatalf("vanilla DQN failed to learn: max Q %v", vanilla)
	}
}
