package ddqn

import (
	"math/rand"
	"testing"

	"dtmsvs/internal/vecmath"
)

// TestLearnAllocFree is the allocation regression gate for the
// batched learn step: once the replay buffer is warm and the layer
// scratch has grown, a steady-state Learn — three GEMMs per Dense
// layer plus the optimizer step — must not touch the heap.
func TestLearnAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, err := New(Config{
		StateDim: 6, NumActions: 4, Hidden: 32,
		BatchSize: 16, ReplayCapacity: 256,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	state := make(vecmath.Vec, 6)
	next := make(vecmath.Vec, 6)
	for i := 0; i < 64; i++ {
		for j := range state {
			state[j] = rng.NormFloat64()
			next[j] = rng.NormFloat64()
		}
		tr := Transition{
			State:     vecmath.Clone(state),
			Action:    rng.Intn(4),
			Reward:    rng.NormFloat64(),
			NextState: vecmath.Clone(next),
			Done:      i%7 == 0,
		}
		if err := a.Observe(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the layer batch scratch.
	if _, learned, err := a.Learn(); err != nil || !learned {
		t.Fatalf("prime learn: learned=%v err=%v", learned, err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, learned, err := a.Learn(); err != nil || !learned {
			t.Fatalf("learn: learned=%v err=%v", learned, err)
		}
	}); n != 0 {
		t.Fatalf("Learn allocates %v per run in steady state", n)
	}
}
