// Package ddqn implements the double deep Q-network that determines
// the multicast grouping number (paper §II-B1): the online network
// selects the argmax action while the periodically synchronized target
// network evaluates it, which removes the max-operator overestimation
// bias of vanilla DQN.
package ddqn

import (
	"errors"
	"fmt"
	"math/rand"

	"dtmsvs/internal/nn"
	"dtmsvs/internal/vecmath"
)

// ErrConfig indicates an invalid agent configuration.
var ErrConfig = errors.New("ddqn: invalid config")

// Transition is one (s, a, r, s', done) experience tuple.
type Transition struct {
	State     vecmath.Vec
	Action    int
	Reward    float64
	NextState vecmath.Vec
	Done      bool
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions with
// uniform sampling.
type ReplayBuffer struct {
	buf  []Transition
	next int
	full bool
}

// NewReplayBuffer allocates a buffer with the given capacity.
func NewReplayBuffer(capacity int) (*ReplayBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("replay capacity %d: %w", capacity, ErrConfig)
	}
	return &ReplayBuffer{buf: make([]Transition, capacity)}, nil
}

// Len returns the number of stored transitions.
func (r *ReplayBuffer) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the buffer capacity.
func (r *ReplayBuffer) Cap() int { return len(r.buf) }

// Add stores a transition, evicting the oldest when full.
func (r *ReplayBuffer) Add(t Transition) {
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Sample draws n transitions uniformly with replacement.
func (r *ReplayBuffer) Sample(n int, rng *rand.Rand) ([]Transition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample n=%d: %w", n, ErrConfig)
	}
	out := make([]Transition, n)
	if err := r.SampleInto(out, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// SampleInto fills dst with uniform-with-replacement draws without
// allocating; the learner reuses one minibatch buffer across steps.
func (r *ReplayBuffer) SampleInto(dst []Transition, rng *rand.Rand) error {
	if r.Len() == 0 {
		return fmt.Errorf("sample from empty replay buffer: %w", ErrConfig)
	}
	for i := range dst {
		dst[i] = r.buf[rng.Intn(r.Len())]
	}
	return nil
}

// Config parameterizes the agent.
type Config struct {
	// StateDim is the observation width.
	StateDim int
	// NumActions is the size of the discrete action set.
	NumActions int
	// Hidden is the width of the two hidden layers (default 64).
	Hidden int
	// Gamma is the discount factor (default 0.95).
	Gamma float64
	// LearningRate for Adam (default 1e-3).
	LearningRate float64
	// EpsStart/EpsEnd/EpsDecay control ε-greedy exploration:
	// ε decays multiplicatively by EpsDecay each Step from EpsStart
	// toward EpsEnd. Defaults: 1.0 / 0.05 / 0.995.
	EpsStart, EpsEnd, EpsDecay float64
	// BatchSize for replay sampling (default 32).
	BatchSize int
	// ReplayCapacity (default 4096).
	ReplayCapacity int
	// TargetSync is the number of learn steps between target-network
	// synchronizations (default 100).
	TargetSync int
	// WarmUp is the minimum buffered transitions before learning
	// begins (default BatchSize).
	WarmUp int
	// Vanilla disables the double-Q decoupling: the target network
	// both selects and evaluates the next action (classic DQN).
	// Exists for the overestimation ablation; the paper's scheme
	// keeps it false.
	Vanilla bool
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1e-3
	}
	if c.EpsStart == 0 {
		c.EpsStart = 1.0
	}
	if c.EpsEnd == 0 {
		c.EpsEnd = 0.05
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.995
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ReplayCapacity == 0 {
		c.ReplayCapacity = 4096
	}
	if c.TargetSync == 0 {
		c.TargetSync = 100
	}
	if c.WarmUp == 0 {
		c.WarmUp = c.BatchSize
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch {
	case c.StateDim <= 0:
		return fmt.Errorf("statedim=%d: %w", c.StateDim, ErrConfig)
	case c.NumActions <= 1:
		return fmt.Errorf("numactions=%d: %w", c.NumActions, ErrConfig)
	case d.Gamma < 0 || d.Gamma >= 1:
		return fmt.Errorf("gamma=%v: %w", d.Gamma, ErrConfig)
	case d.EpsDecay <= 0 || d.EpsDecay > 1:
		return fmt.Errorf("epsdecay=%v: %w", d.EpsDecay, ErrConfig)
	case d.EpsEnd > d.EpsStart:
		return fmt.Errorf("epsend %v > epsstart %v: %w", d.EpsEnd, d.EpsStart, ErrConfig)
	}
	return nil
}

// qnet is a 2-hidden-layer MLP Q-function with weight-copy support.
type qnet struct {
	l1, l2, l3 *nn.Dense
	net        *nn.Network
}

func newQNet(stateDim, hidden, actions int, rng *rand.Rand) (*qnet, error) {
	l1, err := nn.NewDense(stateDim, hidden, rng)
	if err != nil {
		return nil, err
	}
	l2, err := nn.NewDense(hidden, hidden, rng)
	if err != nil {
		return nil, err
	}
	l3, err := nn.NewDense(hidden, actions, rng)
	if err != nil {
		return nil, err
	}
	net, err := nn.NewNetwork(stateDim, l1, &nn.ReLU{}, l2, &nn.ReLU{}, l3)
	if err != nil {
		return nil, err
	}
	return &qnet{l1: l1, l2: l2, l3: l3, net: net}, nil
}

func (q *qnet) copyFrom(src *qnet) error {
	if err := q.l1.CopyWeightsFrom(src.l1); err != nil {
		return err
	}
	if err := q.l2.CopyWeightsFrom(src.l2); err != nil {
		return err
	}
	return q.l3.CopyWeightsFrom(src.l3)
}

// Agent is a double-DQN learner over a discrete action space.
type Agent struct {
	cfg    Config
	online *qnet
	target *qnet
	opt    *nn.Adam
	replay *ReplayBuffer
	rng    *rand.Rand

	eps        float64
	learnSteps int

	// Minibatch scratch, allocated once in New so Learn runs with zero
	// steady-state allocations: the sampled batch, the stacked
	// current- and next-state matrices, the per-sample TD targets, the
	// batched loss gradient, and the per-row target scratch. The
	// hidden activations and batched Q outputs live inside the layers
	// (nn batch scratch).
	batch    []Transition
	curX     *vecmath.Matrix
	nextX    *vecmath.Matrix
	gradB    *vecmath.Matrix
	tdTarget vecmath.Vec
	tgtBuf   vecmath.Vec
	params   []nn.Param
}

// New builds an agent. The rng drives weight init, exploration and
// replay sampling, so a fixed seed gives fully reproducible training.
func New(cfg Config, rng *rand.Rand) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	online, err := newQNet(c.StateDim, c.Hidden, c.NumActions, rng)
	if err != nil {
		return nil, fmt.Errorf("ddqn online net: %w", err)
	}
	target, err := newQNet(c.StateDim, c.Hidden, c.NumActions, rng)
	if err != nil {
		return nil, fmt.Errorf("ddqn target net: %w", err)
	}
	if err := target.copyFrom(online); err != nil {
		return nil, fmt.Errorf("ddqn target sync: %w", err)
	}
	replay, err := NewReplayBuffer(c.ReplayCapacity)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg: c, online: online, target: target,
		opt: nn.NewAdam(c.LearningRate), replay: replay,
		rng: rng, eps: c.EpsStart,
	}
	a.batch = make([]Transition, c.BatchSize)
	if a.curX, err = vecmath.NewMatrix(c.BatchSize, c.StateDim); err != nil {
		return nil, err
	}
	if a.nextX, err = vecmath.NewMatrix(c.BatchSize, c.StateDim); err != nil {
		return nil, err
	}
	if a.gradB, err = vecmath.NewMatrix(c.BatchSize, c.NumActions); err != nil {
		return nil, err
	}
	a.tdTarget = make(vecmath.Vec, c.BatchSize)
	a.tgtBuf = make(vecmath.Vec, c.NumActions)
	a.params = a.online.net.Params()
	return a, nil
}

// SetGEMMPool routes the batched Learn GEMMs of both the online and
// target networks through the given pool (nil restores the sequential
// kernels). Purely a wall-clock knob: learned weights and Q-values
// are bit-identical for any worker count.
func (a *Agent) SetGEMMPool(p *vecmath.GEMMPool) {
	a.online.net.SetGEMMPool(p)
	a.target.net.SetGEMMPool(p)
}

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.eps }

// ReplayLen returns the number of buffered transitions.
func (a *Agent) ReplayLen() int { return a.replay.Len() }

// QValues returns the online network's Q estimate for a state. The
// returned vector is caller-owned (a copy of the network scratch).
func (a *Agent) QValues(state vecmath.Vec) (vecmath.Vec, error) {
	q, err := a.qValuesScratch(state)
	if err != nil {
		return nil, err
	}
	return vecmath.Clone(q), nil
}

// qValuesScratch is the internal fast path: the returned slice aliases
// the network's scratch and is overwritten by the next forward pass.
func (a *Agent) qValuesScratch(state vecmath.Vec) (vecmath.Vec, error) {
	if len(state) != a.cfg.StateDim {
		return nil, fmt.Errorf("state dim %d want %d: %w", len(state), a.cfg.StateDim, ErrConfig)
	}
	return a.online.net.Forward(state)
}

// Act selects an action ε-greedily.
func (a *Agent) Act(state vecmath.Vec) (int, error) {
	if a.rng.Float64() < a.eps {
		return a.rng.Intn(a.cfg.NumActions), nil
	}
	return a.Greedy(state)
}

// Greedy selects the argmax action of the online network.
func (a *Agent) Greedy(state vecmath.Vec) (int, error) {
	q, err := a.qValuesScratch(state)
	if err != nil {
		return 0, err
	}
	return vecmath.ArgMax(q), nil
}

// Observe stores a transition and decays ε.
func (a *Agent) Observe(t Transition) error {
	if len(t.State) != a.cfg.StateDim || (!t.Done && len(t.NextState) != a.cfg.StateDim) {
		return fmt.Errorf("transition state dims %d/%d want %d: %w",
			len(t.State), len(t.NextState), a.cfg.StateDim, ErrConfig)
	}
	if t.Action < 0 || t.Action >= a.cfg.NumActions {
		return fmt.Errorf("transition action %d outside [0,%d): %w", t.Action, a.cfg.NumActions, ErrConfig)
	}
	a.replay.Add(t)
	a.eps = a.eps * a.cfg.EpsDecay
	if a.eps < a.cfg.EpsEnd {
		a.eps = a.cfg.EpsEnd
	}
	return nil
}

// Learn performs one double-DQN gradient step over a replay batch and
// returns the mean TD loss. It is a no-op (returns 0, false, nil)
// until WarmUp transitions are buffered.
//
// The whole minibatch goes through forward and backward in one pass:
// current and next states are stacked into matrices, every layer runs
// as a blocked GEMM, and the backward through each Dense layer is
// exactly dX = dY·W and dW = dYᵀ·X. The GEMM kernels accumulate in
// ascending sample order, so the step is bit-identical to running the
// 32 samples one at a time — and it allocates nothing in steady
// state (all matrices are agent- or layer-owned scratch).
func (a *Agent) Learn() (loss float64, learned bool, err error) {
	if a.replay.Len() < a.cfg.WarmUp {
		return 0, false, nil
	}
	if err := a.replay.SampleInto(a.batch, a.rng); err != nil {
		return 0, false, err
	}
	anyNext := false
	for i, tr := range a.batch {
		row := a.nextX.Row(i)
		if tr.Done {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		copy(row, tr.NextState)
		anyNext = true
	}
	for i, tr := range a.batch {
		a.tdTarget[i] = tr.Reward
	}
	if anyNext {
		qNextT, ferr := a.target.net.ForwardBatch(a.nextX)
		if ferr != nil {
			return 0, false, ferr
		}
		var qNextO *vecmath.Matrix
		if !a.cfg.Vanilla {
			if qNextO, ferr = a.online.net.ForwardBatch(a.nextX); ferr != nil {
				return 0, false, ferr
			}
		}
		for i, tr := range a.batch {
			if tr.Done {
				continue
			}
			qNextTarget := qNextT.Row(i)
			best := vecmath.ArgMax(qNextTarget)
			if !a.cfg.Vanilla {
				// Double-DQN: the online net picks the action, the
				// target net evaluates it — removing the max-operator
				// overestimation bias.
				best = vecmath.ArgMax(qNextO.Row(i))
			}
			a.tdTarget[i] += a.cfg.Gamma * qNextTarget[best]
		}
	}
	for i, tr := range a.batch {
		copy(a.curX.Row(i), tr.State)
	}
	// The current-state batch forward overwrites the online net's
	// batch scratch (qNextO above), which is why the TD targets were
	// extracted first.
	qCur, ferr := a.online.net.ForwardBatch(a.curX)
	if ferr != nil {
		return 0, false, ferr
	}
	a.online.net.ZeroGrads()
	var total float64
	for i, tr := range a.batch {
		q := qCur.Row(i)
		copy(a.tgtBuf, q)
		a.tgtBuf[tr.Action] = a.tdTarget[i]
		l, lerr := nn.HuberLossInto(a.gradB.Row(i), q, a.tgtBuf, 1)
		if lerr != nil {
			return 0, false, lerr
		}
		total += l
	}
	if _, berr := a.online.net.BackwardBatch(a.gradB); berr != nil {
		return 0, false, berr
	}
	params := a.params
	// Average the accumulated gradients over the batch.
	inv := 1 / float64(len(a.batch))
	for _, p := range params {
		for j := range p.G {
			p.G[j] *= inv
		}
	}
	nn.ClipGrads(params, 10)
	if serr := a.opt.Step(params); serr != nil {
		return 0, false, serr
	}
	a.learnSteps++
	if a.learnSteps%a.cfg.TargetSync == 0 {
		if cerr := a.target.copyFrom(a.online); cerr != nil {
			return 0, false, cerr
		}
	}
	return total / float64(len(a.batch)), true, nil
}

// SaveState captures the online network's weights (the target
// network is re-synchronized on load).
func (a *Agent) SaveState() *nn.WeightState {
	return a.online.net.SaveWeights()
}

// LoadState restores weights saved from an agent with the same
// Config, synchronizing the target network to the loaded weights.
func (a *Agent) LoadState(s *nn.WeightState) error {
	if err := a.online.net.LoadWeights(s); err != nil {
		return fmt.Errorf("online net: %w", err)
	}
	if err := a.target.copyFrom(a.online); err != nil {
		return fmt.Errorf("target sync: %w", err)
	}
	return nil
}

// Env is a discrete-action episodic environment the agent can train
// against (used by Train and by the grouping package's K-selection
// MDP).
type Env interface {
	// Reset starts a new episode and returns the initial state.
	Reset() (vecmath.Vec, error)
	// Step applies an action and returns the next state, the reward
	// and whether the episode ended.
	Step(action int) (next vecmath.Vec, reward float64, done bool, err error)
}

// Train runs the agent against env for the given number of episodes
// (bounded by maxSteps per episode) and returns per-episode returns.
func (a *Agent) Train(env Env, episodes, maxSteps int) ([]float64, error) {
	if episodes <= 0 || maxSteps <= 0 {
		return nil, fmt.Errorf("train episodes=%d maxsteps=%d: %w", episodes, maxSteps, ErrConfig)
	}
	returns := make([]float64, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		state, err := env.Reset()
		if err != nil {
			return returns, fmt.Errorf("episode %d reset: %w", ep, err)
		}
		var total float64
		for step := 0; step < maxSteps; step++ {
			action, aerr := a.Act(state)
			if aerr != nil {
				return returns, aerr
			}
			next, reward, done, serr := env.Step(action)
			if serr != nil {
				return returns, fmt.Errorf("episode %d step %d: %w", ep, step, serr)
			}
			total += reward
			tr := Transition{State: state, Action: action, Reward: reward, NextState: next, Done: done}
			if oerr := a.Observe(tr); oerr != nil {
				return returns, oerr
			}
			if _, _, lerr := a.Learn(); lerr != nil {
				return returns, lerr
			}
			if done {
				break
			}
			state = next
		}
		returns = append(returns, total)
	}
	return returns, nil
}
