package cluster

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"dtmsvs/internal/sim"
)

// testSimConfig is small enough to run the full sharded pipeline many
// times in a unit test while exercising churn, regrouping, warm-up
// handover and every parallel stage.
func testSimConfig(seed int64, workers int) sim.Config {
	return sim.Config{
		Seed:             seed,
		NumUsers:         32,
		NumBS:            4,
		NumIntervals:     4,
		TicksPerInterval: 6,
		WarmupIntervals:  1,
		RegroupEvery:     2,
		CompressorEpochs: 2,
		AgentEpisodes:    10,
		ChurnPerInterval: 0.1,
		PrefetchDepth:    -1,
		Parallelism:      workers,
	}
}

func runCluster(t *testing.T, seed int64, workers, shards int) *Trace {
	t.Helper()
	tr, err := Run(Config{Sim: testSimConfig(seed, workers), Shards: shards})
	if err != nil {
		t.Fatalf("seed %d workers %d shards %d: %v", seed, workers, shards, err)
	}
	return tr
}

// TestRunDeterministic is the cluster engine's core guarantee: the
// merged trace is bit-identical for every worker count and every
// shard count — sharding and parallelism are scheduling decisions,
// never semantic ones.
func TestRunDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 97} {
		base := runCluster(t, seed, 1, 1)
		if len(base.Records) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for _, workers := range []int{1, 4, 8} {
			for _, shards := range []int{1, 2, 4} {
				tr := runCluster(t, seed, workers, shards)
				if !reflect.DeepEqual(tr.Records, base.Records) {
					t.Fatalf("seed %d workers %d shards %d: records diverged", seed, workers, shards)
				}
				if !reflect.DeepEqual(tr.Cells, base.Cells) {
					t.Fatalf("seed %d workers %d shards %d: cell stats diverged:\n got %+v\nwant %+v",
						seed, workers, shards, tr.Cells, base.Cells)
				}
				if tr.Handovers != base.Handovers || tr.ChurnedUsers != base.ChurnedUsers ||
					tr.CacheHitRate != base.CacheHitRate {
					t.Fatalf("seed %d workers %d shards %d: run stats diverged", seed, workers, shards)
				}
			}
		}
	}
}

// TestHandoverConservesUsers runs a churn-heavy scenario and checks
// that after every interval's migration pass each user twin lives in
// exactly one cell (the engine also enforces this invariant
// internally and fails the run on violation).
func TestHandoverConservesUsers(t *testing.T) {
	cfg := Config{Sim: testSimConfig(11, 0)}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Handovers() == 0 {
		t.Fatal("scenario produced no handovers; conservation untested")
	}
	var ids []int
	for _, c := range e.cells {
		ids = append(ids, c.eng.UserIDs()...)
	}
	if len(ids) != cfg.Sim.NumUsers {
		t.Fatalf("%d twins across cells, want %d", len(ids), cfg.Sim.NumUsers)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i {
			t.Fatalf("twin set corrupted at %d: got id %d (lost or duplicated twin)", i, id)
		}
	}
	// The owner map must agree with where each twin actually lives.
	for id, cell := range e.owner {
		if e.cells[cell].eng.ServingBSOf(id) < 0 {
			t.Fatalf("owner map says user %d is in cell %d, but the cell does not hold it", id, cell)
		}
	}
}

// TestRecordsSortedAndTagged checks the merge discipline: records
// sorted by (interval, cell, group), every cell tag within range.
func TestRecordsSortedAndTagged(t *testing.T) {
	tr := runCluster(t, 5, 0, 0)
	for i, r := range tr.Records {
		if r.BS < 0 || r.BS >= 4 {
			t.Fatalf("record %d: bs %d out of range", i, r.BS)
		}
		if i == 0 {
			continue
		}
		p := tr.Records[i-1]
		if r.Interval < p.Interval ||
			(r.Interval == p.Interval && r.BS < p.BS) ||
			(r.Interval == p.Interval && r.BS == p.BS && r.GroupID <= p.GroupID) {
			t.Fatalf("records out of order at %d: %+v after %+v", i, r, p)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Sim: testSimConfig(1, 0)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Shards = 5 // > NumBS
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for shards > NumBS, got %v", err)
	}
	bad = good
	bad.Shards = -1
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for negative shards, got %v", err)
	}
	bad = good
	bad.Sim.NumUsers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid sim config must be rejected")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New must reject invalid config")
	}
}
