// This file is the cluster engine's failure model: deterministic
// cell-failure injection (a faultinject.CellFault schedule in the
// config), quarantine, the twin evacuation pass that generalizes the
// handover pass to a whole dying cell, and revival. Every transition
// happens at a scheduling-interval boundary on the stepping
// goroutine, so degraded runs are bit-identical for any Parallelism,
// shard layout or kernel dispatch — failure handling is part of the
// deterministic trace, not an asynchronous event.

package cluster

import (
	"errors"
	"fmt"

	"dtmsvs/internal/channel"
)

// ErrCellFailure classifies every injected-failure outcome: the
// abort under the fail-fast policy, an evacuation with nowhere left
// to go (all cells down), and a broken quarantine invariant. Match
// with errors.Is.
var ErrCellFailure = errors.New("cluster: cell failure")

// FailurePolicy selects how the engine responds when a scheduled
// cell fault fires.
type FailurePolicy int

const (
	// FailFast aborts the run with an error wrapping ErrCellFailure —
	// the pre-failure-model behavior, and the default.
	FailFast FailurePolicy = iota
	// Degrade quarantines the failed cell, drops its edge cache and
	// evacuates its twins to the surviving cells; the run continues
	// in degraded mode. Scheduled revivals are ignored — the cell
	// stays dark for the rest of the run.
	Degrade
	// DegradeWithRevival is Degrade plus honoring CellFault.ReviveAt:
	// the cell returns empty and cold at that boundary and reabsorbs
	// users through the ordinary handover pass.
	DegradeWithRevival
)

func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case Degrade:
		return "degrade"
	case DegradeWithRevival:
		return "degrade-with-revival"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// SetFailurePolicy selects the engine's response to scheduled cell
// faults. Call before stepping; the default is FailFast. The policy
// is part of the deterministic behavior, so resuming a checkpoint
// under a different policy is rejected.
func (e *Engine) SetFailurePolicy(p FailurePolicy) { e.policy = p }

// CellsDown reports the number of currently quarantined cells.
func (e *Engine) CellsDown() int { return e.cellsDown }

// EvacuatedTwins reports the total twins evacuated from failed cells
// so far.
func (e *Engine) EvacuatedTwins() int { return e.evacuated }

// DegradedIntervals reports how many scheduling intervals have run
// with at least one cell quarantined.
func (e *Engine) DegradedIntervals() int { return e.degradedIntervals }

// applyFaults fires the configured cell faults scheduled for this
// boundary: revivals first (a plan may hand coverage back before
// another cell goes dark at the same boundary), then failures.
// Under FailFast the first firing fault aborts the run.
func (e *Engine) applyFaults(interval int) error {
	if len(e.faults) == 0 {
		return nil
	}
	if e.policy == DegradeWithRevival {
		for _, f := range e.faults {
			if f.ReviveAt == interval && e.cells[f.Cell].down {
				e.reviveCell(f.Cell)
			}
		}
	}
	for _, f := range e.faults {
		if f.FailAt != interval || e.cells[f.Cell].down {
			continue
		}
		if e.policy == FailFast {
			return fmt.Errorf("cell %d scheduled down at interval %d (policy %s): %w",
				f.Cell, interval, e.policy, ErrCellFailure)
		}
		if err := e.failCell(f.Cell, interval); err != nil {
			return err
		}
	}
	return nil
}

// failCell quarantines one cell: marks it (and its station) down,
// drops its edge cache — the node's contents are gone, though its
// hit/miss history still counts, those lookups were really served —
// and evacuates its twins. Degrading the last surviving cell is an
// error: the run has no coverage left.
func (e *Engine) failCell(id, interval int) error {
	c := e.cells[id]
	c.down = true
	e.down[id] = true
	e.cellsDown++
	e.failures++
	e.metFailures.Inc()
	e.metCellsDown.Set(float64(e.cellsDown))
	c.server.Cache().Drop()
	if e.cellsDown >= len(e.cells) {
		return fmt.Errorf("all %d cells down at interval %d: %w", len(e.cells), interval, ErrCellFailure)
	}
	return e.evacuate(id)
}

// reviveCell returns a quarantined cell to service. It comes back
// empty with a cold cache (its pipeline weights survived quarantine
// untouched); users flow back through the ordinary handover pass as
// their links rediscover the station.
func (e *Engine) reviveCell(id int) {
	c := e.cells[id]
	c.down = false
	e.down[id] = false
	e.cellsDown--
	e.revivals++
	e.metRevivals.Inc()
	e.metCellsDown.Set(float64(e.cellsDown))
}

// evacuate is the twin evacuation pass — the handover pass
// generalized to a dying cell: sequentially in global user-id order,
// every twin stranded on the failed cell is detached (UDT history,
// calibration EWMAs and private random stream intact) and attached
// to the cell of the nearest surviving base station, which hands it
// to the multicast group with the nearest code-space centroid. The
// pass ends with the same conservation and late-training checks the
// handover pass runs, so an evacuation can never lose or duplicate a
// twin.
func (e *Engine) evacuate(failed int) error {
	t0 := e.metEvacuation.Start()
	defer e.metEvacuation.ObserveSince(t0)
	moved := 0
	for id := range e.owner {
		if e.owner[id] != failed {
			continue
		}
		mu, ok := e.cells[failed].eng.DetachUser(id)
		if !ok {
			return fmt.Errorf("user %d not evacuable from cell %d: %w", id, failed, ErrCellFailure)
		}
		bs, err := channel.NearestAliveBS(e.stations, e.down, mu.Position())
		if err != nil {
			return fmt.Errorf("evacuating user %d: %w", id, err)
		}
		if err := e.cells[bs.ID].eng.AttachUser(mu); err != nil {
			return err
		}
		e.owner[id] = bs.ID
		e.cells[bs.ID].migratedIn++
		moved++
	}
	e.cells[failed].evacuated += moved
	e.evacuated += moved
	e.metEvacuated.Add(uint64(moved))
	if err := e.checkConservation("evacuation"); err != nil {
		return err
	}
	return e.lateTrain()
}
