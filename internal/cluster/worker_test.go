package cluster

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"dtmsvs/internal/checkpoint"
)

// runPartitioned drives a set of Workers through the full scenario by
// hand — the supervisor's exchange loop without the wire — and
// returns the merged trace.
func runPartitioned(t *testing.T, cfg Config, count int) *Trace {
	t.Helper()
	ws := make([]*Worker, count)
	for i := range ws {
		w, err := NewWorker(cfg, i, count)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Close()
		ws[i] = w
	}
	ctx := context.Background()
	exchange := func() {
		t.Helper()
		apply := make([][]Handover, count)
		for i, w := range ws {
			plan, err := w.PlanHandovers()
			if err != nil {
				t.Fatalf("worker %d plan: %v", i, err)
			}
			apply[i] = append(apply[i], plan...)
			for _, h := range plan {
				if dst := WorkerForCell(h.To, cfg.Defaulted().Sim.NumBS, count); dst != i {
					apply[dst] = append(apply[dst], h)
				}
			}
		}
		for i, w := range ws {
			if err := w.ApplyHandovers(apply[i]); err != nil {
				t.Fatalf("worker %d apply: %v", i, err)
			}
		}
	}
	d := cfg.Defaulted()
	for wi := 0; wi < d.Sim.WarmupIntervals; wi++ {
		for i, w := range ws {
			if err := w.WarmupStep(ctx); err != nil {
				t.Fatalf("worker %d warmup: %v", i, err)
			}
		}
		exchange()
	}
	for i, w := range ws {
		if err := w.TrainAndBuild(ctx); err != nil {
			t.Fatalf("worker %d train: %v", i, err)
		}
	}
	tr := &Trace{}
	for interval := 0; interval < d.Sim.NumIntervals; interval++ {
		for i, w := range ws {
			recs, err := w.StepInterval(ctx, interval)
			if err != nil {
				t.Fatalf("worker %d interval %d: %v", i, interval, err)
			}
			tr.Records = append(tr.Records, recs...)
		}
		exchange()
	}
	var hits, misses int
	for _, w := range ws {
		cells, h, m := w.FinishStats()
		tr.Cells = append(tr.Cells, cells...)
		hits += h
		misses += m
		tr.Handovers += w.Handovers()
		tr.ChurnedUsers += w.Churned()
	}
	if total := hits + misses; total > 0 {
		tr.CacheHitRate = float64(hits) / float64(total)
	}
	return tr
}

// TestWorkerPartitionBitIdentical is the distributed engine's core
// guarantee at the partition layer: stepping disjoint cell blocks in
// separate Workers and exchanging boundary handovers (twins crossing
// workers as wire bytes) reproduces the single-process merged trace
// bit for bit, for every worker count.
func TestWorkerPartitionBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 97} {
		cfg := Config{Sim: testSimConfig(seed, 2)}
		base, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: single-process run: %v", seed, err)
		}
		for _, count := range []int{1, 2, 4} {
			tr := runPartitioned(t, cfg, count)
			if !reflect.DeepEqual(tr.Records, base.Records) {
				t.Fatalf("seed %d workers %d: records diverged", seed, count)
			}
			if !reflect.DeepEqual(tr.Cells, base.Cells) {
				t.Fatalf("seed %d workers %d: cell stats diverged:\n got %+v\nwant %+v",
					seed, count, tr.Cells, base.Cells)
			}
			if tr.Handovers != base.Handovers || tr.ChurnedUsers != base.ChurnedUsers ||
				tr.CacheHitRate != base.CacheHitRate {
				t.Fatalf("seed %d workers %d: run stats diverged: got %+v want %+v",
					seed, count, tr, base)
			}
		}
	}
}

// TestWorkerCheckpointRoundTrip checkpoints one worker mid-run,
// restores it into a fresh worker, and verifies the restored state
// re-encodes to identical bytes — the property worker crash recovery
// rests on.
func TestWorkerCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Sim: testSimConfig(7, 1)}
	const count = 2
	ws := make([]*Worker, count)
	for i := range ws {
		w, err := NewWorker(cfg, i, count)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Close()
		ws[i] = w
	}
	ctx := context.Background()
	step := func() {
		t.Helper()
		apply := make([][]Handover, count)
		for i, w := range ws {
			plan, err := w.PlanHandovers()
			if err != nil {
				t.Fatalf("plan %d: %v", i, err)
			}
			apply[i] = append(apply[i], plan...)
			for _, h := range plan {
				if dst := WorkerForCell(h.To, cfg.Defaulted().Sim.NumBS, count); dst != i {
					apply[dst] = append(apply[dst], h)
				}
			}
		}
		for i, w := range ws {
			if err := w.ApplyHandovers(apply[i]); err != nil {
				t.Fatalf("apply %d: %v", i, err)
			}
		}
	}
	for wi := 0; wi < cfg.Defaulted().Sim.WarmupIntervals; wi++ {
		for _, w := range ws {
			if err := w.WarmupStep(ctx); err != nil {
				t.Fatal(err)
			}
		}
		step()
	}
	for _, w := range ws {
		if err := w.TrainAndBuild(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for interval := 0; interval < 2; interval++ {
		for _, w := range ws {
			if _, err := w.StepInterval(ctx, interval); err != nil {
				t.Fatal(err)
			}
		}
		step()
	}

	encode := func(w *Worker) []byte {
		t.Helper()
		var buf bytes.Buffer
		cw := checkpoint.NewWriter(&buf, "dtworker", 0)
		if err := w.WriteState(cw); err != nil {
			t.Fatalf("write state: %v", err)
		}
		if err := cw.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		return buf.Bytes()
	}
	blob := encode(ws[0])
	fresh, err := NewWorker(cfg, 0, count)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	cr, err := checkpoint.NewReader(bytes.NewReader(blob), "dtworker", 0)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := fresh.ReadState(cr); err != nil {
		t.Fatalf("read state: %v", err)
	}
	if err := cr.Finish(); err != nil {
		t.Fatalf("reader finish: %v", err)
	}
	if fresh.NumUsers() != ws[0].NumUsers() {
		t.Fatalf("restored worker has %d users, want %d", fresh.NumUsers(), ws[0].NumUsers())
	}
	if got := encode(fresh); !bytes.Equal(got, blob) {
		t.Fatalf("restored worker re-encodes to different bytes (%d vs %d)", len(got), len(blob))
	}
}
