// This file serializes the cluster engine's boundary state: the
// ownership map and handover counters that live on the engine, plus
// each cell's full simulation state via sim's checkpoint sections.
// Cells are written in id order, so the stream layout is independent
// of shard scheduling; the per-cell trace buffers are always empty at
// an interval boundary (StepInterval drains them when merging) and
// never ride in a checkpoint.

package cluster

import (
	"fmt"

	"dtmsvs/internal/checkpoint"
)

// WriteState appends the engine's boundary state to a checkpoint: a
// "cluster" section followed by each cell's sim sections in id order.
func (e *Engine) WriteState(cw *checkpoint.Writer) error {
	if err := cw.Section("cluster", func(enc *checkpoint.Enc) {
		enc.Ints(e.owner)
		enc.Int(e.handovers)
		enc.Bool(e.trained)
		enc.U32(uint32(len(e.cells)))
		for _, c := range e.cells {
			enc.Bool(c.built)
			enc.Int(c.migratedIn)
			enc.Bool(c.down)
			enc.Int(c.evacuated)
		}
		// The failure policy rides along as a guard: it changes the
		// degraded run's behavior but is a session option, outside the
		// config fingerprint, so resume verifies it explicitly.
		enc.U8(uint8(e.policy))
		enc.Int(e.failures)
		enc.Int(e.revivals)
		enc.Int(e.evacuated)
		enc.Int(e.degradedIntervals)
	}); err != nil {
		return err
	}
	for _, c := range e.cells {
		if err := c.eng.WriteState(cw); err != nil {
			return fmt.Errorf("cell %d: %w", c.id, err)
		}
	}
	return nil
}

// ReadState restores boundary state written by WriteState into a
// freshly constructed engine of the identical configuration. Each
// cell's population is rebuilt from its own checkpoint sections,
// replacing the initial placement New performed.
func (e *Engine) ReadState(cr *checkpoint.Reader) error {
	d, err := cr.Section("cluster")
	if err != nil {
		return err
	}
	owner := d.Ints()
	handovers := d.Int()
	trained := d.Bool()
	nCells := d.U32()
	if derr := d.Err(); derr != nil {
		return derr
	}
	if int(nCells) != len(e.cells) {
		return fmt.Errorf("checkpoint has %d cells, engine has %d: %w", nCells, len(e.cells), checkpoint.ErrCorrupt)
	}
	if len(owner) != len(e.owner) {
		return fmt.Errorf("checkpoint owns %d users, engine has %d: %w", len(owner), len(e.owner), checkpoint.ErrCorrupt)
	}
	for id, c := range owner {
		if c < 0 || c >= len(e.cells) {
			return fmt.Errorf("user %d owned by cell %d of %d: %w", id, c, len(e.cells), checkpoint.ErrCorrupt)
		}
	}
	built := make([]bool, len(e.cells))
	migrated := make([]int, len(e.cells))
	down := make([]bool, len(e.cells))
	cellEvac := make([]int, len(e.cells))
	cellsDown := 0
	for i := range e.cells {
		built[i] = d.Bool()
		migrated[i] = d.Int()
		down[i] = d.Bool()
		cellEvac[i] = d.Int()
		if down[i] {
			cellsDown++
		}
	}
	policy := FailurePolicy(d.U8())
	failures := d.Int()
	revivals := d.Int()
	evacuated := d.Int()
	degraded := d.Int()
	if derr := d.Close(); derr != nil {
		return derr
	}
	if policy != e.policy {
		return fmt.Errorf("checkpoint taken under cell-failure policy %s, session opened with %s: %w",
			policy, e.policy, checkpoint.ErrConfigMismatch)
	}
	for id, c := range owner {
		if down[c] {
			return fmt.Errorf("user %d owned by quarantined cell %d: %w", id, c, checkpoint.ErrCorrupt)
		}
	}
	copy(e.owner, owner)
	e.handovers = handovers
	e.trained = trained
	e.records = e.records[:0]
	e.cellsDown = cellsDown
	e.failures = failures
	e.revivals = revivals
	e.evacuated = evacuated
	e.degradedIntervals = degraded
	e.metCellsDown.Set(float64(cellsDown))
	for i, c := range e.cells {
		c.built = built[i]
		c.migratedIn = migrated[i]
		c.down = down[i]
		c.evacuated = cellEvac[i]
		e.down[i] = down[i]
		if err := c.eng.ReadState(cr); err != nil {
			return fmt.Errorf("cell %d: %w", c.id, err)
		}
	}
	return nil
}
