// Package cluster is the sharded multi-BS simulation engine (the
// paper's Fig. 1 architecture at campus/city scale): the map is
// partitioned into base-station coverage cells — the Voronoi regions
// of the channel.GridDeploy stations — and each cell runs its own
// full digital-twin pipeline (UDT pool, grouping, abstraction,
// demand forecast, multicast streaming) against its own edge cache.
// Cells are grouped into shards that execute concurrently on the
// internal/parallel pool, which fans out the previously sequential
// streaming phase along with everything else.
//
// Between reservation intervals a deterministic handover pass
// migrates user twins — UDT state, calibration offsets and the
// user's private random stream — to the cell of their new nearest
// base station, and attaches each migrated twin to the multicast
// group with the nearest code-space centroid.
//
// Determinism: every cell derives its random streams from (Seed,
// tag, cell salt, ...), users own global-id-keyed streams that
// travel with their twin, and the handover pass runs sequentially in
// global user-id order. The merged ClusterTrace is therefore
// bit-identical for any Parallelism and any shard count — sharding
// is a scheduling decision, never a semantic one.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"dtmsvs/internal/channel"
	"dtmsvs/internal/edge"
	"dtmsvs/internal/faultinject"
	"dtmsvs/internal/mobility"
	"dtmsvs/internal/obs"
	"dtmsvs/internal/parallel"
	"dtmsvs/internal/sim"
	"dtmsvs/internal/stats"
	"dtmsvs/internal/video"
)

// ErrConfig indicates an invalid cluster configuration.
var ErrConfig = errors.New("cluster: invalid config")

// streamCatalog derives the shared catalog's generation stream from
// the run seed (disjoint from the sim package's user/group/builder
// tag space).
const streamCatalog uint64 = 64

// Config parameterizes a sharded cluster run.
type Config struct {
	// Sim is the base scenario. NumBS sets the number of coverage
	// cells; CacheBytes is split evenly across the per-cell edge
	// caches so total cache capacity matches the monolithic engine.
	// PerBSGrouping is implied by the cell partition and ignored.
	Sim sim.Config
	// Shards is the number of concurrently executing cell groups
	// (0 = one shard per base station). The trace is bit-identical
	// for every value in [1, NumBS].
	Shards int
	// Faults schedules deterministic cell failures (see
	// faultinject.CellFault and CellPlan). Empty means no injection;
	// with a schedule, the engine's FailurePolicy decides whether a
	// firing fault aborts the run (FailFast, the default) or degrades
	// it. At most one fault per cell.
	Faults []faultinject.CellFault
}

func (c Config) withDefaults() Config {
	c.Sim = c.Sim.Defaulted()
	if c.Shards == 0 {
		c.Shards = c.Sim.NumBS
	}
	return c
}

// Defaulted returns the configuration with every default filled in,
// so callers stepping the engine see the values it runs with.
func (c Config) Defaulted() Config { return c.withDefaults() }

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Sim.Validate(); err != nil {
		return err
	}
	d := c.withDefaults()
	if d.Shards < 1 || d.Shards > d.Sim.NumBS {
		return fmt.Errorf("%d shards for %d base stations: %w", d.Shards, d.Sim.NumBS, ErrConfig)
	}
	seen := make(map[int]bool, len(d.Faults))
	for _, f := range d.Faults {
		switch {
		case f.Cell < 0 || f.Cell >= d.Sim.NumBS:
			return fmt.Errorf("fault cell %d of %d: %w", f.Cell, d.Sim.NumBS, ErrConfig)
		case f.FailAt < 0 || f.FailAt >= d.Sim.NumIntervals:
			return fmt.Errorf("fault at interval %d of %d: %w", f.FailAt, d.Sim.NumIntervals, ErrConfig)
		case f.ReviveAt >= 0 && (f.ReviveAt <= f.FailAt || f.ReviveAt >= d.Sim.NumIntervals):
			return fmt.Errorf("revival at interval %d for failure at %d of %d: %w",
				f.ReviveAt, f.FailAt, d.Sim.NumIntervals, ErrConfig)
		case seen[f.Cell]:
			return fmt.Errorf("cell %d scheduled to fail twice: %w", f.Cell, ErrConfig)
		}
		seen[f.Cell] = true
	}
	return nil
}

// Record is one (interval, cell, group) row of a cluster trace.
type Record struct {
	// BS is the base station / coverage cell that served the group.
	BS int `json:"bs"`
	sim.GroupIntervalRecord
}

// CellStats summarizes one coverage cell at the end of a run.
type CellStats struct {
	BS           int     `json:"bs"`
	Users        int     `json:"users"`
	K            int     `json:"k"`
	Silhouette   float64 `json:"silhouette"`
	CacheHitRate float64 `json:"cacheHitRate"`
	ChurnedUsers int     `json:"churnedUsers"`
	// AttachedTwins counts twins migrated into the cell over the
	// whole run (initial placement excluded).
	AttachedTwins int `json:"attachedTwins"`
	// Down reports whether the cell was still quarantined when the
	// run ended.
	Down bool `json:"down,omitempty"`
	// EvacuatedTwins counts twins evacuated out of this cell by
	// failure recovery.
	EvacuatedTwins int `json:"evacuatedTwins,omitempty"`
}

// Trace is the merged output of a cluster run. Records are sorted by
// (interval, cell, group) regardless of shard scheduling.
type Trace struct {
	Records []Record
	Cells   []CellStats
	// Handovers counts cross-cell twin migrations over the run.
	Handovers int
	// ChurnedUsers counts users replaced across all cells.
	ChurnedUsers int
	// CacheHitRate is the lookup-weighted aggregate over all per-cell
	// edge caches.
	CacheHitRate float64
	// CellFailures and Revivals count injected cell failures and the
	// revivals that returned coverage; EvacuatedTwins counts twins
	// moved off dying cells; DegradedIntervals counts scheduling
	// intervals that ran with at least one cell quarantined. All zero
	// in healthy runs.
	CellFailures      int
	Revivals          int
	EvacuatedTwins    int
	DegradedIntervals int
}

// RadioAccuracy returns the paper's prediction-accuracy metric over
// all cells' radio demand.
func (t *Trace) RadioAccuracy() (float64, error) {
	var pred, actual []float64
	for _, r := range t.Records {
		pred = append(pred, r.PredictedRBs)
		actual = append(actual, r.ActualRBs)
	}
	return stats.PredictionAccuracy(pred, actual)
}

// ComputeAccuracy returns the volume accuracy over computing demand.
func (t *Trace) ComputeAccuracy() (float64, error) {
	var pred, actual []float64
	for _, r := range t.Records {
		pred = append(pred, r.PredictedCycles)
		actual = append(actual, r.ActualCycles)
	}
	return stats.VolumeAccuracy(pred, actual)
}

// cellState is the engine's bookkeeping for one coverage cell.
type cellState struct {
	id     int
	eng    *sim.Simulation
	server *edge.Server
	trace  *sim.Trace
	built  bool
	// migratedIn counts twins handed over into this cell (initial
	// placement excluded).
	migratedIn int
	// down marks the cell quarantined: its station takes no links,
	// its pipeline runs no intervals, and the handover pass refuses
	// to route twins to it.
	down bool
	// evacuated counts twins evacuated out of this cell over the run.
	evacuated int
}

// Engine is a configured cluster instance.
type Engine struct {
	cfg      Config
	pool     *parallel.Pool
	campus   *mobility.Map
	stations []*channel.BaseStation
	catalog  *video.Catalog
	cells    []*cellState
	// shards[s] lists the cell ids shard s owns (contiguous blocks).
	shards [][]int
	// owner[id] is the cell currently holding user id's twin.
	owner     []int
	handovers int
	trained   bool
	// Failure model (see failure.go): the fault schedule in firing
	// order, the response policy, the quarantine mask shared with
	// every cell's sim engine (written only between fan-outs), and
	// the degradation counters.
	faults            []faultinject.CellFault
	policy            FailurePolicy
	down              []bool
	cellsDown         int
	failures          int
	revivals          int
	evacuated         int
	degradedIntervals int
	// records accumulates the merged (interval, cell, group)-ordered
	// trace rows when retain is set; a session streaming to a sink
	// disables retention so the full trace never lives in heap.
	records []Record
	retain  bool

	// Observability mounted by SetMetrics; nil-safe when absent.
	metHandover   *obs.Stage
	metHandovers  *obs.Counter
	metEvacuation *obs.Stage
	metCellsDown  *obs.Gauge
	metEvacuated  *obs.Counter
	metDegraded   *obs.Counter
	metFailures   *obs.Counter
	metRevivals   *obs.Counter
}

// New constructs a cluster engine and places the initial population.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.withDefaults()
	d.Sim.PerBSGrouping = false // the cell partition is the per-BS split

	pool := parallel.New(d.Sim.Parallelism)
	campus := mobility.CampusMap()
	stations, err := channel.GridDeploy(campus, d.Sim.NumBS, d.Sim.TxPowerDBm)
	if err != nil {
		return nil, err
	}
	catalogRng := rand.New(rand.NewSource(parallel.DeriveSeed(d.Sim.Seed, streamCatalog)))
	catalog, err := video.NewCatalog(video.CatalogConfig{
		NumVideos:       d.Sim.CatalogSize,
		CategoryWeights: d.Sim.CategoryWeights,
	}, catalogRng)
	if err != nil {
		return nil, err
	}

	numCells := d.Sim.NumBS
	cellBytes := d.Sim.CacheBytes / int64(numCells)
	if cellBytes <= 0 {
		cellBytes = d.Sim.CacheBytes
	}
	// Split the worker budget across the cells that can train
	// concurrently (one per shard, capped by the pool), so the
	// per-cell GEMM crews sum to at most Parallelism workers instead
	// of oversubscribing the host Shards-fold. Width only moves
	// wall-clock time — cell traces are bit-identical at any value.
	concurrent := d.Shards
	if concurrent > pool.Workers() {
		concurrent = pool.Workers()
	}
	gemmWorkers := pool.Workers() / concurrent
	if gemmWorkers < 1 {
		gemmWorkers = 1
	}
	// One quarantine mask, aliased by every cell's sim engine, so a
	// failure routes handovers and churn arrivals around the dark
	// station in every sibling cell at once.
	down := make([]bool, numCells)
	cells := make([]*cellState, numCells)
	for c := 0; c < numCells; c++ {
		server, serr := edge.NewServer(cellBytes, edge.DefaultTranscodeModel(), catalog, d.Sim.CatalogSize/10)
		if serr != nil {
			return nil, serr
		}
		eng, cerr := sim.NewCell(d.Sim, sim.CellOptions{
			Stations:    stations,
			Campus:      campus,
			Catalog:     catalog,
			Server:      server,
			Pool:        pool,
			Salt:        uint64(c) + 1,
			GEMMWorkers: gemmWorkers,
			DownBS:      down,
		})
		if cerr != nil {
			return nil, fmt.Errorf("cell %d: %w", c, cerr)
		}
		cells[c] = &cellState{id: c, eng: eng, server: server, trace: sim.NewTrace()}
	}

	shards := make([][]int, d.Shards)
	for c := 0; c < numCells; c++ {
		s := c * d.Shards / numCells
		shards[s] = append(shards[s], c)
	}

	// Faults fire in deterministic (FailAt, Cell) order regardless of
	// how the schedule was written down.
	faults := append([]faultinject.CellFault(nil), d.Faults...)
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].FailAt != faults[j].FailAt {
			return faults[i].FailAt < faults[j].FailAt
		}
		return faults[i].Cell < faults[j].Cell
	})

	e := &Engine{
		cfg:      d,
		pool:     pool,
		campus:   campus,
		stations: stations,
		catalog:  catalog,
		cells:    cells,
		shards:   shards,
		owner:    make([]int, d.Sim.NumUsers),
		faults:   faults,
		down:     down,
		retain:   true,
	}

	// Spawn the population on the pool (user creation draws only from
	// each user's private stream) and place every twin in the cell of
	// its initial serving base station.
	spawned := make([]*sim.User, d.Sim.NumUsers)
	if err := pool.For(d.Sim.NumUsers, func(i int) error {
		mu, serr := cells[0].eng.SpawnUser(i)
		if serr != nil {
			return fmt.Errorf("spawn user %d: %w", i, serr)
		}
		spawned[i] = mu
		return nil
	}); err != nil {
		return nil, err
	}
	for id, mu := range spawned {
		bs := mu.ServingBS()
		if aerr := cells[bs].eng.AttachUser(mu); aerr != nil {
			return nil, aerr
		}
		e.owner[id] = bs
	}
	return e, nil
}

// eachCell runs fn over every cell, fanning whole shards across the
// pool; cells within a shard run sequentially in id order. fn must
// touch only the given cell's state. Cancellation is cooperative:
// once ctx is done no further cell starts, and ctx.Err() is returned.
func (e *Engine) eachCell(ctx context.Context, fn func(*cellState) error) error {
	return e.pool.ForContext(ctx, len(e.shards), func(si int) error {
		var firstErr error
		for _, ci := range e.shards[si] {
			if ctx.Err() != nil {
				break
			}
			if err := fn(e.cells[ci]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	})
}

// migrate is the deterministic twin-handover pass: sequentially in
// global user-id order, every user whose link now serves a base
// station outside its cell is detached (UDT, calibration state and
// random stream intact) and attached to the new station's cell. The
// pass verifies twin conservation — no user lost or duplicated — and
// constructs groups for cells that gained their first users after
// training.
func (e *Engine) migrate() error {
	t0 := e.metHandover.Start()
	defer e.metHandover.ObserveSince(t0)
	for id := range e.owner {
		from := e.owner[id]
		bs := e.cells[from].eng.ServingBSOf(id)
		if bs < 0 {
			return fmt.Errorf("user %d missing from cell %d: %w", id, from, ErrConfig)
		}
		if bs == from {
			continue
		}
		if e.cells[bs].down {
			// Links route around quarantined stations at every tick, so
			// a handover into a dark cell means the quarantine mask and
			// the link layer disagree — stop before the twin is lost.
			return fmt.Errorf("user %d handed over to quarantined cell %d: %w", id, bs, ErrCellFailure)
		}
		mu, ok := e.cells[from].eng.DetachUser(id)
		if !ok {
			return fmt.Errorf("user %d not detachable from cell %d: %w", id, from, ErrConfig)
		}
		if err := e.cells[bs].eng.AttachUser(mu); err != nil {
			return err
		}
		e.owner[id] = bs
		e.cells[bs].migratedIn++
		e.handovers++
		e.metHandovers.Inc()
	}
	if err := e.checkConservation("handover"); err != nil {
		return err
	}
	return e.lateTrain()
}

// checkConservation verifies the twin-conservation invariant — every
// user lives in exactly one cell — after a handover or evacuation
// pass.
func (e *Engine) checkConservation(pass string) error {
	total := 0
	for _, c := range e.cells {
		total += c.eng.NumUsers()
	}
	if total != len(e.owner) {
		return fmt.Errorf("%d twins after %s, want %d (twin lost or duplicated): %w",
			total, pass, len(e.owner), ErrConfig)
	}
	return nil
}

// lateTrain fits cells that gained their first users after the
// cluster trained: their pipelines are still untrained, so fit them
// on the twins that just arrived before the first construction.
func (e *Engine) lateTrain() error {
	if !e.trained {
		return nil
	}
	for _, c := range e.cells {
		if !c.built && c.eng.NumUsers() > 0 {
			if err := c.eng.Train(); err != nil {
				return fmt.Errorf("cell %d late train: %w", c.id, err)
			}
			if err := c.eng.BuildGroups(); err != nil {
				return fmt.Errorf("cell %d late construction: %w", c.id, err)
			}
			c.built = true
		}
	}
	return nil
}

// Close releases every cell's training GEMM workers. The engine
// stays readable afterwards — further training GEMMs would run
// sequentially with identical results. Idempotent.
func (e *Engine) Close() {
	for _, c := range e.cells {
		c.eng.Close()
	}
}

// SetMetrics mounts reg on the cluster: the interval/handover stage
// timer and handover counter on the engine itself, and every cell's
// engine under a cell="<id>" label, so per-cell stage histograms and
// cache counters identify the straggler shard directly. Call before
// stepping; a nil reg is a no-op.
func (e *Engine) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.metHandover = reg.Stage("interval/handover")
	e.metHandovers = reg.Counter("dtmsvs_handovers_total", "Cross-cell twin migrations.")
	e.metEvacuation = reg.Stage("interval/evacuation")
	e.metCellsDown = reg.Gauge("dtmsvs_cells_down", "Coverage cells currently quarantined by failure injection.")
	e.metEvacuated = reg.Counter("dtmsvs_evacuated_twins_total", "Twins evacuated from failed cells.")
	e.metDegraded = reg.Counter("dtmsvs_degraded_intervals_total", "Scheduling intervals run with at least one cell down.")
	e.metFailures = reg.Counter("dtmsvs_cell_failures_total", "Injected cell failures fired.")
	e.metRevivals = reg.Counter("dtmsvs_cell_revivals_total", "Quarantined cells returned to service.")
	for _, c := range e.cells {
		c.eng.SetMetrics(reg, obs.Label{Name: "cell", Value: strconv.Itoa(c.id)})
	}
}

// Handovers reports cross-cell twin migrations so far.
func (e *Engine) Handovers() int { return e.handovers }

// Config returns the engine's fully defaulted configuration.
func (e *Engine) Config() Config { return e.cfg }

// Churned reports the users replaced by churn so far, summed over all
// cells.
func (e *Engine) Churned() int {
	var n int
	for _, c := range e.cells {
		n += c.eng.Churned()
	}
	return n
}

// SetRetainRecords controls whether the engine accumulates the merged
// trace rows for Finish. Sessions streaming to a sink disable
// retention so the full trace never lives in heap; Finish then
// returns run-level statistics with an empty Records slice.
func (e *Engine) SetRetainRecords(retain bool) { e.retain = retain }

// WarmupStep runs one warm-up interval across all cells followed by
// the twin-handover pass, so cells train on the populations they will
// actually serve. Call it Config.Sim.WarmupIntervals times before
// TrainAndBuild.
func (e *Engine) WarmupStep(ctx context.Context) error {
	if err := e.eachCell(ctx, func(c *cellState) error {
		if c.down || c.eng.NumUsers() == 0 {
			return nil
		}
		if err := c.eng.WarmupIntervalContext(ctx); err != nil {
			return fmt.Errorf("cell %d warmup: %w", c.id, err)
		}
		return nil
	}); err != nil {
		return err
	}
	return e.migrate()
}

// TrainAndBuild fits every populated cell's grouping pipeline and
// runs the initial group construction. Cells that are empty now but
// gain users later are trained lazily by the handover pass.
func (e *Engine) TrainAndBuild(ctx context.Context) error {
	if err := e.eachCell(ctx, func(c *cellState) error {
		if c.down || c.eng.NumUsers() == 0 {
			return nil
		}
		if err := c.eng.Train(); err != nil {
			return fmt.Errorf("cell %d train: %w", c.id, err)
		}
		if err := c.eng.BuildGroupsContext(ctx); err != nil {
			return fmt.Errorf("cell %d construction: %w", c.id, err)
		}
		c.built = true
		return nil
	}); err != nil {
		return err
	}
	e.trained = true
	return nil
}

// StepInterval runs one reservation interval — whole shards
// concurrently: predict, collect, stream, abstract, churn, regroup —
// followed by the twin-handover pass, and returns the interval's
// merged records in (cell, group) order. Cells append into their own
// per-interval buffers, so the concatenation in cell-id order is the
// same (interval, cell, group) ordering the whole-run trace carries.
func (e *Engine) StepInterval(ctx context.Context, interval int) ([]Record, error) {
	// Scheduled cell faults fire at the boundary, before the interval
	// fans out: revivals restore coverage, failures quarantine the
	// cell and evacuate its twins (or abort, under fail-fast).
	if err := e.applyFaults(interval); err != nil {
		return nil, err
	}
	if e.cellsDown > 0 {
		e.degradedIntervals++
		e.metDegraded.Inc()
	}
	if err := e.eachCell(ctx, func(c *cellState) error {
		if c.down || c.eng.NumUsers() == 0 {
			return nil
		}
		if err := c.eng.RunIntervalContext(ctx, interval, c.trace); err != nil {
			return fmt.Errorf("cell %d: %w", c.id, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := e.migrate(); err != nil {
		return nil, err
	}
	var out []Record
	for _, c := range e.cells {
		for _, r := range c.trace.Records {
			out = append(out, Record{BS: c.id, GroupIntervalRecord: r})
		}
		// The cell buffer only ever holds the current interval; recycle
		// its capacity for the next step.
		c.trace.Records = c.trace.Records[:0]
	}
	if e.retain {
		e.records = append(e.records, out...)
	}
	return out, nil
}

// Finish merges the per-cell statistics (and, when retention is on,
// the accumulated records) into the cluster trace. Records are in
// (interval, cell, group) order by construction.
func (e *Engine) Finish() *Trace {
	tr := &Trace{
		Handovers:         e.handovers,
		Records:           e.records,
		CellFailures:      e.failures,
		Revivals:          e.revivals,
		EvacuatedTwins:    e.evacuated,
		DegradedIntervals: e.degradedIntervals,
	}
	var hits, misses int
	for _, c := range e.cells {
		c.eng.FinishTrace(c.trace)
		h, m := c.server.Cache().Counts()
		hits += h
		misses += m
		tr.Cells = append(tr.Cells, CellStats{
			BS:             c.id,
			Users:          c.eng.NumUsers(),
			K:              c.trace.K,
			Silhouette:     c.trace.Silhouette,
			CacheHitRate:   c.trace.CacheHitRate,
			ChurnedUsers:   c.trace.ChurnedUsers,
			AttachedTwins:  c.migratedIn,
			Down:           c.down,
			EvacuatedTwins: c.evacuated,
		})
		tr.ChurnedUsers += c.trace.ChurnedUsers
	}
	if total := hits + misses; total > 0 {
		tr.CacheHitRate = float64(hits) / float64(total)
	}
	return tr
}

// Run executes the sharded scenario and returns the merged trace.
func (e *Engine) Run() (*Trace, error) { return e.RunContext(context.Background()) }

// RunContext executes the sharded scenario under ctx, with
// cancellation checked at every interval boundary. A cancelled run
// returns ctx.Err() and no trace.
func (e *Engine) RunContext(ctx context.Context) (*Trace, error) {
	for w := 0; w < e.cfg.Sim.WarmupIntervals; w++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.WarmupStep(ctx); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.TrainAndBuild(ctx); err != nil {
		return nil, err
	}
	for interval := 0; interval < e.cfg.Sim.NumIntervals; interval++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := e.StepInterval(ctx, interval); err != nil {
			return nil, err
		}
	}
	return e.Finish(), nil
}

// Run executes a sharded cluster scenario end to end.
func Run(cfg Config) (*Trace, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run()
}
