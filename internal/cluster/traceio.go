package cluster

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteRecordsJSON serializes cluster trace records as a JSON array.
func WriteRecordsJSON(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadRecordsJSON decodes a JSON array of cluster trace records.
func ReadRecordsJSON(r io.Reader) ([]Record, error) {
	var out []Record
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode cluster trace: %w", err)
	}
	return out, nil
}

// WriteRecordsCSV writes cluster trace records as CSV with a header
// row: the monolithic trace schema prefixed with the serving cell.
func WriteRecordsCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	header := []string{
		"bs", "interval", "group_id", "size",
		"predicted_rbs", "actual_rbs", "allocated_rbs",
		"predicted_cycles", "actual_cycles",
		"predicted_bits", "actual_bits",
		"predicted_waste_bits", "actual_waste_bits",
		"actual_engagement_s",
		"worst_snr_db", "bitrate_bps",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 10, 64) }
	for i, r := range records {
		row := []string{
			strconv.Itoa(r.BS),
			strconv.Itoa(r.Interval),
			strconv.Itoa(r.GroupID),
			strconv.Itoa(r.Size),
			f(r.PredictedRBs), f(r.ActualRBs), strconv.Itoa(r.AllocatedRBs),
			f(r.PredictedCycles), f(r.ActualCycles),
			f(r.PredictedBits), f(r.ActualBits),
			f(r.PredictedWasteBits), f(r.ActualWasteBits),
			f(r.ActualEngagementS),
			f(r.WorstSNRdB), f(r.BitrateBps),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
