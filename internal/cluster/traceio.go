package cluster

import (
	"io"
	"strconv"

	"dtmsvs/internal/sim"
	"dtmsvs/internal/tracebin"
	"dtmsvs/internal/traceio"
)

// recordHeader is the cluster trace's CSV schema: the monolithic
// schema prefixed with the serving cell.
var recordHeader = append([]string{"bs"}, (sim.GroupIntervalRecord{}).CSVHeader()...)

// CSVHeader returns the record's flat CSV schema.
func (r Record) CSVHeader() []string { return recordHeader }

// AppendCSVRow appends the record's CSV fields to dst.
func (r Record) AppendCSVRow(dst []string) []string {
	dst = append(dst, strconv.Itoa(r.BS))
	return r.GroupIntervalRecord.AppendCSVRow(dst)
}

// WriteRecordsJSON serializes cluster trace records as a JSON array.
func WriteRecordsJSON(w io.Writer, records []Record) error {
	return traceio.WriteJSONArray(w, records)
}

// ReadRecordsJSON decodes a JSON array of cluster trace records.
func ReadRecordsJSON(r io.Reader) ([]Record, error) {
	return traceio.ReadJSONArray[Record](r, "cluster trace")
}

// WriteRecordsCSV writes cluster trace records as CSV with a header
// row.
func WriteRecordsCSV(w io.Writer, records []Record) error {
	return traceio.WriteCSV(w, records)
}

// BinRecord flattens the record into the binary columnar trace row.
func (r Record) BinRecord() tracebin.Record {
	return r.GroupIntervalRecord.BinRecord(r.BS)
}

// RecordFromBin is the inverse of BinRecord, keeping the cell tag.
func RecordFromBin(b tracebin.Record) Record {
	return Record{BS: b.BS, GroupIntervalRecord: sim.RecordFromBin(b)}
}

// WriteRecordsBin writes cluster trace records in the binary columnar
// format.
func WriteRecordsBin(w io.Writer, records []Record) error {
	bw, err := tracebin.NewWriter(w, tracebin.WriterOptions{})
	if err != nil {
		return err
	}
	rows := make([]tracebin.Record, len(records))
	for i, r := range records {
		rows[i] = r.BinRecord()
	}
	if err := bw.Flush(rows); err != nil {
		return err
	}
	return bw.Close()
}

// ReadRecordsBin decodes a binary columnar trace into cluster
// records, keeping cell tags.
func ReadRecordsBin(r io.Reader) ([]Record, error) {
	rows, err := tracebin.ReadAll(r)
	if err != nil {
		return nil, err
	}
	records := make([]Record, len(rows))
	for i, b := range rows {
		records[i] = RecordFromBin(b)
	}
	return records, nil
}
