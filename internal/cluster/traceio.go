package cluster

import (
	"io"
	"strconv"

	"dtmsvs/internal/sim"
	"dtmsvs/internal/traceio"
)

// recordHeader is the cluster trace's CSV schema: the monolithic
// schema prefixed with the serving cell.
var recordHeader = append([]string{"bs"}, (sim.GroupIntervalRecord{}).CSVHeader()...)

// CSVHeader returns the record's flat CSV schema.
func (r Record) CSVHeader() []string { return recordHeader }

// AppendCSVRow appends the record's CSV fields to dst.
func (r Record) AppendCSVRow(dst []string) []string {
	dst = append(dst, strconv.Itoa(r.BS))
	return r.GroupIntervalRecord.AppendCSVRow(dst)
}

// WriteRecordsJSON serializes cluster trace records as a JSON array.
func WriteRecordsJSON(w io.Writer, records []Record) error {
	return traceio.WriteJSONArray(w, records)
}

// ReadRecordsJSON decodes a JSON array of cluster trace records.
func ReadRecordsJSON(r io.Reader) ([]Record, error) {
	return traceio.ReadJSONArray[Record](r, "cluster trace")
}

// WriteRecordsCSV writes cluster trace records as CSV with a header
// row.
func WriteRecordsCSV(w io.Writer, records []Record) error {
	return traceio.WriteCSV(w, records)
}
