// This file is the per-process half of the distributed cluster: a
// Worker owns a contiguous block of coverage cells and steps only
// those, exchanging boundary handovers with its peers through the
// internal/coord supervisor.
//
// Determinism contract: a Worker constructs the full engine exactly
// like the single-process path (construction draws only touch shared
// substrate and per-user streams), then drops the populations of the
// cells it does not own. Because sim keeps each cell's population
// sorted by global user id, and because ApplyHandovers applies every
// boundary move in ascending global user-id order, each owned cell
// sees exactly the attach/detach subsequence it would have seen under
// the single-process migrate pass — so per-cell state, and therefore
// the merged trace, is bit-identical for any worker count.
package cluster

import (
	"context"
	"fmt"
	"sort"

	"dtmsvs/internal/checkpoint"
)

// Handover is one boundary twin move. Twin carries the user's full
// mutable state (the sim per-user checkpoint encoding) when the move
// crosses workers; it is nil for moves both of whose endpoints live
// on the same worker, where the twin moves by pointer.
type Handover struct {
	ID   int
	From int
	To   int
	Twin []byte
}

// WorkerForCell maps a cell id to the worker owning it: contiguous
// blocks, the same arithmetic the engine uses to map cells to shards.
func WorkerForCell(cell, numCells, workers int) int {
	return cell * workers / numCells
}

// Worker is the distributed counterpart of Engine: the full engine
// construction with only an owned contiguous block of cells
// populated and stepped.
type Worker struct {
	eng   *Engine
	index int
	count int
	owned []int  // owned cell ids, ascending
	mask  []bool // mask[c] reports ownership of cell c
	local int    // users currently living in owned cells
}

// NewWorker constructs worker index of count over cfg. The full
// population is spawned (construction is cheap and keeps the replay
// deterministic) and the cells owned by other workers are emptied.
func NewWorker(cfg Config, index, count int) (*Worker, error) {
	d := cfg.withDefaults()
	if len(d.Faults) > 0 {
		return nil, fmt.Errorf("cell fault injection inside distributed workers is not supported (inject process faults instead): %w", ErrConfig)
	}
	if count < 1 || count > d.Sim.NumBS {
		return nil, fmt.Errorf("%d workers for %d base stations: %w", count, d.Sim.NumBS, ErrConfig)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("worker index %d of %d: %w", index, count, ErrConfig)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.SetRetainRecords(false)
	w := &Worker{eng: e, index: index, count: count, mask: make([]bool, len(e.cells))}
	for c := range e.cells {
		if WorkerForCell(c, len(e.cells), count) == index {
			w.owned = append(w.owned, c)
			w.mask[c] = true
		}
	}
	for c, cell := range e.cells {
		if w.mask[c] {
			w.local += cell.eng.NumUsers()
			continue
		}
		for _, id := range cell.eng.UserIDs() {
			if _, ok := cell.eng.DetachUser(id); !ok {
				return nil, fmt.Errorf("worker %d: drop user %d from cell %d: %w", index, id, c, ErrConfig)
			}
		}
	}
	return w, nil
}

// Index returns the worker's position in the worker set.
func (w *Worker) Index() int { return w.index }

// Count returns the worker-set size.
func (w *Worker) Count() int { return w.count }

// OwnedCells returns the ascending cell ids this worker owns.
func (w *Worker) OwnedCells() []int { return w.owned }

// Owns reports whether cell c lives on this worker.
func (w *Worker) Owns(c int) bool { return c >= 0 && c < len(w.mask) && w.mask[c] }

// NumUsers returns the users currently living in owned cells.
func (w *Worker) NumUsers() int { return w.local }

// Handovers reports moves whose source cell this worker owned; summed
// across workers this equals the single-process handover counter.
func (w *Worker) Handovers() int { return w.eng.handovers }

// Churned reports users replaced by churn in owned cells.
func (w *Worker) Churned() int { return w.eng.Churned() }

// Config returns the fully defaulted configuration.
func (w *Worker) Config() Config { return w.eng.cfg }

// Close releases the owned cells' training GEMM workers.
func (w *Worker) Close() { w.eng.Close() }

// eachOwned runs fn over the owned cells on the pool. fn must touch
// only the given cell's state.
func (w *Worker) eachOwned(ctx context.Context, fn func(*cellState) error) error {
	return w.eng.pool.ForContext(ctx, len(w.owned), func(i int) error {
		return fn(w.eng.cells[w.owned[i]])
	})
}

// WarmupStep runs one warm-up interval over the owned cells. The
// boundary handover exchange (Plan/ApplyHandovers) follows it.
func (w *Worker) WarmupStep(ctx context.Context) error {
	return w.eachOwned(ctx, func(c *cellState) error {
		if c.eng.NumUsers() == 0 {
			return nil
		}
		if err := c.eng.WarmupIntervalContext(ctx); err != nil {
			return fmt.Errorf("cell %d warmup: %w", c.id, err)
		}
		return nil
	})
}

// TrainAndBuild fits the populated owned cells' grouping pipelines,
// mirroring Engine.TrainAndBuild for the owned block.
func (w *Worker) TrainAndBuild(ctx context.Context) error {
	if err := w.eachOwned(ctx, func(c *cellState) error {
		if c.eng.NumUsers() == 0 {
			return nil
		}
		if err := c.eng.Train(); err != nil {
			return fmt.Errorf("cell %d train: %w", c.id, err)
		}
		if err := c.eng.BuildGroupsContext(ctx); err != nil {
			return fmt.Errorf("cell %d construction: %w", c.id, err)
		}
		c.built = true
		return nil
	}); err != nil {
		return err
	}
	w.eng.trained = true
	return nil
}

// StepInterval runs one reservation interval over the owned cells and
// returns the interval's records in (cell, group) order — the owned
// slice of the single-process merged ordering. The boundary handover
// exchange follows it.
func (w *Worker) StepInterval(ctx context.Context, interval int) ([]Record, error) {
	if err := w.eachOwned(ctx, func(c *cellState) error {
		if c.eng.NumUsers() == 0 {
			return nil
		}
		if err := c.eng.RunIntervalContext(ctx, interval, c.trace); err != nil {
			return fmt.Errorf("cell %d: %w", c.id, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var out []Record
	for _, ci := range w.owned {
		c := w.eng.cells[ci]
		for _, r := range c.trace.Records {
			out = append(out, Record{BS: c.id, GroupIntervalRecord: r})
		}
		c.trace.Records = c.trace.Records[:0]
	}
	return out, nil
}

// PlanHandovers scans the owned users in global id order and returns
// every pending move out of an owned cell. Moves leaving the worker
// carry the twin's wire encoding, captured before any mutation; the
// worker's state is untouched until ApplyHandovers.
func (w *Worker) PlanHandovers() ([]Handover, error) {
	type residence struct{ id, cell int }
	var pop []residence
	for _, ci := range w.owned {
		for _, id := range w.eng.cells[ci].eng.UserIDs() {
			pop = append(pop, residence{id, ci})
		}
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].id < pop[j].id })
	var out []Handover
	var enc checkpoint.Enc
	for _, r := range pop {
		bs := w.eng.cells[r.cell].eng.ServingBSOf(r.id)
		if bs < 0 {
			return nil, fmt.Errorf("user %d missing from cell %d: %w", r.id, r.cell, ErrConfig)
		}
		if bs == r.cell {
			continue
		}
		h := Handover{ID: r.id, From: r.cell, To: bs}
		if !w.mask[bs] {
			enc.Reset()
			if err := w.eng.cells[r.cell].eng.EncodeUser(&enc, r.id); err != nil {
				return nil, err
			}
			h.Twin = append([]byte(nil), enc.Bytes()...)
		}
		out = append(out, h)
	}
	return out, nil
}

// ApplyHandovers applies one boundary's moves touching this worker —
// the worker's own plan plus the imports routed from its peers — in
// ascending global user-id order, reproducing the single-process
// migrate pass on the owned cells. It then verifies local twin
// conservation and late-trains owned cells that just gained their
// first users.
func (w *Worker) ApplyHandovers(moves []Handover) error {
	sorted := append([]Handover(nil), moves...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, h := range sorted {
		if h.ID < 0 || h.ID >= len(w.eng.owner) {
			return fmt.Errorf("handover of unknown user %d: %w", h.ID, ErrConfig)
		}
		if h.To < 0 || h.To >= len(w.eng.cells) || h.From < 0 || h.From >= len(w.eng.cells) {
			return fmt.Errorf("handover of user %d between cells %d and %d: %w", h.ID, h.From, h.To, ErrConfig)
		}
		fromOwned, toOwned := w.mask[h.From], w.mask[h.To]
		switch {
		case fromOwned && toOwned:
			mu, ok := w.eng.cells[h.From].eng.DetachUser(h.ID)
			if !ok {
				return fmt.Errorf("user %d not detachable from cell %d: %w", h.ID, h.From, ErrConfig)
			}
			if err := w.eng.cells[h.To].eng.AttachUser(mu); err != nil {
				return err
			}
			w.eng.cells[h.To].migratedIn++
			w.eng.handovers++
		case fromOwned:
			if _, ok := w.eng.cells[h.From].eng.DetachUser(h.ID); !ok {
				return fmt.Errorf("user %d not detachable from cell %d: %w", h.ID, h.From, ErrConfig)
			}
			w.eng.handovers++
			w.local--
		case toOwned:
			if len(h.Twin) == 0 {
				return fmt.Errorf("import of user %d into cell %d carries no twin: %w", h.ID, h.To, ErrConfig)
			}
			d := checkpoint.NewDec(h.Twin)
			mu, err := w.eng.cells[h.To].eng.DecodeUser(d)
			if err != nil {
				return fmt.Errorf("import user %d: %w", h.ID, err)
			}
			if err := d.Close(); err != nil {
				return fmt.Errorf("import user %d: %w", h.ID, err)
			}
			if mu.ID() != h.ID {
				return fmt.Errorf("import of user %d decoded twin %d: %w", h.ID, mu.ID(), ErrConfig)
			}
			if err := w.eng.cells[h.To].eng.AttachUser(mu); err != nil {
				return err
			}
			w.eng.cells[h.To].migratedIn++
			w.local++
		default:
			return fmt.Errorf("handover of user %d (%d→%d) routed to worker %d owning neither endpoint: %w",
				h.ID, h.From, h.To, w.index, ErrConfig)
		}
		w.eng.owner[h.ID] = h.To
	}
	total := 0
	for _, ci := range w.owned {
		total += w.eng.cells[ci].eng.NumUsers()
	}
	if total != w.local {
		return fmt.Errorf("%d twins on worker %d after handover, want %d (twin lost or duplicated): %w",
			total, w.index, w.local, ErrConfig)
	}
	return w.lateTrain()
}

// lateTrain fits owned cells that gained their first users after the
// cluster trained, mirroring Engine.lateTrain for the owned block.
func (w *Worker) lateTrain() error {
	if !w.eng.trained {
		return nil
	}
	for _, ci := range w.owned {
		c := w.eng.cells[ci]
		if !c.built && c.eng.NumUsers() > 0 {
			if err := c.eng.Train(); err != nil {
				return fmt.Errorf("cell %d late train: %w", c.id, err)
			}
			if err := c.eng.BuildGroups(); err != nil {
				return fmt.Errorf("cell %d late construction: %w", c.id, err)
			}
			c.built = true
		}
	}
	return nil
}

// FinishStats finalizes the owned cells and returns their end-of-run
// statistics in cell-id order plus the raw cache counts — the
// worker's contribution to the merged Trace.
func (w *Worker) FinishStats() (cells []CellStats, hits, misses int) {
	for _, ci := range w.owned {
		c := w.eng.cells[ci]
		c.eng.FinishTrace(c.trace)
		h, m := c.server.Cache().Counts()
		hits += h
		misses += m
		cells = append(cells, CellStats{
			BS:            c.id,
			Users:         c.eng.NumUsers(),
			K:             c.trace.K,
			Silhouette:    c.trace.Silhouette,
			CacheHitRate:  c.trace.CacheHitRate,
			ChurnedUsers:  c.trace.ChurnedUsers,
			AttachedTwins: c.migratedIn,
		})
	}
	return cells, hits, misses
}

// WriteState appends the worker's boundary state to a checkpoint —
// the engine encoding, with un-owned cells present but empty.
func (w *Worker) WriteState(cw *checkpoint.Writer) error { return w.eng.WriteState(cw) }

// ReadState restores boundary state written by WriteState into a
// freshly constructed worker of the identical configuration and
// partition.
func (w *Worker) ReadState(cr *checkpoint.Reader) error {
	if err := w.eng.ReadState(cr); err != nil {
		return err
	}
	w.local = 0
	for _, ci := range w.owned {
		w.local += w.eng.cells[ci].eng.NumUsers()
	}
	// The engine restore replayed construction, which repopulates every
	// cell before overwriting from the checkpoint; verify no twin leaked
	// back into an un-owned cell.
	for c, cell := range w.eng.cells {
		if !w.mask[c] && cell.eng.NumUsers() != 0 {
			return fmt.Errorf("worker %d restore left %d twins in un-owned cell %d: %w",
				w.index, cell.eng.NumUsers(), c, checkpoint.ErrCorrupt)
		}
	}
	return nil
}
