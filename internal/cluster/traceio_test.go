package cluster

import (
	"bytes"
	"strings"
	"testing"

	"dtmsvs/internal/sim"
)

func sampleClusterRecords() []Record {
	return []Record{
		{BS: 0, GroupIntervalRecord: sim.GroupIntervalRecord{
			Interval: 0, GroupID: 0, Size: 12, PredictedRBs: 2.5, ActualRBs: 2.75,
			AllocatedRBs: 3, PredictedCycles: 2e9, ActualCycles: 1.9e9,
			PredictedBits: 6e8, ActualBits: 6.1e8, WorstSNRdB: 8.5, BitrateBps: 1.85e6}},
		{BS: 1, GroupIntervalRecord: sim.GroupIntervalRecord{
			Interval: 0, GroupID: 1, Size: 7, PredictedRBs: 1.5, ActualRBs: 1.25,
			PredictedBits: 3e8, ActualBits: 3.1e8, WorstSNRdB: 11.0, BitrateBps: 2.5e6}},
		{BS: 1, GroupIntervalRecord: sim.GroupIntervalRecord{
			Interval: 1, GroupID: 1, Size: 7, PredictedRBs: 1.4, ActualRBs: 1.5,
			PredictedBits: 3e8, ActualBits: 2.9e8, WorstSNRdB: 10.5, BitrateBps: 2.5e6}},
	}
}

func TestClusterJSONRoundTrip(t *testing.T) {
	recs := sampleClusterRecords()
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d != %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, back[i], recs[i])
		}
	}
}

func TestClusterJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty round trip returned %d records", len(back))
	}
	// A zero-value record must survive unchanged too.
	buf.Reset()
	if err := WriteRecordsJSON(&buf, []Record{{}}); err != nil {
		t.Fatal(err)
	}
	back, err = ReadRecordsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != (Record{}) {
		t.Fatalf("zero record round trip: %+v", back)
	}
}

func TestClusterJSONMalformed(t *testing.T) {
	for _, in := range []string{"", "nope", `{"bs": 0}`, `[{"bs": "zero"}]`} {
		if _, err := ReadRecordsJSON(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed input %q must error", in)
		}
	}
}

func TestClusterCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, sampleClusterRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d csv lines, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bs,interval,group_id,size") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1,0,1,7") {
		t.Fatalf("row %q", lines[2])
	}
}
