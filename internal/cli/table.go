// Package cli provides the small text-table writer shared by the
// command-line tools (dteval, dtreport): fixed-width aligned columns
// for terminals and pipe-delimited rows for markdown.
package cli

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrTable indicates inconsistent table input.
var ErrTable = errors.New("cli: invalid table")

// Table accumulates rows under a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column names.
func NewTable(columns ...string) (*Table, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("table without columns: %w", ErrTable)
	}
	return &Table{header: columns}, nil
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) error {
	if len(cells) != len(t.header) {
		return fmt.Errorf("row of %d cells for %d columns: %w", len(cells), len(t.header), ErrTable)
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return nil
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// widths returns the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// WriteText renders the table with space-aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := t.widths()
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.header, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Percent formats a fraction as a percentage string.
func Percent(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
