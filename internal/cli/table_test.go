package cli

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(); !errors.Is(err, ErrTable) {
		t.Fatalf("want ErrTable, got %v", err)
	}
}

func TestAddRowArity(t *testing.T) {
	tb, err := NewTable("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("x"); !errors.Is(err, ErrTable) {
		t.Fatalf("want ErrTable, got %v", err)
	}
	if err := tb.AddRow("x", 1); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("len %d", tb.Len())
	}
}

func TestWriteTextAlignment(t *testing.T) {
	tb, err := NewTable("name", "value")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("short", 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("a-much-longer-name", 0.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// The value column starts at the same offset in every line.
	idx := strings.Index(lines[0], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[1][idx:], "1") {
		t.Fatalf("misaligned row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2][idx:], "0.500") {
		t.Fatalf("misaligned float row: %q", lines[2])
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb, err := NewTable("k", "acc")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow(2, Percent(0.9502)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	want := "| k | acc |\n| --- | --- |\n| 2 | 95.02% |\n"
	if buf.String() != want {
		t.Fatalf("markdown:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.5) != "50.00%" {
		t.Fatalf("percent %q", Percent(0.5))
	}
}
