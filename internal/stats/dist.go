// Package stats provides the random distributions, online summary
// statistics and error metrics used across the simulator: Zipf video
// popularity, log-normal watch durations and shadowing, histograms for
// swiping-probability distributions, and the prediction-accuracy
// metric reported by the paper.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrParam indicates an invalid distribution parameter.
var ErrParam = errors.New("stats: invalid parameter")

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF so sampling is O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over n items with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf n=%d: %w", n, ErrParam)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("zipf s=%v: %w", s, ErrParam)
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against fp drift
	return &Zipf{cdf: cdf}, nil
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LogNormal is a log-normal distribution parameterized by the mean and
// standard deviation of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

// NewLogNormal validates parameters and returns the distribution.
func NewLogNormal(mu, sigma float64) (*LogNormal, error) {
	if sigma < 0 || math.IsNaN(sigma) || math.IsNaN(mu) {
		return nil, fmt.Errorf("lognormal mu=%v sigma=%v: %w", mu, sigma, ErrParam)
	}
	return &LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws one value.
func (l *LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns the distribution mean exp(mu + sigma^2/2).
func (l *LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// TruncNormal samples from a normal(mu, sigma) clipped to [lo, hi] by
// rejection with a fallback to clamping after a bounded number of
// tries (keeps sampling O(1) worst case).
type TruncNormal struct {
	Mu, Sigma, Lo, Hi float64
}

// NewTruncNormal validates parameters and returns the distribution.
func NewTruncNormal(mu, sigma, lo, hi float64) (*TruncNormal, error) {
	if sigma < 0 || lo > hi || math.IsNaN(mu) || math.IsNaN(sigma) {
		return nil, fmt.Errorf("truncnormal mu=%v sigma=%v range [%v,%v]: %w", mu, sigma, lo, hi, ErrParam)
	}
	return &TruncNormal{Mu: mu, Sigma: sigma, Lo: lo, Hi: hi}, nil
}

// Sample draws one value in [Lo, Hi].
func (t *TruncNormal) Sample(rng *rand.Rand) float64 {
	for i := 0; i < 16; i++ {
		x := t.Mu + t.Sigma*rng.NormFloat64()
		if x >= t.Lo && x <= t.Hi {
			return x
		}
	}
	x := t.Mu + t.Sigma*rng.NormFloat64()
	return math.Min(math.Max(x, t.Lo), t.Hi)
}

// Exponential is an exponential distribution with the given rate.
type Exponential struct {
	Rate float64
}

// NewExponential validates the rate and returns the distribution.
func NewExponential(rate float64) (*Exponential, error) {
	if rate <= 0 || math.IsNaN(rate) {
		return nil, fmt.Errorf("exponential rate=%v: %w", rate, ErrParam)
	}
	return &Exponential{Rate: rate}, nil
}

// Sample draws one value.
func (e *Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Categorical samples indices according to a fixed probability vector.
type Categorical struct {
	cdf []float64
}

// NewCategorical normalizes the non-negative weight vector w and
// returns a sampler over indices [0, len(w)).
func NewCategorical(w []float64) (*Categorical, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("categorical empty weights: %w", ErrParam)
	}
	var total float64
	for i, x := range w {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("categorical weight[%d]=%v: %w", i, x, ErrParam)
		}
		total += x
	}
	if total == 0 {
		return nil, fmt.Errorf("categorical all-zero weights: %w", ErrParam)
	}
	cdf := make([]float64, len(w))
	var acc float64
	for i, x := range w {
		acc += x / total
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1
	return &Categorical{cdf: cdf}, nil
}

// Sample draws an index.
func (c *Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of index i.
func (c *Categorical) Prob(i int) float64 {
	if i < 0 || i >= len(c.cdf) {
		return 0
	}
	if i == 0 {
		return c.cdf[0]
	}
	return c.cdf[i] - c.cdf[i-1]
}
