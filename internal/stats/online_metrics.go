package stats

import (
	"fmt"
	"math"
)

// OnlineMAPE folds the paper's prediction-accuracy metric (1 − MAPE,
// clamped to [0, 1]) incrementally, so streamed runs can score
// themselves without retaining the (pred, actual) series. Matches
// PredictionAccuracy over the same samples exactly: zero actuals are
// skipped and addition order follows Add order.
type OnlineMAPE struct {
	sum float64
	n   int
}

// Add folds one (pred, actual) sample.
func (o *OnlineMAPE) Add(pred, actual float64) {
	if actual == 0 {
		return
	}
	o.sum += math.Abs(pred-actual) / math.Abs(actual)
	o.n++
}

// Accuracy returns the running 1 − MAPE. It fails like
// PredictionAccuracy when no scorable sample has been added.
func (o *OnlineMAPE) Accuracy() (float64, error) {
	if o.n == 0 {
		return 0, fmt.Errorf("online mape: no nonzero actuals: %w", ErrMetric)
	}
	return clamp01(1 - o.sum/float64(o.n)), nil
}

// OnlineVolume folds the volume-accuracy metric
// (1 − Σ|pred−actual| / Σ|actual|, clamped to [0, 1]) incrementally.
// Matches VolumeAccuracy over the same samples exactly.
type OnlineVolume struct {
	errSum, actSum float64
	n              int
}

// Add folds one (pred, actual) sample.
func (o *OnlineVolume) Add(pred, actual float64) {
	o.errSum += math.Abs(pred - actual)
	o.actSum += math.Abs(actual)
	o.n++
}

// Accuracy returns the running volume accuracy. It fails like
// VolumeAccuracy on an empty or all-zero series.
func (o *OnlineVolume) Accuracy() (float64, error) {
	if o.n == 0 {
		return 0, fmt.Errorf("online volume accuracy over 0 samples: %w", ErrMetric)
	}
	if o.actSum == 0 {
		return 0, fmt.Errorf("online volume accuracy: zero actual volume: %w", ErrMetric)
	}
	return clamp01(1 - o.errSum/o.actSum), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
