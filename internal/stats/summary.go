package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates streaming mean/variance via Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 with no observations).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance (0 with fewer than 2 observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Out-of-range observations clamp into the first/last bin so mass is
// never silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || lo >= hi {
		return nil, fmt.Errorf("histogram [%v,%v) bins=%d: %w", lo, hi, bins, ErrParam)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// PMF returns the normalized probability mass per bin (nil total→zeros).
func (h *Histogram) PMF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CDF returns the cumulative distribution per bin edge (rightmost=1
// when any mass is present).
func (h *Histogram) CDF() []float64 {
	pmf := h.PMF()
	out := make([]float64, len(pmf))
	var acc float64
	for i, p := range pmf {
		acc += p
		out[i] = acc
	}
	return out
}

// TailMean returns the mean of the values at or below the q-quantile
// (the lower conditional tail expectation) — a smoother robust
// statistic than a point quantile. Returns NaN for empty input or
// invalid q.
func TailMean(xs []float64, q float64) float64 {
	if len(xs) == 0 || q <= 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := int(math.Ceil(q * float64(len(s))))
	if n < 1 {
		n = 1
	}
	var sum float64
	for _, v := range s[:n] {
		sum += v
	}
	return sum / float64(n)
}

// Quantile returns the q-quantile (q in [0,1]) of the sorted sample xs
// using linear interpolation. Returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}
