package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrMetric indicates invalid metric input (length mismatch or empty).
var ErrMetric = errors.New("stats: invalid metric input")

func checkPair(pred, actual []float64) error {
	if len(pred) == 0 || len(pred) != len(actual) {
		return fmt.Errorf("metric over %d vs %d samples: %w", len(pred), len(actual), ErrMetric)
	}
	return nil
}

// MAPE returns the mean absolute percentage error, skipping samples
// whose actual value is zero (they carry no percentage meaning).
func MAPE(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("mape: all actuals zero: %w", ErrMetric)
	}
	return sum / float64(n), nil
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// MAE returns the mean absolute error.
func MAE(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

// PredictionAccuracy is the paper's accuracy metric: 1 − MAPE,
// clamped to [0, 1]. The paper reports 95.04 % for radio resource
// demand; we reproduce it with this definition.
func PredictionAccuracy(pred, actual []float64) (float64, error) {
	mape, err := MAPE(pred, actual)
	if err != nil {
		return 0, err
	}
	acc := 1 - mape
	if acc < 0 {
		acc = 0
	}
	if acc > 1 {
		acc = 1
	}
	return acc, nil
}

// VolumeAccuracy returns 1 − Σ|pred−actual| / Σ|actual|, clamped to
// [0, 1]. Unlike MAPE it is well defined for series containing zeros
// and weighs errors by volume, which suits bursty demand series such
// as transcoding cycles.
func VolumeAccuracy(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	var errSum, actSum float64
	for i := range pred {
		errSum += math.Abs(pred[i] - actual[i])
		actSum += math.Abs(actual[i])
	}
	if actSum == 0 {
		return 0, fmt.Errorf("volume accuracy: zero actual volume: %w", ErrMetric)
	}
	acc := 1 - errSum/actSum
	if acc < 0 {
		acc = 0
	}
	if acc > 1 {
		acc = 1
	}
	return acc, nil
}

// R2 returns the coefficient of determination.
func R2(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	var mean float64
	for _, a := range actual {
		mean += a
	}
	mean /= float64(len(actual))
	var ssRes, ssTot float64
	for i := range actual {
		d := actual[i] - pred[i]
		ssRes += d * d
		m := actual[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		return 0, fmt.Errorf("r2: constant actuals: %w", ErrMetric)
	}
	return 1 - ssRes/ssTot, nil
}
