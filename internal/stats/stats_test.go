package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewZipf(5, -1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewZipf(5, math.NaN()); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("zipf pmf sums to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Fatal("out-of-range prob must be 0")
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, err := NewZipf(20, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("zipf pmf not decreasing at %d", i)
		}
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	z, err := NewZipf(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 10)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for i := 0; i < 10; i++ {
		emp := float64(counts[i]) / n
		if math.Abs(emp-z.Prob(i)) > 0.01 {
			t.Fatalf("rank %d empirical %v vs theoretical %v", i, emp, z.Prob(i))
		}
	}
}

func TestLogNormal(t *testing.T) {
	if _, err := NewLogNormal(0, -1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	l, err := NewLogNormal(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var o Online
	for i := 0; i < 100000; i++ {
		x := l.Sample(rng)
		if x <= 0 {
			t.Fatal("lognormal must be positive")
		}
		o.Add(x)
	}
	if math.Abs(o.Mean()-l.Mean())/l.Mean() > 0.05 {
		t.Fatalf("empirical mean %v vs theoretical %v", o.Mean(), l.Mean())
	}
}

func TestTruncNormalBounds(t *testing.T) {
	if _, err := NewTruncNormal(0, 1, 5, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	tn, err := NewTruncNormal(0, 10, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x := tn.Sample(rng)
		if x < -1 || x > 1 {
			t.Fatalf("trunc sample %v outside bounds", x)
		}
	}
}

func TestExponential(t *testing.T) {
	if _, err := NewExponential(0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	e, err := NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var o Online
	for i := 0; i < 100000; i++ {
		o.Add(e.Sample(rng))
	}
	if math.Abs(o.Mean()-0.5) > 0.02 {
		t.Fatalf("exp mean %v, want 0.5", o.Mean())
	}
}

func TestCategorical(t *testing.T) {
	if _, err := NewCategorical(nil); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewCategorical([]float64{0, 0}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewCategorical([]float64{1, -1}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	c, err := NewCategorical([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Prob(0)-0.25) > 1e-12 || math.Abs(c.Prob(1)-0.75) > 1e-12 {
		t.Fatalf("probs %v %v", c.Prob(0), c.Prob(1))
	}
	rng := rand.New(rand.NewSource(5))
	counts := [2]int{}
	for i := 0; i < 100000; i++ {
		counts[c.Sample(rng)]++
	}
	if math.Abs(float64(counts[1])/100000-0.75) > 0.01 {
		t.Fatalf("empirical %v", counts)
	}
}

func TestOnlineMoments(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.N() != 0 {
		t.Fatal("zero value must be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N=%d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v", o.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(o.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("var %v", o.Var())
	}
	if math.Abs(o.Std()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("std %v", o.Std())
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		var o Online
		var sum float64
		for _, x := range xs {
			o.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		batchVar := ss / float64(len(xs)-1)
		tol := 1e-6 * (1 + math.Abs(batchVar))
		return math.Abs(o.Mean()-mean) < tol && math.Abs(o.Var()-batchVar) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 0, 4); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewHistogram(0, 1, 0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 5, 9.9, 42} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	// -1 clamps into bin 0; 42 clamps into bin 4.
	if h.Counts[0] != 3 || h.Counts[2] != 1 || h.Counts[4] != 2 {
		t.Fatalf("counts %v", h.Counts)
	}
	pmf := h.PMF()
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pmf sums to %v", sum)
	}
	cdf := h.CDF()
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-12 {
		t.Fatalf("cdf tail %v", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("cdf must be non-decreasing")
		}
	}
}

func TestHistogramEmptyPMF(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range h.PMF() {
		if p != 0 {
			t.Fatal("empty histogram PMF must be all zero")
		}
	}
}

func TestQuantile(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) {
		t.Fatal("invalid q must be NaN")
	}
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := Quantile([]float64{10}, 0.7); got != 10 {
		t.Fatalf("single-sample quantile = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile must not mutate input")
	}
}

func TestMetricsErrors(t *testing.T) {
	for _, fn := range []func([]float64, []float64) (float64, error){MAPE, RMSE, MAE, PredictionAccuracy, R2} {
		if _, err := fn(nil, nil); !errors.Is(err, ErrMetric) {
			t.Fatalf("want ErrMetric, got %v", err)
		}
		if _, err := fn([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMetric) {
			t.Fatalf("want ErrMetric, got %v", err)
		}
	}
	if _, err := MAPE([]float64{1, 2}, []float64{0, 0}); !errors.Is(err, ErrMetric) {
		t.Fatalf("all-zero actuals must fail, got %v", err)
	}
	if _, err := R2([]float64{1, 2}, []float64{3, 3}); !errors.Is(err, ErrMetric) {
		t.Fatalf("constant actuals must fail R2, got %v", err)
	}
}

func TestMetricsValues(t *testing.T) {
	pred := []float64{110, 90}
	actual := []float64{100, 100}
	mape, err := MAPE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mape-0.1) > 1e-12 {
		t.Fatalf("mape %v", mape)
	}
	acc, err := PredictionAccuracy(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-0.9) > 1e-12 {
		t.Fatalf("accuracy %v", acc)
	}
	rmse, err := RMSE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rmse-10) > 1e-12 {
		t.Fatalf("rmse %v", rmse)
	}
	mae, err := MAE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mae-10) > 1e-12 {
		t.Fatalf("mae %v", mae)
	}
	varied := []float64{100, 200}
	r2, err := R2(varied, varied)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Fatalf("perfect r2 %v", r2)
	}
}

func TestPredictionAccuracyClamps(t *testing.T) {
	// Wildly wrong prediction: accuracy floors at 0 rather than going
	// negative.
	acc, err := PredictionAccuracy([]float64{1000}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 {
		t.Fatalf("accuracy %v, want 0", acc)
	}
	acc, err = PredictionAccuracy([]float64{1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy %v, want 1", acc)
	}
}

func TestMAPESkipsZeroActuals(t *testing.T) {
	mape, err := MAPE([]float64{5, 110}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mape-0.1) > 1e-12 {
		t.Fatalf("mape %v, want 0.1 (zero-actual skipped)", mape)
	}
}

func TestTailMean(t *testing.T) {
	if !math.IsNaN(TailMean(nil, 0.2)) {
		t.Fatal("empty tail mean must be NaN")
	}
	if !math.IsNaN(TailMean([]float64{1}, 0)) || !math.IsNaN(TailMean([]float64{1}, 1.5)) {
		t.Fatal("invalid q must be NaN")
	}
	xs := []float64{5, 1, 4, 2, 3}
	// Bottom 40% of 5 values = 2 values {1, 2}.
	if got := TailMean(xs, 0.4); got != 1.5 {
		t.Fatalf("tail mean %v, want 1.5", got)
	}
	// q=1 is the plain mean.
	if got := TailMean(xs, 1); got != 3 {
		t.Fatalf("full tail mean %v, want 3", got)
	}
	// Tiny q still averages at least one value (the minimum).
	if got := TailMean(xs, 0.01); got != 1 {
		t.Fatalf("min tail %v, want 1", got)
	}
	// Input not mutated.
	if xs[0] != 5 {
		t.Fatal("TailMean must not reorder input")
	}
}

// TailMean is monotone in q and bounded by min and mean.
func TestTailMeanProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0.1, 0.3, 0.6, 1.0} {
			tm := TailMean(xs, q)
			if tm < prev-1e-9 {
				return false
			}
			prev = tm
		}
		mn, mean := xs[0], 0.0
		for _, x := range xs {
			if x < mn {
				mn = x
			}
			mean += x
		}
		mean /= float64(len(xs))
		full := TailMean(xs, 1)
		return TailMean(xs, 0.01) >= mn-1e-9 && math.Abs(full-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
