package video

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	cat, err := NewCatalog(CatalogConfig{NumVideos: n}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCategoryString(t *testing.T) {
	tests := []struct {
		c    Category
		want string
	}{
		{News, "News"}, {Sports, "Sports"}, {Music, "Music"},
		{Comedy, "Comedy"}, {Game, "Game"}, {Category(99), "Category(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Fatalf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCategoryIndex(t *testing.T) {
	for i, c := range AllCategories() {
		if c.Index() != i {
			t.Fatalf("%v index %d, want %d", c, c.Index(), i)
		}
	}
	if Category(0).Index() != -1 || Category(6).Index() != -1 {
		t.Fatal("invalid categories must index -1")
	}
	if len(AllCategories()) != NumCategories {
		t.Fatal("AllCategories length mismatch")
	}
}

func TestDefaultLadder(t *testing.T) {
	l := DefaultLadder()
	if len(l) != 5 {
		t.Fatalf("ladder rungs %d", len(l))
	}
	for i := 1; i < len(l); i++ {
		if l[i].BitrateBps <= l[i-1].BitrateBps {
			t.Fatal("ladder must ascend")
		}
		if l[i].Level != i {
			t.Fatalf("level %d at index %d", l[i].Level, i)
		}
	}
}

func TestRepAtMost(t *testing.T) {
	v := &Video{Ladder: DefaultLadder()}
	if r := v.RepAtMost(1e9); r.Level != 4 {
		t.Fatalf("unbounded: level %d", r.Level)
	}
	if r := v.RepAtMost(800e3); r.BitrateBps != 750e3 {
		t.Fatalf("800k cap: %v", r.BitrateBps)
	}
	if r := v.RepAtMost(1); r.Level != 0 {
		t.Fatalf("tiny cap must fall back to lowest, got level %d", r.Level)
	}
	if v.HighestRep().Level != 4 {
		t.Fatal("HighestRep")
	}
}

func TestNewCatalogValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewCatalog(CatalogConfig{NumVideos: 0}, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewCatalog(CatalogConfig{NumVideos: 5, MinDurationS: 50, MaxDurationS: 10}, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewCatalog(CatalogConfig{NumVideos: 5, CategoryWeights: []float64{1}}, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestCatalogStructure(t *testing.T) {
	cat := testCatalog(t, 200)
	if cat.Size() != 200 {
		t.Fatalf("size %d", cat.Size())
	}
	var total int
	for _, c := range AllCategories() {
		total += len(cat.ByCategory(c))
	}
	if total != 200 {
		t.Fatalf("category partition covers %d", total)
	}
	for i, v := range cat.Videos {
		if v.ID != i || v.PopRank != i {
			t.Fatalf("video %d id/rank mismatch: %+v", i, v)
		}
		if v.DurationS < 10 || v.DurationS > 60 {
			t.Fatalf("duration %v outside defaults", v.DurationS)
		}
	}
	// Popularity is Zipf: rank 0 strictly most popular.
	if cat.Popularity(0) <= cat.Popularity(100) {
		t.Fatal("popularity must decrease with rank")
	}
	var sum float64
	for i := 0; i < cat.Size(); i++ {
		sum += cat.Popularity(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("popularity sums to %v", sum)
	}
}

func TestCatalogCategoryWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Heavily News-biased catalog.
	cat, err := NewCatalog(CatalogConfig{
		NumVideos:       1000,
		CategoryWeights: []float64{10, 1, 1, 1, 1},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	news := len(cat.ByCategory(News))
	game := len(cat.ByCategory(Game))
	if news <= 3*game {
		t.Fatalf("news %d not dominant over game %d", news, game)
	}
}

func TestSamplePopularDistribution(t *testing.T) {
	cat := testCatalog(t, 50)
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, 50)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[cat.SamplePopular(rng).ID]++
	}
	if float64(counts[0])/n < cat.Popularity(0)*0.9 {
		t.Fatalf("top video sampled %d/%d, popularity %v", counts[0], n, cat.Popularity(0))
	}
}

func TestSampleFromCategory(t *testing.T) {
	cat := testCatalog(t, 100)
	rng := rand.New(rand.NewSource(14))
	for _, c := range AllCategories() {
		if len(cat.ByCategory(c)) == 0 {
			continue
		}
		v, err := cat.SampleFromCategory(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v.Category != c {
			t.Fatalf("sampled %v from category %v", v.Category, c)
		}
	}
}

func TestTopN(t *testing.T) {
	cat := testCatalog(t, 20)
	top := cat.TopN(5)
	if len(top) != 5 {
		t.Fatalf("topn %d", len(top))
	}
	for i, v := range top {
		if v.PopRank != i {
			t.Fatalf("topn[%d] rank %d", i, v.PopRank)
		}
	}
	if len(cat.TopN(100)) != 20 {
		t.Fatal("topn must clamp to catalog size")
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cat := testCatalog(t, 10)
	if _, err := GenerateDataset(nil, DatasetConfig{Users: 1, EventsPerUser: 1}, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := GenerateDataset(cat, DatasetConfig{Users: 0, EventsPerUser: 1}, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := GenerateDataset(cat, DatasetConfig{Users: 1, EventsPerUser: 1, MeanEngagement: 2}, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestGenerateDatasetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cat := testCatalog(t, 50)
	recs, err := GenerateDataset(cat, DatasetConfig{Users: 10, EventsPerUser: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("%d records", len(recs))
	}
	var swipes int
	for _, r := range recs {
		if r.WatchS < 0 || r.WatchS > r.DurationS+1e-9 {
			t.Fatalf("watch %v of duration %v", r.WatchS, r.DurationS)
		}
		if r.Swiped != (r.WatchS < r.DurationS) {
			t.Fatalf("swipe flag inconsistent: %+v", r)
		}
		if r.UserID < 0 || r.UserID >= 10 {
			t.Fatalf("user id %d", r.UserID)
		}
		if r.BitrateBps < 400e3 || r.BitrateBps > 2500e3 {
			t.Fatalf("bitrate %v outside ladder", r.BitrateBps)
		}
		if r.Swiped {
			swipes++
		}
	}
	// Short-video users swipe most of the time; the generator should
	// reflect that.
	if float64(swipes)/float64(len(recs)) < 0.5 {
		t.Fatalf("swipe rate %v too low", float64(swipes)/float64(len(recs)))
	}
	// Timestamps per user must be increasing.
	lastTS := map[int]float64{}
	for _, r := range recs {
		if prev, ok := lastTS[r.UserID]; ok && r.TimestampS <= prev {
			t.Fatalf("timestamps not increasing for user %d", r.UserID)
		}
		lastTS[r.UserID] = r.TimestampS
	}
}

func TestCSVRoundTripHeaderAndRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cat := testCatalog(t, 10)
	recs, err := GenerateDataset(cat, DatasetConfig{Users: 2, EventsPerUser: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("%d csv lines, want 7 (header+6)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "user_id,video_id,category") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	cat := testCatalog(t, 10)
	recs, err := GenerateDataset(cat, DatasetConfig{Users: 3, EventsPerUser: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d != %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed json must error")
	}
}

// RepAtMost returns the highest rung not exceeding the cap, for any
// cap value.
func TestRepAtMostProperty(t *testing.T) {
	v := &Video{Ladder: DefaultLadder()}
	f := func(raw uint32) bool {
		cap := float64(raw % 4_000_000)
		r := v.RepAtMost(cap)
		// Result never exceeds the cap unless it is the lowest rung.
		if r.Level != 0 && r.BitrateBps > cap {
			return false
		}
		// No higher rung would also fit.
		for _, other := range v.Ladder {
			if other.Level > r.Level && other.BitrateBps <= cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
