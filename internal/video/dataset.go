package video

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"dtmsvs/internal/stats"
)

// DatasetRecord is one synthetic viewing event, mirroring the fields
// of the public short-video-streaming-challenge traces the paper
// consumes: who watched what, at which bitrate, for how long, and
// whether they swiped away early.
type DatasetRecord struct {
	UserID     int      `json:"userId"`
	VideoID    int      `json:"videoId"`
	Category   Category `json:"category"`
	BitrateBps float64  `json:"bitrateBps"`
	// WatchS is the time actually watched in seconds.
	WatchS float64 `json:"watchS"`
	// DurationS is the full video duration.
	DurationS float64 `json:"durationS"`
	// Swiped reports whether the user swiped before the video ended.
	Swiped bool `json:"swiped"`
	// TimestampS is seconds since trace start.
	TimestampS float64 `json:"timestampS"`
}

// DatasetConfig parameterizes trace generation.
type DatasetConfig struct {
	// Users is the number of distinct users.
	Users int
	// EventsPerUser is the number of viewing events per user.
	EventsPerUser int
	// MeanEngagement in (0,1] scales how much of each video users
	// watch on average (default 0.55).
	MeanEngagement float64
}

// GenerateDataset produces a synthetic challenge-style trace over the
// catalog. Watch times follow a truncated log-normal driven by the
// per-user engagement draw; a swipe occurs whenever the watch time is
// below the video duration.
func GenerateDataset(cat *Catalog, cfg DatasetConfig, rng *rand.Rand) ([]DatasetRecord, error) {
	if cat == nil || cat.Size() == 0 {
		return nil, fmt.Errorf("empty catalog: %w", ErrParam)
	}
	if cfg.Users <= 0 || cfg.EventsPerUser <= 0 {
		return nil, fmt.Errorf("dataset %d users × %d events: %w", cfg.Users, cfg.EventsPerUser, ErrParam)
	}
	mean := cfg.MeanEngagement
	if mean == 0 {
		mean = 0.55
	}
	if mean < 0 || mean > 1 {
		return nil, fmt.Errorf("mean engagement %v: %w", mean, ErrParam)
	}
	ln, err := stats.NewLogNormal(-0.35, 0.6) // median ~0.70 of duration
	if err != nil {
		return nil, err
	}
	records := make([]DatasetRecord, 0, cfg.Users*cfg.EventsPerUser)
	for u := 0; u < cfg.Users; u++ {
		clock := rng.Float64() * 60
		// Per-user engagement multiplier around the configured mean.
		userEng := mean * (0.6 + 0.8*rng.Float64())
		for e := 0; e < cfg.EventsPerUser; e++ {
			v := cat.SamplePopular(rng)
			frac := ln.Sample(rng) * userEng
			if frac > 1 {
				frac = 1
			}
			watch := frac * v.DurationS
			rep := v.Ladder[rng.Intn(len(v.Ladder))]
			records = append(records, DatasetRecord{
				UserID:     u,
				VideoID:    v.ID,
				Category:   v.Category,
				BitrateBps: rep.BitrateBps,
				WatchS:     watch,
				DurationS:  v.DurationS,
				Swiped:     watch < v.DurationS,
				TimestampS: clock,
			})
			clock += watch + rng.Float64()*2 // brief swipe gap
		}
	}
	return records, nil
}

// WriteCSV writes records as CSV with a header row.
func WriteCSV(w io.Writer, records []DatasetRecord) error {
	cw := csv.NewWriter(w)
	header := []string{"user_id", "video_id", "category", "bitrate_bps", "watch_s", "duration_s", "swiped", "timestamp_s"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for i, r := range records {
		row := []string{
			strconv.Itoa(r.UserID),
			strconv.Itoa(r.VideoID),
			r.Category.String(),
			strconv.FormatFloat(r.BitrateBps, 'f', 0, 64),
			strconv.FormatFloat(r.WatchS, 'f', 3, 64),
			strconv.FormatFloat(r.DurationS, 'f', 3, 64),
			strconv.FormatBool(r.Swiped),
			strconv.FormatFloat(r.TimestampS, 'f', 3, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes records as a JSON array.
func WriteJSON(w io.Writer, records []DatasetRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadJSON decodes a JSON array of records.
func ReadJSON(r io.Reader) ([]DatasetRecord, error) {
	var out []DatasetRecord
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode dataset: %w", err)
	}
	return out, nil
}
