// Package video models the short-video side of the system: a catalog
// of videos tagged with categories, per-video bitrate ladders
// (representations), and Zipf popularity. It also generates a
// synthetic "short-video-streaming-challenge"-style dataset (the
// public dataset the paper uses is substituted per DESIGN.md §2).
package video

import (
	"errors"
	"fmt"
	"math/rand"

	"dtmsvs/internal/stats"
)

// ErrParam indicates an invalid catalog parameter.
var ErrParam = errors.New("video: invalid parameter")

// Category is a short-video content category.
type Category int

// The five categories used in Fig. 3(a) of the paper.
const (
	News Category = iota + 1
	Sports
	Music
	Comedy
	Game
)

// NumCategories is the size of the category set.
const NumCategories = 5

// AllCategories lists every category in display order.
func AllCategories() []Category {
	return []Category{News, Sports, Music, Comedy, Game}
}

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case News:
		return "News"
	case Sports:
		return "Sports"
	case Music:
		return "Music"
	case Comedy:
		return "Comedy"
	case Game:
		return "Game"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Index returns the zero-based index of the category, or -1.
func (c Category) Index() int {
	if c < News || c > Game {
		return -1
	}
	return int(c) - 1
}

// Representation is one encoding of a video.
type Representation struct {
	// BitrateBps is the encoded bitrate in bits/s.
	BitrateBps float64 `json:"bitrateBps"`
	// Level is the rung on the ladder (0 = lowest).
	Level int `json:"level"`
}

// DefaultLadder returns the 5-rung bitrate ladder used across the
// experiments, matching the range of the short-video-streaming
// challenge (~0.4–2.5 Mbps).
func DefaultLadder() []Representation {
	rates := []float64{400e3, 750e3, 1200e3, 1850e3, 2500e3}
	out := make([]Representation, len(rates))
	for i, r := range rates {
		out[i] = Representation{BitrateBps: r, Level: i}
	}
	return out
}

// Video is one catalog entry.
type Video struct {
	ID       int      `json:"id"`
	Category Category `json:"category"`
	// DurationS is the full video length in seconds.
	DurationS float64 `json:"durationS"`
	// Ladder is the available bitrate ladder, ascending.
	Ladder []Representation `json:"ladder"`
	// PopRank is the Zipf popularity rank (0 = most popular).
	PopRank int `json:"popRank"`
}

// HighestRep returns the top rung of the ladder.
func (v *Video) HighestRep() Representation { return v.Ladder[len(v.Ladder)-1] }

// RepAtMost returns the highest representation whose bitrate does not
// exceed maxBps, falling back to the lowest rung.
func (v *Video) RepAtMost(maxBps float64) Representation {
	best := v.Ladder[0]
	for _, r := range v.Ladder {
		if r.BitrateBps <= maxBps {
			best = r
		}
	}
	return best
}

// Catalog is the video library with popularity structure.
type Catalog struct {
	Videos []*Video
	zipf   *stats.Zipf
	byCat  map[Category][]*Video
}

// CatalogConfig parameterizes catalog generation.
type CatalogConfig struct {
	// NumVideos in the catalog.
	NumVideos int
	// ZipfExponent of the popularity distribution (default 0.9).
	ZipfExponent float64
	// MinDurationS / MaxDurationS bound video lengths
	// (defaults 10 s / 60 s — short videos).
	MinDurationS, MaxDurationS float64
	// CategoryWeights biases category assignment; nil = uniform.
	CategoryWeights []float64
}

func (c CatalogConfig) withDefaults() CatalogConfig {
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.9
	}
	if c.MinDurationS == 0 {
		c.MinDurationS = 10
	}
	if c.MaxDurationS == 0 {
		c.MaxDurationS = 60
	}
	return c
}

// NewCatalog generates a catalog from the config.
func NewCatalog(cfg CatalogConfig, rng *rand.Rand) (*Catalog, error) {
	c := cfg.withDefaults()
	if c.NumVideos <= 0 {
		return nil, fmt.Errorf("catalog of %d videos: %w", c.NumVideos, ErrParam)
	}
	if c.MinDurationS <= 0 || c.MaxDurationS < c.MinDurationS {
		return nil, fmt.Errorf("durations [%v,%v]: %w", c.MinDurationS, c.MaxDurationS, ErrParam)
	}
	weights := c.CategoryWeights
	if weights == nil {
		weights = []float64{1, 1, 1, 1, 1}
	}
	if len(weights) != NumCategories {
		return nil, fmt.Errorf("%d category weights, want %d: %w", len(weights), NumCategories, ErrParam)
	}
	catDist, err := stats.NewCategorical(weights)
	if err != nil {
		return nil, fmt.Errorf("category weights: %w", err)
	}
	zipf, err := stats.NewZipf(c.NumVideos, c.ZipfExponent)
	if err != nil {
		return nil, fmt.Errorf("catalog popularity: %w", err)
	}
	cat := &Catalog{
		Videos: make([]*Video, c.NumVideos),
		zipf:   zipf,
		byCat:  make(map[Category][]*Video, NumCategories),
	}
	cats := AllCategories()
	for i := 0; i < c.NumVideos; i++ {
		v := &Video{
			ID:        i,
			Category:  cats[catDist.Sample(rng)],
			DurationS: c.MinDurationS + rng.Float64()*(c.MaxDurationS-c.MinDurationS),
			Ladder:    DefaultLadder(),
			PopRank:   i, // IDs are assigned in popularity order
		}
		cat.Videos[i] = v
		cat.byCat[v.Category] = append(cat.byCat[v.Category], v)
	}
	return cat, nil
}

// Size returns the number of videos.
func (c *Catalog) Size() int { return len(c.Videos) }

// Popularity returns the Zipf probability of video id.
func (c *Catalog) Popularity(id int) float64 { return c.zipf.Prob(id) }

// SamplePopular draws a video according to global popularity.
func (c *Catalog) SamplePopular(rng *rand.Rand) *Video {
	return c.Videos[c.zipf.Sample(rng)]
}

// ByCategory returns the videos of one category (shared slice; do not
// mutate).
func (c *Catalog) ByCategory(cat Category) []*Video { return c.byCat[cat] }

// SampleFromCategory draws a popularity-weighted video within a
// category. Returns an error if the category is empty.
func (c *Catalog) SampleFromCategory(cat Category, rng *rand.Rand) (*Video, error) {
	vids := c.byCat[cat]
	if len(vids) == 0 {
		return nil, fmt.Errorf("category %v empty: %w", cat, ErrParam)
	}
	weights := make([]float64, len(vids))
	for i, v := range vids {
		weights[i] = c.zipf.Prob(v.ID)
	}
	d, err := stats.NewCategorical(weights)
	if err != nil {
		return nil, err
	}
	return vids[d.Sample(rng)], nil
}

// TopN returns the n most popular videos (by rank).
func (c *Catalog) TopN(n int) []*Video {
	if n > len(c.Videos) {
		n = len(c.Videos)
	}
	out := make([]*Video, n)
	copy(out, c.Videos[:n])
	return out
}
