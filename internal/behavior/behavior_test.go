package behavior

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsvs/internal/video"
)

func testCatalog(t *testing.T) *video.Catalog {
	t.Helper()
	cat, err := video.NewCatalog(video.CatalogConfig{NumVideos: 100}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestUniformPreference(t *testing.T) {
	p := NewUniformPreference()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("uniform value %v", v)
		}
	}
}

func TestRandomPreference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewRandomPreference(rng, video.News, -1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	p, err := NewRandomPreference(rng, video.News, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strong bias: News must dominate.
	if p[video.News.Index()] < 0.5 {
		t.Fatalf("biased preference %v not dominant", p)
	}
}

func TestPreferenceValidate(t *testing.T) {
	if err := (Preference{0.5, 0.5}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("wrong length: want ErrParam, got %v", err)
	}
	if err := (Preference{-0.1, 0.3, 0.3, 0.3, 0.2}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("negative: want ErrParam, got %v", err)
	}
	if err := (Preference{0.5, 0.5, 0.5, 0.5, 0.5}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("sum 2.5: want ErrParam, got %v", err)
	}
}

func TestPreferenceUpdate(t *testing.T) {
	p := NewUniformPreference()
	if err := p.Update(video.Category(99), 0.5, 0.1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if err := p.Update(video.News, 0.5, 0); !errors.Is(err, ErrParam) {
		t.Fatalf("lr 0: want ErrParam, got %v", err)
	}
	// Repeated full engagement with News shifts mass toward News.
	for i := 0; i < 30; i++ {
		if err := p.Update(video.News, 1.0, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("update broke normalization: %v", err)
	}
	newsIdx := video.News.Index()
	for i, v := range p {
		if i != newsIdx && p[newsIdx] <= v {
			t.Fatalf("news %v not dominant over %d=%v", p[newsIdx], i, v)
		}
	}
}

// Update keeps the preference a valid distribution for any inputs.
func TestPreferenceUpdateInvariant(t *testing.T) {
	f := func(catRaw uint8, engagement, lr float64) bool {
		p := NewUniformPreference()
		cat := video.AllCategories()[int(catRaw)%video.NumCategories]
		lr = math.Mod(math.Abs(lr), 1)
		if lr == 0 {
			lr = 0.5
		}
		engagement = math.Mod(math.Abs(engagement), 2) // deliberately allow >1; Update clamps
		if math.IsNaN(engagement) {
			engagement = 0.5
		}
		if err := p.Update(cat, engagement, lr); err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferenceClone(t *testing.T) {
	p := NewUniformPreference()
	c := p.Clone()
	c[0] = 0.9
	if p[0] == 0.9 {
		t.Fatal("clone aliases")
	}
}

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(Preference{1}, 0.5); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewProfile(NewUniformPreference(), 0); !errors.Is(err, ErrParam) {
		t.Fatalf("zero engagement: want ErrParam, got %v", err)
	}
	if _, err := NewProfile(NewUniformPreference(), 1.5); !errors.Is(err, ErrParam) {
		t.Fatalf("engagement>1: want ErrParam, got %v", err)
	}
}

func TestWatchFractionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pr, err := NewProfile(NewUniformPreference(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.WatchFraction(video.Category(0), rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	for i := 0; i < 5000; i++ {
		f, ferr := pr.WatchFraction(video.Music, rng)
		if ferr != nil {
			t.Fatal(ferr)
		}
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of bounds", f)
		}
	}
}

func TestPreferredCategoryWatchedLonger(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pref, err := NewRandomPreference(rng, video.News, 10)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewProfile(pref, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(cat video.Category) float64 {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			f, ferr := pr.WatchFraction(cat, rng)
			if ferr != nil {
				t.Fatal(ferr)
			}
			sum += f
		}
		return sum / n
	}
	if news, game := mean(video.News), mean(video.Game); news <= game {
		t.Fatalf("news %v not watched longer than game %v", news, game)
	}
}

func TestViewEventEngagement(t *testing.T) {
	v := &video.Video{DurationS: 20}
	e := ViewEvent{Video: v, WatchS: 5}
	if e.Engagement() != 0.25 {
		t.Fatalf("engagement %v", e.Engagement())
	}
	z := ViewEvent{Video: &video.Video{DurationS: 0}, WatchS: 5}
	if z.Engagement() != 0 {
		t.Fatal("zero-duration engagement must be 0")
	}
}

func TestSessionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pr, err := NewProfile(NewUniformPreference(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Session(nil, pr, 60, 1e6, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	cat := testCatalog(t)
	if _, err := Session(cat, pr, 0, 1e6, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestSessionFillsInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pr, err := NewProfile(NewUniformPreference(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	const interval = 300.0
	events, err := Session(cat, pr, interval, 2e6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	var watched float64
	for _, e := range events {
		if e.WatchS < 0 {
			t.Fatalf("negative watch %v", e.WatchS)
		}
		if e.Rep.BitrateBps > 2e6 {
			t.Fatalf("rep %v exceeds link cap", e.Rep.BitrateBps)
		}
		watched += e.WatchS
	}
	if watched > interval+1 {
		t.Fatalf("watched %v exceeds interval %v", watched, interval)
	}
	// A short-video session should pack many views into 5 minutes.
	if len(events) < 5 {
		t.Fatalf("only %d events in %v s", len(events), interval)
	}
}

func TestSessionLinkCapSelectsLowRungs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pr, err := NewProfile(NewUniformPreference(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	events, err := Session(cat, pr, 120, 500e3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Rep.BitrateBps > 500e3 {
			t.Fatalf("rep %v over constrained link", e.Rep.BitrateBps)
		}
	}
}
