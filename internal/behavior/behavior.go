// Package behavior models user viewing behavior: per-user category
// preference vectors, engagement/watch-duration draws, and the swipe
// process. The paper updates preferences from "preference labels and
// engagement time"; we implement that update rule directly.
package behavior

import (
	"errors"
	"fmt"
	"math/rand"

	"dtmsvs/internal/stats"
	"dtmsvs/internal/video"
)

// ErrParam indicates an invalid behavior parameter.
var ErrParam = errors.New("behavior: invalid parameter")

// Preference is a probability vector over video categories.
type Preference []float64

// NewUniformPreference returns the uniform preference.
func NewUniformPreference() Preference {
	p := make(Preference, video.NumCategories)
	for i := range p {
		p[i] = 1.0 / video.NumCategories
	}
	return p
}

// NewRandomPreference draws a Dirichlet-like preference by normalizing
// exponential samples, optionally biased toward a favorite category.
func NewRandomPreference(rng *rand.Rand, favorite video.Category, bias float64) (Preference, error) {
	if bias < 0 {
		return nil, fmt.Errorf("bias %v: %w", bias, ErrParam)
	}
	p := make(Preference, video.NumCategories)
	var total float64
	for i := range p {
		p[i] = rng.ExpFloat64()
		if favorite.Index() == i {
			p[i] += bias
		}
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	return p, nil
}

// Validate checks that the preference is a proper distribution.
func (p Preference) Validate() error {
	if len(p) != video.NumCategories {
		return fmt.Errorf("preference of %d categories, want %d: %w", len(p), video.NumCategories, ErrParam)
	}
	var sum float64
	for i, v := range p {
		if v < 0 {
			return fmt.Errorf("preference[%d]=%v: %w", i, v, ErrParam)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("preference sums to %v: %w", sum, ErrParam)
	}
	return nil
}

// Clone deep-copies the preference.
func (p Preference) Clone() Preference {
	out := make(Preference, len(p))
	copy(out, p)
	return out
}

// Update folds an observed engagement ratio for one category into the
// preference with learning rate lr (exponential update, then
// renormalize). This is the paper's "preferences are updated based on
// preference labels and engagement time".
func (p Preference) Update(cat video.Category, engagement, lr float64) error {
	idx := cat.Index()
	if idx < 0 {
		return fmt.Errorf("unknown category %v: %w", cat, ErrParam)
	}
	if lr <= 0 || lr > 1 {
		return fmt.Errorf("learning rate %v: %w", lr, ErrParam)
	}
	if engagement < 0 {
		engagement = 0
	}
	if engagement > 1 {
		engagement = 1
	}
	p[idx] = (1-lr)*p[idx] + lr*engagement
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum == 0 {
		copy(p, NewUniformPreference())
		return nil
	}
	for i := range p {
		p[i] /= sum
	}
	return nil
}

// Profile generates a user's watch behavior.
type Profile struct {
	// Pref is the user's category preference.
	Pref Preference
	// Engagement in (0,1] scales how much of preferred content the
	// user watches.
	Engagement float64

	watchDist *stats.LogNormal
}

// NewProfile constructs a behavior profile.
func NewProfile(pref Preference, engagement float64) (*Profile, error) {
	if err := pref.Validate(); err != nil {
		return nil, err
	}
	if engagement <= 0 || engagement > 1 {
		return nil, fmt.Errorf("engagement %v: %w", engagement, ErrParam)
	}
	// Median watch fraction ≈ 0.7 before preference/engagement scaling.
	ln, err := stats.NewLogNormal(-0.35, 0.55)
	if err != nil {
		return nil, err
	}
	return &Profile{Pref: pref, Engagement: engagement, watchDist: ln}, nil
}

// WatchFraction draws the fraction of a video of category cat this
// user watches (in [0, 1]). Preferred categories are watched longer:
// the raw log-normal draw is scaled by engagement and by how much the
// user likes the category relative to uniform.
func (pr *Profile) WatchFraction(cat video.Category, rng *rand.Rand) (float64, error) {
	idx := cat.Index()
	if idx < 0 {
		return 0, fmt.Errorf("unknown category %v: %w", cat, ErrParam)
	}
	affinity := pr.Pref[idx] * video.NumCategories // 1.0 == indifferent
	frac := pr.watchDist.Sample(rng) * pr.Engagement * affinity
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return frac, nil
}

// ViewEvent is one completed view within a session.
type ViewEvent struct {
	Video *video.Video
	// Rep is the representation streamed.
	Rep video.Representation
	// WatchS is the seconds actually watched.
	WatchS float64
	// Swiped is true when the user left before the video ended.
	Swiped bool
}

// Engagement returns the watched fraction of the video.
func (e ViewEvent) Engagement() float64 {
	if e.Video.DurationS == 0 {
		return 0
	}
	return e.WatchS / e.Video.DurationS
}

// Session simulates a user watching a feed for intervalS seconds:
// videos are recommended (popularity-weighted within
// preference-sampled categories), watched for a profile-driven
// duration, and swiped when abandoned early. linkBps caps the chosen
// representation.
func Session(
	cat *video.Catalog,
	pr *Profile,
	intervalS float64,
	linkBps float64,
	rng *rand.Rand,
) ([]ViewEvent, error) {
	if cat == nil || cat.Size() == 0 {
		return nil, fmt.Errorf("empty catalog: %w", ErrParam)
	}
	if intervalS <= 0 {
		return nil, fmt.Errorf("interval %v s: %w", intervalS, ErrParam)
	}
	catDist, err := stats.NewCategorical(pr.Pref)
	if err != nil {
		return nil, fmt.Errorf("preference sampler: %w", err)
	}
	var events []ViewEvent
	clock := 0.0
	for clock < intervalS {
		c := video.AllCategories()[catDist.Sample(rng)]
		v, verr := cat.SampleFromCategory(c, rng)
		if verr != nil {
			// Category empty in this catalog draw — fall back to
			// global popularity.
			v = cat.SamplePopular(rng)
		}
		frac, ferr := pr.WatchFraction(v.Category, rng)
		if ferr != nil {
			return nil, ferr
		}
		watch := frac * v.DurationS
		if clock+watch > intervalS {
			watch = intervalS - clock
			frac = watch / v.DurationS
		}
		rep := v.RepAtMost(linkBps)
		events = append(events, ViewEvent{
			Video:  v,
			Rep:    rep,
			WatchS: watch,
			Swiped: frac < 0.999,
		})
		clock += watch + 0.5 // half-second swipe gap
	}
	return events, nil
}
