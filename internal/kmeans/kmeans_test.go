package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsvs/internal/vecmath"
)

// threeBlobs generates three well-separated Gaussian blobs.
func threeBlobs(rng *rand.Rand, perBlob int) ([]vecmath.Vec, []int) {
	centers := []vecmath.Vec{{0, 0}, {10, 10}, {-10, 10}}
	var pts []vecmath.Vec
	var labels []int
	for c, center := range centers {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, vecmath.Vec{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := []vecmath.Vec{{1, 2}, {3, 4}}
	if _, err := Run(pts, 0, rng, Options{}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := Run(pts, 3, rng, Options{}); !errors.Is(err, ErrInput) {
		t.Fatalf("more clusters than points: want ErrInput, got %v", err)
	}
	if _, err := Run([]vecmath.Vec{{1, 2}, {3}}, 1, rng, Options{}); !errors.Is(err, ErrInput) {
		t.Fatalf("ragged points: want ErrInput, got %v", err)
	}
	if _, err := Run([]vecmath.Vec{{}}, 1, rng, Options{}); !errors.Is(err, ErrInput) {
		t.Fatalf("zero-dim points: want ErrInput, got %v", err)
	}
	if _, err := SeedPlusPlus(pts, 0, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

func TestSeedPlusPlusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := threeBlobs(rng, 20)
	seeds, err := SeedPlusPlus(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// Seeds must be copies, not aliases.
	seeds[0][0] = 1e9
	for _, p := range pts {
		if p[0] == 1e9 {
			t.Fatal("seed aliases input point")
		}
	}
}

func TestSeedPlusPlusDegenerate(t *testing.T) {
	// All identical points: seeding must still terminate.
	pts := []vecmath.Vec{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	rng := rand.New(rand.NewSource(3))
	seeds, err := SeedPlusPlus(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
}

func TestRunRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, labels := threeBlobs(rng, 40)
	res, err := Run(pts, 3, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to exactly one cluster (purity 100%
	// given the separation).
	blobToCluster := map[int]int{}
	for i, lbl := range labels {
		c := res.Assign[i]
		if prev, ok := blobToCluster[lbl]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters %d and %d", lbl, prev, c)
			}
		} else {
			blobToCluster[lbl] = c
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("blobs merged: %v", blobToCluster)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia %v must be positive for noisy blobs", res.Inertia)
	}
	sizes := res.Sizes()
	for c, s := range sizes {
		if s != 40 {
			t.Fatalf("cluster %d size %d, want 40", c, s)
		}
	}
	members := res.Members()
	var total int
	for _, m := range members {
		total += len(m)
	}
	if total != len(pts) {
		t.Fatalf("members total %d want %d", total, len(pts))
	}
}

func TestRunK1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := []vecmath.Vec{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := Run(pts, 1, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 || math.Abs(res.Centroids[0][1]-1) > 1e-9 {
		t.Fatalf("k=1 centroid %v, want (1,1)", res.Centroids[0])
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	pts, _ := threeBlobs(rand.New(rand.NewSource(6)), 30)
	r1, err := Run(pts, 3, rand.New(rand.NewSource(99)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(pts, 3, rand.New(rand.NewSource(99)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
	if r1.Inertia != r2.Inertia {
		t.Fatal("same seed must give same inertia")
	}
}

// Inertia must be non-increasing in k (on the same data, best case);
// we verify the weaker sound property: k=n gives (near) zero inertia.
func TestInertiaZeroAtKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := []vecmath.Vec{{1, 1}, {5, 5}, {9, 1}, {-3, 4}}
	res, err := Run(pts, len(pts), rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("inertia %v at k=n, want ~0", res.Inertia)
	}
}

// Property: every point is assigned to its nearest centroid when Lloyd
// terminates.
func TestNearestCentroidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		pts := make([]vecmath.Vec, n)
		for i := range pts {
			pts[i] = vecmath.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		k := 1 + rng.Intn(4)
		res, err := Run(pts, k, rng, Options{})
		if err != nil {
			return false
		}
		for i, p := range pts {
			dOwn, _ := vecmath.SqDist(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				d, _ := vecmath.SqDist(p, c)
				if d < dOwn-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouette(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := threeBlobs(rng, 25)
	res, err := Run(pts, 3, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(pts, res.Assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Fatalf("silhouette %v for well-separated blobs, want > 0.8", s)
	}
	// Degenerate k.
	if _, err := Silhouette(pts, res.Assign, 1); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := Silhouette(pts, []int{0}, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := Silhouette([]vecmath.Vec{{1}, {2}}, []int{0, 5}, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("out-of-range assign: want ErrInput, got %v", err)
	}
}

func TestSilhouetteRandomWorseThanStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := threeBlobs(rng, 25)
	res, err := Run(pts, 3, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Silhouette(pts, res.Assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	randAssign := make([]int, len(pts))
	for i := range randAssign {
		randAssign[i] = rng.Intn(3)
	}
	bad, err := Silhouette(pts, randAssign, 3)
	if err != nil {
		t.Fatal(err)
	}
	if good <= bad {
		t.Fatalf("structured silhouette %v not better than random %v", good, bad)
	}
}

func TestDaviesBouldin(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts, _ := threeBlobs(rng, 25)
	res, err := Run(pts, 3, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := DaviesBouldin(pts, res)
	if err != nil {
		t.Fatal(err)
	}
	if db <= 0 || db > 0.5 {
		t.Fatalf("davies-bouldin %v for separated blobs, want small positive", db)
	}
	if _, err := DaviesBouldin(pts, &Result{K: 1, Assign: res.Assign}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := DaviesBouldin(pts[:3], res); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
}

func TestEmptyClusterReseed(t *testing.T) {
	// Duplicate-heavy data can produce empty clusters mid-run; Run
	// must still return k centroids with all assignments valid.
	pts := []vecmath.Vec{
		{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0},
		{100, 100}, {100.5, 100}, {0.1, 0},
	}
	rng := rand.New(rand.NewSource(11))
	res, err := Run(pts, 3, rng, Options{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 3 {
			t.Fatalf("invalid assignment %d", a)
		}
	}
}

// Multiple restarts can only improve (never worsen) the inertia.
func TestRestartsImproveInertia(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Hard instance: overlapping blobs where seeding matters.
	pts := make([]vecmath.Vec, 0, 90)
	for c := 0; c < 6; c++ {
		cx, cy := float64(c%3)*4, float64(c/3)*4
		for i := 0; i < 15; i++ {
			pts = append(pts, vecmath.Vec{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		}
	}
	single, err := Run(pts, 6, rand.New(rand.NewSource(5)), Options{Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(pts, 6, rand.New(rand.NewSource(5)), Options{Restarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Inertia > single.Inertia+1e-9 {
		t.Fatalf("restarts worsened inertia: %v > %v", multi.Inertia, single.Inertia)
	}
}
