package kmeans

import (
	"math"

	"dtmsvs/internal/parallel"
	"dtmsvs/internal/vecmath"
)

// Bounded Lloyd assignment (Elkan/Hamerly style): every point carries
// an upper bound on the distance to its current centroid and, per
// centroid, a lower bound on the distance to that centroid. After an
// update step moves the centroids, the bounds are loosened by the
// per-centroid drifts; a point whose upper bound stays strictly below
// both its smallest other-centroid lower bound and half the gap to its
// centroid's nearest peer provably cannot change owner, so the
// k-distance rescan is skipped. Points that do rescan still skip every
// centroid whose lower bound proves it cannot win the comparison. The
// per-centroid bounds matter here because the empty-cluster re-seeding
// teleports one centroid at a time: only that centroid's bound
// collapses, and a rescan touches it alone instead of all k.
//
// Equivalence with the naive full-reassignment loop: the whole-point
// prune uses strict inequalities, so a point whose nearest centroid is
// tied (where the naive scan's lowest-index tie-break decides) always
// falls through to the rescan; the rescan walks centroids in index
// order with the naive comparison, and skips a centroid only when its
// lower bound — shrunk by a slack factor that dominates the ~1e-14
// relative float drift the bound maintenance can accumulate — proves
// the naive `d < best` comparison would be false anyway. The update
// step is shared code, so assignments, centroids, iteration counts and
// inertia are bit-identical to the naive path
// (TestBoundedLloydMatchesNaive covers this across seeds, sizes and
// pool widths).

// boundSlack shrinks a squared lower bound before it is allowed to
// prune an exact-distance computation. Bound maintenance accumulates
// at most a few ulps (~1e-16 relative) of float error per iteration
// across ≤ MaxIter iterations, so 1e-12 dominates it by orders of
// magnitude while giving up a vanishing amount of pruning.
const boundSlack = 1 - 1e-12

// boundsState is the per-run bound state.
type boundsState struct {
	k     int
	ub    []float64 // ub[i] ≥ dist(point i, its centroid)
	lb    []float64 // n×k: lb[i*k+c] ≤ dist(point i, centroid c)
	drift []float64 // centroid movement of the last update step
	sep   []float64 // sep[c] = ½·min distance from c to another centroid
}

func newBoundsState(n, k int) *boundsState {
	return &boundsState{
		k:     k,
		ub:    make([]float64, n),
		lb:    make([]float64, n*k),
		drift: make([]float64, k),
		sep:   make([]float64, k),
	}
}

// assignFull is the first-iteration full scan: identical assignment
// decisions to AssignPoints, plus bound initialization. The
// sequential path calls fullOne directly — no closure, no heap.
func (bs *boundsState) assignFull(points, centroids []vecmath.Vec, assign []int, pool *parallel.Pool) {
	if pool != nil && pool.Workers() > 1 {
		_ = pool.For(len(points), func(i int) error {
			bs.fullOne(i, points, centroids, assign)
			return nil
		})
		return
	}
	for i := range points {
		bs.fullOne(i, points, centroids, assign)
	}
}

func (bs *boundsState) fullOne(i int, points, centroids []vecmath.Vec, assign []int) {
	p := points[i]
	lbRow := bs.lb[i*bs.k : (i+1)*bs.k]
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		d := vecmath.SqDistUnchecked(p, cent)
		lbRow[c] = math.Sqrt(d)
		if d < bestD {
			best, bestD = c, d
		}
	}
	assign[i] = best
	bs.ub[i] = lbRow[best]
}

// updateSeparations refreshes sep after a centroid update.
func (bs *boundsState) updateSeparations(centroids []vecmath.Vec) {
	for c := range bs.sep {
		bs.sep[c] = math.Inf(1)
	}
	for a := 0; a < len(centroids); a++ {
		for b := a + 1; b < len(centroids); b++ {
			d := math.Sqrt(vecmath.SqDistUnchecked(centroids[a], centroids[b]))
			if d < bs.sep[a] {
				bs.sep[a] = d
			}
			if d < bs.sep[b] {
				bs.sep[b] = d
			}
		}
	}
	for c := range bs.sep {
		bs.sep[c] *= 0.5
	}
}

// assignBounded is the bounded assignment step for iterations after
// the first: loosen every bound by its centroid's drift, prune whole
// points where possible, and rescan the survivors with per-centroid
// skips.
func (bs *boundsState) assignBounded(points, centroids []vecmath.Vec, assign []int, pool *parallel.Pool) {
	bs.updateSeparations(centroids)
	if pool != nil && pool.Workers() > 1 {
		_ = pool.For(len(points), func(i int) error {
			bs.boundedOne(i, points, centroids, assign)
			return nil
		})
		return
	}
	for i := range points {
		bs.boundedOne(i, points, centroids, assign)
	}
}

func (bs *boundsState) boundedOne(i int, points, centroids []vecmath.Vec, assign []int) {
	k := bs.k
	a := assign[i]
	ub := bs.ub[i] + bs.drift[a]
	bs.ub[i] = ub
	lbRow := bs.lb[i*k : (i+1)*k]
	minLb := math.Inf(1)
	for c := range lbRow {
		lbc := lbRow[c] - bs.drift[c]
		lbRow[c] = lbc
		if c != a && lbc < minLb {
			minLb = lbc
		}
	}
	// Shrinking the threshold by the slack covers the float drift the
	// loosened ub/lb can carry (ub may underestimate its true bound,
	// lb overestimate, each by ulp-scale error per iteration), so the
	// prune stays provable, matching the rescan's slacked skips.
	thresh := bs.sep[a]
	if minLb > thresh {
		thresh = minLb
	}
	thresh *= boundSlack
	if ub < thresh {
		return // owner provably unchanged (strictly nearest)
	}
	// Rescan in index order with the naive comparison; the exact
	// owner distance joins the skip threshold so early candidates
	// cannot dodge it.
	p := points[i]
	dOwn := vecmath.SqDistUnchecked(p, centroids[a])
	limit := dOwn
	best, bestD := -1, math.Inf(1)
	for c := 0; c < k; c++ {
		var d float64
		if c == a {
			d = dOwn
		} else {
			if lbc := lbRow[c]; lbc > 0 && lbc*lbc*boundSlack > limit {
				continue // provably d ≥ every current candidate
			}
			d = vecmath.SqDistUnchecked(p, centroids[c])
		}
		lbRow[c] = math.Sqrt(d)
		if d < bestD {
			best, bestD = c, d
			if d < limit {
				limit = d
			}
		}
	}
	assign[i] = best
	bs.ub[i] = lbRow[best]
}

// reseedFarthest finds the point farthest from its (possibly
// partially updated) centroid — the empty-cluster re-seed target —
// skipping points whose upper bound proves they cannot win. cluster
// is the empty cluster being re-seeded: clusters below it have
// already moved in this update pass, so their points' bounds are
// additionally loosened by the fresh drift. Returns the same index as
// the naive scan (first strict maximum).
func (bs *boundsState) reseedFarthest(points, centroids []vecmath.Vec, assign []int, cluster int) int {
	far, farD := 0, -1.0
	for i, p := range points {
		a := assign[i]
		ub := bs.ub[i]
		if a < cluster {
			ub += bs.drift[a]
		}
		if ub*ub*(2-boundSlack) <= farD {
			continue // provably cannot exceed the current farthest
		}
		d := vecmath.SqDistUnchecked(p, centroids[a])
		if d > farD {
			far, farD = i, d
		}
	}
	return far
}
