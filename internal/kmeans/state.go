// This file holds the checkpoint encoding of K-means output state.
// A clustering Run itself is stateless between calls (the bounded-
// Lloyd bookkeeping lives only for one Run), but the centroids it
// produced are long-lived engine state — every multicast group keeps
// its code-space centroid for migration assignment — so they ride in
// session checkpoints via these helpers.

package kmeans

import (
	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/vecmath"
)

// EncodeCentroids appends a centroid set to a checkpoint section:
// count, then each centroid as a length-prefixed float64 slice.
func EncodeCentroids(e *checkpoint.Enc, cs []vecmath.Vec) {
	e.U32(uint32(len(cs)))
	for _, c := range cs {
		e.F64s([]float64(c))
	}
}

// DecodeCentroids reads a centroid set written by EncodeCentroids.
func DecodeCentroids(d *checkpoint.Dec) []vecmath.Vec {
	n := d.U32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]vecmath.Vec, 0, min(int(n), 4096))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		out = append(out, vecmath.Vec(d.F64s()))
	}
	return out
}
