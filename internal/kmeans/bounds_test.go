package kmeans

import (
	"math/rand"
	"testing"

	"dtmsvs/internal/parallel"
	"dtmsvs/internal/vecmath"
)

// clusteredPoints draws points around g Gaussian blobs — the shape
// that exercises the bound pruning (well-separated owners) while the
// blob overlap keeps boundary points rescanning.
func clusteredPoints(n, dim, g int, spread float64, rng *rand.Rand) []vecmath.Vec {
	centers := randPoints(g, dim, rng)
	pts := make([]vecmath.Vec, n)
	for i := range pts {
		c := centers[rng.Intn(g)]
		p := make(vecmath.Vec, dim)
		for j := range p {
			p[j] = c[j] + spread*rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func wantSameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.K != want.K || got.Iterations != want.Iterations || got.Inertia != want.Inertia {
		t.Fatalf("%s: k/iters/inertia %d/%d/%v want %d/%d/%v",
			tag, got.K, got.Iterations, got.Inertia, want.K, want.Iterations, want.Inertia)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("%s: assign[%d] = %d want %d", tag, i, got.Assign[i], want.Assign[i])
		}
	}
	for c := range want.Centroids {
		for j := range want.Centroids[c] {
			if got.Centroids[c][j] != want.Centroids[c][j] {
				t.Fatalf("%s: centroid[%d][%d] = %v want %v",
					tag, c, j, got.Centroids[c][j], want.Centroids[c][j])
			}
		}
	}
}

// TestBoundedLloydMatchesNaive is the equivalence gate for the
// Hamerly-bounded assignment: bit-identical assignments, centroids,
// inertia and iteration counts to the naive full-reassignment loop,
// across seeds, point counts, dimensions, cluster counts and pool
// widths — including the n == k edge case and duplicate points.
func TestBoundedLloydMatchesNaive(t *testing.T) {
	cases := []struct {
		name   string
		n, dim int
		k      int
		blobs  int
		spread float64
	}{
		{"tiny", 8, 2, 3, 2, 0.3},
		{"n-eq-k", 5, 3, 5, 2, 0.5},
		{"k1", 40, 4, 1, 3, 0.4},
		{"separated", 300, 8, 6, 6, 0.05},
		{"overlapping", 300, 8, 6, 3, 1.5},
		{"large", 1000, 6, 8, 8, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				points := clusteredPoints(tc.n, tc.dim, tc.blobs, tc.spread, rng)
				naive, err := Run(points, tc.k, rand.New(rand.NewSource(seed+100)), Options{Naive: true})
				if err != nil {
					t.Fatal(err)
				}
				bounded, err := Run(points, tc.k, rand.New(rand.NewSource(seed+100)), Options{})
				if err != nil {
					t.Fatal(err)
				}
				wantSameResult(t, tc.name, bounded, naive)
				for _, workers := range []int{2, 8} {
					pooled, err := Run(points, tc.k, rand.New(rand.NewSource(seed+100)),
						Options{Pool: parallel.New(workers)})
					if err != nil {
						t.Fatal(err)
					}
					wantSameResult(t, tc.name, pooled, naive)
				}
			}
		})
	}
}

// TestBoundedLloydDuplicatePoints covers coincident points (ties at
// distance zero) and empty-cluster re-seeding, where the naive loop's
// lowest-index tie-breaking and the teleporting centroid stress the
// bound maintenance.
func TestBoundedLloydDuplicatePoints(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := randPoints(20, 3, rng)
		points := make([]vecmath.Vec, 0, 60)
		for _, p := range base {
			points = append(points, p, vecmath.Clone(p), vecmath.Clone(p))
		}
		naive, err := Run(points, 7, rand.New(rand.NewSource(seed)), Options{Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		bounded, err := Run(points, 7, rand.New(rand.NewSource(seed)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantSameResult(t, "duplicates", bounded, naive)
	}
}

// TestRunRejectsTooFewPoints pins the n < k contract both paths share.
func TestRunRejectsTooFewPoints(t *testing.T) {
	points := randPoints(3, 2, rand.New(rand.NewSource(1)))
	for _, naive := range []bool{true, false} {
		if _, err := Run(points, 4, rand.New(rand.NewSource(2)), Options{Naive: naive}); err == nil {
			t.Fatalf("naive=%v: want error for n < k", naive)
		}
	}
}

// TestSilhouetteDistsScratchReuse asserts repeated SilhouetteDists
// calls on one matrix (the DDQN reward pattern) stay bit-identical to
// the from-points path while reusing the internal scratch across
// different k.
func TestSilhouetteDistsScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points := randPoints(80, 5, rng)
	dists, err := PairDistances(points, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 5, 3, 6, 2} {
		res, err := Run(points, k, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SilhouettePool(points, res.Assign, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SilhouetteDists(dists, res.Assign, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("k=%d: silhouette %v want %v", k, got, want)
		}
	}
}
