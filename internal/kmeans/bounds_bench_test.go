package kmeans

import (
	"math/rand"
	"testing"
)

// The naive-vs-bounded A/B at the three shapes the system actually
// clusters: raw-window codes (dim ~85) and CNN codes (dim 8) at
// campus scale, and CNN codes at cluster-cell scale.
func benchLloyd(b *testing.B, n, dim, k int, naive bool) {
	rng := rand.New(rand.NewSource(1))
	pts := clusteredPoints(n, dim, k, 0.4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(pts, k, rand.New(rand.NewSource(2)), Options{Naive: naive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLloyd(b *testing.B) {
	for _, bc := range []struct {
		name   string
		n, dim int
		k      int
		naive  bool
	}{
		{"raw60/naive", 60, 85, 4, true},
		{"raw60/bounded", 60, 85, 4, false},
		{"code60/naive", 60, 8, 4, true},
		{"code60/bounded", 60, 8, 4, false},
		{"code3000/naive", 3000, 8, 6, true},
		{"code3000/bounded", 3000, 8, 6, false},
	} {
		b.Run(bc.name, func(b *testing.B) { benchLloyd(b, bc.n, bc.dim, bc.k, bc.naive) })
	}
}
