package kmeans

import (
	"math/rand"
	"testing"

	"dtmsvs/internal/parallel"
	"dtmsvs/internal/vecmath"
)

func randPoints(n, dim int, rng *rand.Rand) []vecmath.Vec {
	pts := make([]vecmath.Vec, n)
	for i := range pts {
		p := make(vecmath.Vec, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestAssignPointsAllocFree is the allocation regression gate for the
// K-means assignment kernel.
func TestAssignPointsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := randPoints(128, 8, rng)
	centroids := randPoints(6, 8, rng)
	assign := make([]int, len(points))
	if n := testing.AllocsPerRun(100, func() {
		if err := AssignPoints(points, centroids, assign, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AssignPoints allocates %v per run", n)
	}
}

// TestAssignPointsParallelIdentical asserts the pooled kernel matches
// the sequential one exactly for every worker count.
func TestAssignPointsParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points := randPoints(257, 6, rng)
	centroids := randPoints(7, 6, rng)
	want := make([]int, len(points))
	if err := AssignPoints(points, centroids, want, nil); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got := make([]int, len(points))
		if err := AssignPoints(points, centroids, got, parallel.New(workers)); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: assign[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestAssignPointsValidation(t *testing.T) {
	points := randPoints(4, 3, rand.New(rand.NewSource(5)))
	if err := AssignPoints(points, nil, make([]int, 4), nil); err == nil {
		t.Fatal("want error for no centroids")
	}
	if err := AssignPoints(points, points[:1], make([]int, 2), nil); err == nil {
		t.Fatal("want error for assign length mismatch")
	}
}

// TestSilhouettePoolIdentical asserts the pooled silhouette matches
// the sequential result bit-for-bit.
func TestSilhouettePoolIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := randPoints(120, 5, rng)
	res, err := Run(points, 4, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Silhouette(points, res.Assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := SilhouettePool(points, res.Assign, 4, parallel.New(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: silhouette %v want %v", workers, got, want)
		}
	}
}

// TestRunPoolIdentical asserts a full pooled clustering matches the
// sequential result for the same RNG stream.
func TestRunPoolIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points := randPoints(90, 4, rng)
	seq, err := Run(points, 5, rand.New(rand.NewSource(8)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(points, 5, rand.New(rand.NewSource(8)), Options{Pool: parallel.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Inertia != par.Inertia || seq.Iterations != par.Iterations {
		t.Fatalf("pooled run diverged: inertia %v vs %v, iters %d vs %d",
			seq.Inertia, par.Inertia, seq.Iterations, par.Iterations)
	}
	for i := range seq.Assign {
		if seq.Assign[i] != par.Assign[i] {
			t.Fatalf("assign[%d] = %d vs %d", i, seq.Assign[i], par.Assign[i])
		}
	}
}
