// Package kmeans implements the K-means++ seeding and Lloyd iteration
// used for fast multicast-group construction (paper §II-B1, second
// step), plus the cluster-quality scores (inertia, silhouette,
// Davies-Bouldin) consumed by the DDQN reward.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/parallel"
	"dtmsvs/internal/vecmath"
)

// ErrInput indicates invalid clustering input.
var ErrInput = errors.New("kmeans: invalid input")

// Result holds the outcome of a clustering run.
type Result struct {
	// K is the number of clusters.
	K int
	// Centroids[k] is the center of cluster k.
	Centroids []vecmath.Vec
	// Assign[i] is the cluster index of point i.
	Assign []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Sizes returns the number of points per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, a := range r.Assign {
		sizes[a]++
	}
	return sizes
}

// Members returns the point indices per cluster.
func (r *Result) Members() [][]int {
	out := make([][]int, r.K)
	for i, a := range r.Assign {
		out[a] = append(out[a], i)
	}
	return out
}

// Options tunes the clustering run.
type Options struct {
	// MaxIter bounds the Lloyd iterations (default 100).
	MaxIter int
	// Tol stops early when total centroid movement falls below it
	// (default 1e-6).
	Tol float64
	// Restarts runs the whole seeding+Lloyd pipeline this many times
	// and keeps the lowest-inertia result (default 1). K-means++
	// seeding makes single runs good; a few restarts remove the
	// residual seeding variance.
	Restarts int
	// Naive disables the Hamerly distance bounds and re-evaluates
	// every point against every centroid each iteration (the classic
	// Lloyd loop). The bounded path produces bit-identical
	// assignments, centroids and iteration counts; Naive exists for
	// the equivalence tests and A/B benchmarks.
	Naive bool
	// Pool optionally fans the assignment step (and Silhouette, via
	// SilhouettePool) across workers. The result is bit-identical to
	// the sequential path: every point's nearest-centroid decision is
	// independent, and reductions stay in index order.
	Pool *parallel.Pool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

func validate(points []vecmath.Vec, k int) error {
	if k <= 0 {
		return fmt.Errorf("k=%d: %w", k, ErrInput)
	}
	if len(points) < k {
		return fmt.Errorf("%d points for k=%d: %w", len(points), k, ErrInput)
	}
	dim := len(points[0])
	if dim == 0 {
		return fmt.Errorf("zero-dimensional points: %w", ErrInput)
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("point %d dim %d want %d: %w", i, len(p), dim, ErrInput)
		}
	}
	return nil
}

// SeedPlusPlus chooses k initial centroids with the K-means++ rule:
// the first uniformly, each subsequent one with probability
// proportional to its squared distance to the nearest chosen centroid.
func SeedPlusPlus(points []vecmath.Vec, k int, rng *rand.Rand) ([]vecmath.Vec, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	centroids := make([]vecmath.Vec, 0, k)
	centroids = append(centroids, vecmath.Clone(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := vecmath.SqDistUnchecked(p, last)
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		var idx int
		if total == 0 {
			// All points coincide with chosen centroids; fall back to
			// uniform choice to keep progress.
			idx = rng.Intn(len(points))
		} else {
			u := rng.Float64() * total
			var acc float64
			idx = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= u {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, vecmath.Clone(points[idx]))
	}
	return centroids, nil
}

// AssignPoints writes the index of the nearest centroid (squared
// Euclidean distance, ties to the lowest index) for every point into
// assign. It is the zero-allocation K-means assignment kernel; pool
// may be nil for the sequential path, and the output is identical
// either way. Dimensions must be uniform — callers go through
// validate (or Run) first.
func AssignPoints(points, centroids []vecmath.Vec, assign []int, pool *parallel.Pool) error {
	if len(assign) != len(points) {
		return fmt.Errorf("assign %d for %d points: %w", len(assign), len(points), ErrInput)
	}
	if len(centroids) == 0 {
		return fmt.Errorf("no centroids: %w", ErrInput)
	}
	if pool != nil && pool.Workers() > 1 {
		return pool.For(len(points), func(i int) error {
			assign[i] = nearestCentroid(points[i], centroids)
			return nil
		})
	}
	for i, p := range points {
		assign[i] = nearestCentroid(p, centroids)
	}
	return nil
}

func nearestCentroid(p vecmath.Vec, centroids []vecmath.Vec) int {
	best, bestD := 0, math.Inf(1)
	// Four centroids per pass through the multi-chain kernel; the
	// argmin compares in ascending centroid order either way, so ties
	// still resolve to the lowest index.
	c := 0
	for ; c+4 <= len(centroids); c += 4 {
		d0, d1, d2, d3 := vecmath.SqDist4Unchecked(
			p, centroids[c], centroids[c+1], centroids[c+2], centroids[c+3])
		if d0 < bestD {
			best, bestD = c, d0
		}
		if d1 < bestD {
			best, bestD = c+1, d1
		}
		if d2 < bestD {
			best, bestD = c+2, d2
		}
		if d3 < bestD {
			best, bestD = c+3, d3
		}
	}
	for ; c < len(centroids); c++ {
		if d := vecmath.SqDistUnchecked(p, centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Run clusters points into k groups using K-means++ seeding followed
// by Lloyd iterations, keeping the best of Options.Restarts attempts.
func Run(points []vecmath.Vec, k int, rng *rand.Rand, opts Options) (*Result, error) {
	o := opts.withDefaults()
	var best *Result
	for r := 0; r < o.Restarts; r++ {
		res, err := runOnce(points, k, rng, o)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// runOnce is a single seeding + Lloyd pass. The assignment step uses
// Hamerly distance bounds unless o.Naive is set; both paths share the
// update step and produce bit-identical results (see bounds.go).
func runOnce(points []vecmath.Vec, k int, rng *rand.Rand, o Options) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	centroids, err := SeedPlusPlus(points, k, rng)
	if err != nil {
		return nil, err
	}
	dim := len(points[0])
	assign := make([]int, len(points))
	counts := make([]int, k)
	sums := make([]vecmath.Vec, k)
	for i := range sums {
		sums[i] = make(vecmath.Vec, dim)
	}
	var bs *boundsState
	if !o.Naive {
		bs = newBoundsState(len(points), k)
	}

	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		// Assignment step — the hot kernel, fanned across the pool
		// when one is configured, and pruned by the Hamerly bounds
		// after the first iteration.
		switch {
		case o.Naive:
			if err := AssignPoints(points, centroids, assign, o.Pool); err != nil {
				return nil, err
			}
		case iter == 0:
			bs.assignFull(points, centroids, assign, o.Pool)
		default:
			bs.assignBounded(points, centroids, assign, o.Pool)
		}
		moved := updateCentroids(points, centroids, assign, counts, sums, bs)
		if moved < o.Tol {
			iter++
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += vecmath.SqDistUnchecked(p, centroids[assign[i]])
	}
	return &Result{K: k, Centroids: centroids, Assign: assign, Inertia: inertia, Iterations: iter}, nil
}

// updateCentroids is the Lloyd update step shared by the naive and
// bounded paths: recompute per-cluster sums, move every centroid to
// its mean (re-seeding empty clusters at the farthest point), and
// return the total movement. When bs is non-nil the per-centroid
// drift is recorded for the next bounded assignment; the centroid
// arithmetic itself is identical either way.
func updateCentroids(points, centroids []vecmath.Vec, assign, counts []int, sums []vecmath.Vec, bs *boundsState) float64 {
	for c := range sums {
		counts[c] = 0
		for j := range sums[c] {
			sums[c][j] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			sums[c][j] += v
		}
	}
	var moved float64
	for c := range centroids {
		if counts[c] == 0 {
			// Re-seed an empty cluster at the point farthest from
			// its centroid to avoid dead clusters.
			var far int
			if bs != nil {
				far = bs.reseedFarthest(points, centroids, assign, c)
			} else {
				farD := -1.0
				for i, p := range points {
					d := vecmath.SqDistUnchecked(p, centroids[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
			}
			moved += 1 // force another iteration
			if bs != nil {
				bs.drift[c] = math.Sqrt(vecmath.SqDistUnchecked(centroids[c], points[far]))
			}
			copy(centroids[c], points[far])
			continue
		}
		inv := 1 / float64(counts[c])
		var delta float64
		for j := range centroids[c] {
			nv := sums[c][j] * inv
			d := nv - centroids[c][j]
			delta += d * d
			centroids[c][j] = nv
		}
		sd := math.Sqrt(delta)
		moved += sd
		if bs != nil {
			bs.drift[c] = sd
		}
	}
	return moved
}

// Silhouette returns the mean silhouette coefficient of the clustering
// in [-1, 1]; higher is better. Singleton clusters contribute 0 per
// the usual convention. Returns an error for k < 2.
func Silhouette(points []vecmath.Vec, assign []int, k int) (float64, error) {
	return SilhouettePool(points, assign, k, nil)
}

// DistMatrix caches the pairwise Euclidean distances of a fixed point
// set. The DDQN reward evaluates silhouettes of many clusterings over
// the same codes; precomputing the distances turns each evaluation
// from O(n²·d) into O(n²) lookups with bit-identical results.
type DistMatrix struct {
	N int
	D []float64 // row-major n×n, D[i*N+j] = dist(points[i], points[j])

	// Silhouette scratch, grown once and reused across the many
	// SilhouetteDists calls a DDQN training run makes against one
	// matrix — at cluster scale this keeps the per-episode reward
	// evaluation allocation-free. Calls on the same matrix must not
	// overlap (they never do: each builder owns its matrix and
	// evaluates one clustering at a time; the pool fan-out inside a
	// call uses index-owned rows).
	sizes   []int
	contrib []float64
	sumTo   []float64
}

// At returns the distance between points i and j.
func (m *DistMatrix) At(i, j int) float64 { return m.D[i*m.N+j] }

// PairDistances computes the full distance matrix, fanning rows across
// the pool (nil = sequential; identical output either way).
func PairDistances(points []vecmath.Vec, pool *parallel.Pool) (*DistMatrix, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("pair distances of no points: %w", ErrInput)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("pair distances point %d dim %d want %d: %w", i, len(p), dim, ErrInput)
		}
	}
	m := &DistMatrix{N: n, D: make([]float64, n*n)}
	fill := func(i int) error {
		p := points[i]
		row := m.D[i*n : (i+1)*n]
		// Four columns per pass through the multi-chain kernel; each
		// distance keeps its own ascending-dimension chain, so every
		// entry is bit-identical to the one-pair scan.
		j := 0
		for ; j+4 <= n; j += 4 {
			d0, d1, d2, d3 := vecmath.SqDist4Unchecked(
				p, points[j], points[j+1], points[j+2], points[j+3])
			row[j] = math.Sqrt(d0)
			row[j+1] = math.Sqrt(d1)
			row[j+2] = math.Sqrt(d2)
			row[j+3] = math.Sqrt(d3)
		}
		for ; j < n; j++ {
			row[j] = math.Sqrt(vecmath.SqDistUnchecked(p, points[j]))
		}
		return nil
	}
	if pool != nil {
		if err := pool.For(n, fill); err != nil {
			return nil, err
		}
		return m, nil
	}
	for i := 0; i < n; i++ {
		if err := fill(i); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SilhouetteDists is Silhouette over a precomputed distance matrix.
// The accumulation order matches SilhouettePool exactly, so the result
// is bit-identical to computing from the raw points.
func SilhouetteDists(dists *DistMatrix, assign []int, k int, pool *parallel.Pool) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("silhouette k=%d: %w", k, ErrInput)
	}
	if dists == nil || dists.N == 0 || len(assign) != dists.N {
		return 0, fmt.Errorf("silhouette dists for %d assigns: %w", len(assign), ErrInput)
	}
	if cap(dists.sizes) < k {
		dists.sizes = make([]int, k)
	}
	sizes := dists.sizes[:k]
	for c := range sizes {
		sizes[c] = 0
	}
	for _, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("silhouette assign %d outside [0,%d): %w", a, k, ErrInput)
		}
		sizes[a]++
	}
	n := dists.N
	if cap(dists.contrib) < n {
		dists.contrib = make([]float64, n)
	}
	contrib := dists.contrib[:n]
	if cap(dists.sumTo) < n*k {
		dists.sumTo = make([]float64, n*k)
	}
	sumTo := dists.sumTo[:n*k]
	one := func(i int) error {
		st := sumTo[i*k : (i+1)*k]
		for c := range st {
			st[c] = 0
		}
		row := dists.D[i*n : (i+1)*n]
		for j, d := range row {
			if i == j {
				continue
			}
			st[assign[j]] += d
		}
		contrib[i] = silhouetteOf(st, sizes, assign[i])
		return nil
	}
	if pool != nil {
		if err := pool.For(n, one); err != nil {
			return 0, err
		}
	} else {
		for i := 0; i < n; i++ {
			if err := one(i); err != nil {
				return 0, err
			}
		}
	}
	var total float64
	for _, c := range contrib {
		total += c
	}
	return total / float64(n), nil
}

// silhouetteOf turns one point's per-cluster distance sums into its
// silhouette contribution (0 for singletons or missing neighbors).
func silhouetteOf(sumTo []float64, sizes []int, own int) float64 {
	if sizes[own] <= 1 {
		return 0
	}
	a := sumTo[own] / float64(sizes[own]-1)
	b := math.Inf(1)
	for c := range sumTo {
		if c == own || sizes[c] == 0 {
			continue
		}
		if m := sumTo[c] / float64(sizes[c]); m < b {
			b = m
		}
	}
	if math.IsInf(b, 1) {
		return 0
	}
	den := math.Max(a, b)
	if den <= 0 {
		return 0
	}
	return (b - a) / den
}

// SilhouettePool is Silhouette with the O(n²) per-point distance scan
// fanned across a worker pool (nil = sequential). Each point's
// contribution is computed into its own slot and the final mean is
// reduced in index order, so the result is bit-identical to the
// sequential path.
func SilhouettePool(points []vecmath.Vec, assign []int, k int, pool *parallel.Pool) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("silhouette k=%d: %w", k, ErrInput)
	}
	if len(points) != len(assign) || len(points) == 0 {
		return 0, fmt.Errorf("silhouette %d points %d assigns: %w", len(points), len(assign), ErrInput)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return 0, fmt.Errorf("silhouette point %d dim %d want %d: %w", i, len(p), dim, ErrInput)
		}
	}
	sizes := make([]int, k)
	for _, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("silhouette assign %d outside [0,%d): %w", a, k, ErrInput)
		}
		sizes[a]++
	}
	n := len(points)
	contrib := make([]float64, n)
	sumTo := make([]float64, n*k) // per-point scratch rows, index-owned
	one := func(i int) error {
		p := points[i]
		st := sumTo[i*k : (i+1)*k]
		// Four distances per pass through the multi-chain kernel; the
		// bucket adds run in the same ascending-j order as the
		// one-pair scan, so each bucket's sum is bit-identical.
		j := 0
		for ; j+4 <= n; j += 4 {
			d0, d1, d2, d3 := vecmath.SqDist4Unchecked(
				p, points[j], points[j+1], points[j+2], points[j+3])
			if j != i {
				st[assign[j]] += math.Sqrt(d0)
			}
			if j+1 != i {
				st[assign[j+1]] += math.Sqrt(d1)
			}
			if j+2 != i {
				st[assign[j+2]] += math.Sqrt(d2)
			}
			if j+3 != i {
				st[assign[j+3]] += math.Sqrt(d3)
			}
		}
		for ; j < n; j++ {
			if j != i {
				st[assign[j]] += math.Sqrt(vecmath.SqDistUnchecked(p, points[j]))
			}
		}
		contrib[i] = silhouetteOf(st, sizes, assign[i])
		return nil
	}
	if pool != nil {
		if err := pool.For(n, one); err != nil {
			return 0, err
		}
	} else {
		for i := 0; i < n; i++ {
			if err := one(i); err != nil {
				return 0, err
			}
		}
	}
	var total float64
	for _, c := range contrib {
		total += c
	}
	return total / float64(n), nil
}

// DaviesBouldin returns the Davies-Bouldin index (lower is better).
func DaviesBouldin(points []vecmath.Vec, res *Result) (float64, error) {
	if res.K < 2 {
		return 0, fmt.Errorf("davies-bouldin k=%d: %w", res.K, ErrInput)
	}
	if len(points) != len(res.Assign) {
		return 0, fmt.Errorf("davies-bouldin %d points %d assigns: %w", len(points), len(res.Assign), ErrInput)
	}
	// Mean intra-cluster distance (scatter) per cluster.
	scatter := make([]float64, res.K)
	counts := make([]int, res.K)
	for i, p := range points {
		c := res.Assign[i]
		d, err := vecmath.Dist(p, res.Centroids[c])
		if err != nil {
			return 0, err
		}
		scatter[c] += d
		counts[c]++
	}
	for c := range scatter {
		if counts[c] > 0 {
			scatter[c] /= float64(counts[c])
		}
	}
	var sum float64
	var active int
	for i := 0; i < res.K; i++ {
		if counts[i] == 0 {
			continue
		}
		active++
		worst := 0.0
		for j := 0; j < res.K; j++ {
			if i == j || counts[j] == 0 {
				continue
			}
			d, err := vecmath.Dist(res.Centroids[i], res.Centroids[j])
			if err != nil {
				return 0, err
			}
			if d == 0 {
				continue
			}
			if r := (scatter[i] + scatter[j]) / d; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	if active < 2 {
		return 0, fmt.Errorf("davies-bouldin with %d active clusters: %w", active, ErrInput)
	}
	return sum / float64(active), nil
}
