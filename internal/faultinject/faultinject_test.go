package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

// collector is a minimal RecordSink for the wrapper tests.
type collector struct {
	records []int
	flushes int
}

func (c *collector) WriteRecord(r int) error { c.records = append(c.records, r); return nil }
func (c *collector) Flush() error            { c.flushes++; return nil }

// TestWriterFaults: FailWrite consumes nothing, ShortWrite leaks half
// and is permanent, and unscheduled calls pass through untouched.
func TestWriterFaults(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf,
		Fault{Mode: FailWrite, N: 2, Transient: true},
		Fault{Mode: ShortWrite, N: 4},
	)
	if _, err := w.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("bbbb"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("FailWrite: n=%d err=%v", n, err)
	}
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient() || fe.Op != "write" || fe.Call != 2 {
		t.Fatalf("FailWrite error shape: %+v", fe)
	}
	if buf.String() != "aaaa" {
		t.Fatalf("FailWrite consumed bytes: %q", buf.String())
	}
	if _, err := w.Write([]byte("cccc")); err != nil {
		t.Fatal(err)
	}
	n, err = w.Write([]byte("dddd"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("ShortWrite: n=%d err=%v", n, err)
	}
	if !errors.As(err, &fe) || fe.Transient() {
		t.Fatal("ShortWrite must be permanent")
	}
	if buf.String() != "aaaaccccdd" {
		t.Fatalf("ShortWrite leaked wrong bytes: %q", buf.String())
	}
	if got := w.Writes(); got != 4 {
		t.Fatalf("Writes: %d", got)
	}
}

// TestSinkFaults: record-level injection fires before the wrapped
// sink sees anything, flush faults fire on their scheduled call, and
// counts expose the retry traffic.
func TestSinkFaults(t *testing.T) {
	var c collector
	s := Wrap[int](&c,
		Fault{Mode: FailWrite, N: 2, Transient: true},
		Fault{Mode: FailFlush, N: 2},
	)
	if err := s.WriteRecord(10); err != nil {
		t.Fatal(err)
	}
	err := s.WriteRecord(11)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected write fault, got %v", err)
	}
	if len(c.records) != 1 {
		t.Fatalf("fault leaked a record: %v", c.records)
	}
	// The retry is call 3 — past the schedule — and succeeds.
	if err := s.WriteRecord(11); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected flush fault, got %v", err)
	}
	if c.flushes != 1 {
		t.Fatalf("flush fault reached the sink: %d", c.flushes)
	}
	if s.Writes() != 3 || s.Flushes() != 2 {
		t.Fatalf("counts: writes=%d flushes=%d", s.Writes(), s.Flushes())
	}
}

// TestPlan: deterministic per seed, in range, and never a transient
// short write.
func TestPlan(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		f := Plan(seed, 10)
		if f != Plan(seed, 10) {
			t.Fatalf("seed %d: plan not deterministic", seed)
		}
		if f.N < 1 || f.N > 10 {
			t.Fatalf("seed %d: N=%d out of range", seed, f.N)
		}
		if f.Mode < FailWrite || f.Mode > FailFlush {
			t.Fatalf("seed %d: mode %v", seed, f.Mode)
		}
		if f.Mode == ShortWrite && f.Transient {
			t.Fatalf("seed %d: transient short write", seed)
		}
	}
	if f := Plan(3, 0); f.N != 1 {
		t.Fatalf("degenerate calls: %+v", f)
	}
}

// TestCellPlan: deterministic per seed, fields always in range, and
// revival — when scheduled — strictly after the failure and inside
// the run. Over many seeds both revival outcomes occur.
func TestCellPlan(t *testing.T) {
	var revived, never int
	for seed := int64(0); seed < 400; seed++ {
		f := CellPlan(seed, 6, 12)
		if f != CellPlan(seed, 6, 12) {
			t.Fatalf("seed %d: cell plan not deterministic", seed)
		}
		if f.Cell < 0 || f.Cell >= 6 {
			t.Fatalf("seed %d: cell %d out of range", seed, f.Cell)
		}
		if f.FailAt < 0 || f.FailAt >= 12 {
			t.Fatalf("seed %d: failAt %d out of range", seed, f.FailAt)
		}
		switch {
		case f.ReviveAt < 0:
			never++
		case f.ReviveAt <= f.FailAt || f.ReviveAt >= 12:
			t.Fatalf("seed %d: reviveAt %d outside (%d, 12)", seed, f.ReviveAt, f.FailAt)
		default:
			revived++
		}
	}
	if revived == 0 || never == 0 {
		t.Fatalf("revival coin never landed both ways: revived=%d never=%d", revived, never)
	}
	// Degenerate dimensions clamp instead of panicking.
	if f := CellPlan(3, 0, 0); f.Cell != 0 || f.FailAt != 0 || f.ReviveAt != -1 {
		t.Fatalf("degenerate plan: %+v", f)
	}
}

// TestProcPlan: deterministic per seed, fields always in range, and
// every fault kind occurs across many seeds.
func TestProcPlan(t *testing.T) {
	var kinds [3]int
	for seed := int64(0); seed < 400; seed++ {
		f := ProcPlan(seed, 4, 8)
		if f != ProcPlan(seed, 4, 8) {
			t.Fatalf("seed %d: proc plan not deterministic", seed)
		}
		if f.Worker < 0 || f.Worker >= 4 {
			t.Fatalf("seed %d: worker %d out of range", seed, f.Worker)
		}
		if f.Interval < 0 || f.Interval >= 8 {
			t.Fatalf("seed %d: interval %d out of range", seed, f.Interval)
		}
		if f.Kind > ProcGarbage {
			t.Fatalf("seed %d: kind %d out of range", seed, f.Kind)
		}
		kinds[f.Kind]++
	}
	for k, n := range kinds {
		if n == 0 {
			t.Fatalf("fault kind %s never drawn", ProcFaultKind(k))
		}
	}
	// Degenerate dimensions clamp instead of panicking.
	if f := ProcPlan(3, 0, 0); f.Worker != 0 || f.Interval != 0 {
		t.Fatalf("degenerate plan: %+v", f)
	}
	// Kind names are stable (they appear in logs and CI output).
	if ProcKill.String() != "kill" || ProcHang.String() != "hang" || ProcGarbage.String() != "garbage" {
		t.Fatalf("kind names changed")
	}
}
