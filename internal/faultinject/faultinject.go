// Package faultinject provides deterministic failure injection for
// the session layer's sink and checkpoint I/O paths. Faults are
// scheduled by call index — fail the Nth write, short-write the Nth
// write, fail the Nth flush — so a harness can crash a run at any
// chosen point and replay the exact same failure on every execution.
// Injected errors carry a Transient marker the session's retry policy
// understands; transient faults fire before any side effect on the
// wrapped writer or sink, so retrying them is always safe.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"dtmsvs/internal/parallel"
)

// Mode selects what an injected Fault does when its call comes up.
type Mode int

const (
	// FailWrite fails the Nth write (or WriteRecord) without touching
	// the wrapped writer — no bytes are consumed, so a transient
	// FailWrite is safe to retry.
	FailWrite Mode = iota
	// ShortWrite passes half of the Nth write's bytes through and then
	// fails. It models a torn write and is always permanent: the
	// wrapped writer has seen a partial record.
	ShortWrite
	// FailFlush fails the Nth flush before delegating.
	FailFlush
)

func (m Mode) String() string {
	switch m {
	case FailWrite:
		return "fail-write"
	case ShortWrite:
		return "short-write"
	case FailFlush:
		return "fail-flush"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrInjected is the sentinel every injected failure wraps; match
// with errors.Is to tell injected faults from real I/O errors.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault schedules one failure: mode Mode on the N-th call (1-based)
// of the matching operation. Transient marks the error retryable via
// the session's transient-sink contract; ShortWrite faults are forced
// permanent because bytes have already leaked downstream.
type Fault struct {
	Mode      Mode
	N         int
	Transient bool
}

// Error is the failure an injected Fault produces.
type Error struct {
	Op        string // "write" or "flush"
	Call      int    // 1-based call index the fault fired on
	transient bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault on call %d", e.Op, e.Call)
}

// Transient reports whether the session may retry the failed call.
func (e *Error) Transient() bool { return e.transient }

// Unwrap makes errors.Is(err, ErrInjected) match.
func (e *Error) Unwrap() error { return ErrInjected }

// Writer wraps an io.Writer with byte-level fault injection. Not safe
// for concurrent use.
type Writer struct {
	w      io.Writer
	faults []Fault
	writes int
}

// NewWriter wraps w with the given fault schedule.
func NewWriter(w io.Writer, faults ...Fault) *Writer {
	return &Writer{w: w, faults: faults}
}

// Writes reports how many Write calls the wrapper has seen.
func (w *Writer) Writes() int { return w.writes }

// Write implements io.Writer, injecting any fault scheduled for this
// call index before (FailWrite) or during (ShortWrite) delegation.
func (w *Writer) Write(p []byte) (int, error) {
	w.writes++
	for _, f := range w.faults {
		if f.N != w.writes {
			continue
		}
		switch f.Mode {
		case FailWrite:
			return 0, &Error{Op: "write", Call: w.writes, transient: f.Transient}
		case ShortWrite:
			n, err := w.w.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, &Error{Op: "write", Call: w.writes}
		}
	}
	return w.w.Write(p)
}

// RecordSink is the record-level surface Sink wraps — the session
// layer's TraceSink shape, generic so this package needs no
// dependency on the root package's record type.
type RecordSink[R any] interface {
	WriteRecord(R) error
	Flush() error
}

// Sink wraps a RecordSink with record-level fault injection. FailWrite
// and ShortWrite faults fire on WriteRecord calls (ShortWrite at this
// level degenerates to a permanent FailWrite: the record boundary is
// the unit, and the wrapped sink never sees the record), FailFlush
// faults on Flush calls. Not safe for concurrent use.
type Sink[R any] struct {
	s       RecordSink[R]
	faults  []Fault
	writes  int
	flushes int
}

// Wrap wraps s with the given fault schedule.
func Wrap[R any](s RecordSink[R], faults ...Fault) *Sink[R] {
	return &Sink[R]{s: s, faults: faults}
}

// Writes reports how many WriteRecord calls the wrapper has seen.
func (s *Sink[R]) Writes() int { return s.writes }

// Flushes reports how many Flush calls the wrapper has seen.
func (s *Sink[R]) Flushes() int { return s.flushes }

// WriteRecord implements RecordSink, injecting before delegating so a
// transient failure leaves the wrapped sink untouched.
func (s *Sink[R]) WriteRecord(r R) error {
	s.writes++
	for _, f := range s.faults {
		if f.N != s.writes {
			continue
		}
		switch f.Mode {
		case FailWrite:
			return &Error{Op: "write", Call: s.writes, transient: f.Transient}
		case ShortWrite:
			return &Error{Op: "write", Call: s.writes}
		}
	}
	return s.s.WriteRecord(r)
}

// Flush implements RecordSink.
func (s *Sink[R]) Flush() error {
	s.flushes++
	for _, f := range s.faults {
		if f.Mode == FailFlush && f.N == s.flushes {
			return &Error{Op: "flush", Call: s.flushes, transient: f.Transient}
		}
	}
	return s.s.Flush()
}

// Plan derives a deterministic fault from a seed: the mode, 1-based
// call index within [1, calls] and transience are drawn from the
// seed's splitmix64 stream, so a harness sweeping seeds exercises a
// spread of failure points that is stable across runs. ShortWrite
// plans are always permanent, matching the injectors above.
func Plan(seed int64, calls int) Fault {
	if calls < 1 {
		calls = 1
	}
	rng := rand.New(parallel.NewStream(seed, 0xFA01))
	f := Fault{
		Mode:      Mode(rng.Intn(3)),
		N:         1 + rng.Intn(calls),
		Transient: rng.Intn(2) == 0,
	}
	if f.Mode == ShortWrite {
		f.Transient = false
	}
	return f
}

// CellFault schedules the failure of one cluster coverage cell: the
// cell goes dark at the FailAt scheduling-interval boundary (its
// twins are evacuated to surviving cells and its edge cache is
// dropped) and, if ReviveAt is set, returns — empty and cold — at
// that later boundary. The zero ReviveAt sentinel is -1 (never).
type CellFault struct {
	// Cell is the coverage cell / base station id to kill.
	Cell int `json:"cell"`
	// FailAt is the 0-based scheduling interval at whose start the
	// cell dies (faults never fire during warm-up).
	FailAt int `json:"failAt"`
	// ReviveAt is the 0-based interval at whose start the cell
	// returns; < 0 means it stays dark. Honored only under the
	// degrade-with-revival policy.
	ReviveAt int `json:"reviveAt"`
}

// CellPlan derives a deterministic chaos plan from its own seed
// stream (disjoint from Plan's): which of cells cells dies, at which
// of intervals boundaries, and whether/when it comes back. Half of
// all seeds schedule a revival, uniformly in the remaining intervals;
// the same (seed, cells, intervals) always yields the same plan, so a
// chaotic run replays bit-identically.
func CellPlan(seed int64, cells, intervals int) CellFault {
	if cells < 1 {
		cells = 1
	}
	if intervals < 1 {
		intervals = 1
	}
	rng := rand.New(parallel.NewStream(seed, 0xFA02))
	f := CellFault{
		Cell:     rng.Intn(cells),
		FailAt:   rng.Intn(intervals),
		ReviveAt: -1,
	}
	if rem := intervals - f.FailAt; rem > 1 && rng.Intn(2) == 0 {
		f.ReviveAt = f.FailAt + 1 + rng.Intn(rem-1)
	}
	return f
}

// ProcFaultKind selects how a distributed worker process misbehaves.
type ProcFaultKind uint8

const (
	// ProcKill terminates the worker abruptly (SIGKILL in process
	// transports, torn pipes in in-process ones) when the scheduled
	// interval's step arrives.
	ProcKill ProcFaultKind = iota
	// ProcHang stalls the worker — heartbeats included — so the
	// supervisor's liveness deadline, not the pipe, detects the loss.
	ProcHang
	// ProcGarbage makes the worker emit a corrupt frame (bad CRC) in
	// place of the interval's records, exercising torn-frame recovery.
	ProcGarbage
)

// String names the fault kind for logs and test output.
func (k ProcFaultKind) String() string {
	switch k {
	case ProcKill:
		return "kill"
	case ProcHang:
		return "hang"
	case ProcGarbage:
		return "garbage"
	}
	return "unknown"
}

// ProcFault schedules one distributed-worker process failure: worker
// Worker misbehaves per Kind when it receives the step for scheduling
// interval Interval. Faults fire once — a worker restarted past the
// scheduled boundary does not re-fire it.
type ProcFault struct {
	// Worker is the worker index to fail.
	Worker int `json:"worker"`
	// Interval is the 0-based scheduling interval whose step triggers
	// the fault (process faults never fire during warm-up or training).
	Interval int `json:"interval"`
	// Kind is the failure mode.
	Kind ProcFaultKind `json:"kind"`
}

// ProcPlan derives a deterministic worker-chaos plan from its own
// seed stream (disjoint from Plan's and CellPlan's): which of workers
// workers fails, at which of intervals boundaries, and how. The same
// (seed, workers, intervals) always yields the same plan, so a
// chaotic distributed run replays bit-identically.
func ProcPlan(seed int64, workers, intervals int) ProcFault {
	if workers < 1 {
		workers = 1
	}
	if intervals < 1 {
		intervals = 1
	}
	rng := rand.New(parallel.NewStream(seed, 0xFA03))
	return ProcFault{
		Worker:   rng.Intn(workers),
		Interval: rng.Intn(intervals),
		Kind:     ProcFaultKind(rng.Intn(3)),
	}
}
