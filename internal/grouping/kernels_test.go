package grouping

import (
	"math/rand"
	"reflect"
	"testing"

	"dtmsvs/internal/vecmath"
)

// TestTrainedWeightsDeterministicAcrossKernels pins the acceptance
// criterion at the weight level: compressor and agent weights after
// a full TrainCompressor+TrainAgent run must be bit-identical across
// {dispatched, forced-generic} kernels × GEMM pool workers {1, 4, 8},
// not merely produce the same groupings.
func TestTrainedWeightsDeterministicAcrossKernels(t *testing.T) {
	defer vecmath.ForceGeneric(false)
	twins := makeTwins(t, 16)
	type result struct {
		comp  any
		agent any
		loss  float64
	}
	var base *result
	for _, generic := range []bool{false, true} {
		vecmath.ForceGeneric(generic)
		for _, workers := range []int{1, 4, 8} {
			cfg := testConfig()
			cfg.UseCNN = true
			b, err := New(cfg, rand.New(rand.NewSource(31)))
			if err != nil {
				t.Fatal(err)
			}
			pool := vecmath.NewGEMMPool(workers)
			pool.MinFlops = 1 // engage the fan-out at test scale
			b.SetGEMMPool(pool)
			loss, err := b.TrainCompressor(twins, 3)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.TrainAgent(twins, 10); err != nil {
				t.Fatal(err)
			}
			got := &result{
				comp:  b.compressor.SaveState(),
				agent: b.agent.SaveState(),
				loss:  loss,
			}
			pool.Close()
			if base == nil {
				base = got
				continue
			}
			if got.loss != base.loss {
				t.Fatalf("generic=%v workers=%d: compressor loss %v want %v",
					generic, workers, got.loss, base.loss)
			}
			if !reflect.DeepEqual(got.comp, base.comp) {
				t.Fatalf("generic=%v workers=%d: compressor weights diverged", generic, workers)
			}
			if !reflect.DeepEqual(got.agent, base.agent) {
				t.Fatalf("generic=%v workers=%d: agent weights diverged", generic, workers)
			}
		}
	}
}
