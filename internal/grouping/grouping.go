// Package grouping implements the paper's two-step multicast group
// construction (§II-B1): a 1D-CNN compresses each user's time-series
// UDT window into a compact code, a DDQN selects the grouping number K
// by mining user similarity, and K-means++ performs the fast
// clustering. Fixed-K and raw-feature (no-CNN) baselines are included
// for the ablation experiments.
package grouping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dtmsvs/internal/cnn"
	"dtmsvs/internal/ddqn"
	"dtmsvs/internal/kmeans"
	"dtmsvs/internal/parallel"
	"dtmsvs/internal/stats"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/vecmath"
)

// ErrConfig indicates an invalid grouping configuration.
var ErrConfig = errors.New("grouping: invalid config")

// Group is one multicast group.
type Group struct {
	ID int
	// Members holds indices into the twin slice passed to Build.
	Members []int
	// Centroid is the group center in code space.
	Centroid vecmath.Vec
}

// Result is a complete group construction.
type Result struct {
	Groups []Group
	// K is the grouping number used.
	K int
	// Silhouette of the clustering (0 when K == 1).
	Silhouette float64
	// Inertia of the clustering.
	Inertia float64
	// Codes are the per-user compressed features used.
	Codes []vecmath.Vec
}

// GroupOf returns the group index containing user i, or -1.
func (r *Result) GroupOf(user int) int {
	for g, grp := range r.Groups {
		for _, m := range grp.Members {
			if m == user {
				return g
			}
		}
	}
	return -1
}

// Config parameterizes the builder.
type Config struct {
	// WindowSteps is the UDT feature window length per channel.
	WindowSteps int
	// PosScale normalizes location features (campus dimension).
	PosScale float64
	// KMin/KMax bound the grouping number (DDQN action space is
	// KMax−KMin+1 actions).
	KMin, KMax int
	// CodeDim is the CNN code size (default 8).
	CodeDim int
	// UseCNN disables compression when false (raw-window baseline).
	UseCNN bool
	// GroupCostWeight is the per-group penalty λ in the DDQN reward
	// r = silhouette − λ·K/KMax (default 0.15). It encodes the radio
	// cost of maintaining more multicast groups.
	GroupCostWeight float64
	// CNN is the compressor architecture; zero-value fields default
	// sensibly in New.
	CNN cnn.Config
	// Agent is the DDQN configuration; StateDim/NumActions are set by
	// New.
	Agent ddqn.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.WindowSteps <= 0:
		return fmt.Errorf("window steps %d: %w", c.WindowSteps, ErrConfig)
	case c.PosScale <= 0:
		return fmt.Errorf("pos scale %v: %w", c.PosScale, ErrConfig)
	case c.KMin < 1 || c.KMax < c.KMin:
		return fmt.Errorf("k range [%d,%d]: %w", c.KMin, c.KMax, ErrConfig)
	}
	return nil
}

// StateDim is the width of the DDQN observation built by envState.
const StateDim = 8

// Builder runs the two-step construction.
type Builder struct {
	cfg        Config
	compressor *cnn.Compressor
	agent      *ddqn.Agent
	rng        *rand.Rand
	pool       *parallel.Pool
}

// SetPool fans the K-means assignment and silhouette scans across the
// given worker pool (nil restores the sequential path). Results are
// bit-identical either way.
func (b *Builder) SetPool(p *parallel.Pool) { b.pool = p }

// SetGEMMPool routes the training GEMMs of the CNN compressor and the
// DDQN agent through the given pool (nil restores the sequential
// kernels). Like SetPool this is purely a wall-clock knob — trained
// weights and grouping results are bit-identical for any worker
// count.
func (b *Builder) SetGEMMPool(p *vecmath.GEMMPool) {
	if b.compressor != nil {
		b.compressor.SetGEMMPool(p)
	}
	b.agent.SetGEMMPool(p)
}

// New constructs a builder.
func New(cfg Config, rng *rand.Rand) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CodeDim == 0 {
		cfg.CodeDim = 8
	}
	if cfg.GroupCostWeight == 0 {
		cfg.GroupCostWeight = 0.15
	}

	b := &Builder{cfg: cfg, rng: rng}

	if cfg.UseCNN {
		cc := cfg.CNN
		if cc.Channels == 0 {
			cc.Channels = udt.NumFeatureChannels
		}
		if cc.Window == 0 {
			cc.Window = cfg.WindowSteps
		}
		if cc.Filters == 0 {
			cc.Filters = 8
		}
		if cc.Kernel == 0 {
			cc.Kernel = 3
		}
		if cc.Pool == 0 {
			cc.Pool = 2
		}
		if cc.CodeDim == 0 {
			cc.CodeDim = cfg.CodeDim
		}
		comp, err := cnn.New(cc, rng)
		if err != nil {
			return nil, fmt.Errorf("grouping compressor: %w", err)
		}
		b.compressor = comp
	}

	ac := cfg.Agent
	ac.StateDim = StateDim
	ac.NumActions = cfg.KMax - cfg.KMin + 1
	if ac.NumActions < 2 {
		// Degenerate action space: pad so the DDQN stays valid; the
		// extra action maps back to KMax.
		ac.NumActions = 2
	}
	agent, err := ddqn.New(ac, rng)
	if err != nil {
		return nil, fmt.Errorf("grouping agent: %w", err)
	}
	b.agent = agent
	b.cfg = cfg
	return b, nil
}

// Config returns the builder configuration.
func (b *Builder) Config() Config { return b.cfg }

// Windows extracts the raw feature windows from the twins.
func (b *Builder) Windows(twins []*udt.Twin) ([]vecmath.Vec, error) {
	if len(twins) == 0 {
		return nil, fmt.Errorf("no twins: %w", ErrConfig)
	}
	out := make([]vecmath.Vec, len(twins))
	for i, tw := range twins {
		w, err := tw.FeatureWindow(b.cfg.WindowSteps, b.cfg.PosScale)
		if err != nil {
			return nil, fmt.Errorf("twin %d window: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// Codes compresses the twins' windows (or returns raw windows when the
// CNN is disabled).
func (b *Builder) Codes(twins []*udt.Twin) ([]vecmath.Vec, error) {
	windows, err := b.Windows(twins)
	if err != nil {
		return nil, err
	}
	if b.compressor == nil {
		return windows, nil
	}
	return b.compressor.EncodeBatch(windows)
}

// TrainCompressor fits the 1D-CNN autoencoder on the twins' current
// windows. No-op (returns 0) when the CNN is disabled.
func (b *Builder) TrainCompressor(twins []*udt.Twin, epochs int) (float64, error) {
	if b.compressor == nil {
		return 0, nil
	}
	windows, err := b.Windows(twins)
	if err != nil {
		return 0, err
	}
	return b.compressor.Fit(windows, epochs, b.rng)
}

// envState summarizes a code set into the fixed-size DDQN observation:
// [n/100, mean pairwise dist, std pairwise dist, min, max, mean code
// norm, std code norm, dim/32].
func envState(codes []vecmath.Vec) (vecmath.Vec, error) {
	n := len(codes)
	if n == 0 {
		return nil, fmt.Errorf("no codes: %w", ErrConfig)
	}
	var pair stats.Online
	minD, maxD := math.Inf(1), 0.0
	// Sample up to ~2000 pairs to keep the state O(1)-ish.
	step := 1
	if n > 64 {
		step = n / 64
	}
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			d, err := vecmath.Dist(codes[i], codes[j])
			if err != nil {
				return nil, err
			}
			pair.Add(d)
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if pair.N() == 0 {
		minD = 0
	}
	var norms stats.Online
	for _, c := range codes {
		norms.Add(vecmath.Norm2(c))
	}
	return vecmath.Vec{
		float64(n) / 100,
		pair.Mean(),
		pair.Std(),
		minD,
		maxD,
		norms.Mean(),
		norms.Std(),
		float64(len(codes[0])) / 32,
	}, nil
}

// reward scores a candidate K on the codes: silhouette minus the
// per-group cost penalty. K=1 uses a normalized-inertia proxy since
// silhouette is undefined. dists optionally carries the precomputed
// pairwise distances of codes — the training loops evaluate many K on
// one fixed code set, and the cache turns each silhouette from
// O(n²·d) into O(n²) with bit-identical results.
func (b *Builder) reward(codes []vecmath.Vec, dists *kmeans.DistMatrix, k int) (float64, *kmeans.Result, error) {
	res, err := kmeans.Run(codes, k, b.rng, kmeans.Options{Pool: b.pool})
	if err != nil {
		return 0, nil, err
	}
	var quality float64
	if k >= 2 {
		var s float64
		var serr error
		if dists != nil {
			s, serr = kmeans.SilhouetteDists(dists, res.Assign, k, b.pool)
		} else {
			s, serr = kmeans.SilhouettePool(codes, res.Assign, k, b.pool)
		}
		if serr != nil {
			return 0, nil, serr
		}
		quality = s
	} else {
		// Single group: quality is high only if users are truly
		// homogeneous; use 1 − normalized mean distance to centroid.
		mean := res.Inertia / float64(len(codes))
		quality = 1 - math.Sqrt(mean)
	}
	penalty := b.cfg.GroupCostWeight * float64(k) / float64(b.cfg.KMax)
	return quality - penalty, res, nil
}

// kOfAction maps a DDQN action index to a grouping number.
func (b *Builder) kOfAction(action int) int {
	k := b.cfg.KMin + action
	if k > b.cfg.KMax {
		k = b.cfg.KMax
	}
	return k
}

// kEnv is the one-step K-selection MDP: the state summarizes the code
// set, the action is K, the reward is the clustering quality net of
// group cost, and the episode terminates immediately (contextual
// bandit), matching how the paper uses the DDQN purely to pick the
// grouping number.
type kEnv struct {
	b     *Builder
	codes []vecmath.Vec
	dists *kmeans.DistMatrix
	state vecmath.Vec
}

var _ ddqn.Env = (*kEnv)(nil)

func (e *kEnv) Reset() (vecmath.Vec, error) { return e.state, nil }

func (e *kEnv) Step(action int) (vecmath.Vec, float64, bool, error) {
	k := e.b.kOfAction(action)
	if k > len(e.codes) {
		// Infeasible K for this population: strongly negative reward.
		return e.state, -1, true, nil
	}
	r, _, err := e.b.reward(e.codes, e.dists, k)
	if err != nil {
		return e.state, 0, true, err
	}
	return e.state, r, true, nil
}

// TrainAgent trains the DDQN on the K-selection MDP over the given
// twin snapshot for the given number of episodes, returning
// per-episode rewards. The codes are fixed for the whole run, so their
// pairwise distances are computed once up front and shared by every
// episode's silhouette evaluation.
func (b *Builder) TrainAgent(twins []*udt.Twin, episodes int) ([]float64, error) {
	codes, err := b.Codes(twins)
	if err != nil {
		return nil, err
	}
	state, err := envState(codes)
	if err != nil {
		return nil, err
	}
	dists, err := kmeans.PairDistances(codes, b.pool)
	if err != nil {
		return nil, err
	}
	env := &kEnv{b: b, codes: codes, dists: dists, state: state}
	return b.agent.Train(env, episodes, 1)
}

// SelectK runs the trained DDQN greedily to pick the grouping number
// for the given codes.
func (b *Builder) SelectK(codes []vecmath.Vec) (int, error) {
	state, err := envState(codes)
	if err != nil {
		return 0, err
	}
	action, err := b.agent.Greedy(state)
	if err != nil {
		return 0, err
	}
	k := b.kOfAction(action)
	if k > len(codes) {
		k = len(codes)
	}
	return k, nil
}

func (b *Builder) assemble(codes []vecmath.Vec, res *kmeans.Result) (*Result, error) {
	groups := make([]Group, res.K)
	for g := range groups {
		groups[g] = Group{ID: g, Centroid: vecmath.Clone(res.Centroids[g])}
	}
	for i, a := range res.Assign {
		groups[a].Members = append(groups[a].Members, i)
	}
	var sil float64
	if res.K >= 2 {
		var err error
		sil, err = kmeans.SilhouettePool(codes, res.Assign, res.K, b.pool)
		if err != nil {
			return nil, err
		}
	}
	return &Result{Groups: groups, K: res.K, Silhouette: sil, Inertia: res.Inertia, Codes: codes}, nil
}

// Build runs the full two-step construction: compress, pick K with the
// DDQN, cluster with K-means++.
func (b *Builder) Build(twins []*udt.Twin) (*Result, error) {
	codes, err := b.Codes(twins)
	if err != nil {
		return nil, err
	}
	k, err := b.SelectK(codes)
	if err != nil {
		return nil, err
	}
	// Tiny populations (small cluster cells) can undercut the agent's
	// action range; clustering can never use more centers than points.
	if k > len(codes) {
		k = len(codes)
	}
	res, err := kmeans.Run(codes, k, b.rng, kmeans.Options{Pool: b.pool})
	if err != nil {
		return nil, err
	}
	return b.assemble(codes, res)
}

// BuildFixedK is the fixed-K baseline: skip the DDQN and cluster
// directly with the given grouping number.
func (b *Builder) BuildFixedK(twins []*udt.Twin, k int) (*Result, error) {
	codes, err := b.Codes(twins)
	if err != nil {
		return nil, err
	}
	if k > len(codes) {
		return nil, fmt.Errorf("k=%d for %d users: %w", k, len(codes), ErrConfig)
	}
	res, err := kmeans.Run(codes, k, b.rng, kmeans.Options{Pool: b.pool})
	if err != nil {
		return nil, err
	}
	return b.assemble(codes, res)
}

// RandIndex measures the agreement of two partitions of the same
// user set in [0, 1]: the fraction of user pairs on which the two
// groupings agree (same-group in both, or split in both). Used to
// quantify multicast-group stability across regroups — unstable
// groups force frequent multicast channel reconfiguration.
func RandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, fmt.Errorf("rand index over %d vs %d assignments: %w", len(a), len(b), ErrConfig)
	}
	var agree, total float64
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			sameA := a[i] == a[j]
			sameB := b[i] == b[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return agree / total, nil
}

// Assignments flattens a Result into a per-user group-index slice of
// the given population size (users missing from the result get -1).
func (r *Result) Assignments(numUsers int) []int {
	out := make([]int, numUsers)
	for i := range out {
		out[i] = -1
	}
	for g, grp := range r.Groups {
		for _, m := range grp.Members {
			if m >= 0 && m < numUsers {
				out[m] = g
			}
		}
	}
	return out
}

// BestKExhaustive scans every K in [KMin, KMax] and returns the one
// with the highest reward — the oracle the DDQN is trained toward,
// used in tests and ablation benches.
func (b *Builder) BestKExhaustive(twins []*udt.Twin) (int, float64, error) {
	codes, err := b.Codes(twins)
	if err != nil {
		return 0, 0, err
	}
	dists, err := kmeans.PairDistances(codes, b.pool)
	if err != nil {
		return 0, 0, err
	}
	bestK, bestR := 0, math.Inf(-1)
	for k := b.cfg.KMin; k <= b.cfg.KMax && k <= len(codes); k++ {
		r, _, rerr := b.reward(codes, dists, k)
		if rerr != nil {
			return 0, 0, rerr
		}
		if r > bestR {
			bestK, bestR = k, r
		}
	}
	if bestK == 0 {
		return 0, 0, fmt.Errorf("no feasible k in [%d,%d] for %d users: %w",
			b.cfg.KMin, b.cfg.KMax, len(codes), ErrConfig)
	}
	return bestK, bestR, nil
}
