// This file exports the builder's trained-model state for session
// checkpoint/restore: the CNN autoencoder weights (when enabled) and
// the DDQN K-selector's online-network weights. The builder's random
// stream is owned by the engine (which counts and restores it), and
// training is atomic within the session prologue, so weights are the
// only builder state a boundary checkpoint needs.

package grouping

import (
	"fmt"

	"dtmsvs/internal/cnn"
	"dtmsvs/internal/nn"
)

// State is the serializable model state of a Builder.
type State struct {
	// Compressor holds the autoencoder weights; nil when the CNN is
	// disabled in the configuration.
	Compressor *cnn.State `json:"compressor,omitempty"`
	// Agent holds the DDQN online-network weights (the target net is
	// re-synchronized on load, matching ddqn.Agent.LoadState).
	Agent *nn.WeightState `json:"agent"`
}

// SaveState captures the builder's trained weights.
func (b *Builder) SaveState() *State {
	st := &State{Agent: b.agent.SaveState()}
	if b.compressor != nil {
		st.Compressor = b.compressor.SaveState()
	}
	return st
}

// LoadState restores weights saved from a builder with the same
// configuration.
func (b *Builder) LoadState(st *State) error {
	if st == nil || st.Agent == nil {
		return fmt.Errorf("nil builder state: %w", ErrConfig)
	}
	if b.compressor != nil {
		if st.Compressor == nil {
			return fmt.Errorf("builder state missing compressor weights: %w", ErrConfig)
		}
		if err := b.compressor.LoadState(st.Compressor); err != nil {
			return fmt.Errorf("compressor: %w", err)
		}
	}
	if err := b.agent.LoadState(st.Agent); err != nil {
		return fmt.Errorf("agent: %w", err)
	}
	return nil
}
