package grouping

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dtmsvs/internal/udt"
	"dtmsvs/internal/vecmath"
	"dtmsvs/internal/video"
)

func testConfig() Config {
	return Config{
		WindowSteps: 16, PosScale: 2000,
		KMin: 2, KMax: 5,
		UseCNN: true,
	}
}

// makeTwins builds n twins split into two behavioral clusters:
// high-CQI static heavy watchers near (100,100) vs low-CQI mobile
// light watchers near (1900,1900).
func makeTwins(t *testing.T, n int) []*udt.Twin {
	t.Helper()
	twins := make([]*udt.Twin, n)
	for i := range twins {
		tw, err := udt.NewTwin(i, udt.Config{
			ChannelEvery: 1, LocationEvery: 1, WatchEvery: 1, PreferenceEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		clusterA := i < n/2
		for tick := 0; tick < 32; tick++ {
			tw.Tick()
			if clusterA {
				if _, err := tw.CollectChannel(13 + tick%3); err != nil {
					t.Fatal(err)
				}
				tw.CollectLocation(100+float64(tick), 100)
				if _, err := tw.CollectView(video.News, 40, 0.8, false); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := tw.CollectChannel(1 + tick%3); err != nil {
					t.Fatal(err)
				}
				tw.CollectLocation(1900-10*float64(tick), 1900)
				if _, err := tw.CollectView(video.Game, 5, 0.1, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		twins[i] = tw
	}
	return twins
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"window", func(c *Config) { c.WindowSteps = 0 }},
		{"posscale", func(c *Config) { c.PosScale = 0 }},
		{"kmin", func(c *Config) { c.KMin = 0 }},
		{"krange", func(c *Config) { c.KMin = 5; c.KMax = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mut(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.KMax = 0
	cfg.KMin = 0
	if _, err := New(cfg, rand.New(rand.NewSource(1))); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestWindowsAndCodes(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Windows(nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	twins := makeTwins(t, 10)
	windows, err := b.Windows(twins)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 10 || len(windows[0]) != udt.NumFeatureChannels*16 {
		t.Fatalf("windows %d × %d", len(windows), len(windows[0]))
	}
	codes, err := b.Codes(twins)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 10 || len(codes[0]) != 8 {
		t.Fatalf("codes %d × %d (default CodeDim 8)", len(codes), len(codes[0]))
	}
}

func TestCodesRawWhenCNNDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.UseCNN = false
	b, err := New(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 6)
	codes, err := b.Codes(twins)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes[0]) != udt.NumFeatureChannels*16 {
		t.Fatalf("raw codes dim %d", len(codes[0]))
	}
	// TrainCompressor must be a no-op.
	loss, err := b.TrainCompressor(twins, 5)
	if err != nil || loss != 0 {
		t.Fatalf("no-CNN TrainCompressor: %v, %v", loss, err)
	}
}

func TestTrainCompressorReducesLoss(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 16)
	first, err := b.TrainCompressor(twins, 1)
	if err != nil {
		t.Fatal(err)
	}
	last, err := b.TrainCompressor(twins, 30)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("compressor loss did not drop: %v -> %v", first, last)
	}
}

func TestBuildPartition(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 20)
	if _, err := b.TrainCompressor(twins, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TrainAgent(twins, 60); err != nil {
		t.Fatal(err)
	}
	res, err := b.Build(twins)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 || res.K > 5 {
		t.Fatalf("K=%d outside [2,5]", res.K)
	}
	if len(res.Groups) != res.K {
		t.Fatalf("%d groups for K=%d", len(res.Groups), res.K)
	}
	seen := make(map[int]bool)
	for _, g := range res.Groups {
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("user %d in two groups", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("partition covers %d of 20 users", len(seen))
	}
	for u := 0; u < 20; u++ {
		if res.GroupOf(u) < 0 {
			t.Fatalf("user %d not found", u)
		}
	}
	if res.GroupOf(999) != -1 {
		t.Fatal("unknown user must map to -1")
	}
}

func TestBuildSeparatesBehavioralClusters(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 24)
	if _, err := b.TrainCompressor(twins, 40); err != nil {
		t.Fatal(err)
	}
	res, err := b.BuildFixedK(twins, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Users 0..11 (cluster A) must all land together, as must 12..23.
	gA := res.GroupOf(0)
	for u := 1; u < 12; u++ {
		if res.GroupOf(u) != gA {
			t.Fatalf("cluster A split: user %d in %d, want %d", u, res.GroupOf(u), gA)
		}
	}
	gB := res.GroupOf(12)
	if gB == gA {
		t.Fatal("clusters merged")
	}
	for u := 13; u < 24; u++ {
		if res.GroupOf(u) != gB {
			t.Fatalf("cluster B split: user %d", u)
		}
	}
	if res.Silhouette < 0.5 {
		t.Fatalf("silhouette %v too low for separated clusters", res.Silhouette)
	}
}

func TestBuildFixedKValidation(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 4)
	if _, err := b.BuildFixedK(twins, 10); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestSelectKInRange(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 12)
	codes, err := b.Codes(twins)
	if err != nil {
		t.Fatal(err)
	}
	k, err := b.SelectK(codes)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 || k > 5 {
		t.Fatalf("K=%d outside range", k)
	}
}

func TestBestKExhaustivePrefersTwoClusters(t *testing.T) {
	b, err := New(testConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 20)
	if _, err := b.TrainCompressor(twins, 40); err != nil {
		t.Fatal(err)
	}
	k, reward, err := b.BestKExhaustive(twins)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("oracle K=%d for two-cluster data, want 2", k)
	}
	if reward <= 0 {
		t.Fatalf("oracle reward %v", reward)
	}
}

func TestTrainedAgentApproachesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b, err := New(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	twins := makeTwins(t, 20)
	if _, err := b.TrainCompressor(twins, 40); err != nil {
		t.Fatal(err)
	}
	oracleK, _, err := b.BestKExhaustive(twins)
	if err != nil {
		t.Fatal(err)
	}
	rewards, err := b.TrainAgent(twins, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rewards) != 200 {
		t.Fatalf("%d episode rewards", len(rewards))
	}
	codes, err := b.Codes(twins)
	if err != nil {
		t.Fatal(err)
	}
	k, err := b.SelectK(codes)
	if err != nil {
		t.Fatal(err)
	}
	if k != oracleK {
		t.Fatalf("trained agent K=%d, oracle %d", k, oracleK)
	}
}

func TestEnvStateShape(t *testing.T) {
	codes := []vecmath.Vec{{1, 2}, {3, 4}, {5, 6}}
	st, err := envState(codes)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != StateDim {
		t.Fatalf("state dim %d, want %d", len(st), StateDim)
	}
	if _, err := envState(nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestRandIndex(t *testing.T) {
	if _, err := RandIndex([]int{1}, []int{1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	if _, err := RandIndex([]int{1, 2}, []int{1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	// Identical partitions (up to label permutation) → 1.
	ri, err := RandIndex([]int{0, 0, 1, 1}, []int{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Fatalf("permuted identical partitions: %v", ri)
	}
	// Fully merged vs fully split → 0 agreement.
	ri, err = RandIndex([]int{0, 0, 0}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ri != 0 {
		t.Fatalf("opposite partitions: %v", ri)
	}
	// One user moved in a 2+2 split: pairs (0,1), (0,3) and (1,3)
	// agree, the three pairs involving the mover's old relations do
	// not — 3 of 6.
	ri, err = RandIndex([]int{0, 0, 1, 1}, []int{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ri-0.5) > 1e-12 {
		t.Fatalf("rand index %v, want 0.5", ri)
	}
}

func TestAssignments(t *testing.T) {
	res := &Result{Groups: []Group{
		{ID: 0, Members: []int{0, 2}},
		{ID: 1, Members: []int{1}},
	}}
	a := res.Assignments(4)
	want := []int{0, 1, 0, -1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("assignments %v, want %v", a, want)
		}
	}
}
