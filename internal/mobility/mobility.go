// Package mobility models user movement over a 2-D campus region.
// The paper initializes users at random positions on the University of
// Waterloo campus and moves them along different trajectories; we
// provide a rectangular campus map with named landmarks, a
// random-waypoint model and a landmark-trajectory model (repro
// substitution documented in DESIGN.md §2).
package mobility

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrParam indicates an invalid mobility parameter.
var ErrParam = errors.New("mobility: invalid parameter")

// Point is a 2-D position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Map is a rectangular campus region with named landmarks users
// travel between.
type Map struct {
	Width, Height float64 // meters
	Landmarks     []Point
}

// CampusMap returns a 2 km × 2 km region with a grid of landmarks
// standing in for campus buildings (library, residences, lecture
// halls, ...). Landmark spacing is ~400 m.
func CampusMap() *Map {
	m := &Map{Width: 2000, Height: 2000}
	for x := 200.0; x < 2000; x += 400 {
		for y := 200.0; y < 2000; y += 400 {
			m.Landmarks = append(m.Landmarks, Point{X: x, Y: y})
		}
	}
	return m
}

// Contains reports whether p lies within the map.
func (m *Map) Contains(p Point) bool {
	return p.X >= 0 && p.X <= m.Width && p.Y >= 0 && p.Y <= m.Height
}

// Clamp forces p into the map bounds.
func (m *Map) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), m.Width),
		Y: math.Min(math.Max(p.Y, 0), m.Height),
	}
}

// RandomPoint draws a uniform position on the map.
func (m *Map) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * m.Width, Y: rng.Float64() * m.Height}
}

// Model advances a single user's position in discrete time steps.
type Model interface {
	// Position returns the current position.
	Position() Point
	// Advance moves the user by dt seconds and returns the new
	// position.
	Advance(dt float64) (Point, error)
}

// RandomWaypoint implements the classic random-waypoint model: pick a
// uniform destination, walk toward it at a speed drawn from
// [MinSpeed, MaxSpeed], pause, repeat.
type RandomWaypoint struct {
	m                  *Map
	rng                *rand.Rand
	pos, dst           Point
	speed              float64
	minSpeed, maxSpeed float64
	pause, pauseLeft   float64
}

// NewRandomWaypoint creates a walker starting at a uniform position.
// Speeds are in m/s; pause in seconds after reaching each waypoint.
func NewRandomWaypoint(m *Map, minSpeed, maxSpeed, pause float64, rng *rand.Rand) (*RandomWaypoint, error) {
	if m == nil {
		return nil, fmt.Errorf("nil map: %w", ErrParam)
	}
	if minSpeed <= 0 || maxSpeed < minSpeed || pause < 0 {
		return nil, fmt.Errorf("speeds [%v,%v] pause %v: %w", minSpeed, maxSpeed, pause, ErrParam)
	}
	w := &RandomWaypoint{
		m: m, rng: rng,
		pos:      m.RandomPoint(rng),
		minSpeed: minSpeed, maxSpeed: maxSpeed, pause: pause,
	}
	w.pickDestination()
	return w, nil
}

var _ Model = (*RandomWaypoint)(nil)

func (w *RandomWaypoint) pickDestination() {
	w.dst = w.m.RandomPoint(w.rng)
	w.speed = w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
}

// Position implements Model.
func (w *RandomWaypoint) Position() Point { return w.pos }

// Advance implements Model.
func (w *RandomWaypoint) Advance(dt float64) (Point, error) {
	if dt <= 0 {
		return w.pos, fmt.Errorf("advance dt=%v: %w", dt, ErrParam)
	}
	remaining := dt
	for remaining > 0 {
		if w.pauseLeft > 0 {
			wait := math.Min(w.pauseLeft, remaining)
			w.pauseLeft -= wait
			remaining -= wait
			continue
		}
		d := w.pos.Dist(w.dst)
		step := w.speed * remaining
		if step < d {
			frac := step / d
			w.pos.X += (w.dst.X - w.pos.X) * frac
			w.pos.Y += (w.dst.Y - w.pos.Y) * frac
			break
		}
		// Arrive, pause, pick a new destination.
		travelTime := d / w.speed
		remaining -= travelTime
		w.pos = w.dst
		w.pauseLeft = w.pause
		w.pickDestination()
	}
	return w.pos, nil
}

// LandmarkWalk moves a user along a cyclic sequence of map landmarks
// (a "trajectory" in the paper's wording), with per-user speed.
type LandmarkWalk struct {
	m     *Map
	route []Point
	speed float64
	pos   Point
	next  int
}

// NewLandmarkWalk builds a walker over a random route of routeLen
// distinct landmarks at the given speed (m/s).
func NewLandmarkWalk(m *Map, routeLen int, speed float64, rng *rand.Rand) (*LandmarkWalk, error) {
	if m == nil || len(m.Landmarks) == 0 {
		return nil, fmt.Errorf("map without landmarks: %w", ErrParam)
	}
	if routeLen < 2 || routeLen > len(m.Landmarks) {
		return nil, fmt.Errorf("route length %d of %d landmarks: %w", routeLen, len(m.Landmarks), ErrParam)
	}
	if speed <= 0 {
		return nil, fmt.Errorf("speed %v: %w", speed, ErrParam)
	}
	perm := rng.Perm(len(m.Landmarks))
	route := make([]Point, routeLen)
	for i := 0; i < routeLen; i++ {
		route[i] = m.Landmarks[perm[i]]
	}
	return &LandmarkWalk{m: m, route: route, speed: speed, pos: route[0], next: 1}, nil
}

var _ Model = (*LandmarkWalk)(nil)

// Position implements Model.
func (l *LandmarkWalk) Position() Point { return l.pos }

// Route returns a copy of the walker's landmark route.
func (l *LandmarkWalk) Route() []Point {
	out := make([]Point, len(l.route))
	copy(out, l.route)
	return out
}

// Advance implements Model.
func (l *LandmarkWalk) Advance(dt float64) (Point, error) {
	if dt <= 0 {
		return l.pos, fmt.Errorf("advance dt=%v: %w", dt, ErrParam)
	}
	remaining := dt
	for remaining > 0 {
		target := l.route[l.next]
		d := l.pos.Dist(target)
		step := l.speed * remaining
		if step < d {
			frac := step / d
			l.pos.X += (target.X - l.pos.X) * frac
			l.pos.Y += (target.Y - l.pos.Y) * frac
			break
		}
		if l.speed <= 0 || d == 0 {
			l.pos = target
			l.next = (l.next + 1) % len(l.route)
			continue
		}
		remaining -= d / l.speed
		l.pos = target
		l.next = (l.next + 1) % len(l.route)
	}
	return l.pos, nil
}

// Static is a non-moving user (e.g. seated in a lecture hall).
type Static struct {
	P Point
}

var _ Model = (*Static)(nil)

// Position implements Model.
func (s *Static) Position() Point { return s.P }

// Advance implements Model.
func (s *Static) Advance(dt float64) (Point, error) {
	if dt <= 0 {
		return s.P, fmt.Errorf("advance dt=%v: %w", dt, ErrParam)
	}
	return s.P, nil
}
