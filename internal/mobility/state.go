// This file exports each mobility model's mutable state for session
// checkpoint/restore. Construction-time parameters (map, speed
// bounds, route, noise parameters) and the model's random stream are
// restored by replaying the constructor on the same derived stream;
// these accessors cover only the fields that evolve as the walker
// advances.

package mobility

// WaypointState is the mutable state of a RandomWaypoint walker.
type WaypointState struct {
	Pos, Dst  Point
	Speed     float64
	PauseLeft float64
}

// State captures the walker's mutable state.
func (w *RandomWaypoint) State() WaypointState {
	return WaypointState{Pos: w.pos, Dst: w.dst, Speed: w.speed, PauseLeft: w.pauseLeft}
}

// SetState restores state captured by State.
func (w *RandomWaypoint) SetState(st WaypointState) {
	w.pos, w.dst, w.speed, w.pauseLeft = st.Pos, st.Dst, st.Speed, st.PauseLeft
}

// WalkState is the mutable state of a LandmarkWalk walker (the route
// itself is fixed at construction).
type WalkState struct {
	Pos  Point
	Next int
}

// State captures the walker's mutable state.
func (w *LandmarkWalk) State() WalkState { return WalkState{Pos: w.pos, Next: w.next} }

// SetState restores state captured by State.
func (w *LandmarkWalk) SetState(st WalkState) { w.pos, w.next = st.Pos, st.Next }

// GaussMarkovState is the mutable state of a GaussMarkov walker.
type GaussMarkovState struct {
	Pos        Point
	Speed, Dir float64
}

// State captures the walker's mutable state.
func (g *GaussMarkov) State() GaussMarkovState {
	return GaussMarkovState{Pos: g.pos, Speed: g.speed, Dir: g.dir}
}

// SetState restores state captured by State.
func (g *GaussMarkov) SetState(st GaussMarkovState) {
	g.pos, g.speed, g.dir = st.Pos, st.Speed, st.Dir
}
