package mobility

import (
	"fmt"
	"math"
	"math/rand"
)

// GaussMarkov implements the Gauss-Markov mobility model: speed and
// direction evolve as first-order autoregressive processes
//
//	s(t+1) = α·s(t) + (1−α)·s̄ + √(1−α²)·σs·N(0,1)
//	d(t+1) = α·d(t) + (1−α)·d̄ + √(1−α²)·σd·N(0,1)
//
// which produces smoother, more temporally correlated trajectories
// than random waypoint — the regime where the digital twin's velocity
// extrapolation shines. Users reflect off the map boundary.
type GaussMarkov struct {
	m   *Map
	rng *rand.Rand

	pos        Point
	speed, dir float64

	// Alpha is the memory parameter in [0,1): 0 = memoryless, →1 =
	// near-constant velocity.
	Alpha float64
	// MeanSpeed and SpeedSigma parameterize the speed process (m/s).
	MeanSpeed, SpeedSigma float64
	// DirSigma is the direction noise (radians).
	DirSigma float64
}

// NewGaussMarkov creates a walker at a uniform position with a
// uniform initial direction.
func NewGaussMarkov(m *Map, alpha, meanSpeed, speedSigma, dirSigma float64, rng *rand.Rand) (*GaussMarkov, error) {
	if m == nil {
		return nil, fmt.Errorf("nil map: %w", ErrParam)
	}
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("alpha %v: %w", alpha, ErrParam)
	}
	if meanSpeed <= 0 || speedSigma < 0 || dirSigma < 0 {
		return nil, fmt.Errorf("speed %v sigma %v dir sigma %v: %w", meanSpeed, speedSigma, dirSigma, ErrParam)
	}
	return &GaussMarkov{
		m: m, rng: rng,
		pos:   m.RandomPoint(rng),
		speed: meanSpeed,
		dir:   rng.Float64() * 2 * math.Pi,
		Alpha: alpha, MeanSpeed: meanSpeed, SpeedSigma: speedSigma, DirSigma: dirSigma,
	}, nil
}

var _ Model = (*GaussMarkov)(nil)

// Position implements Model.
func (g *GaussMarkov) Position() Point { return g.pos }

// Advance implements Model. The AR update runs once per call (the
// engine calls it once per collection tick, giving the standard
// discrete-time formulation).
func (g *GaussMarkov) Advance(dt float64) (Point, error) {
	if dt <= 0 {
		return g.pos, fmt.Errorf("advance dt=%v: %w", dt, ErrParam)
	}
	noise := math.Sqrt(1 - g.Alpha*g.Alpha)
	g.speed = g.Alpha*g.speed + (1-g.Alpha)*g.MeanSpeed + noise*g.SpeedSigma*g.rng.NormFloat64()
	if g.speed < 0 {
		g.speed = 0
	}
	meanDir := g.dir // locally, the mean direction is the current one
	g.dir = g.Alpha*g.dir + (1-g.Alpha)*meanDir + noise*g.DirSigma*g.rng.NormFloat64()

	next := Point{
		X: g.pos.X + g.speed*dt*math.Cos(g.dir),
		Y: g.pos.Y + g.speed*dt*math.Sin(g.dir),
	}
	// Reflect off boundaries.
	if next.X < 0 {
		next.X = -next.X
		g.dir = math.Pi - g.dir
	}
	if next.X > g.m.Width {
		next.X = 2*g.m.Width - next.X
		g.dir = math.Pi - g.dir
	}
	if next.Y < 0 {
		next.Y = -next.Y
		g.dir = -g.dir
	}
	if next.Y > g.m.Height {
		next.Y = 2*g.m.Height - next.Y
		g.dir = -g.dir
	}
	g.pos = g.m.Clamp(next)
	return g.pos, nil
}
