package mobility

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("dist %v, want 5", d)
	}
	if d := (Point{1, 1}).Dist(Point{1, 1}); d != 0 {
		t.Fatalf("dist %v, want 0", d)
	}
}

func TestCampusMap(t *testing.T) {
	m := CampusMap()
	if m.Width != 2000 || m.Height != 2000 {
		t.Fatalf("campus %vx%v", m.Width, m.Height)
	}
	if len(m.Landmarks) != 25 {
		t.Fatalf("%d landmarks, want 25", len(m.Landmarks))
	}
	for _, l := range m.Landmarks {
		if !m.Contains(l) {
			t.Fatalf("landmark %v outside map", l)
		}
	}
}

func TestContainsClamp(t *testing.T) {
	m := CampusMap()
	if m.Contains(Point{-1, 0}) || m.Contains(Point{0, 2001}) {
		t.Fatal("out-of-bounds point reported inside")
	}
	c := m.Clamp(Point{-50, 3000})
	if c.X != 0 || c.Y != 2000 {
		t.Fatalf("clamp = %v", c)
	}
}

func TestRandomPointInBounds(t *testing.T) {
	m := CampusMap()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := m.RandomPoint(rng); !m.Contains(p) {
			t.Fatalf("random point %v outside", p)
		}
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewRandomWaypoint(nil, 1, 2, 0, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	m := CampusMap()
	if _, err := NewRandomWaypoint(m, 0, 2, 0, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewRandomWaypoint(m, 3, 2, 0, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("max<min: want ErrParam, got %v", err)
	}
	if _, err := NewRandomWaypoint(m, 1, 2, -1, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("negative pause: want ErrParam, got %v", err)
	}
}

func TestRandomWaypointStaysInBoundsAndMoves(t *testing.T) {
	m := CampusMap()
	rng := rand.New(rand.NewSource(3))
	w, err := NewRandomWaypoint(m, 1, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	start := w.Position()
	var traveled float64
	prev := start
	for i := 0; i < 500; i++ {
		p, aerr := w.Advance(10)
		if aerr != nil {
			t.Fatal(aerr)
		}
		if !m.Contains(p) {
			t.Fatalf("walker left map: %v", p)
		}
		traveled += prev.Dist(p)
		prev = p
	}
	if traveled == 0 {
		t.Fatal("walker never moved")
	}
	if _, err := w.Advance(0); !errors.Is(err, ErrParam) {
		t.Fatalf("dt=0: want ErrParam, got %v", err)
	}
}

// Speed property: distance covered in one Advance(dt) never exceeds
// maxSpeed*dt (pauses only slow it down).
func TestRandomWaypointSpeedBound(t *testing.T) {
	f := func(seed int64) bool {
		m := CampusMap()
		rng := rand.New(rand.NewSource(seed))
		const maxSpeed = 2.5
		w, err := NewRandomWaypoint(m, 0.5, maxSpeed, 1, rng)
		if err != nil {
			return false
		}
		prev := w.Position()
		for i := 0; i < 50; i++ {
			const dt = 7.0
			p, aerr := w.Advance(dt)
			if aerr != nil {
				return false
			}
			if prev.Dist(p) > maxSpeed*dt+1e-6 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLandmarkWalkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := CampusMap()
	if _, err := NewLandmarkWalk(nil, 3, 1, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewLandmarkWalk(m, 1, 1, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("route too short: want ErrParam, got %v", err)
	}
	if _, err := NewLandmarkWalk(m, 99, 1, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("route too long: want ErrParam, got %v", err)
	}
	if _, err := NewLandmarkWalk(m, 3, 0, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("zero speed: want ErrParam, got %v", err)
	}
	empty := &Map{Width: 100, Height: 100}
	if _, err := NewLandmarkWalk(empty, 2, 1, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("no landmarks: want ErrParam, got %v", err)
	}
}

func TestLandmarkWalkVisitsRoute(t *testing.T) {
	m := CampusMap()
	rng := rand.New(rand.NewSource(5))
	w, err := NewLandmarkWalk(m, 3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	route := w.Route()
	if len(route) != 3 {
		t.Fatalf("route len %d", len(route))
	}
	if w.Position() != route[0] {
		t.Fatal("walker must start at first landmark")
	}
	// Advance long enough to have looped the route at least once.
	visited := map[Point]bool{}
	for i := 0; i < 3000; i++ {
		p, aerr := w.Advance(1)
		if aerr != nil {
			t.Fatal(aerr)
		}
		for _, lm := range route {
			// Detection radius = one step of travel (speed×dt).
			if p.Dist(lm) <= 10 {
				visited[lm] = true
			}
		}
	}
	if len(visited) != 3 {
		t.Fatalf("visited %d of 3 route landmarks", len(visited))
	}
}

func TestLandmarkWalkRouteCopy(t *testing.T) {
	m := CampusMap()
	rng := rand.New(rand.NewSource(6))
	w, err := NewLandmarkWalk(m, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Route()
	r[0] = Point{-999, -999}
	if w.Route()[0].X == -999 {
		t.Fatal("Route must return a copy")
	}
}

func TestStatic(t *testing.T) {
	s := &Static{P: Point{5, 7}}
	p, err := s.Advance(100)
	if err != nil {
		t.Fatal(err)
	}
	if p != s.Position() || p.X != 5 || p.Y != 7 {
		t.Fatalf("static moved: %v", p)
	}
	if _, err := s.Advance(-1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	// With an enormous pause, the walker should spend most time still.
	m := &Map{Width: 10, Height: 10}
	rng := rand.New(rand.NewSource(7))
	w, err := NewRandomWaypoint(m, 5, 5, 1e6, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Reach first waypoint (map is tiny, speed high).
	if _, err := w.Advance(10); err != nil {
		t.Fatal(err)
	}
	p1 := w.Position()
	if _, err := w.Advance(100); err != nil {
		t.Fatal(err)
	}
	p2 := w.Position()
	if math.Abs(p1.X-p2.X) > 1e-9 || math.Abs(p1.Y-p2.Y) > 1e-9 {
		t.Fatalf("walker moved during pause: %v -> %v", p1, p2)
	}
}

func TestGaussMarkovValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := CampusMap()
	if _, err := NewGaussMarkov(nil, 0.8, 1, 0.2, 0.3, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := NewGaussMarkov(m, 1.0, 1, 0.2, 0.3, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("alpha 1: want ErrParam, got %v", err)
	}
	if _, err := NewGaussMarkov(m, 0.8, 0, 0.2, 0.3, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("zero speed: want ErrParam, got %v", err)
	}
	if _, err := NewGaussMarkov(m, 0.8, 1, -1, 0.3, rng); !errors.Is(err, ErrParam) {
		t.Fatalf("negative sigma: want ErrParam, got %v", err)
	}
}

func TestGaussMarkovStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := CampusMap()
	g, err := NewGaussMarkov(m, 0.85, 1.2, 0.3, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var traveled float64
	prev := g.Position()
	for i := 0; i < 2000; i++ {
		p, aerr := g.Advance(10)
		if aerr != nil {
			t.Fatal(aerr)
		}
		if !m.Contains(p) {
			t.Fatalf("walker left map at step %d: %v", i, p)
		}
		traveled += prev.Dist(p)
		prev = p
	}
	if traveled == 0 {
		t.Fatal("gauss-markov walker never moved")
	}
	if _, err := g.Advance(0); !errors.Is(err, ErrParam) {
		t.Fatalf("dt=0: want ErrParam, got %v", err)
	}
}

// High alpha gives smoother headings: mean step-to-step displacement
// correlation must exceed that of a low-alpha walker.
func TestGaussMarkovAlphaSmoothness(t *testing.T) {
	heading := func(alpha float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		m := &Map{Width: 1e7, Height: 1e7} // effectively unbounded
		g, err := NewGaussMarkov(m, alpha, 1.4, 0.1, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		g.pos = Point{X: 5e6, Y: 5e6}
		prev := g.Position()
		var prevDX, prevDY float64
		var corr float64
		var n int
		for i := 0; i < 500; i++ {
			p, aerr := g.Advance(10)
			if aerr != nil {
				t.Fatal(aerr)
			}
			dx, dy := p.X-prev.X, p.Y-prev.Y
			norm := math.Hypot(dx, dy)
			if norm > 0 && i > 0 {
				prevNorm := math.Hypot(prevDX, prevDY)
				if prevNorm > 0 {
					corr += (dx*prevDX + dy*prevDY) / (norm * prevNorm)
					n++
				}
			}
			prevDX, prevDY = dx, dy
			prev = p
		}
		return corr / float64(n)
	}
	smooth := heading(0.95, 10)
	rough := heading(0.05, 10)
	if smooth <= rough {
		t.Fatalf("alpha smoothness violated: %v (0.95) <= %v (0.05)", smooth, rough)
	}
}
