package tracebin

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// testRecords builds a deterministic mixed stream: per-cell runs with
// constant and varying columns, negative cells, and awkward floats
// (±0, NaN payload, infinities) that must survive bit-exactly.
func testRecords(n int) []Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, n)
	for i := range recs {
		r := &recs[i]
		r.BS = (i / 7) % 5
		if i%97 == 0 {
			r.BS = -1
		}
		r.Interval = i / 50
		r.GroupID = i % 11
		r.Size = 40
		r.PredictedRBs = float64(i%13) + 0.5
		r.ActualRBs = rng.Float64() * 100
		r.AllocatedRBs = i % 17
		r.PredictedCycles = 1e9
		r.ActualCycles = 1e9 + float64(i)
		r.PredictedBits = 7e8
		r.ActualBits = 7e8
		r.PredictedWasteBits = 0
		r.ActualWasteBits = math.Copysign(0, -1) // -0 must round-trip
		r.ActualEngagementS = rng.Float64() * 15
		r.WorstSNRdB = -3.25
		r.BitrateBps = 4.5e6
	}
	recs[1].ActualEngagementS = math.NaN()
	recs[2].WorstSNRdB = math.Inf(1)
	recs[3].WorstSNRdB = math.Inf(-1)
	return recs
}

func bitsEqual(a, b Record) bool {
	if a.BS != b.BS || a.Interval != b.Interval || a.GroupID != b.GroupID ||
		a.Size != b.Size || a.AllocatedRBs != b.AllocatedRBs {
		return false
	}
	fa := []float64{a.PredictedRBs, a.ActualRBs, a.PredictedCycles, a.ActualCycles,
		a.PredictedBits, a.ActualBits, a.PredictedWasteBits, a.ActualWasteBits,
		a.ActualEngagementS, a.WorstSNRdB, a.BitrateBps}
	fb := []float64{b.PredictedRBs, b.ActualRBs, b.PredictedCycles, b.ActualCycles,
		b.PredictedBits, b.ActualBits, b.PredictedWasteBits, b.ActualWasteBits,
		b.ActualEngagementS, b.WorstSNRdB, b.BitrateBps}
	for i := range fa {
		if math.Float64bits(fa[i]) != math.Float64bits(fb[i]) {
			return false
		}
	}
	return true
}

func encode(t *testing.T, recs []Record, opts WriterOptions, flushEvery int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if flushEvery <= 0 {
		flushEvery = len(recs)
	}
	for lo := 0; lo < len(recs); lo += flushEvery {
		hi := min(lo+flushEvery, len(recs))
		if err := w.Flush(recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	recs := testRecords(1500)
	for _, tc := range []struct {
		name string
		opts WriterOptions
		per  int
	}{
		{"sequential", WriterOptions{Workers: 1}, 0},
		{"parallel", WriterOptions{Workers: 4}, 0},
		{"compressed", WriterOptions{Workers: 4, Compress: true}, 0},
		{"small-blocks", WriterOptions{Workers: 4, BlockRecords: 64, MinBlockRecords: 16}, 0},
		{"multi-flush", WriterOptions{Workers: 4, Compress: true}, 137},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := encode(t, recs, tc.opts, tc.per)
			got, err := ReadAll(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(recs) {
				t.Fatalf("decoded %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if !bitsEqual(got[i], recs[i]) {
					t.Fatalf("record %d not bit-identical: got %+v want %+v", i, got[i], recs[i])
				}
			}
		})
	}
}

// TestParallelMatchesSequential pins the determinism claim: worker
// count must not change a single output byte.
func TestParallelMatchesSequential(t *testing.T) {
	recs := testRecords(3000)
	seq := encode(t, recs, WriterOptions{Workers: 1, Compress: true}, 0)
	for _, workers := range []int{2, 4, 8} {
		par := encode(t, recs, WriterOptions{Workers: workers, Compress: true}, 0)
		if !bytes.Equal(seq, par) {
			t.Fatalf("Workers=%d output differs from sequential", workers)
		}
	}
}

// TestFlushPrefix asserts the crash contract: the bytes after any
// Flush decode to exactly the records flushed so far.
func TestFlushPrefix(t *testing.T) {
	recs := testRecords(700)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Workers: 2, BlockRecords: 128, MinBlockRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := 0
	for lo := 0; lo < len(recs); lo += 150 {
		hi := min(lo+150, len(recs))
		if err := w.Flush(recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		done = hi
		got, rerr := ReadAll(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("prefix after %d records unreadable: %v", done, rerr)
		}
		if len(got) != done {
			t.Fatalf("prefix holds %d records, want %d", len(got), done)
		}
	}
}

// TestEmptyFile: Close with no Flush must still leave a valid,
// self-describing file holding zero records.
func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty run wrote no header")
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file decoded %d records", len(got))
	}
}

// TestTruncationPrefix: cutting the stream at any byte offset must
// either yield a clean record prefix (block boundary) or ErrCorrupt —
// never a panic or an untyped failure.
func TestTruncationPrefix(t *testing.T) {
	recs := testRecords(400)
	data := encode(t, recs, WriterOptions{Workers: 2, BlockRecords: 64, MinBlockRecords: 8}, 0)
	for cut := 0; cut <= len(data); cut++ {
		got, err := ReadAll(bytes.NewReader(data[:cut]))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("cut=%d: untyped error %v", cut, err)
			}
			continue
		}
		if len(got) > len(recs) {
			t.Fatalf("cut=%d: decoded %d records from a prefix", cut, len(got))
		}
		for i := range got {
			if !bitsEqual(got[i], recs[i]) {
				t.Fatalf("cut=%d: record %d differs", cut, i)
			}
		}
	}
}

// TestBitFlips samples single-byte corruptions across a compressed
// stream; every failure must be typed and pre-error records returned
// must be a correct prefix.
func TestBitFlips(t *testing.T) {
	recs := testRecords(600)
	data := encode(t, recs, WriterOptions{Workers: 2, Compress: true, BlockRecords: 128, MinBlockRecords: 8}, 0)
	for off := 0; off < len(data); off += 3 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		got, err := ReadAll(bytes.NewReader(mut))
		if err == nil {
			continue // flips in slack bits can be harmless only if CRC still matches — impossible; but a flip may hit ignored padding in future versions
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("offset %d: untyped error %v", off, err)
		}
		for i := range got {
			if !bitsEqual(got[i], recs[i]) {
				t.Fatalf("offset %d: pre-error record %d differs", off, i)
			}
		}
	}
}

func TestIntOverflowRejected(t *testing.T) {
	if math.MaxInt == math.MaxInt32 {
		t.Skip("32-bit int cannot overflow the wire field")
	}
	recs := []Record{{GroupID: math.MaxInt32 + 1}}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Flush(recs); err == nil {
		t.Fatal("overflowing int accepted")
	}
	if err := w.Flush(nil); err == nil {
		t.Fatal("writer not latched broken after encode failure")
	}
}

func TestVersionRejected(t *testing.T) {
	data := encode(t, testRecords(10), WriterOptions{Workers: 1}, 0)
	mut := append([]byte(nil), data...)
	mut[8] = 0xFF // version low byte
	if _, err := ReadAll(bytes.NewReader(mut)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version not rejected as ErrVersion: %v", err)
	}
}

func TestSpans(t *testing.T) {
	recs := make([]Record, 0, 40)
	for i := 0; i < 40; i++ {
		recs = append(recs, Record{BS: i / 10})
	}
	spans := appendSpans(nil, recs, 16, 4)
	total := 0
	for i, sp := range spans {
		if sp.hi <= sp.lo {
			t.Fatalf("span %d empty", i)
		}
		if sp.hi-sp.lo > 16 {
			t.Fatalf("span %d over cap: %d", i, sp.hi-sp.lo)
		}
		if total != sp.lo {
			t.Fatalf("span %d not contiguous", i)
		}
		total = sp.hi
	}
	if total != len(recs) {
		t.Fatalf("spans cover %d of %d records", total, len(recs))
	}
	// Alternating cells below the merge minimum must not degenerate
	// into per-record blocks.
	alt := make([]Record, 1000)
	for i := range alt {
		alt[i].BS = i % 16
	}
	spans = appendSpans(nil, alt, 4096, 256)
	if len(spans) > 4 {
		t.Fatalf("fine-grained cell interleaving split into %d blocks", len(spans))
	}
}

// TestReaderAfterError pins that a failed Reader stays failed.
func TestReaderAfterError(t *testing.T) {
	data := encode(t, testRecords(10), WriterOptions{Workers: 1}, 0)
	data = data[:len(data)-2] // tear the final block
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var first error
	for {
		_, err := r.Next()
		if err != nil {
			first = err
			break
		}
	}
	if !errors.Is(first, ErrCorrupt) {
		t.Fatalf("torn block not ErrCorrupt: %v", first)
	}
	if _, err := r.Next(); !errors.Is(err, first) && err != first {
		t.Fatalf("reader did not stay failed: %v", err)
	}
}

func TestReadAllPartial(t *testing.T) {
	recs := testRecords(300)
	data := encode(t, recs, WriterOptions{Workers: 1, BlockRecords: 64, MinBlockRecords: 8}, 0)
	mut := append([]byte(nil), data...)
	mut[len(mut)-3] ^= 0xFF // corrupt the last block's CRC
	got, err := ReadAll(bytes.NewReader(mut))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if len(got) == 0 || len(got) >= len(recs) {
		t.Fatalf("partial read returned %d of %d records", len(got), len(recs))
	}
	for i := range got {
		if !bitsEqual(got[i], recs[i]) {
			t.Fatalf("record %d differs in partial prefix", i)
		}
	}
}

// TestSizeAdvantage sanity-checks the point of the format: a
// constant-heavy stream must land far below the fixed-width bound.
func TestSizeAdvantage(t *testing.T) {
	recs := testRecords(4096)
	data := encode(t, recs, WriterOptions{Workers: 1}, 0)
	perRecord := float64(len(data)) / float64(len(recs))
	if perRecord > 108 {
		t.Fatalf("%.1f bytes/record — constant-column elision not engaging", perRecord)
	}
}
