package tracebin

import (
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync/atomic"

	"dtmsvs/internal/parallel"
)

// WriterOptions tune a Writer. The zero value is ready to use.
type WriterOptions struct {
	// Workers is the number of goroutines encoding blocks in parallel
	// within one Flush. 0 means GOMAXPROCS, 1 means sequential.
	Workers int
	// Compress runs each block body through DEFLATE (BestSpeed) and
	// keeps whichever of raw/compressed is smaller.
	Compress bool
	// BlockRecords caps the records per block. 0 means 4096; values
	// above MaxBlockRecords are rejected by NewWriter.
	BlockRecords int
	// MinBlockRecords is the smallest block a cell-run boundary may
	// close: shorter runs are merged with the next so per-cell
	// splitting cannot degenerate into per-record blocks. 0 means 256.
	MinBlockRecords int
}

// Writer encodes records into the binary columnar trace format. One
// Flush call encodes any number of records as whole blocks — split at
// serving-cell run boundaries so cluster traces get per-cell blocks —
// and hands the underlying writer a single Write, so every successful
// Flush leaves a readable prefix and a failed one appends nothing
// that a flush-per-interval caller would mistake for a torn interval.
//
// Blocks within a Flush are encoded concurrently on a parallel.Crew;
// the assembled output order is deterministic and identical to
// sequential encoding. Writer is not safe for concurrent use.
type Writer struct {
	w    io.Writer
	opts WriterOptions
	crew *parallel.Crew

	headerDone bool
	err        error

	out    []byte      // assembled header+blocks for the current Flush
	spans  []blockSpan // block boundaries of the current Flush
	frames [][]byte    // per-block encoded frames, reused across Flushes
	encs   []encState  // per-worker scratch, index-owned
	errs   []error     // per-block encode errors
	next   atomic.Int64
	recs   []Record // records of the current Flush, shared with workers
}

type blockSpan struct{ lo, hi int }

// encState is one worker's private encode scratch.
type encState struct {
	body []byte
	fw   *flate.Writer
}

// NewWriter returns a Writer emitting to w. The header is written by
// the first Flush (or by Close, so even an empty run yields a valid,
// self-describing file).
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("tracebin: Workers %d out of range", opts.Workers)
	}
	if opts.BlockRecords == 0 {
		opts.BlockRecords = 4096
	}
	if opts.BlockRecords < 1 || opts.BlockRecords > MaxBlockRecords {
		return nil, fmt.Errorf("tracebin: BlockRecords %d out of range [1, %d]", opts.BlockRecords, MaxBlockRecords)
	}
	if opts.MinBlockRecords == 0 {
		opts.MinBlockRecords = 256
	}
	if opts.MinBlockRecords < 1 || opts.MinBlockRecords > opts.BlockRecords {
		return nil, fmt.Errorf("tracebin: MinBlockRecords %d out of range [1, BlockRecords]", opts.MinBlockRecords)
	}
	bw := &Writer{w: w, opts: opts}
	if opts.Workers > 1 {
		bw.crew = parallel.NewCrew(opts.Workers)
	}
	bw.encs = make([]encState, opts.Workers)
	return bw, nil
}

// appendSpans splits recs into block spans: closed at the block-size
// cap, and at serving-cell changes once the pending block has reached
// the merge minimum (so cluster traces get per-cell blocks without
// fine-grained cell interleavings degenerating into tiny blocks).
func appendSpans(spans []blockSpan, recs []Record, maxN, minN int) []blockSpan {
	lo := 0
	for i := 1; i <= len(recs); i++ {
		if i == len(recs) || i-lo >= maxN || (recs[i].BS != recs[i-1].BS && i-lo >= minN) {
			spans = append(spans, blockSpan{lo, i})
			lo = i
		}
	}
	return spans
}

// Flush encodes recs as whole blocks and writes them — plus the
// stream header, the first time — to the underlying writer in a
// single Write call. recs may be empty (a no-op after the header
// exists). Any error latches the Writer broken; an error from the
// underlying writer is returned as-is so callers can inspect it.
func (bw *Writer) Flush(recs []Record) error {
	if bw.err != nil {
		return bw.err
	}
	bw.out = bw.out[:0]
	if !bw.headerDone {
		bw.out = appendHeader(bw.out)
	}
	if len(recs) > 0 {
		bw.spans = appendSpans(bw.spans[:0], recs, bw.opts.BlockRecords, bw.opts.MinBlockRecords)
		if err := bw.encodeSpans(recs); err != nil {
			bw.err = err
			return err
		}
		for i := range bw.spans {
			frame := bw.frames[i]
			bw.out = le32(bw.out, uint32(len(frame)))
			bw.out = append(bw.out, frame...)
			bw.out = le32(bw.out, crc32.ChecksumIEEE(frame))
		}
	}
	if len(bw.out) == 0 {
		return nil
	}
	if _, err := bw.w.Write(bw.out); err != nil {
		// Keep headerDone false on a failed first write: a transient
		// failure that consumed nothing must see the header again on
		// retry.
		bw.err = err
		return err
	}
	bw.headerDone = true
	return nil
}

// encodeSpans fills bw.frames[i] for every span, fanning blocks out
// across the crew. Workers claim block indexes from an atomic counter;
// each frame buffer is owned by its block index, so the only shared
// mutable state is the counter.
func (bw *Writer) encodeSpans(recs []Record) error {
	n := len(bw.spans)
	for len(bw.frames) < n {
		bw.frames = append(bw.frames, nil)
	}
	for len(bw.errs) < n {
		bw.errs = append(bw.errs, nil)
	}
	clear(bw.errs[:n])
	bw.recs = recs
	bw.next.Store(0)
	if bw.crew != nil && n > 1 {
		bw.crew.Run(min(n, bw.crew.Workers()), bw.encodeWorker)
	} else {
		bw.encodeWorker(0)
	}
	bw.recs = nil
	for _, err := range bw.errs[:n] {
		if err != nil {
			return err
		}
	}
	return nil
}

// encodeWorker drains the block counter, encoding each claimed block
// into its frame buffer with worker-private scratch.
func (bw *Writer) encodeWorker(worker int) {
	st := &bw.encs[worker]
	n := int64(len(bw.spans))
	for {
		i := bw.next.Add(1) - 1
		if i >= n {
			return
		}
		sp := bw.spans[i]
		frame, err := appendFrame(bw.frames[i][:0], bw.recs[sp.lo:sp.hi], bw.opts.Compress, st)
		bw.frames[i] = frame
		bw.errs[i] = err
	}
}

// appendFrame encodes one block's frame: the frame flag byte, then
// the raw or DEFLATE-compressed body — whichever is smaller.
func appendFrame(dst []byte, recs []Record, compress bool, st *encState) ([]byte, error) {
	if !compress {
		dst = append(dst, frameRaw)
		return appendBlockBody(dst, recs)
	}
	var err error
	if st.body, err = appendBlockBody(st.body[:0], recs); err != nil {
		return dst, err
	}
	dst = append(dst, frameDeflate)
	sw := sliceWriter{buf: dst}
	if st.fw == nil {
		// BestSpeed: the block body is mostly low-entropy fixed-width
		// numerics; deeper matching buys little and costs encode time.
		st.fw, _ = flate.NewWriter(&sw, flate.BestSpeed)
	} else {
		st.fw.Reset(&sw)
	}
	if _, err := st.fw.Write(st.body); err != nil {
		return dst, fmt.Errorf("tracebin: compress block: %w", err)
	}
	if err := st.fw.Close(); err != nil {
		return dst, fmt.Errorf("tracebin: compress block: %w", err)
	}
	dst = sw.buf
	if len(dst) >= 1+len(st.body) {
		// Incompressible block: keep the raw body.
		dst = append(dst[:0], frameRaw)
		dst = append(dst, st.body...)
	}
	return dst, nil
}

// sliceWriter appends into a byte slice, letting flate stream into a
// reusable buffer.
type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// Close writes the header if no Flush has (so an empty run still
// yields a valid file) and releases the encode crew. A Writer already
// broken by a Flush failure releases its resources and returns nil —
// the error was reported when it happened, and Close must not touch
// the torn stream again. The underlying writer is not closed.
func (bw *Writer) Close() error {
	if bw.crew != nil {
		bw.crew.Close()
		bw.crew = nil
	}
	if bw.err != nil {
		return nil
	}
	if !bw.headerDone {
		if _, err := bw.w.Write(appendHeader(nil)); err != nil {
			bw.err = err
			return err
		}
		bw.headerDone = true
	}
	return nil
}
