package tracebin

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Reader streams records out of a binary columnar trace. NewReader
// validates the header; Next then yields records one at a time,
// decoding a block whenever the previous one is drained. A clean EOF
// at a block boundary ends the stream with io.EOF — that is the valid
// shape of a trace cut off mid-run. Anything else malformed surfaces
// as ErrCorrupt (or ErrVersion for an unknown format version), never
// a panic.
type Reader struct {
	r   *bufio.Reader
	err error

	recs []Record // current decoded block
	pos  int

	frame []byte // reused frame buffer
	body  []byte // reused decompressed-body buffer
	fr    io.ReadCloser
	lenb  [4]byte
}

// NewReader parses and validates the stream header of r. If r is
// already a *bufio.Reader it is used directly, so callers may peek at
// the magic bytes for format detection and hand over the same reader.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	tr := &Reader{r: br}
	if err := tr.readHeader(); err != nil {
		return nil, err
	}
	return tr, nil
}

func (tr *Reader) readHeader() error {
	var head [11]byte // magic + version + flags
	if _, err := io.ReadFull(tr.r, head[:]); err != nil {
		return fmt.Errorf("stream header: %w", corruptEOF(err))
	}
	if !bytes.Equal(head[:8], magic[:]) {
		return fmt.Errorf("bad magic: %w", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(head[8:10]); v != Version {
		return fmt.Errorf("version %d (have %d): %w", v, Version, ErrVersion)
	}
	// head[10] is the reserved flags byte; nonzero values are from a
	// future writer we do not understand.
	if head[10] != 0 {
		return fmt.Errorf("flags %#x: %w", head[10], ErrVersion)
	}
	names, err := tr.readStringTable()
	if err != nil {
		return err
	}
	return tr.readSchema(names)
}

func (tr *Reader) readStringTable() ([]string, error) {
	n, err := tr.readU16()
	if err != nil {
		return nil, fmt.Errorf("string table: %w", err)
	}
	if int(n) != len(columns) {
		return nil, fmt.Errorf("string table size %d (want %d): %w", n, len(columns), ErrCorrupt)
	}
	names := make([]string, n)
	var buf [maxName]byte
	for i := range names {
		l, err := tr.readU16()
		if err != nil {
			return nil, fmt.Errorf("string table entry %d: %w", i, err)
		}
		if l == 0 || int(l) > maxName {
			return nil, fmt.Errorf("string table entry %d length %d: %w", i, l, ErrCorrupt)
		}
		if _, err := io.ReadFull(tr.r, buf[:l]); err != nil {
			return nil, fmt.Errorf("string table entry %d: %w", i, corruptEOF(err))
		}
		names[i] = string(buf[:l])
	}
	return names, nil
}

func (tr *Reader) readSchema(names []string) error {
	n, err := tr.readU16()
	if err != nil {
		return fmt.Errorf("schema: %w", err)
	}
	if int(n) != len(columns) {
		return fmt.Errorf("schema size %d (want %d): %w", n, len(columns), ErrCorrupt)
	}
	for i := range columns {
		idx, err := tr.readU16()
		if err != nil {
			return fmt.Errorf("schema entry %d: %w", i, err)
		}
		kind, err := tr.r.ReadByte()
		if err != nil {
			return fmt.Errorf("schema entry %d: %w", i, corruptEOF(err))
		}
		if int(idx) >= len(names) || names[idx] != columns[i].name || kind != columns[i].kind {
			return fmt.Errorf("schema entry %d is not column %q: %w", i, columns[i].name, ErrCorrupt)
		}
	}
	return nil
}

func (tr *Reader) readU16() (uint16, error) {
	if _, err := io.ReadFull(tr.r, tr.lenb[:2]); err != nil {
		return 0, corruptEOF(err)
	}
	return binary.LittleEndian.Uint16(tr.lenb[:2]), nil
}

// corruptEOF maps a short read to ErrCorrupt: inside any structure,
// running out of bytes is damage, not a clean end of stream.
func corruptEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("unexpected end of stream: %w", ErrCorrupt)
	}
	return err
}

// Next returns the next record, or io.EOF at a clean end of stream.
// After any non-EOF error the Reader stays failed and keeps returning
// the same error.
func (tr *Reader) Next() (Record, error) {
	if tr.err != nil {
		return Record{}, tr.err
	}
	for tr.pos >= len(tr.recs) {
		if err := tr.readBlock(); err != nil {
			tr.err = err
			return Record{}, err
		}
	}
	rec := tr.recs[tr.pos]
	tr.pos++
	return rec, nil
}

// readBlock reads, verifies and decodes the next block into tr.recs.
func (tr *Reader) readBlock() error {
	if _, err := io.ReadFull(tr.r, tr.lenb[:]); err != nil {
		if err == io.EOF {
			return io.EOF // clean boundary: a valid truncated trace
		}
		return fmt.Errorf("block frame length: %w", corruptEOF(err))
	}
	n := int(binary.LittleEndian.Uint32(tr.lenb[:]))
	if n < 1 || n > maxFrame {
		return fmt.Errorf("block frame length %d: %w", n, ErrCorrupt)
	}
	if cap(tr.frame) < n {
		tr.frame = make([]byte, n)
	}
	tr.frame = tr.frame[:n]
	if _, err := io.ReadFull(tr.r, tr.frame); err != nil {
		return fmt.Errorf("block frame: %w", corruptEOF(err))
	}
	if _, err := io.ReadFull(tr.r, tr.lenb[:]); err != nil {
		return fmt.Errorf("block checksum: %w", corruptEOF(err))
	}
	if got, want := crc32.ChecksumIEEE(tr.frame), binary.LittleEndian.Uint32(tr.lenb[:]); got != want {
		return fmt.Errorf("block checksum %08x (want %08x): %w", got, want, ErrCorrupt)
	}
	body := tr.frame[1:]
	switch tr.frame[0] {
	case frameRaw:
	case frameDeflate:
		var err error
		if body, err = tr.inflate(body); err != nil {
			return err
		}
	default:
		return fmt.Errorf("block frame flag %d: %w", tr.frame[0], ErrCorrupt)
	}
	recs, err := decodeBlockBody(tr.recs[:0], body)
	tr.recs = recs
	tr.pos = 0
	if err != nil {
		return fmt.Errorf("block body: %w", err)
	}
	return nil
}

// inflate decompresses a DEFLATE block body into the reused body
// buffer, bounding the output so a hostile stream cannot balloon.
func (tr *Reader) inflate(comp []byte) ([]byte, error) {
	src := bytes.NewReader(comp)
	if tr.fr == nil {
		tr.fr = flate.NewReader(src)
	} else if err := tr.fr.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, fmt.Errorf("block inflate reset: %w", ErrCorrupt)
	}
	tr.body = tr.body[:0]
	var chunk [4096]byte
	for {
		n, err := tr.fr.Read(chunk[:])
		if len(tr.body)+n > maxBody {
			return nil, fmt.Errorf("block body over %d bytes: %w", maxBody, ErrCorrupt)
		}
		tr.body = append(tr.body, chunk[:n]...)
		if err == io.EOF {
			return tr.body, nil
		}
		if err != nil {
			return nil, fmt.Errorf("block inflate: %w", ErrCorrupt)
		}
	}
}

// ReadAll drains r into a slice. Records decoded before an error are
// returned alongside it, so a torn tail still yields its readable
// prefix.
func ReadAll(r io.Reader) ([]Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
