package tracebin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// encodeStream builds one whole columnar stream for recs.
func encodeStream(t *testing.T, recs []Record, opts WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func appendTestRecords(worker, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			BS:        worker,
			Interval:  i,
			GroupID:   i % 3,
			Size:      4,
			ActualRBs: 4.1,
		}
	}
	return recs
}

// TestAppendStreamMerge: worker streams merge block-for-block into
// one decodable stream with per-stream record order preserved.
func TestAppendStreamMerge(t *testing.T) {
	var out bytes.Buffer
	aw := NewAppendWriter(&out)
	var want []Record
	for w := 0; w < 3; w++ {
		recs := appendTestRecords(w, 10)
		want = append(want, recs...)
		stream := encodeStream(t, recs, WriterOptions{Workers: 1, Compress: w == 1})
		n, err := aw.AppendStream(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		if n < 1 {
			t.Fatalf("worker %d: %d blocks appended", w, n)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("decode merged stream: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged records diverged: got %d want %d", len(got), len(want))
	}
}

// TestAppendBlock: a single framed block round-trips, and corrupt
// blocks — flipped byte, truncation, oversized length, trailing junk
// — are rejected with ErrCorrupt before touching the output.
func TestAppendBlock(t *testing.T) {
	stream := encodeStream(t, appendTestRecords(0, 5), WriterOptions{Workers: 1})
	hdrLen := len(encodeStream(t, nil, WriterOptions{Workers: 1}))
	block := stream[hdrLen:]

	var out bytes.Buffer
	aw := NewAppendWriter(&out)
	if err := aw.AppendBlock(block); err != nil {
		t.Fatal(err)
	}
	clean := out.Len()

	bad := append([]byte(nil), block...)
	bad[len(bad)/2]++
	if err := aw.AppendBlock(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: %v", err)
	}
	if err := aw.AppendBlock(block[:len(block)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated block: %v", err)
	}
	huge := append([]byte(nil), block...)
	binary.LittleEndian.PutUint32(huge, uint32(maxFrame+1))
	if err := aw.AppendBlock(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: %v", err)
	}
	if err := aw.AppendBlock(append(append([]byte(nil), block...), 0xEE)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing junk: %v", err)
	}
	if out.Len() != clean {
		t.Fatalf("rejected block reached the output (%d vs %d bytes)", out.Len(), clean)
	}
	// Rejections do not latch: a good block still lands.
	if err := aw.AppendBlock(block); err != nil {
		t.Fatalf("append after rejection: %v", err)
	}
	if got, err := ReadAll(bytes.NewReader(out.Bytes())); err != nil || len(got) != 10 {
		t.Fatalf("merged output: %d records, %v", len(got), err)
	}
}

// TestAppendStreamTorn: a stream torn mid-block appends its whole
// verified prefix and reports ErrCorrupt; the merged output stays
// fully decodable.
func TestAppendStreamTorn(t *testing.T) {
	recs := appendTestRecords(0, 40)
	stream := encodeStream(t, recs[:20], WriterOptions{Workers: 1, BlockRecords: 16, MinBlockRecords: 1})
	var out bytes.Buffer
	aw := NewAppendWriter(&out)
	torn := stream[:len(stream)-5]
	n, err := aw.AppendStream(bytes.NewReader(torn))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn stream: %v", err)
	}
	if n != 1 {
		t.Fatalf("verified prefix: %d blocks", n)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("merged output unreadable: %v", err)
	}
	if len(got) != 16 {
		t.Fatalf("prefix records: %d", len(got))
	}
	// A headerless (or wrong-format) input is rejected outright.
	if _, err := aw.AppendStream(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header: %v", err)
	}
}

// TestAppendWriterConcurrent hammers one AppendWriter from many
// goroutines — the N-writer merge the coordinator performs — and
// checks every record of every stream survives, per-stream ordered.
func TestAppendWriterConcurrent(t *testing.T) {
	const writers = 8
	streams := make([][]byte, writers)
	for w := range streams {
		streams[w] = encodeStream(t, appendTestRecords(w, 64), WriterOptions{Workers: 1, BlockRecords: 16, MinBlockRecords: 1})
	}
	var out bytes.Buffer
	aw := NewAppendWriter(&out)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = aw.AppendStream(bytes.NewReader(streams[w]))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("merged output: %v", err)
	}
	if len(got) != writers*64 {
		t.Fatalf("merged records: %d want %d", len(got), writers*64)
	}
	// Per-writer order must hold even though streams interleave.
	next := make([]int, writers)
	for _, r := range got {
		w := r.BS
		if w < 0 || w >= writers {
			t.Fatalf("unexpected record %+v", r)
		}
		if r.Interval != next[w] {
			t.Fatalf("writer %d records reordered: got interval %d want %d", w, r.Interval, next[w])
		}
		next[w]++
	}
	for w, n := range next {
		if n != 64 {
			t.Fatalf("writer %d: %d records survived", w, n)
		}
	}
}

// TestAppendWriterEmpty: Close with nothing appended yields a valid
// header-only stream.
func TestAppendWriterEmpty(t *testing.T) {
	var out bytes.Buffer
	aw := NewAppendWriter(&out)
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty merge: %d records, %v", len(got), err)
	}
}
