// Package tracebin implements the binary columnar trace format: the
// compact on-disk encoding of the per-(interval, cell, group) trace
// records both engines stream through the session layer's sinks.
//
// A trace file is a header — magic, format version, a string table of
// column labels, and the column schema — followed by blocks. Each
// block holds a run of records laid out column-wise: every column is
// either a fixed-width array (4-byte little-endian two's-complement
// ints, 8-byte IEEE-754 float bits) or, when every record in the
// block agrees, a single constant value — the columnar layout makes
// that elision nearly free and it is what makes the format small,
// since most trace columns (interval, cell, allocation, the idle
// demand channels) are constant within a block. Blocks are framed
// exactly like the checkpoint container's sections: a u32 length
// prefix, the payload, and a CRC32 trailer, with an optional
// per-block DEFLATE pass. There is no end marker: a trace truncated
// at any block boundary is a valid trace, which is precisely the
// whole-interval-prefix crash contract the streaming sinks guarantee
// (the writer emits whole blocks per flush, one flush per interval).
//
// Readers are strict: framing damage, checksum mismatches, over-long
// lengths and schema disagreements surface as ErrCorrupt (never a
// panic or an unbounded allocation), and a format version this
// package does not speak surfaces as ErrVersion.
package tracebin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the format version this package writes and the only one
// it reads.
const Version uint16 = 1

// magic opens every binary trace stream. Distinct from the checkpoint
// container's magic so the two can never be confused.
var magic = [8]byte{'D', 'T', 'T', 'R', 'A', 'C', 'E', 'B'}

// Magic returns the 8 magic bytes that open every binary trace, for
// format auto-detection by peeking a stream's head.
func Magic() []byte { return append([]byte(nil), magic[:]...) }

var (
	// ErrCorrupt marks a binary trace whose framing, checksums or
	// schema do not hold together.
	ErrCorrupt = errors.New("binary trace corrupt")
	// ErrVersion marks a binary trace written by a format version this
	// reader does not understand.
	ErrVersion = errors.New("binary trace version unsupported")
)

const (
	// maxFrame bounds one block's on-wire payload; anything larger is
	// treated as corruption rather than allocated.
	maxFrame = 1 << 24
	// maxBody bounds one block's decompressed payload.
	maxBody = 1 << 24
	// MaxBlockRecords bounds the records of one block, on both sides:
	// the writer refuses larger block options, the reader treats a
	// larger claimed count as corruption.
	MaxBlockRecords = 1 << 16
	// maxName bounds a string-table entry.
	maxName = 64
)

// Block payload encodings, one byte ahead of each column's values.
const (
	encPlain    = 0 // count fixed-width values
	encConstant = 1 // one value shared by every record in the block
)

// Block frame flags, the first payload byte.
const (
	frameRaw     = 0 // payload is the block body
	frameDeflate = 1 // payload is the DEFLATE-compressed block body
)

// Record is one trace row in the binary columnar schema: the serving
// cell (BS, -1 for the monolithic engine's campus-wide groups) plus
// the group-interval fields shared by both engines. Int fields are
// stored as 4-byte values on the wire — Flush rejects a value outside
// int32 range rather than truncating — and floats keep their exact
// IEEE-754 bits, so a decoded record is bit-identical to the encoded
// one.
type Record struct {
	BS                 int
	Interval           int
	GroupID            int
	Size               int
	PredictedRBs       float64
	ActualRBs          float64
	AllocatedRBs       int
	PredictedCycles    float64
	ActualCycles       float64
	PredictedBits      float64
	ActualBits         float64
	PredictedWasteBits float64
	ActualWasteBits    float64
	ActualEngagementS  float64
	WorstSNRdB         float64
	BitrateBps         float64
}

// Column kinds, as written in the schema.
const (
	colI32 = 0
	colF64 = 1
)

// column binds one schema entry to its Record field. The same table
// drives the encoder, the decoder and the header's schema, so the
// three can never disagree.
type column struct {
	name string
	kind uint8
	i    func(*Record) *int
	f    func(*Record) *float64
}

// columns is the format's schema, labels matching the CSV headers.
var columns = []column{
	{name: "bs", kind: colI32, i: func(r *Record) *int { return &r.BS }},
	{name: "interval", kind: colI32, i: func(r *Record) *int { return &r.Interval }},
	{name: "group_id", kind: colI32, i: func(r *Record) *int { return &r.GroupID }},
	{name: "size", kind: colI32, i: func(r *Record) *int { return &r.Size }},
	{name: "predicted_rbs", kind: colF64, f: func(r *Record) *float64 { return &r.PredictedRBs }},
	{name: "actual_rbs", kind: colF64, f: func(r *Record) *float64 { return &r.ActualRBs }},
	{name: "allocated_rbs", kind: colI32, i: func(r *Record) *int { return &r.AllocatedRBs }},
	{name: "predicted_cycles", kind: colF64, f: func(r *Record) *float64 { return &r.PredictedCycles }},
	{name: "actual_cycles", kind: colF64, f: func(r *Record) *float64 { return &r.ActualCycles }},
	{name: "predicted_bits", kind: colF64, f: func(r *Record) *float64 { return &r.PredictedBits }},
	{name: "actual_bits", kind: colF64, f: func(r *Record) *float64 { return &r.ActualBits }},
	{name: "predicted_waste_bits", kind: colF64, f: func(r *Record) *float64 { return &r.PredictedWasteBits }},
	{name: "actual_waste_bits", kind: colF64, f: func(r *Record) *float64 { return &r.ActualWasteBits }},
	{name: "actual_engagement_s", kind: colF64, f: func(r *Record) *float64 { return &r.ActualEngagementS }},
	{name: "worst_snr_db", kind: colF64, f: func(r *Record) *float64 { return &r.WorstSNRdB }},
	{name: "bitrate_bps", kind: colF64, f: func(r *Record) *float64 { return &r.BitrateBps }},
}

func le16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func le32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func le64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// appendHeader emits the stream header: magic, version, a reserved
// flags byte, the string table of column labels, and the schema
// referencing them by table index.
func appendHeader(dst []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = le16(dst, Version)
	dst = append(dst, 0) // flags, reserved
	dst = le16(dst, uint16(len(columns)))
	for i := range columns {
		dst = le16(dst, uint16(len(columns[i].name)))
		dst = append(dst, columns[i].name...)
	}
	dst = le16(dst, uint16(len(columns)))
	for i := range columns {
		dst = le16(dst, uint16(i))
		dst = append(dst, columns[i].kind)
	}
	return dst
}

// appendBlockBody encodes one block of records column-wise: the
// record count, then per schema column an encoding byte and either
// one constant value or count fixed-width values.
func appendBlockBody(dst []byte, recs []Record) ([]byte, error) {
	dst = le32(dst, uint32(len(recs)))
	for ci := range columns {
		c := &columns[ci]
		if c.kind == colI32 {
			v0 := *c.i(&recs[0])
			constant := true
			for i := 1; i < len(recs); i++ {
				if *c.i(&recs[i]) != v0 {
					constant = false
					break
				}
			}
			if constant {
				dst = append(dst, encConstant)
				var err error
				if dst, err = appendI32(dst, c.name, v0); err != nil {
					return dst, err
				}
				continue
			}
			dst = append(dst, encPlain)
			for i := range recs {
				var err error
				if dst, err = appendI32(dst, c.name, *c.i(&recs[i])); err != nil {
					return dst, err
				}
			}
			continue
		}
		v0 := *c.f(&recs[0])
		b0 := math.Float64bits(v0)
		constant := true
		for i := 1; i < len(recs); i++ {
			// Bitwise comparison: ±0 and NaN payloads must survive the
			// round trip exactly.
			if math.Float64bits(*c.f(&recs[i])) != b0 {
				constant = false
				break
			}
		}
		if constant {
			dst = append(dst, encConstant)
			dst = le64(dst, b0)
			continue
		}
		dst = append(dst, encPlain)
		for i := range recs {
			dst = le64(dst, math.Float64bits(*c.f(&recs[i])))
		}
	}
	return dst, nil
}

func appendI32(dst []byte, name string, v int) ([]byte, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return dst, fmt.Errorf("tracebin: %s value %d overflows the 32-bit wire field", name, v)
	}
	return le32(dst, uint32(int32(v))), nil
}

// cur is a bounds-checked cursor over one block's decoded body.
type cur struct {
	b   []byte
	off int
}

func (c *cur) take(n int) ([]byte, error) {
	if n < 0 || n > len(c.b)-c.off {
		return nil, fmt.Errorf("block body short at offset %d: %w", c.off, ErrCorrupt)
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, nil
}

// decodeBlockBody decodes one block body into dst, which is resized
// (reusing capacity) to the block's record count.
func decodeBlockBody(dst []Record, body []byte) ([]Record, error) {
	c := cur{b: body}
	nb, err := c.take(4)
	if err != nil {
		return dst, err
	}
	n := int(binary.LittleEndian.Uint32(nb))
	if n < 1 || n > MaxBlockRecords {
		return dst, fmt.Errorf("block record count %d: %w", n, ErrCorrupt)
	}
	if cap(dst) < n {
		dst = make([]Record, n)
	}
	dst = dst[:n]
	for ci := range columns {
		col := &columns[ci]
		eb, err := c.take(1)
		if err != nil {
			return dst, err
		}
		width := 4
		if col.kind == colF64 {
			width = 8
		}
		count := n
		switch eb[0] {
		case encConstant:
			count = 1
		case encPlain:
		default:
			return dst, fmt.Errorf("column %s encoding %d: %w", col.name, eb[0], ErrCorrupt)
		}
		vb, err := c.take(count * width)
		if err != nil {
			return dst, err
		}
		if col.kind == colI32 {
			if count == 1 {
				v := int(int32(binary.LittleEndian.Uint32(vb)))
				for i := range dst {
					*col.i(&dst[i]) = v
				}
			} else {
				for i := range dst {
					*col.i(&dst[i]) = int(int32(binary.LittleEndian.Uint32(vb[4*i:])))
				}
			}
			continue
		}
		if count == 1 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(vb))
			for i := range dst {
				*col.f(&dst[i]) = v
			}
		} else {
			for i := range dst {
				*col.f(&dst[i]) = math.Float64frombits(binary.LittleEndian.Uint64(vb[8*i:]))
			}
		}
	}
	if c.off != len(body) {
		return dst, fmt.Errorf("%d trailing block bytes: %w", len(body)-c.off, ErrCorrupt)
	}
	return dst, nil
}
