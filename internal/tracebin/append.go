package tracebin

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// AppendWriter merges already-encoded binary traces into one output
// stream by appending whole verified blocks — no decode, no
// re-encode. This is the coordinator's merge path: N workers each
// produce a columnar stream for an interval, and the merged output is
// their blocks appended in arrival order under one header.
//
// AppendWriter is safe for concurrent use; each appended block (or
// stream) is verified — frame length bounds, CRC32, known frame flag
// — before anything is written, so a torn worker stream cannot tear
// the merged output. Every accepted block reaches the underlying
// writer as a single Write.
type AppendWriter struct {
	mu         sync.Mutex
	w          io.Writer
	headerDone bool
	err        error
}

// NewAppendWriter returns an AppendWriter emitting to w. The stream
// header is written by the first successful append (or by Close, so
// even an empty merge yields a valid file).
func NewAppendWriter(w io.Writer) *AppendWriter {
	return &AppendWriter{w: w}
}

// validateFrame checks one framed block — [u32 len][flag+body][u32
// crc] — without decoding the body. It returns the total encoded
// size, or ErrCorrupt.
func validateFrame(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("tracebin: block of %d bytes: %w", len(b), ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 1 || n > maxFrame {
		return 0, fmt.Errorf("tracebin: block frame length %d: %w", n, ErrCorrupt)
	}
	if len(b) < 4+n+4 {
		return 0, fmt.Errorf("tracebin: truncated block frame: %w", ErrCorrupt)
	}
	frame := b[4 : 4+n]
	if got, want := crc32.ChecksumIEEE(frame), binary.LittleEndian.Uint32(b[4+n:]); got != want {
		return 0, fmt.Errorf("tracebin: block checksum %08x (want %08x): %w", got, want, ErrCorrupt)
	}
	if frame[0] != frameRaw && frame[0] != frameDeflate {
		return 0, fmt.Errorf("tracebin: block frame flag %d: %w", frame[0], ErrCorrupt)
	}
	return 4 + n + 4, nil
}

// AppendBlock verifies one framed block — the [u32 len][frame][u32
// crc] encoding a Writer emits — and appends it verbatim. A block
// that fails verification is rejected without touching the output,
// and the AppendWriter stays usable; only an underlying write failure
// latches it broken.
func (aw *AppendWriter) AppendBlock(block []byte) error {
	n, err := validateFrame(block)
	if err != nil {
		return err
	}
	if n != len(block) {
		return fmt.Errorf("tracebin: %d trailing bytes after block frame: %w", len(block)-n, ErrCorrupt)
	}
	aw.mu.Lock()
	defer aw.mu.Unlock()
	return aw.writeLocked(block)
}

// AppendStream verifies the header of one whole encoded stream and
// appends its blocks, returning how many were appended. Blocks are
// verified and appended one at a time, so concurrent AppendStream
// calls interleave at block granularity — record order is preserved
// within each input stream, not across streams. A corrupt input block
// stops the append at the last verified block; the merged output is
// still well-formed.
func (aw *AppendWriter) AppendStream(r io.Reader) (int, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	// Borrow the Reader's header parser: same magic/version/schema
	// rules, nothing decoded past the header.
	hdr := &Reader{r: br}
	if err := hdr.readHeader(); err != nil {
		return 0, err
	}
	blocks := 0
	var lenb [4]byte
	var buf []byte // per-call: concurrent AppendStreams must not share scratch
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			if err == io.EOF {
				return blocks, nil // clean boundary: end of input stream
			}
			return blocks, fmt.Errorf("tracebin: block frame length: %w", corruptEOF(err))
		}
		n := int(binary.LittleEndian.Uint32(lenb[:]))
		if n < 1 || n > maxFrame {
			return blocks, fmt.Errorf("tracebin: block frame length %d: %w", n, ErrCorrupt)
		}
		total := 4 + n + 4
		if cap(buf) < total {
			buf = make([]byte, total)
		}
		block := buf[:total]
		copy(block, lenb[:])
		if _, err := io.ReadFull(br, block[4:]); err != nil {
			return blocks, fmt.Errorf("tracebin: block frame: %w", corruptEOF(err))
		}
		if _, err := validateFrame(block); err != nil {
			return blocks, err
		}
		aw.mu.Lock()
		err := aw.writeLocked(block)
		aw.mu.Unlock()
		if err != nil {
			return blocks, err
		}
		blocks++
	}
}

// writeLocked writes the header (once) and one verified block. Caller
// holds aw.mu.
func (aw *AppendWriter) writeLocked(block []byte) error {
	if aw.err != nil {
		return aw.err
	}
	if !aw.headerDone {
		if _, err := aw.w.Write(appendHeader(nil)); err != nil {
			aw.err = err
			return err
		}
		aw.headerDone = true
	}
	if _, err := aw.w.Write(block); err != nil {
		aw.err = err
		return err
	}
	return nil
}

// Close writes the header if nothing was ever appended, so an empty
// merge still yields a valid file. An AppendWriter already latched
// broken returns nil — the error was reported when it happened. The
// underlying writer is not closed.
func (aw *AppendWriter) Close() error {
	aw.mu.Lock()
	defer aw.mu.Unlock()
	if aw.err != nil {
		return nil
	}
	if !aw.headerDone {
		if _, err := aw.w.Write(appendHeader(nil)); err != nil {
			aw.err = err
			return err
		}
		aw.headerDone = true
	}
	return nil
}
