// Package reserve implements the resource reservation policies the
// paper's demand prediction feeds (its stated motivation and future
// work): given a forecast for the next reservation interval, decide
// how much radio/computing capacity to set aside, then score the
// decision against the measured demand — over-provisioning (waste)
// against under-provisioning (violations).
package reserve

import (
	"errors"
	"fmt"
	"math"
)

// ErrInput indicates invalid reservation input.
var ErrInput = errors.New("reserve: invalid input")

// Policy decides the reservation for the next interval. Observe is
// called with the measured demand after each interval so adaptive
// policies can update their state.
type Policy interface {
	// Next returns the amount to reserve given the scheme's demand
	// forecast for the coming interval (prediction-agnostic policies
	// may ignore it).
	Next(predicted float64) float64
	// Observe folds the measured demand of the finished interval.
	Observe(actual float64)
	// Name identifies the policy in experiment output.
	Name() string
}

// PredictiveHeadroom reserves the forecast plus a relative margin —
// the policy the paper's scheme enables.
type PredictiveHeadroom struct {
	// Margin is the relative headroom (0.1 = +10 %).
	Margin float64
}

// NewPredictiveHeadroom validates the margin and returns the policy.
func NewPredictiveHeadroom(margin float64) (*PredictiveHeadroom, error) {
	if margin < 0 || math.IsNaN(margin) {
		return nil, fmt.Errorf("margin %v: %w", margin, ErrInput)
	}
	return &PredictiveHeadroom{Margin: margin}, nil
}

var _ Policy = (*PredictiveHeadroom)(nil)

// Next implements Policy.
func (p *PredictiveHeadroom) Next(predicted float64) float64 {
	return predicted * (1 + p.Margin)
}

// Observe implements Policy.
func (p *PredictiveHeadroom) Observe(float64) {}

// Name implements Policy.
func (p *PredictiveHeadroom) Name() string {
	return fmt.Sprintf("prediction+%.0f%%", p.Margin*100)
}

// PeakProvisioning reserves the largest demand seen so far times a
// safety factor — the static worst-case baseline that never violates
// after warm-up but wastes the most.
type PeakProvisioning struct {
	// Safety multiplies the observed peak (default 1 when zero).
	Safety float64

	peak float64
	seen bool
}

var _ Policy = (*PeakProvisioning)(nil)

// Next implements Policy.
func (p *PeakProvisioning) Next(predicted float64) float64 {
	s := p.Safety
	if s == 0 {
		s = 1
	}
	if !p.seen {
		// Nothing observed yet: fall back to the forecast.
		return predicted * s
	}
	return p.peak * s
}

// Observe implements Policy.
func (p *PeakProvisioning) Observe(actual float64) {
	if actual > p.peak {
		p.peak = actual
	}
	p.seen = true
}

// Name implements Policy.
func (p *PeakProvisioning) Name() string { return "peak-provisioning" }

// EWMAHeadroom reserves an exponentially weighted average of the
// measured demand plus a margin — the history-only adaptive baseline.
type EWMAHeadroom struct {
	Alpha, Margin float64

	value float64
	ready bool
}

// NewEWMAHeadroom validates parameters and returns the policy.
func NewEWMAHeadroom(alpha, margin float64) (*EWMAHeadroom, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("alpha %v: %w", alpha, ErrInput)
	}
	if margin < 0 || math.IsNaN(margin) {
		return nil, fmt.Errorf("margin %v: %w", margin, ErrInput)
	}
	return &EWMAHeadroom{Alpha: alpha, Margin: margin}, nil
}

var _ Policy = (*EWMAHeadroom)(nil)

// Next implements Policy.
func (p *EWMAHeadroom) Next(predicted float64) float64 {
	if !p.ready {
		return predicted * (1 + p.Margin)
	}
	return p.value * (1 + p.Margin)
}

// Observe implements Policy.
func (p *EWMAHeadroom) Observe(actual float64) {
	if !p.ready {
		p.value, p.ready = actual, true
		return
	}
	p.value = p.Alpha*actual + (1-p.Alpha)*p.value
}

// Name implements Policy.
func (p *EWMAHeadroom) Name() string {
	return fmt.Sprintf("ewma(%.2f)+%.0f%%", p.Alpha, p.Margin*100)
}

// Report scores one policy over a demand series.
type Report struct {
	PolicyName string
	// Waste is the total over-provisioned capacity Σ max(0, r−a).
	Waste float64
	// ViolationRate is the fraction of intervals with actual > reserved.
	ViolationRate float64
	// Deficit is the total under-provisioned capacity Σ max(0, a−r).
	Deficit float64
	// Utilization is Σ actual / Σ reserved.
	Utilization float64
	// Intervals scored.
	Intervals int
}

// Evaluate replays a (predicted, actual) demand series through the
// policy: for each interval the policy reserves from the forecast,
// the measured demand is scored, then the policy observes it.
func Evaluate(p Policy, predicted, actual []float64) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("nil policy: %w", ErrInput)
	}
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return nil, fmt.Errorf("series %d vs %d: %w", len(predicted), len(actual), ErrInput)
	}
	rep := &Report{PolicyName: p.Name(), Intervals: len(predicted)}
	var reservedSum, actualSum float64
	var violations int
	for i := range predicted {
		if predicted[i] < 0 || actual[i] < 0 {
			return nil, fmt.Errorf("negative demand at %d: %w", i, ErrInput)
		}
		r := p.Next(predicted[i])
		if r < 0 {
			return nil, fmt.Errorf("policy %q reserved %v: %w", p.Name(), r, ErrInput)
		}
		if actual[i] > r {
			violations++
			rep.Deficit += actual[i] - r
		} else {
			rep.Waste += r - actual[i]
		}
		reservedSum += r
		actualSum += actual[i]
		p.Observe(actual[i])
	}
	rep.ViolationRate = float64(violations) / float64(len(predicted))
	if reservedSum > 0 {
		rep.Utilization = actualSum / reservedSum
	}
	return rep, nil
}
