package reserve

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewPredictiveHeadroomValidation(t *testing.T) {
	if _, err := NewPredictiveHeadroom(-0.1); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := NewPredictiveHeadroom(math.NaN()); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	p, err := NewPredictiveHeadroom(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Next(100); math.Abs(got-110) > 1e-9 {
		t.Fatalf("Next = %v, want 110", got)
	}
	if p.Name() != "prediction+10%" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestPeakProvisioning(t *testing.T) {
	var p PeakProvisioning
	// Before any observation, falls back to the forecast.
	if got := p.Next(50); got != 50 {
		t.Fatalf("cold Next = %v", got)
	}
	p.Observe(80)
	p.Observe(60)
	if got := p.Next(10); got != 80 {
		t.Fatalf("Next = %v, want peak 80", got)
	}
	p.Safety = 1.5
	if got := p.Next(10); math.Abs(got-120) > 1e-9 {
		t.Fatalf("Next with safety = %v, want 120", got)
	}
	if p.Name() != "peak-provisioning" {
		t.Fatal("name")
	}
}

func TestEWMAHeadroomValidation(t *testing.T) {
	if _, err := NewEWMAHeadroom(0, 0.1); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := NewEWMAHeadroom(0.5, -1); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	p, err := NewEWMAHeadroom(0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: forecast + margin.
	if got := p.Next(100); math.Abs(got-110) > 1e-9 {
		t.Fatalf("cold Next = %v", got)
	}
	p.Observe(100)
	p.Observe(0) // ewma -> 50
	if got := p.Next(999); math.Abs(got-55) > 1e-9 {
		t.Fatalf("Next = %v, want 55 (ewma 50 + 10%%)", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil, []float64{1}, []float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	p, err := NewPredictiveHeadroom(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(p, nil, nil); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := Evaluate(p, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := Evaluate(p, []float64{-1}, []float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("negative demand: want ErrInput, got %v", err)
	}
}

func TestEvaluatePerfectForecast(t *testing.T) {
	p, err := NewPredictiveHeadroom(0.1)
	if err != nil {
		t.Fatal(err)
	}
	actual := []float64{10, 20, 30}
	rep, err := Evaluate(p, actual, actual) // forecast == actual
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationRate != 0 {
		t.Fatalf("violations %v with headroom", rep.ViolationRate)
	}
	// Waste = 10% of each actual.
	if math.Abs(rep.Waste-6) > 1e-9 {
		t.Fatalf("waste %v, want 6", rep.Waste)
	}
	if math.Abs(rep.Utilization-1/1.1) > 1e-9 {
		t.Fatalf("utilization %v", rep.Utilization)
	}
	if rep.Intervals != 3 || rep.Deficit != 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestEvaluateUnderForecastViolates(t *testing.T) {
	p, err := NewPredictiveHeadroom(0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(p, []float64{10, 10}, []float64{20, 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationRate != 0.5 {
		t.Fatalf("violation rate %v", rep.ViolationRate)
	}
	if rep.Deficit != 10 || rep.Waste != 5 {
		t.Fatalf("deficit %v waste %v", rep.Deficit, rep.Waste)
	}
}

func TestPeakNeverViolatesAfterPeak(t *testing.T) {
	// Once the true peak is observed, peak provisioning never
	// violates again.
	var p PeakProvisioning
	p.Observe(50) // warm up with the series peak
	violations := 0
	for _, a := range []float64{50, 30, 40, 20, 50, 10} {
		if a > p.Next(0) {
			violations++
		}
		p.Observe(a)
	}
	if violations != 0 {
		t.Fatalf("%d violations after peak known", violations)
	}
}

// Waste + actual == reserved for every interval without violation;
// utilization is in (0, 1] whenever demand is positive.
func TestEvaluateAccountingInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		pred := make([]float64, 0, len(raw))
		actual := make([]float64, 0, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			v := math.Abs(math.Mod(x, 1000))
			pred = append(pred, v)
			actual = append(actual, math.Abs(math.Mod(v*float64(i+1), 1000)))
		}
		p, err := NewPredictiveHeadroom(0.2)
		if err != nil {
			return false
		}
		rep, err := Evaluate(p, pred, actual)
		if err != nil {
			return false
		}
		var reservedSum, actualSum float64
		q, _ := NewPredictiveHeadroom(0.2)
		for i := range pred {
			reservedSum += q.Next(pred[i])
			actualSum += actual[i]
			q.Observe(actual[i])
		}
		// Σreserved = Σactual + waste − deficit.
		return math.Abs(reservedSum-(actualSum+rep.Waste-rep.Deficit)) < 1e-6*(1+reservedSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
