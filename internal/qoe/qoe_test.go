package qoe

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestModelValidate(t *testing.T) {
	if err := (Model{BaseBps: 0, SwitchPenalty: 1, StartupPenaltyPerS: 1}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if err := (Model{BaseBps: 1, SwitchPenalty: -1}).Validate(); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestScoreValidation(t *testing.T) {
	m := DefaultModel()
	if _, err := m.Score([]View{{BitrateBps: 0, WatchS: 1}}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := m.Score([]View{{BitrateBps: 1e6, WatchS: -1}}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := m.Score([]View{{BitrateBps: 1e6, WatchS: 1, StartupS: -1}}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	bad := Model{BaseBps: -1}
	if _, err := bad.Score(nil); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestScoreEmpty(t *testing.T) {
	rep, err := DefaultModel().Score(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 || rep.Views != 0 || rep.MeanPerView != 0 {
		t.Fatalf("empty report %+v", rep)
	}
}

func TestScoreSingleView(t *testing.T) {
	m := DefaultModel()
	rep, err := m.Score([]View{{BitrateBps: 400e3, WatchS: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// log2(1+1) = 1 utility/s × 10 s.
	if math.Abs(rep.Utility-10) > 1e-9 {
		t.Fatalf("utility %v, want 10", rep.Utility)
	}
	if rep.SwitchCost != 0 || rep.StartupCost != 0 {
		t.Fatalf("costs %+v", rep)
	}
	if rep.MeanPerView != rep.Total {
		t.Fatal("mean per view")
	}
}

func TestScoreSwitchPenalty(t *testing.T) {
	m := DefaultModel()
	steady, err := m.Score([]View{
		{BitrateBps: 1.2e6, WatchS: 10},
		{BitrateBps: 1.2e6, WatchS: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if steady.SwitchCost != 0 {
		t.Fatalf("steady switch cost %v", steady.SwitchCost)
	}
	switched, err := m.Score([]View{
		{BitrateBps: 2.5e6, WatchS: 10},
		{BitrateBps: 400e3, WatchS: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if switched.SwitchCost <= 0 {
		t.Fatalf("switch cost %v", switched.SwitchCost)
	}
	if switched.Total >= switched.Utility {
		t.Fatal("penalty must reduce total")
	}
}

func TestScoreStartupPenalty(t *testing.T) {
	m := DefaultModel()
	rep, err := m.Score([]View{{BitrateBps: 1e6, WatchS: 5, StartupS: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.StartupCost-6) > 1e-9 {
		t.Fatalf("startup cost %v, want 6", rep.StartupCost)
	}
}

// Higher bitrate at equal watch time never lowers QoE (no switches).
func TestUtilityMonotoneInBitrate(t *testing.T) {
	m := DefaultModel()
	f := func(rawA, rawB uint32) bool {
		a := 1e3 + float64(rawA%5000)*1e3
		b := 1e3 + float64(rawB%5000)*1e3
		lo, hi := math.Min(a, b), math.Max(a, b)
		repLo, err := m.Score([]View{{BitrateBps: lo, WatchS: 10}})
		if err != nil {
			return false
		}
		repHi, err := m.Score([]View{{BitrateBps: hi, WatchS: 10}})
		if err != nil {
			return false
		}
		return repHi.Total >= repLo.Total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreInterval(t *testing.T) {
	m := DefaultModel()
	if _, err := m.ScoreInterval(GroupInterval{BitrateBps: 0, EngagementS: 10}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	q1, err := m.ScoreInterval(GroupInterval{BitrateBps: 2.5e6, EngagementS: 100})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := m.ScoreInterval(GroupInterval{BitrateBps: 400e3, EngagementS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if q1 <= q2 {
		t.Fatalf("higher bitrate interval QoE %v not above %v", q1, q2)
	}
	// Rung switch reduces QoE relative to steady state.
	steady, err := m.ScoreInterval(GroupInterval{BitrateBps: 2.5e6, PrevBitrateBps: 2.5e6, EngagementS: 100})
	if err != nil {
		t.Fatal(err)
	}
	switched, err := m.ScoreInterval(GroupInterval{BitrateBps: 2.5e6, PrevBitrateBps: 400e3, EngagementS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if switched >= steady {
		t.Fatalf("switched %v not below steady %v", switched, steady)
	}
}
