// Package qoe scores the viewing quality of multicast short-video
// delivery. The paper's intro motivates transcoding and grouping with
// user experience ("to reduce the transmission delay", "users'
// diversified characteristics"); this package quantifies that with
// the standard short-video QoE decomposition: bitrate utility over
// watched seconds, minus quality-switch and startup penalties. It
// powers the QoE-vs-budget experiment (E9) that closes the loop from
// demand prediction → reservation → experienced quality.
package qoe

import (
	"errors"
	"fmt"
	"math"
)

// ErrParam indicates invalid QoE input.
var ErrParam = errors.New("qoe: invalid parameter")

// View is one watched video from the QoE perspective.
type View struct {
	// BitrateBps the video was streamed at.
	BitrateBps float64
	// WatchS seconds actually watched.
	WatchS float64
	// StartupS is the startup/delivery delay experienced before
	// playback (0 for prefetched segments).
	StartupS float64
}

// Model holds the QoE weights. The defaults follow the common
// log-utility formulation used across ABR literature.
type Model struct {
	// BaseBps normalizes bitrate into utility units (default 400 kbps,
	// the lowest ladder rung).
	BaseBps float64
	// SwitchPenalty is charged per unit |log-bitrate| change between
	// consecutive views (default 1).
	SwitchPenalty float64
	// StartupPenaltyPerS is charged per second of startup delay
	// (default 3).
	StartupPenaltyPerS float64
}

// DefaultModel returns the weights used by the experiments.
func DefaultModel() Model {
	return Model{BaseBps: 400e3, SwitchPenalty: 1, StartupPenaltyPerS: 3}
}

// Validate checks the model weights.
func (m Model) Validate() error {
	if m.BaseBps <= 0 || m.SwitchPenalty < 0 || m.StartupPenaltyPerS < 0 {
		return fmt.Errorf("model %+v: %w", m, ErrParam)
	}
	return nil
}

// utility is the per-second bitrate utility log2(1 + r/base).
func (m Model) utility(bitrateBps float64) float64 {
	return math.Log2(1 + bitrateBps/m.BaseBps)
}

// Report is the QoE outcome of a view sequence.
type Report struct {
	// Total is utility − penalties.
	Total float64
	// Utility is the watched-seconds-weighted bitrate utility.
	Utility float64
	// SwitchCost is the accumulated quality-switch penalty.
	SwitchCost float64
	// StartupCost is the accumulated startup penalty.
	StartupCost float64
	// Views scored.
	Views int
	// MeanPerView is Total / Views (0 when no views).
	MeanPerView float64
}

// Score evaluates a chronological view sequence.
func (m Model) Score(views []View) (*Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Views: len(views)}
	prevRate := 0.0
	for i, v := range views {
		if v.BitrateBps <= 0 || v.WatchS < 0 || v.StartupS < 0 ||
			math.IsNaN(v.WatchS) || math.IsNaN(v.BitrateBps) {
			return nil, fmt.Errorf("view %d %+v: %w", i, v, ErrParam)
		}
		rep.Utility += m.utility(v.BitrateBps) * v.WatchS
		if i > 0 && prevRate > 0 {
			rep.SwitchCost += m.SwitchPenalty * math.Abs(m.utility(v.BitrateBps)-m.utility(prevRate))
		}
		rep.StartupCost += m.StartupPenaltyPerS * v.StartupS
		prevRate = v.BitrateBps
	}
	rep.Total = rep.Utility - rep.SwitchCost - rep.StartupCost
	if rep.Views > 0 {
		rep.MeanPerView = rep.Total / float64(rep.Views)
	}
	return rep, nil
}

// GroupInterval summarizes a multicast group's interval for QoE
// purposes: every member watched the shared feed at the group's
// bitrate, so the interval-level QoE is the per-member utility of the
// engaged seconds at the streamed bitrate minus a switch penalty when
// the interval changed the group's rung.
type GroupInterval struct {
	// BitrateBps streamed this interval.
	BitrateBps float64
	// PrevBitrateBps streamed the previous interval (0 for the first).
	PrevBitrateBps float64
	// EngagementS is the mean per-member watched seconds.
	EngagementS float64
}

// ScoreInterval returns the per-member QoE of one group interval.
func (m Model) ScoreInterval(gi GroupInterval) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if gi.BitrateBps <= 0 || gi.EngagementS < 0 {
		return 0, fmt.Errorf("interval %+v: %w", gi, ErrParam)
	}
	q := m.utility(gi.BitrateBps) * gi.EngagementS
	if gi.PrevBitrateBps > 0 {
		q -= m.SwitchPenalty * math.Abs(m.utility(gi.BitrateBps)-m.utility(gi.PrevBitrateBps))
	}
	return q, nil
}
