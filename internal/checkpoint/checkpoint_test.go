package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestEncDecRoundTrip: every primitive round-trips and Close verifies
// exact consumption.
func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.U16(65000)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(-7)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Bool(true)
	e.Bool(false)
	e.Blob([]byte("blob"))
	e.String("str")
	e.F64s([]float64{1.5, -2.5})
	e.Ints([]int{3, -4, 5})
	e.F64s(nil)
	e.Ints(nil)

	d := NewDec(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Fatalf("U8: %d", got)
	}
	if got := d.U16(); got != 65000 {
		t.Fatalf("U16: %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Fatalf("U32: %d", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("U64: %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64: %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Fatalf("Int: %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64: %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 -inf: %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := d.Blob(); string(got) != "blob" {
		t.Fatalf("Blob: %q", got)
	}
	if got := d.String(); got != "str" {
		t.Fatalf("String: %q", got)
	}
	if got := d.F64s(); len(got) != 2 || got[0] != 1.5 || got[1] != -2.5 {
		t.Fatalf("F64s: %v", got)
	}
	if got := d.Ints(); len(got) != 3 || got[1] != -4 {
		t.Fatalf("Ints: %v", got)
	}
	if got := d.F64s(); got != nil {
		t.Fatalf("empty F64s: %v", got)
	}
	if got := d.Ints(); got != nil {
		t.Fatalf("empty Ints: %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDecMalformed: short payloads, oversized length prefixes, bad
// bools and trailing bytes all latch ErrCorrupt; reads after the
// latch return zero values rather than panicking.
func TestDecMalformed(t *testing.T) {
	d := NewDec([]byte{1, 2})
	if d.U64(); !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatal("short U64 not corrupt")
	}
	if got := d.U32(); got != 0 {
		t.Fatalf("read after latch: %d", got)
	}

	// Length prefix claiming more elements than bytes remain.
	var e Enc
	e.U32(1 << 28)
	d = NewDec(e.Bytes())
	if d.F64s(); !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatal("oversized F64s not corrupt")
	}

	d = NewDec([]byte{2})
	if d.Bool(); !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatal("bad bool not corrupt")
	}

	d = NewDec([]byte{0, 0})
	if err := d.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing bytes not corrupt")
	}
}

func writeStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, "sim", 0xDEADBEEF)
	if err := w.Section("alpha", func(e *Enc) { e.Int(42); e.String("hello") }); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("beta", func(e *Enc) { e.F64s([]float64{1, 2, 3}) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriterReaderRoundTrip: a two-section stream reads back exactly.
func TestWriterReaderRoundTrip(t *testing.T) {
	raw := writeStream(t)
	r, err := NewReader(bytes.NewReader(raw), "sim", 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Int(); got != 42 {
		t.Fatalf("alpha int: %d", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("alpha string: %q", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = r.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.F64s(); len(got) != 3 {
		t.Fatalf("beta floats: %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderHeaderChecks: kind, fingerprint and version mismatches
// map to their sentinels.
func TestReaderHeaderChecks(t *testing.T) {
	raw := writeStream(t)
	if _, err := NewReader(bytes.NewReader(raw), "cluster", 0xDEADBEEF); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("kind mismatch: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(raw), "sim", 1); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
	mut := bytes.Clone(raw)
	mut[8]++
	if _, err := NewReader(bytes.NewReader(mut), "sim", 0xDEADBEEF); !errors.Is(err, ErrVersion) {
		t.Fatalf("version mismatch: %v", err)
	}
	mut = bytes.Clone(raw)
	mut[0] ^= 0xFF
	if _, err := NewReader(bytes.NewReader(mut), "sim", 0xDEADBEEF); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("magic mismatch: %v", err)
	}
}

// TestReaderDamage: every truncation and every single-byte flip of
// the stream body fails typed, never panics, never succeeds.
func TestReaderDamage(t *testing.T) {
	raw := writeStream(t)
	read := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b), "sim", 0xDEADBEEF)
		if err != nil {
			return err
		}
		for _, name := range []string{"alpha", "beta"} {
			d, err := r.Section(name)
			if err != nil {
				return err
			}
			switch name {
			case "alpha":
				d.Int()
				_ = d.String()
			case "beta":
				d.F64s()
			}
			if err := d.Close(); err != nil {
				return err
			}
		}
		return r.Finish()
	}
	typed := func(err error) bool {
		return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) || errors.Is(err, ErrConfigMismatch)
	}
	for n := 0; n < len(raw); n++ {
		if err := read(raw[:n]); !typed(err) {
			t.Fatalf("truncation at %d: %v", n, err)
		}
	}
	for i := 0; i < len(raw); i++ {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x01
		if err := read(mut); !typed(err) {
			t.Fatalf("flip at %d: %v", i, err)
		}
	}
}

// TestFingerprintStability: equal configs agree, different configs
// disagree.
func TestFingerprintStability(t *testing.T) {
	type cfg struct {
		Seed int64
		N    int
	}
	a, err := Fingerprint(cfg{Seed: 1, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(cfg{Seed: 1, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fingerprint(cfg{Seed: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal configs fingerprint differently")
	}
	if a == c {
		t.Fatal("different configs fingerprint equal")
	}
}

// TestWriteFileAtomic: a failing write callback leaves neither the
// target nor temp litter behind; a successful one installs the bytes.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")

	boom := errors.New("boom")
	if err := WriteFile(path, func(w io.Writer) error { return boom }); err == nil {
		t.Fatal("failing callback reported success")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed WriteFile left the target behind")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed WriteFile left temp litter: %v", ents)
	}

	if err := WriteFile(path, func(w io.Writer) error {
		_, werr := w.Write([]byte("payload"))
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("WriteFile content: %q", got)
	}
}
