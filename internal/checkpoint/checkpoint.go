// Package checkpoint implements the versioned binary container the
// session layer uses to persist engine state at interval boundaries.
//
// A checkpoint is a header — magic, format version, engine kind, and
// a fingerprint of the producing configuration — followed by named
// sections, each length-prefixed and protected by a CRC32 of its
// payload, and closed by an empty "end" section so truncation after
// the last real section is still detected. Readers are strict: any
// framing damage, CRC mismatch, or over-long length surfaces as
// ErrCorrupt (never a panic or an unbounded allocation), a format
// version the reader does not speak surfaces as ErrVersion, and a
// header whose engine kind or config fingerprint disagrees with the
// resuming session surfaces as ErrConfigMismatch.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Version is the checkpoint format version this package writes and
// the only one it reads.
const Version uint16 = 1

// magic opens every checkpoint stream.
var magic = [8]byte{'D', 'T', 'C', 'K', 'P', 'T', '0', '\n'}

var (
	// ErrCorrupt marks a checkpoint whose framing, lengths, or
	// section checksums do not hold together.
	ErrCorrupt = errors.New("checkpoint corrupt")
	// ErrVersion marks a checkpoint written by a format version this
	// reader does not understand.
	ErrVersion = errors.New("checkpoint version unsupported")
	// ErrConfigMismatch marks a structurally valid checkpoint that
	// belongs to a different engine kind or configuration than the
	// session trying to resume from it.
	ErrConfigMismatch = errors.New("checkpoint config mismatch")
)

// maxSection bounds a section payload; anything larger is treated as
// corruption rather than allocated.
const maxSection = 1 << 30

// maxName bounds a section name.
const maxName = 64

// Fingerprint hashes an arbitrary configuration value (via its
// canonical JSON encoding) to the 64-bit FNV-1a digest stored in the
// header. Callers should pass the fully defaulted configuration so
// explicit and implied defaults fingerprint identically.
func Fingerprint(cfg any) (uint64, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return 0, fmt.Errorf("checkpoint fingerprint: %w", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64(), nil
}

// Enc accumulates one section's payload. The zero value is ready to
// use; Writer.Section hands a reset Enc to its fill callback.
type Enc struct{ buf []byte }

// Reset empties the buffer, keeping capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a two's-complement int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as I64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends the IEEE-754 bits of v.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// F64s appends a length-prefixed float64 slice.
func (e *Enc) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Ints appends a length-prefixed int slice.
func (e *Enc) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Dec consumes one section's payload with bounds-checked, error-
// latching reads: after the first malformed read every subsequent
// read returns a zero value and Err reports ErrCorrupt, so decode
// sequences never need per-read error checks and never panic or
// over-allocate on adversarial input.
type Dec struct {
	data []byte
	pos  int
	err  error
}

// NewDec returns a decoder over a raw payload (tests and nested
// decoders; Reader.Section hands out CRC-verified ones).
func NewDec(data []byte) *Dec { return &Dec{data: data} }

// Err reports the latched decode error, if any.
func (d *Dec) Err() error { return d.err }

// Close verifies the payload was consumed exactly.
func (d *Dec) Close() error {
	if d.err == nil && d.pos != len(d.data) {
		d.err = fmt.Errorf("%d trailing bytes: %w", len(d.data)-d.pos, ErrCorrupt)
	}
	return d.err
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at offset %d: %w", what, d.pos, ErrCorrupt)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.data)-d.pos {
		d.fail("short payload")
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a two's-complement int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an I64 and verifies it fits the platform int.
func (d *Dec) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail("int overflow")
		return 0
	}
	return int(v)
}

// F64 reads IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a 0/1 byte; anything else is corruption.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

// len reads a u32 length prefix for elements of elemSize bytes and
// verifies the claimed payload fits in the remaining bytes.
func (d *Dec) len(elemSize int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(d.data)-d.pos) {
		d.fail("length overruns payload")
		return 0
	}
	return int(n)
}

// Blob reads a length-prefixed byte slice (aliasing the payload).
func (d *Dec) Blob() []byte { return d.take(d.len(1)) }

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.take(d.len(1))) }

// F64s reads a length-prefixed float64 slice; nil when empty.
func (d *Dec) F64s() []float64 {
	n := d.len(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Ints reads a length-prefixed int slice; nil when empty.
func (d *Dec) Ints() []int {
	n := d.len(8)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Writer emits a checkpoint stream: header at construction, then one
// framed section per Section call, then the end marker at Finish.
// Errors latch — after a write error every call is a no-op and
// Finish reports the first failure.
type Writer struct {
	w   io.Writer
	enc Enc
	err error
}

// NewWriter writes the header for the given engine kind and config
// fingerprint and returns the section writer.
func NewWriter(w io.Writer, kind string, fingerprint uint64) *Writer {
	cw := &Writer{w: w}
	var hdr Enc
	hdr.buf = append(hdr.buf, magic[:]...)
	hdr.U16(Version)
	hdr.String(kind)
	hdr.U64(fingerprint)
	cw.write(hdr.Bytes())
	return cw
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = fmt.Errorf("checkpoint write: %w", err)
	}
}

// Section frames one named payload: fill receives a reset encoder,
// and the accumulated bytes are written with a length prefix and a
// CRC32 trailer.
func (w *Writer) Section(name string, fill func(*Enc)) error {
	if w.err != nil {
		return w.err
	}
	w.enc.Reset()
	fill(&w.enc)
	payload := w.enc.Bytes()
	var frame Enc
	frame.String(name)
	frame.U32(uint32(len(payload)))
	w.write(frame.Bytes())
	w.write(payload)
	frame.Reset()
	frame.U32(crc32.ChecksumIEEE(payload))
	w.write(frame.Bytes())
	return w.err
}

// Finish writes the end marker and returns the first write error.
func (w *Writer) Finish() error {
	w.Section("end", func(*Enc) {})
	return w.err
}

// Err reports the latched write error, if any.
func (w *Writer) Err() error { return w.err }

// Reader consumes a checkpoint stream written by Writer.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader validates the stream header against the expected engine
// kind and config fingerprint.
func NewReader(r io.Reader, kind string, fingerprint uint64) (*Reader, error) {
	cr := &Reader{r: r}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint header: %w", ErrCorrupt)
	}
	if hdr != magic {
		return nil, fmt.Errorf("checkpoint magic: %w", ErrCorrupt)
	}
	ver, err := cr.readU16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("checkpoint format v%d, reader speaks v%d: %w", ver, Version, ErrVersion)
	}
	gotKind, err := cr.readString(maxName)
	if err != nil {
		return nil, err
	}
	if gotKind != kind {
		return nil, fmt.Errorf("checkpoint for engine %q, session is %q: %w", gotKind, kind, ErrConfigMismatch)
	}
	gotFP, err := cr.readU64()
	if err != nil {
		return nil, err
	}
	if gotFP != fingerprint {
		return nil, fmt.Errorf("checkpoint config fingerprint %016x, session has %016x: %w", gotFP, fingerprint, ErrConfigMismatch)
	}
	return cr, nil
}

func (r *Reader) readN(n int) ([]byte, error) {
	if n > cap(r.buf) {
		r.buf = make([]byte, n)
	}
	b := r.buf[:n]
	if _, err := io.ReadFull(r.r, b); err != nil {
		return nil, fmt.Errorf("checkpoint truncated: %w", ErrCorrupt)
	}
	return b, nil
}

func (r *Reader) readU16() (uint16, error) {
	b, err := r.readN(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *Reader) readU32() (uint32, error) {
	b, err := r.readN(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *Reader) readU64() (uint64, error) {
	b, err := r.readN(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *Reader) readString(maxLen int) (string, error) {
	n, err := r.readU32()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", fmt.Errorf("checkpoint string length %d: %w", n, ErrCorrupt)
	}
	b, err := r.readN(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Section reads the next frame, verifies its name and CRC, and
// returns a decoder over the payload.
func (r *Reader) Section(name string) (*Dec, error) {
	gotName, err := r.readString(maxName)
	if err != nil {
		return nil, err
	}
	if gotName != name {
		return nil, fmt.Errorf("checkpoint section %q, want %q: %w", gotName, name, ErrCorrupt)
	}
	n, err := r.readU32()
	if err != nil {
		return nil, err
	}
	if n > maxSection {
		return nil, fmt.Errorf("checkpoint section %q length %d: %w", name, n, ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("checkpoint section %q truncated: %w", name, ErrCorrupt)
	}
	sum, err := r.readU32()
	if err != nil {
		return nil, err
	}
	if sum != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("checkpoint section %q checksum: %w", name, ErrCorrupt)
	}
	return NewDec(payload), nil
}

// Finish consumes the end marker.
func (r *Reader) Finish() error {
	d, err := r.Section("end")
	if err != nil {
		return err
	}
	return d.Close()
}

// WriteFile writes a checkpoint atomically: the write callback runs
// against a buffered temp file in the target's directory, which is
// synced and renamed over path only after the callback and flush
// succeed — a crash mid-write never clobbers an existing checkpoint.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint flush: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("checkpoint sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("checkpoint close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint rename: %w", err)
	}
	return nil
}
