package segment

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPlanValidation(t *testing.T) {
	if _, _, err := Plan(1, 0, 4, 2); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, _, err := Plan(1, 30, 0, 2); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, _, err := Plan(-1, 30, 4, 2); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, _, err := Plan(1, 30, 4, -1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestPlanKnownCases(t *testing.T) {
	tests := []struct {
		name                     string
		watch, dur, seg          float64
		depth                    int
		wantDelivered, wantWaste float64
	}{
		{"watch to end wastes nothing", 30, 30, 4, 2, 30, 0},
		{"swipe mid-segment", 5, 30, 4, 0, 8, 3},
		{"prefetch adds waste", 5, 30, 4, 2, 16, 11},
		{"prefetch clamped at video end", 27, 30, 4, 5, 30, 3},
		{"instant swipe still fetched first segment", 0, 30, 4, 0, 4, 4},
		{"instant swipe with prefetch", 0, 30, 4, 2, 12, 12},
		{"watch beyond duration clamps", 99, 30, 4, 2, 30, 0},
		{"exact segment boundary", 8, 30, 4, 0, 8, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, w, err := Plan(tt.watch, tt.dur, tt.seg, tt.depth)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(d-tt.wantDelivered) > 1e-9 || math.Abs(w-tt.wantWaste) > 1e-9 {
				t.Fatalf("Plan = (%v, %v), want (%v, %v)", d, w, tt.wantDelivered, tt.wantWaste)
			}
		})
	}
}

// Invariants: watch ≤ delivered ≤ dur; waste = delivered − min(watch,dur);
// delivered is monotone in depth.
func TestPlanInvariants(t *testing.T) {
	f := func(rawWatch, rawDur uint16, rawDepth uint8) bool {
		watch := float64(rawWatch%600) / 10
		dur := 1 + float64(rawDur%600)/10
		depth := int(rawDepth % 8)
		const seg = 4.0
		d, w, err := Plan(watch, dur, seg, depth)
		if err != nil {
			return false
		}
		clampedWatch := math.Min(watch, dur)
		if d < clampedWatch-1e-9 || d > dur+1e-9 {
			return false
		}
		if math.Abs(w-(d-clampedWatch)) > 1e-9 {
			return false
		}
		// Monotone in depth.
		d2, _, err := Plan(watch, dur, seg, depth+1)
		if err != nil {
			return false
		}
		return d2 >= d-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWasteFraction(t *testing.T) {
	wf, err := WasteFraction(5, 30, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wf-11.0/16.0) > 1e-9 {
		t.Fatalf("waste fraction %v, want 11/16", wf)
	}
	wf, err = WasteFraction(30, 30, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wf != 0 {
		t.Fatalf("full watch waste %v", wf)
	}
	if _, err := WasteFraction(1, 0, 4, 2); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

// Waste is non-increasing in watch time for fixed depth: the longer
// the group watches, the less of the prefetch is wasted (relative to
// the delivered prefix).
func TestWasteShrinksTowardCompletion(t *testing.T) {
	const dur, seg = 32.0, 4.0
	prevWaste := math.Inf(1)
	for watch := 0.0; watch <= dur; watch += seg {
		_, w, err := Plan(watch, dur, seg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if w > prevWaste+1e-9 {
			t.Fatalf("waste increased at watch=%v: %v > %v", watch, w, prevWaste)
		}
		prevWaste = w
	}
	if prevWaste != 0 {
		t.Fatalf("completion waste %v", prevWaste)
	}
}
