// Package segment models segment-level multicast delivery with
// prefetching. Short videos are transmitted as fixed-length segments;
// the BS keeps a prefetch window of segments ahead of the group's
// playhead so playback never stalls. When the last group member
// swipes, the segments delivered beyond the swipe point are wasted —
// exactly the over-provisioning effect the paper sets out to quantify
// ("users' swiping behaviors can lead to resource over-provisioning
// if precached segments are not played", §I).
package segment

import (
	"errors"
	"fmt"
	"math"
)

// ErrParam indicates invalid segment-plan input.
var ErrParam = errors.New("segment: invalid parameter")

// Plan computes the delivery outcome of one multicast video: given
// that the last member watched watchS seconds of a durS-second video,
// with segS-second segments and a prefetch window of depth segments
// beyond the playhead, it returns the seconds of video actually
// delivered and the wasted (delivered-but-unplayed) seconds.
//
// Delivery rule: while anyone watches, the BS keeps the next `depth`
// segments beyond the playhead in flight, so by the swipe moment the
// segments covering watchS plus `depth` further segments have been
// delivered (bounded by the video end). Watching to the end wastes
// nothing.
func Plan(watchS, durS, segS float64, depth int) (deliveredS, wasteS float64, err error) {
	switch {
	case durS <= 0 || segS <= 0:
		return 0, 0, fmt.Errorf("duration %v segment %v: %w", durS, segS, ErrParam)
	case watchS < 0 || math.IsNaN(watchS):
		return 0, 0, fmt.Errorf("watch %v: %w", watchS, ErrParam)
	case depth < 0:
		return 0, 0, fmt.Errorf("prefetch depth %d: %w", depth, ErrParam)
	}
	if watchS > durS {
		watchS = durS
	}
	if watchS >= durS {
		return durS, 0, nil
	}
	// Segments covering the watched prefix…
	watched := math.Ceil(watchS / segS)
	if watched == 0 {
		// The player always fetches at least the first segment.
		watched = 1
	}
	// …plus the prefetch window.
	delivered := (watched + float64(depth)) * segS
	if delivered > durS {
		delivered = durS
	}
	return delivered, delivered - watchS, nil
}

// WasteFraction is a convenience wrapper returning the wasted share
// of delivered seconds.
func WasteFraction(watchS, durS, segS float64, depth int) (float64, error) {
	delivered, waste, err := Plan(watchS, durS, segS, depth)
	if err != nil {
		return 0, err
	}
	if delivered == 0 {
		return 0, nil
	}
	return waste / delivered, nil
}
