// Package radio models multicast radio resource accounting (paper
// §II-B2): a multicast group's sustainable rate is governed by its
// worst member (conservative eMBMS-style multicast), and the radio
// resource demand is the number of resource blocks needed to carry a
// target video bitrate at that worst-case spectral efficiency.
package radio

import (
	"errors"
	"fmt"
	"math"

	"dtmsvs/internal/channel"
)

// ErrParam indicates invalid radio accounting input.
var ErrParam = errors.New("radio: invalid parameter")

// MemberSNR is one group member's instantaneous link quality.
type MemberSNR struct {
	UserID int
	SNRdB  float64
}

// GroupRate computes the multicast group's per-RB rate (bits/s per
// resource block): the rate of the worst member, since every member
// must decode the common transmission.
func GroupRate(params channel.Params, members []MemberSNR) (float64, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("empty group: %w", ErrParam)
	}
	worst := math.Inf(1)
	for _, m := range members {
		if m.SNRdB < worst {
			worst = m.SNRdB
		}
	}
	return params.RateBps(worst), nil
}

// RBDemand returns the number of resource blocks needed to deliver
// bitrateBps to the group: ceil(bitrate / per-RB rate of worst user).
func RBDemand(params channel.Params, members []MemberSNR, bitrateBps float64) (int, error) {
	if bitrateBps <= 0 {
		return 0, fmt.Errorf("bitrate %v: %w", bitrateBps, ErrParam)
	}
	perRB, err := GroupRate(params, members)
	if err != nil {
		return 0, err
	}
	if perRB <= 0 {
		return 0, fmt.Errorf("zero per-RB rate: %w", ErrParam)
	}
	return int(math.Ceil(bitrateBps / perRB)), nil
}

// Allocation is the per-group radio assignment for one interval.
type Allocation struct {
	GroupID int
	// RBs granted to the group.
	RBs int
	// BitrateBps the allocation supports.
	BitrateBps float64
}

// Scheduler tracks a base station's RB budget across groups.
type Scheduler struct {
	totalRBs int
	used     int
	allocs   []Allocation
}

// NewScheduler creates a scheduler with the given RB budget per
// interval (e.g. 100 RBs for 20 MHz LTE).
func NewScheduler(totalRBs int) (*Scheduler, error) {
	if totalRBs <= 0 {
		return nil, fmt.Errorf("rb budget %d: %w", totalRBs, ErrParam)
	}
	return &Scheduler{totalRBs: totalRBs}, nil
}

// Total returns the RB budget.
func (s *Scheduler) Total() int { return s.totalRBs }

// Used returns the RBs allocated so far this interval.
func (s *Scheduler) Used() int { return s.used }

// Free returns the remaining RBs.
func (s *Scheduler) Free() int { return s.totalRBs - s.used }

// Allocations returns a copy of the current allocation list.
func (s *Scheduler) Allocations() []Allocation {
	out := make([]Allocation, len(s.allocs))
	copy(out, s.allocs)
	return out
}

// ErrExhausted is returned when the RB budget cannot cover a request.
var ErrExhausted = errors.New("radio: resource blocks exhausted")

// Allocate grants rbs blocks to a group, or fails with ErrExhausted.
func (s *Scheduler) Allocate(groupID, rbs int, bitrateBps float64) error {
	if rbs <= 0 {
		return fmt.Errorf("allocate %d rbs: %w", rbs, ErrParam)
	}
	if s.used+rbs > s.totalRBs {
		return fmt.Errorf("need %d rbs, %d free: %w", rbs, s.Free(), ErrExhausted)
	}
	s.used += rbs
	s.allocs = append(s.allocs, Allocation{GroupID: groupID, RBs: rbs, BitrateBps: bitrateBps})
	return nil
}

// Reset clears allocations for a new interval.
func (s *Scheduler) Reset() {
	s.used = 0
	s.allocs = s.allocs[:0]
}

// Utilization returns the fraction of the budget in use.
func (s *Scheduler) Utilization() float64 {
	return float64(s.used) / float64(s.totalRBs)
}
