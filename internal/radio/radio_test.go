package radio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dtmsvs/internal/channel"
)

func members(snrs ...float64) []MemberSNR {
	out := make([]MemberSNR, len(snrs))
	for i, s := range snrs {
		out[i] = MemberSNR{UserID: i, SNRdB: s}
	}
	return out
}

func TestGroupRateWorstMember(t *testing.T) {
	p := channel.DefaultParams()
	if _, err := GroupRate(p, nil); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	r, err := GroupRate(p, members(20, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	want := p.RateBps(0)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("group rate %v, want worst-member %v", r, want)
	}
}

// Adding a member can never increase the group rate.
func TestGroupRateMonotoneProperty(t *testing.T) {
	p := channel.DefaultParams()
	f := func(snrsRaw []float64, extra float64) bool {
		if len(snrsRaw) == 0 {
			return true
		}
		snrs := make([]float64, 0, len(snrsRaw))
		for _, s := range snrsRaw {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				s = 0
			}
			snrs = append(snrs, math.Mod(s, 40))
		}
		if math.IsNaN(extra) || math.IsInf(extra, 0) {
			extra = 0
		}
		base, err := GroupRate(p, members(snrs...))
		if err != nil {
			return false
		}
		bigger, err := GroupRate(p, members(append(snrs, math.Mod(extra, 40))...))
		if err != nil {
			return false
		}
		return bigger <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRBDemand(t *testing.T) {
	p := channel.DefaultParams()
	if _, err := RBDemand(p, members(10), 0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := RBDemand(p, nil, 1e6); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	// SNR 0 dB → 180 kbps/RB; 1 Mbps needs ceil(1e6/180e3) = 6 RBs.
	n, err := RBDemand(p, members(0, 30), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("rb demand %d, want 6", n)
	}
	// Better worst-user → fewer RBs.
	n2, err := RBDemand(p, members(20, 30), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if n2 >= n {
		t.Fatalf("better group demands %d >= %d", n2, n)
	}
}

func TestSchedulerLifecycle(t *testing.T) {
	if _, err := NewScheduler(0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	s, err := NewScheduler(100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != 100 || s.Used() != 0 || s.Free() != 100 {
		t.Fatal("initial scheduler state")
	}
	if err := s.Allocate(1, 40, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := s.Allocate(2, 60, 2e6); err != nil {
		t.Fatal(err)
	}
	if s.Free() != 0 || s.Utilization() != 1.0 {
		t.Fatalf("free %d util %v", s.Free(), s.Utilization())
	}
	if err := s.Allocate(3, 1, 1e5); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if err := s.Allocate(3, 0, 1e5); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	allocs := s.Allocations()
	if len(allocs) != 2 || allocs[0].GroupID != 1 || allocs[1].RBs != 60 {
		t.Fatalf("allocations %+v", allocs)
	}
	// Returned slice is a copy.
	allocs[0].RBs = 999
	if s.Allocations()[0].RBs == 999 {
		t.Fatal("Allocations must copy")
	}
	s.Reset()
	if s.Used() != 0 || len(s.Allocations()) != 0 {
		t.Fatal("reset failed")
	}
}

// Sum of allocations never exceeds the budget regardless of request
// pattern.
func TestSchedulerBudgetInvariant(t *testing.T) {
	f := func(reqs []uint8) bool {
		s, err := NewScheduler(50)
		if err != nil {
			return false
		}
		for i, r := range reqs {
			rbs := int(r%20) + 1
			_ = s.Allocate(i, rbs, 1e6) // errors allowed
			if s.Used() > s.Total() {
				return false
			}
		}
		var sum int
		for _, a := range s.Allocations() {
			sum += a.RBs
		}
		return sum == s.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
