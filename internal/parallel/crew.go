package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Crew is the persistent sibling of Pool: a fixed team of parked
// worker goroutines for fan-outs so short that Pool.For's per-call
// goroutine spawn (and its closure allocations) would dominate — the
// blocked-GEMM row fan-out of the training hot path runs in tens of
// microseconds. Dispatch is allocation-free: the caller hands Run a
// long-lived func value (bind a method value once at construction),
// workers wake on a per-worker channel, and completion is a reused
// WaitGroup.
//
// The determinism contract matches Pool: fn must only write state
// owned by its worker index (or claimed from an atomic counter the
// caller owns), so results are bit-identical for any worker count.
//
// A Crew holds no goroutines until the first multi-worker Run; Close
// releases them. Run is not reentrant — one fan-out at a time.
type Crew struct {
	workers int
	once    sync.Once
	wake    []chan struct{}
	wg      sync.WaitGroup
	fn      func(w int)
	closed  bool

	// Utilization counters, atomic so a live metrics exporter can
	// read them from another goroutine mid-run.
	runs  atomic.Uint64
	wakes atomic.Uint64
}

// NewCrew returns a crew with the given worker bound; workers <= 0
// means runtime.NumCPU(). No goroutines start until the first Run
// that needs them.
func NewCrew(workers int) *Crew {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Crew{workers: workers}
}

// Workers reports the crew's worker bound.
func (c *Crew) Workers() int { return c.workers }

// Run invokes fn(w) once for every w in [0, n) — w 0 on the calling
// goroutine, the rest on parked workers — and returns when all have
// finished. n is clamped to the worker bound. fn is retained only for
// the duration of the call; passing the same func value every time
// keeps Run allocation-free.
func (c *Crew) Run(n int, fn func(w int)) {
	c.runs.Add(1)
	if n > c.workers {
		n = c.workers
	}
	if n <= 1 {
		fn(0)
		return
	}
	c.once.Do(c.spawn)
	c.wakes.Add(uint64(n - 1))
	c.fn = fn
	c.wg.Add(n - 1)
	for w := 1; w < n; w++ {
		c.wake[w-1] <- struct{}{}
	}
	fn(0)
	c.wg.Wait()
	c.fn = nil
}

// spawn parks workers 1..workers-1, each on its own wake channel (the
// channel send publishes c.fn to the woken worker).
func (c *Crew) spawn() {
	c.wake = make([]chan struct{}, c.workers-1)
	for w := 1; w < c.workers; w++ {
		ch := make(chan struct{}, 1)
		c.wake[w-1] = ch
		go func(w int, ch chan struct{}) {
			for range ch {
				c.fn(w)
				c.wg.Done()
			}
		}(w, ch)
	}
}

// Stats reports the crew's lifetime utilization: fan-outs dispatched
// (including those that degraded to sequential) and parked-worker
// wake-ups. Safe to call concurrently with Run.
func (c *Crew) Stats() (runs, wakes uint64) {
	return c.runs.Load(), c.wakes.Load()
}

// Close releases the crew's workers; a Run after Close degrades to
// sequential on the calling goroutine (same results — the fan-out is
// bit-identical at any width). Idempotent, and safe on a crew that
// never spawned workers. Must not race a Run in flight.
func (c *Crew) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.once.Do(func() {}) // never spawned: nothing to release
	for _, ch := range c.wake {
		close(ch)
	}
	c.wake = nil
	c.workers = 1
}
