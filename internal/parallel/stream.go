// This file holds the serializable faces of the package's random
// streams, added for session checkpoint/restore. A derived stream
// (NewRand) is one splitmix64 state word, so capturing and restoring
// it is trivial; the stdlib rngSource used for run-level generators
// carries a 607-word register instead, so those are restored by
// replaying construction and skipping forward a recorded draw count
// (CountingSource).

package parallel

import "math/rand"

// Stream is a splitmix64 random stream with an exported position: the
// generator behind NewRand, plus State/SetState so a checkpoint can
// capture the stream in one word and restore it exactly. A Stream is
// a rand.Source64 — wrap it with rand.New to draw from it.
type Stream struct{ state uint64 }

var _ rand.Source64 = (*Stream)(nil)

// NewStream returns the derived stream for (seed, ids...) — the same
// stream NewRand wraps, at its initial position.
func NewStream(seed int64, ids ...uint64) *Stream {
	return &Stream{state: uint64(DeriveSeed(seed, ids...))}
}

// StreamAt returns a stream positioned at a previously captured
// state word.
func StreamAt(state uint64) *Stream { return &Stream{state: state} }

// State returns the stream's position word. Capturing it after any
// number of draws and later calling SetState reproduces the remaining
// draw sequence exactly.
func (s *Stream) State() uint64 { return s.state }

// SetState repositions the stream.
func (s *Stream) SetState(state uint64) { s.state = state }

// Seed implements rand.Source.
func (s *Stream) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// CountingSource wraps a rand.Source64 and counts how many times it
// has been advanced. Every draw — Int63 or Uint64 — moves the
// underlying generator exactly one position, so the count alone
// locates the source's state relative to its seeded origin: restore
// by reconstructing the source the same way and calling Skip with the
// recorded count difference.
type CountingSource struct {
	src   rand.Source64
	draws uint64
}

var _ rand.Source64 = (*CountingSource)(nil)

// NewCounting wraps src.
func NewCounting(src rand.Source64) *CountingSource {
	return &CountingSource{src: src}
}

// Draws reports how many positions the source has advanced since
// construction (or the last Seed).
func (c *CountingSource) Draws() uint64 { return c.draws }

// Skip advances the source n positions.
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}

// Seed implements rand.Source.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}
