// Package parallel provides the bounded worker pool and the
// deterministic random-stream derivation the simulation engine uses to
// fan per-user and per-group work across cores.
//
// The contract that makes parallel simulation reproducible is:
//
//  1. Every concurrent unit of work (a user, a group, a churn arrival)
//     owns a *rand.Rand derived from the run seed and the unit's
//     stable identity via SplitMix64 mixing (NewRand), never a shared
//     generator, so its draw sequence is independent of scheduling.
//  2. Workers only write to slots owned by their index; reductions
//     over the results happen sequentially afterwards, so floating
//     point accumulation order is fixed.
//
// Under these two rules Pool.For produces bit-identical results
// whether the pool runs 1 worker or NumCPU workers.
package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// SplitMix64 is the finalizer of the splitmix64 generator: a cheap,
// high-quality 64-bit mixing function. It is the standard way to
// derive independent seed streams from a base seed plus a stream id.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed folds a sequence of stream identifiers (e.g. a stream
// tag, a user id, a churn generation) into the base seed, producing a
// seed that is decorrelated from the base and from every other id
// sequence. The same (seed, ids...) always yields the same result.
func DeriveSeed(seed int64, ids ...uint64) int64 {
	// Mix the running state before each id is folded in, so the
	// combination is sequence-sensitive (x^id alone would make the
	// seed and the first id interchangeable).
	x := uint64(seed)
	for _, id := range ids {
		x = SplitMix64(x) ^ id
	}
	return int64(SplitMix64(x))
}

// NewRand returns a rand.Rand on the derived stream for (seed,
// ids...). Each distinct id sequence gets an independent deterministic
// draw sequence. The generator is a SplitMix64 source: seeding is one
// word write (the stdlib source warms up a 607-word register, which
// dominates when every user, group and churn arrival gets its own
// stream) and each draw is a single mix.
func NewRand(seed int64, ids ...uint64) *rand.Rand {
	return rand.New(NewStream(seed, ids...))
}

// Pool is a bounded fan-out executor. It holds no goroutines between
// calls; For spawns at most Workers() goroutines for the duration of
// one call. The zero value is not usable — construct with New.
type Pool struct {
	workers int
}

// New returns a pool with the given worker bound; workers <= 0 means
// runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// For runs fn(i) for every i in [0, n), fanning the indices across the
// pool's workers. fn must only write to state owned by index i; For
// never invokes fn twice for the same index. Every index is attempted
// even when some return errors, and the error with the smallest index
// is returned — so the outcome, including the error, is independent of
// worker count and scheduling.
func (p *Pool) For(n int, fn func(i int) error) error {
	return p.ForContext(context.Background(), n, fn)
}

// ForContext is For with cooperative cancellation: once ctx is done,
// workers stop picking up new indices (in-flight fn calls run to
// completion) and ForContext returns ctx.Err(), which takes precedence
// over any fn error. A cancelled fan-out may therefore have visited
// only a scheduling-dependent subset of the indices — callers must
// treat the touched state as indeterminate and either discard it or
// stop the run, which is exactly what the engines' interval-boundary
// cancellation contract does.
func (p *Pool) ForContext(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		firstIdx := -1
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil && firstIdx == -1 {
				firstErr, firstIdx = err, i
			}
		}
		return firstErr
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx = -1
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
