package parallel

import (
	"sync/atomic"
	"testing"
)

// TestCrewRunsEveryWorker checks that Run invokes fn exactly once per
// worker slot, clamps to the bound, and reuses workers across calls.
func TestCrewRunsEveryWorker(t *testing.T) {
	c := NewCrew(4)
	defer c.Close()
	var seen [4]atomic.Int64
	fn := func(w int) { seen[w].Add(1) }
	for round := 1; round <= 3; round++ {
		c.Run(4, fn)
		for w := range seen {
			if got := seen[w].Load(); got != int64(round) {
				t.Fatalf("round %d: worker %d ran %d times", round, w, got)
			}
		}
	}
	// Clamped fan-out: only the first 2 slots run.
	c.Run(2, fn)
	if seen[0].Load() != 4 || seen[1].Load() != 4 || seen[2].Load() != 3 {
		t.Fatalf("clamped run touched wrong workers: %v %v %v %v",
			seen[0].Load(), seen[1].Load(), seen[2].Load(), seen[3].Load())
	}
	// Oversized n clamps to the worker bound.
	c.Run(100, fn)
	if seen[3].Load() != 4 {
		t.Fatalf("oversized run did not clamp: worker 3 ran %d times", seen[3].Load())
	}
}

// TestCrewSequential covers the no-goroutine paths: worker bound 1
// and single-slot runs.
func TestCrewSequential(t *testing.T) {
	c := NewCrew(1)
	defer c.Close()
	ran := 0
	c.Run(5, func(w int) {
		if w != 0 {
			t.Fatalf("sequential crew ran worker %d", w)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("sequential crew ran %d times", ran)
	}
}

// TestCrewCloseDegradesToSequential checks the post-Close contract:
// further Runs stay on the calling goroutine.
func TestCrewCloseDegradesToSequential(t *testing.T) {
	c := NewCrew(4)
	c.Run(4, func(int) {})
	c.Close()
	c.Close() // idempotent
	ran := 0
	c.Run(4, func(w int) {
		if w != 0 {
			t.Fatalf("closed crew woke worker %d", w)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("closed crew ran %d times", ran)
	}
	// Closing a crew that never spawned must not panic either.
	NewCrew(8).Close()
}

// TestCrewRunAllocFree gates the dispatch: a steady-state fan-out
// with a long-lived func value must not touch the heap.
func TestCrewRunAllocFree(t *testing.T) {
	c := NewCrew(4)
	defer c.Close()
	var sink [4]atomic.Int64
	fn := func(w int) { sink[w].Add(1) }
	c.Run(4, fn) // prime: spawns workers
	if n := testing.AllocsPerRun(200, func() {
		c.Run(4, fn)
	}); n != 0 {
		t.Fatalf("crew Run allocates %v per run", n)
	}
}
