package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical splitmix64 with seed 0 and
	// 1 (first output of each stream).
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x", got)
	}
	if got := SplitMix64(1); got != 0x910a2dec89025cc1 {
		t.Errorf("SplitMix64(1) = %#x", got)
	}
}

func TestDeriveSeedDistinctStreams(t *testing.T) {
	seen := make(map[int64]string)
	for seed := int64(0); seed < 3; seed++ {
		for tag := uint64(0); tag < 4; tag++ {
			for id := uint64(0); id < 64; id++ {
				s := DeriveSeed(seed, tag, id)
				key := fmt.Sprintf("seed=%d tag=%d id=%d", seed, tag, id)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision between %s and %s", prev, key)
				}
				seen[s] = key
			}
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(42, 1, 7, 3)
	b := DeriveSeed(42, 1, 7, 3)
	if a != b {
		t.Fatalf("DeriveSeed not stable: %d vs %d", a, b)
	}
	if a == DeriveSeed(42, 1, 3, 7) {
		t.Fatal("DeriveSeed ignores id order")
	}
}

func TestNewRandIndependent(t *testing.T) {
	r1 := NewRand(42, 1, 0)
	r2 := NewRand(42, 1, 1)
	var same int
	for i := 0; i < 64; i++ {
		if r1.Int63() == r2.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams overlap on %d of 64 draws", same)
	}
}

func TestForDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 257
	run := func(workers int) []float64 {
		p := New(workers)
		out := make([]float64, n)
		if err := p.For(n, func(i int) error {
			rng := NewRand(7, uint64(i))
			out[i] = rng.Float64() + rng.NormFloat64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: out[%d]=%v want %v", w, i, got[i], base[i])
			}
		}
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	p := New(8)
	if err := p.For(n, func(i int) error {
		counts[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.For(100, func(i int) error {
			switch i {
			case 13:
				return errLow
			case 77:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v want %v", workers, err, errLow)
		}
	}
}

func TestForEmptyAndDefaults(t *testing.T) {
	p := New(0)
	if p.Workers() <= 0 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	if err := p.For(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		p := New(workers)
		var ran atomic.Int32
		err := p.ForContext(ctx, 100, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d indices ran under a pre-cancelled ctx", workers, ran.Load())
		}
	}
}

func TestForContextCancelMidway(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		p := New(workers)
		var ran atomic.Int32
		err := p.ForContext(ctx, 10_000, func(i int) error {
			if ran.Add(1) == 50 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 10_000 {
			t.Fatalf("workers=%d: cancellation did not stop the fan-out (%d ran)", workers, n)
		}
	}
}

// TestForContextCancelPrecedence: ctx.Err() wins over fn errors so a
// cancelled run always surfaces the cancellation to its caller.
func TestForContextCancelPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(4)
	errBoom := errors.New("boom")
	err := p.ForContext(ctx, 1000, func(i int) error {
		if i == 10 {
			cancel()
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v want context.Canceled", err)
	}
}
