package traceio

import (
	"bytes"
	"strings"
	"testing"
)

type row struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
}

func (r row) CSVHeader() []string { return []string{"id", "x"} }
func (r row) AppendCSVRow(dst []string) []string {
	return append(dst, string(rune('0'+r.ID)), FormatFloat(r.X))
}

func TestWriteCSVHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV[row](&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "id,x" {
		t.Fatalf("empty CSV %q", got)
	}
}

func TestCSVStreamWritesHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVStream(&buf)
	for i := 0; i < 3; i++ {
		if err := s.Write(row{ID: i, X: 1.5}); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3", len(lines))
	}
	if lines[0] != "id,x" {
		t.Fatalf("header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if l == "id,x" {
			t.Fatal("header repeated mid-stream")
		}
	}
}

func TestNDJSONStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONStream(&buf)
	want := []row{{ID: 1, X: 2.5}, {ID: 2, X: -1}, {ID: 3, X: 0}}
	for _, r := range want {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(want) {
		t.Fatalf("%d newlines for %d records", n, len(want))
	}
	back, err := ReadNDJSON[row](&buf, "row")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(want) {
		t.Fatalf("round trip %d != %d", len(back), len(want))
	}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], want[i])
		}
	}
}

// TestNDJSONFlushExposesPrefix is the sink contract the cancellation
// semantics rely on: after Flush, everything written so far is on the
// underlying writer, decodable as a standalone NDJSON prefix.
func TestNDJSONFlushExposesPrefix(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONStream(&buf)
	if err := s.Write(row{ID: 1, X: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	prefix := buf.String()
	back, err := ReadNDJSON[row](strings.NewReader(prefix), "row")
	if err != nil || len(back) != 1 {
		t.Fatalf("prefix not decodable: %v (%d records)", err, len(back))
	}
}

func TestReadJSONArrayError(t *testing.T) {
	if _, err := ReadJSONArray[row](strings.NewReader("not json"), "row"); err == nil {
		t.Fatal("malformed array must error")
	}
	if _, err := ReadNDJSON[row](strings.NewReader("{\"id\":1}\nnope"), "row"); err == nil {
		t.Fatal("malformed NDJSON must error")
	}
}
