// Package traceio is the shared trace-record encoder used by the
// monolithic and cluster trace IO paths and by the root package's
// streaming sinks. Records describe their own flat CSV schema through
// the Row interface; this package owns the batch writers (JSON array,
// CSV with header) and the incremental encoders (NDJSON and CSV
// streams) so the per-engine IO files reduce to schema definitions.
package traceio

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Row is one trace record flattened to CSV fields. Implementations
// must return a stable header whose length matches every appended row.
type Row interface {
	// CSVHeader returns the column names of the record's schema.
	CSVHeader() []string
	// AppendCSVRow appends the record's fields to dst and returns it.
	AppendCSVRow(dst []string) []string
}

// FormatFloat renders a float the way every trace CSV column does:
// shortest 'g' form with 10 significant digits.
func FormatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', 10, 64)
}

// WriteJSONArray serializes records as an indented JSON array — the
// whole-trace batch format the Write*TraceJSON helpers expose.
func WriteJSONArray(w io.Writer, records any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadJSONArray decodes a JSON array of records; what names the
// record kind in the error message.
func ReadJSONArray[T any](r io.Reader, what string) ([]T, error) {
	var out []T
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode %s: %w", what, err)
	}
	return out, nil
}

// WriteCSV writes records as CSV with a header row taken from the
// first record's schema (or from a zero T when there are none).
func WriteCSV[T Row](w io.Writer, records []T) error {
	s := NewCSVStream(w)
	if len(records) == 0 {
		var zero T
		if err := s.writeHeader(zero); err != nil {
			return err
		}
		return s.Flush()
	}
	for i, r := range records {
		if err := s.Write(r); err != nil {
			return fmt.Errorf("write row %d: %w", i, err)
		}
	}
	return s.Flush()
}

// CSVStream encodes rows incrementally: the header is written before
// the first record, each Write appends one row, and Flush pushes
// everything buffered to the underlying writer.
type CSVStream struct {
	cw      *csv.Writer
	scratch []string
	started bool
	def     Row
}

// NewCSVStream returns a CSV encoder over w.
func NewCSVStream(w io.Writer) *CSVStream {
	return &CSVStream{cw: csv.NewWriter(w)}
}

func (s *CSVStream) writeHeader(r Row) error {
	if s.started {
		return nil
	}
	s.started = true
	if err := s.cw.Write(r.CSVHeader()); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	return nil
}

// Write encodes one record, emitting the header first if this is the
// stream's first row.
func (s *CSVStream) Write(r Row) error {
	if err := s.writeHeader(r); err != nil {
		return err
	}
	s.scratch = r.AppendCSVRow(s.scratch[:0])
	return s.cw.Write(s.scratch)
}

// SetEmptyHeader arms the stream with a default row whose schema is
// written on the first Flush if no record arrived first, so a run
// that ends before producing any rows still leaves a header-only file
// instead of an empty one. The default must share the schema of every
// later row.
func (s *CSVStream) SetEmptyHeader(r Row) { s.def = r }

// Flush drains the encoder's buffer to the underlying writer, first
// emitting the default row's header if nothing has been written yet.
func (s *CSVStream) Flush() error {
	if !s.started && s.def != nil {
		if err := s.writeHeader(s.def); err != nil {
			return err
		}
	}
	s.cw.Flush()
	return s.cw.Error()
}

// NDJSONStream encodes one JSON value per line (newline-delimited
// JSON), buffered until Flush.
type NDJSONStream struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewNDJSONStream returns an NDJSON encoder over w.
func NewNDJSONStream(w io.Writer) *NDJSONStream {
	bw := bufio.NewWriter(w)
	return &NDJSONStream{bw: bw, enc: json.NewEncoder(bw)}
}

// Write encodes one record as a single JSON line.
func (s *NDJSONStream) Write(v any) error {
	return s.enc.Encode(v)
}

// Flush pushes buffered lines to the underlying writer.
func (s *NDJSONStream) Flush() error {
	return s.bw.Flush()
}

// ReadNDJSON decodes newline-delimited JSON records until EOF; what
// names the record kind in the error message.
func ReadNDJSON[T any](r io.Reader, what string) ([]T, error) {
	dec := json.NewDecoder(r)
	var out []T
	for {
		var rec T
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("decode %s: %w", what, err)
		}
		out = append(out, rec)
	}
}
